"""Tests for wavefront-parallel execution: analysis, workers, arena safety,
batched GEMMs, and bitwise parallel/serial parity (incl. the Echo Fig. 13
configuration)."""

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

import repro.ops as O
from repro.graph import Stage, dependency_levels
from repro.models import NmtConfig, WordLmConfig, build_nmt, build_word_lm
from repro.nn import Backend
from repro.ops.dropout import set_global_step, stable_seed
from repro.runtime import (
    Arena,
    CompiledPlan,
    GraphExecutor,
    InstrInfo,
    PlanCache,
    WorkerPool,
    analyze_wavefronts,
    partition_chunks,
    schedule,
    shared_pool,
)
from repro.runtime.wavefront import MIN_LEVEL_SECONDS
from repro.runtime.workers import default_thread_count

SMALL_NMT = NmtConfig(
    src_vocab_size=50, tgt_vocab_size=50, embed_size=8, hidden_size=8,
    encoder_layers=1, decoder_layers=1, src_len=5, tgt_len=4,
    batch_size=2, backend=Backend.CUDNN,
)

SMALL_LM = WordLmConfig(
    vocab_size=60, embed_size=8, hidden_size=8, num_layers=2,
    seq_len=5, batch_size=3, dropout=0.3,
)


def nmt_feeds(cfg, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "src_tokens": rng.integers(1, cfg.src_vocab_size,
                                   (cfg.src_len, cfg.batch_size)),
        "tgt_tokens": rng.integers(1, cfg.tgt_vocab_size,
                                   (cfg.tgt_len, cfg.batch_size)),
        "tgt_labels": rng.integers(1, cfg.tgt_vocab_size,
                                   (cfg.tgt_len, cfg.batch_size)),
    }


def lm_feeds(cfg, seed=0):
    rng = np.random.default_rng(seed)
    shape = (cfg.seq_len, cfg.batch_size)
    return {
        "tokens": rng.integers(0, cfg.vocab_size, shape),
        "labels": rng.integers(-1, cfg.vocab_size, shape),
    }


def info(i, reads=(), writes=(), rb=(), wb=(), stage=Stage.FORWARD, cost=1.0):
    return InstrInfo(index=i, reads=tuple(reads), writes=tuple(writes),
                     read_bases=tuple(rb), write_bases=tuple(wb),
                     stage=stage, cost_seconds=cost)


class TestDependencyLevels:
    def test_diamond(self):
        x = O.placeholder((4,), np.float64, name="x")
        a = O.add_scalar(x, 1.0)
        b = O.mul_scalar(x, 2.0)
        y = O.add(a, b)
        levels = dependency_levels(schedule([y]))
        assert levels[x.node.uid] == 0
        assert levels[a.node.uid] == levels[b.node.uid] == 1
        assert levels[y.node.uid] == 2

    def test_external_producers_are_sources(self):
        x = O.placeholder((4,), np.float64, name="x2")
        a = O.add_scalar(x, 1.0)
        levels = dependency_levels([a.node])  # x not in the iterable
        assert levels[a.node.uid] == 0


class TestWavefrontAnalysis:
    def test_independent_instructions_share_a_level(self):
        infos = [info(0, writes=[0]), info(1, writes=[1]),
                 info(2, reads=[0, 1], writes=[2])]
        sched = analyze_wavefronts(infos, threads=1)
        members = [w.instructions for w in sched.levels]
        assert members == [[0, 1], [2]]

    def test_storage_hazards_serialize(self):
        # 0 writes base 7; 1 reads it; 2 reuses base 7 for its own output:
        # WAR forces 2 after 1 even though no value flows between them.
        infos = [
            info(0, writes=[0], wb=[7]),
            info(1, reads=[0], writes=[1], rb=[7]),
            info(2, writes=[2], wb=[7]),
        ]
        sched = analyze_wavefronts(infos, threads=1)
        level_of = {}
        for lvl, w in enumerate(sched.levels):
            for i in w.instructions:
                level_of[i] = lvl
        assert level_of[2] > level_of[1] > level_of[0]

    def test_stage_transitions_are_barriers(self):
        infos = [
            info(0, writes=[0], stage=Stage.FORWARD),
            info(1, writes=[1], stage=Stage.BACKWARD),
        ]
        sched = analyze_wavefronts(infos, threads=4)
        assert sched.region_count == 2
        assert [w.instructions for w in sched.levels] == [[0], [1]]

    def test_cost_gate_keeps_cheap_levels_serial(self):
        cheap = [info(i, writes=[i], cost=MIN_LEVEL_SECONDS / 100)
                 for i in range(4)]
        sched = analyze_wavefronts(cheap, threads=4)
        assert all(not w.parallel for w in sched.levels)
        rich = [info(i, writes=[i], cost=MIN_LEVEL_SECONDS)
                for i in range(4)]
        sched = analyze_wavefronts(rich, threads=4)
        assert any(w.parallel for w in sched.levels)

    def test_serial_threads_never_parallel(self):
        rich = [info(i, writes=[i], cost=1.0) for i in range(4)]
        sched = analyze_wavefronts(rich, threads=1)
        assert not any(w.parallel for w in sched.levels)

    def test_index_mismatch_rejected(self):
        with pytest.raises(ValueError, match="stream position"):
            analyze_wavefronts([info(3)], threads=2)

    def test_partition_chunks_balanced_and_deterministic(self):
        items = list(range(6))
        costs = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        a = partition_chunks(items, costs, threads=2)
        b = partition_chunks(items, costs, threads=2)
        assert a == b
        assert len(a) == 2
        assert sorted(i for c in a for i in c) == items
        loads = [sum(costs[i] for i in c) for c in a]
        assert max(loads) <= 5.0  # the heavy item sits alone

    def test_partition_respects_min_chunk_cost(self):
        chunks = partition_chunks([0, 1, 2, 3], [1.0] * 4, threads=4,
                                  min_chunk_seconds=2.5)
        assert len(chunks) == 1  # total 4.0 only affords one 2.5s chunk


class TestWorkerPool:
    def test_run_level_executes_all_chunks(self):
        pool = WorkerPool(2)
        try:
            regs = [0] * 6

            def writer(slots):
                def chunk(r):
                    for s in slots:
                        r[s] = s + 100
                return chunk

            pool.run_level([writer([0, 1]), writer([2, 3]), writer([4, 5])],
                           regs)
            assert regs == [100, 101, 102, 103, 104, 105]
        finally:
            pool.close()

    def test_worker_exception_propagates(self):
        pool = WorkerPool(1)
        try:
            def boom(_regs):
                raise ValueError("kernel exploded")

            with pytest.raises(ValueError, match="kernel exploded"):
                pool.run_level([lambda r: None, boom], [])
            # pool survives a failed level
            out = []
            pool.run_level([lambda r: out.append(1), lambda r: out.append(2)],
                           [])
            assert sorted(out) == [1, 2]
        finally:
            pool.close()

    def test_shared_pool_identity(self, monkeypatch):
        # Lift the process lane budget so distinct requests stay distinct
        # (on small hosts the clamp would collapse them into one pool).
        monkeypatch.setenv("REPRO_THREADS", "8")
        assert shared_pool(2) is shared_pool(2)
        assert shared_pool(2) is not shared_pool(3)

    def test_shared_pool_clamps_to_lane_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "3")
        pool = shared_pool(16)
        # 3 lanes = the caller + 2 workers; oversubscribed requests fold
        # into the budgeted pool (run_level queues the excess chunks).
        assert pool.num_workers == 2
        assert shared_pool(2) is pool

    def test_default_thread_count_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert default_thread_count() == 1
        monkeypatch.setenv("REPRO_THREADS", "4")
        assert default_thread_count() == 4
        monkeypatch.setenv("REPRO_THREADS", "garbage")
        assert default_thread_count() == 1


class TestConcurrentArena:
    def test_concurrent_acquire_release(self):
        arena = Arena()
        errors = []
        acquired = []
        barrier = threading.Barrier(4)

        def worker(seed):
            rng = np.random.default_rng(seed)
            count = 0
            try:
                barrier.wait()
                for _ in range(200):
                    n = int(rng.integers(1, 5))
                    count += n
                    size = int(rng.integers(1, 2049))
                    bufs = [
                        arena.acquire((size,), np.dtype(np.float64), size * 8)
                        for _ in range(n)
                    ]
                    for j, buf in enumerate(bufs):
                        buf.fill(seed * 1000 + j)
                    for j, buf in enumerate(bufs):
                        # no two concurrently-held buffers alias
                        assert buf[0] == seed * 1000 + j
                        arena.release(buf)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            acquired.append(count)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # counters stay consistent under concurrency: every acquisition was
        # either a pool hit or a fresh buffer, nothing lost or double-counted
        assert arena.fresh_count + arena.reuse_count == sum(acquired)
        assert arena.held_bytes > 0


class TestBatchedGemms:
    def test_nmt_attention_gemms_batched(self):
        model = build_nmt(SMALL_NMT)
        order = schedule(model.graph.outputs)
        plan = CompiledPlan(order, model.graph.outputs, Arena(),
                            batch_gemms=True)
        assert plan.batched_gemm_groups > 0
        assert plan.batched_gemm_nodes >= 2 * plan.batched_gemm_groups
        assert plan.instruction_kinds["batched"] == plan.batched_gemm_groups

    def test_batched_bitwise_equal_serial(self):
        model = build_nmt(SMALL_NMT)
        params = model.store.initialize(seed=1)
        feeds = nmt_feeds(SMALL_NMT)
        order = schedule(model.graph.outputs)
        plain = CompiledPlan(order, model.graph.outputs, Arena())
        batched = CompiledPlan(order, model.graph.outputs, Arena(),
                               batch_gemms=True)
        set_global_step(0)
        want = plain.run(feeds, params)
        for _ in range(3):
            set_global_step(0)
            got = batched.run(feeds, params)
            for a, b in zip(want, got):
                assert np.array_equal(a, b)

    def test_output_gemm_never_batched(self):
        x = O.placeholder((4, 4), np.float64, name="bx")
        w = O.variable((4, 4), np.float64, name="bw")
        outs = [O.matmul(x, w), O.matmul(w, x)]
        plan = CompiledPlan(schedule(outs), outs, Arena(), batch_gemms=True)
        assert plan.batched_gemm_groups == 0  # both escape as outputs
        got = plan.run({"bx": np.eye(4)}, {"bw": np.arange(16.0).reshape(4, 4)})
        assert np.array_equal(got[0], np.arange(16.0).reshape(4, 4))


class TestThreadKeyedPlanCache:
    def test_thread_config_is_part_of_the_key(self):
        model = build_word_lm(SMALL_LM)
        cache = PlanCache()
        arena = Arena()
        serial = GraphExecutor(model.graph.outputs, arena=arena,
                               plan_cache=cache, threads=1)
        parallel = GraphExecutor(model.graph.outputs, arena=arena,
                                 plan_cache=cache, threads=4)
        again = GraphExecutor(model.graph.outputs, arena=arena,
                              plan_cache=cache, threads=4)
        assert serial.plan is not parallel.plan
        assert parallel.plan is again.plan
        assert serial.plan.threads == 1
        assert parallel.plan.threads == 4


class TestParallelParity:
    @pytest.mark.parametrize("threads", [2, 4])
    def test_word_lm_bitwise(self, threads):
        model = build_word_lm(SMALL_LM)
        params = model.store.initialize(seed=2)
        feeds = lm_feeds(SMALL_LM)
        serial = GraphExecutor(model.graph.outputs, plan_cache=PlanCache(),
                               threads=1)
        parallel = GraphExecutor(model.graph.outputs, plan_cache=PlanCache(),
                                 threads=threads)
        for _ in range(3):  # same dropout step sequence on both sides
            want = serial.run(feeds, params).outputs
            got = parallel.run(feeds, params).outputs
            for a, b in zip(want, got):
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_nmt_bitwise(self):
        model = build_nmt(SMALL_NMT)
        params = model.store.initialize(seed=3)
        feeds = nmt_feeds(SMALL_NMT)
        serial = GraphExecutor(model.graph.outputs, plan_cache=PlanCache(),
                               threads=1)
        parallel = GraphExecutor(model.graph.outputs, plan_cache=PlanCache(),
                                 threads=4)
        for _ in range(3):
            want = serial.run(feeds, params).outputs
            got = parallel.run(feeds, params).outputs
            for a, b in zip(want, got):
                assert np.array_equal(a, b)

    def test_echo_fig13_parity_and_report_unchanged(self):
        """Fig. 13 configuration: Echo-rewritten NMT graph, parallel
        execution bitwise-identical and the pass report field-for-field
        independent of the thread config."""
        from repro.echo import EchoConfig, optimize

        def fields(report):
            return {
                "baseline_peak_bytes": report.baseline_peak_bytes,
                "optimized_peak_bytes": report.optimized_peak_bytes,
                "candidates_found": report.candidates_found,
                "num_accepted": len(report.accepted),
                "accepted_benefit": [c.benefit_bytes for c in report.accepted],
                "recompute_seconds": report.recompute_seconds,
            }

        model_a = build_nmt(SMALL_NMT)
        model_b = build_nmt(SMALL_NMT)
        cfg = EchoConfig(min_benefit_bytes=0)
        report_a = optimize(model_a.graph, cfg, plan_cache=PlanCache())
        report_b = optimize(model_b.graph, cfg, plan_cache=PlanCache())
        assert report_a.accepted  # a real rewrite, not a no-op pass
        assert fields(report_a) == fields(report_b)

        params = model_a.store.initialize(seed=4)
        params_b = model_b.store.initialize(seed=4)
        feeds = nmt_feeds(SMALL_NMT)
        serial = GraphExecutor(model_a.graph.outputs, plan_cache=PlanCache(),
                               threads=1)
        parallel = GraphExecutor(model_b.graph.outputs, plan_cache=PlanCache(),
                                 threads=4)
        for _ in range(2):
            want = serial.run(feeds, params).outputs
            got = parallel.run(feeds, params_b).outputs
            for a, b in zip(want, got):
                assert np.array_equal(a, b)

    def test_repro_threads_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "2")
        model = build_word_lm(SMALL_LM)
        ex = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())
        assert ex.threads == 2
        assert ex.plan.threads == 2


class TestEchoBarrierLegality:
    def test_optimized_graph_passes(self):
        from repro.echo import EchoConfig, check_barrier_legality, optimize

        model = build_nmt(SMALL_NMT)
        report = optimize(model.graph, EchoConfig(min_benefit_bytes=0),
                          plan_cache=PlanCache())
        assert report.accepted  # the check ran on a real rewrite
        check_barrier_legality(schedule(model.graph.outputs))

    def test_forward_consuming_recompute_rejected(self):
        from repro.echo import check_barrier_legality

        x = O.placeholder((4,), np.float64, name="blx")
        a = O.add_scalar(x, 1.0)
        y = O.mul_scalar(a, 2.0)
        a.node.stage = Stage.RECOMPUTE  # forward y now reads a recompute
        try:
            with pytest.raises(RuntimeError, match="barrier violation"):
                check_barrier_legality(schedule([y]))
        finally:
            a.node.stage = Stage.FORWARD


class TestGenericOpsInParallel:
    def test_dropout_graph_parallel_parity(self):
        # dropout is a generic (non-out=) instruction; its allocations go
        # through the locked counter under parallel execution.
        x = O.placeholder((64, 64), np.float64, name="dx")
        h = O.tanh(O.dropout(x, 0.4, seed=11))
        g = O.sigmoid(O.dropout(x, 0.4, seed=12))
        y = O.reduce_sum(O.add(h, g))
        from repro.autodiff import compile_training

        graph = compile_training(y, params={}, placeholders={"x": x})
        serial = GraphExecutor(graph.outputs, plan_cache=PlanCache(),
                               threads=1)
        parallel = GraphExecutor(graph.outputs, plan_cache=PlanCache(),
                                 threads=2)
        arr = np.random.default_rng(5).standard_normal((64, 64))
        for _ in range(3):
            want = serial.run({"dx": arr}).outputs
            got = parallel.run({"dx": arr}).outputs
            for a, b in zip(want, got):
                assert np.array_equal(a, b)


class TestStableDropoutSeed:
    def test_stable_seed_is_pure(self):
        assert stable_seed("enc", 0) == stable_seed("enc", 0)
        assert stable_seed("enc", 0) != stable_seed("enc", 1)
        assert 0 <= stable_seed("enc", 0) <= 0xFFFF

    def test_seed_stable_across_hash_randomization(self):
        """Regression: rnn.py used process-salted hash((prefix, layer)) —
        masks differed between processes. stable_seed must not."""
        code = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.ops.dropout import stable_seed;"
            "print(stable_seed('lm.rnn', 0), stable_seed('enc.fwd', 1),"
            "      hash(('lm.rnn', 0)))"
        )
        outs = []
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            result = subprocess.run(
                [sys.executable, "-c", code], capture_output=True,
                text=True, env=env, cwd=os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))),
                check=True,
            )
            outs.append(result.stdout.split())
        (a0, a1, ahash), (b0, b1, bhash) = outs
        assert (a0, a1) == (b0, b1)  # stable digest: identical seeds
        assert ahash != bhash  # hash() really is salted — the old bug

    def test_lm_dropout_masks_reproduce_across_processes(self):
        code = (
            "import sys; sys.path.insert(0, 'src');"
            "import numpy as np;"
            "from tests.test_wavefront import SMALL_LM, lm_feeds;"
            "from repro.models import build_word_lm;"
            "from repro.runtime import GraphExecutor, PlanCache;"
            "m = build_word_lm(SMALL_LM);"
            "p = m.store.initialize(seed=7);"
            "ex = GraphExecutor(m.graph.outputs, plan_cache=PlanCache());"
            "out = ex.run(lm_feeds(SMALL_LM), p).outputs;"
            "print(repr(float(out[0])))"
        )
        losses = []
        for hashseed in ("0", "999"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            result = subprocess.run(
                [sys.executable, "-c", code], capture_output=True,
                text=True, env=env, cwd=os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))),
                check=True,
            )
            losses.append(result.stdout.strip())
        assert losses[0] == losses[1]


class TestWavefrontStats:
    def test_parallel_plan_reports_structure(self):
        model = build_nmt(SMALL_NMT)
        ex = GraphExecutor(model.graph.outputs, plan_cache=PlanCache(),
                           threads=4)
        plan = ex.plan
        assert plan.wavefront_region_count >= 2  # forward + backward runs
        assert plan.wavefront_level_count > 0
        assert plan.max_wavefront_width > 1
        if plan.parallel_level_count:
            assert plan.parallel_instruction_count > plan.parallel_level_count

    def test_serial_plan_reports_zero(self):
        model = build_word_lm(SMALL_LM)
        ex = GraphExecutor(model.graph.outputs, plan_cache=PlanCache(),
                           threads=1)
        assert ex.plan.parallel_level_count == 0
        assert ex.plan.wavefront_level_count == 0
