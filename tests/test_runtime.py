"""Tests for the scheduler, memory planner, and executor."""

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.graph import Stage
from repro.runtime import (
    Category,
    ExecutionError,
    GraphExecutor,
    TrainingExecutor,
    plan_memory,
    schedule,
    validate_schedule,
)


def _small_training_graph(batch=4, hidden=8, classes=5):
    x = O.placeholder((batch, hidden), name="x")
    labels = O.placeholder((batch,), dtype=np.int64, name="labels")
    w = O.variable((classes, hidden), name="w")
    b = O.variable((classes,), name="b")
    logits = O.fully_connected(O.tanh(x), w, b)
    loss = O.softmax_cross_entropy(logits, labels)
    return compile_training(loss, {"w": w, "b": b}, {"x": x, "labels": labels})


class TestScheduler:
    def test_schedule_is_topological(self):
        tg = _small_training_graph()
        order = schedule(tg.outputs)
        validate_schedule(order)

    def test_forward_before_backward_boundary(self):
        tg = _small_training_graph()
        order = schedule(tg.outputs)
        stages = [n.stage for n in order if n.op.name not in
                  ("placeholder", "variable", "constant")]
        first_bwd = stages.index(Stage.BACKWARD)
        assert all(s is Stage.FORWARD for s in stages[:first_bwd])

    def test_priority_respected_among_ready(self):
        a = O.placeholder((2,), name="p_a")
        b = O.tanh(a)
        c = O.sigmoid(a)
        d = O.add(b, c)
        # Lower c's priority below b's: c should still run after a but
        # before b despite later creation.
        c.node.priority = b.node.priority - 0.5
        order = schedule([d])
        names = [n.uid for n in order]
        assert names.index(c.node.uid) < names.index(b.node.uid)


class TestMemoryPlan:
    def test_feature_map_classification(self):
        tg = _small_training_graph()
        order = schedule(tg.outputs)
        plan = plan_memory(order, tg.outputs)
        # tanh output is consumed by fully_connected (fwd) AND by the
        # backward matmuls -> feature map.
        tanh_nodes = [n for n in order if n.op.name == "tanh"]
        assert len(tanh_nodes) == 1
        life = plan.lifetimes[(tanh_nodes[0].uid, 0)]
        assert life.category is Category.FEATURE_MAP

    def test_peak_at_least_pinned(self):
        tg = _small_training_graph()
        order = schedule(tg.outputs)
        plan = plan_memory(order, tg.outputs)
        pinned = sum(
            t.nbytes for t in list(tg.params.values())
            + list(tg.placeholders.values())
        )
        assert plan.peak_bytes >= pinned

    def test_timeline_peak_consistency(self):
        tg = _small_training_graph()
        order = schedule(tg.outputs)
        plan = plan_memory(order, tg.outputs)
        assert max(plan.timeline) == plan.peak_bytes
        assert plan.timeline[plan.peak_step] == plan.peak_bytes

    def test_categories_sum_to_peak(self):
        tg = _small_training_graph()
        order = schedule(tg.outputs)
        plan = plan_memory(order, tg.outputs)
        assert sum(plan.peak_by_category.values()) == plan.peak_bytes

    def test_gradient_pinning(self):
        tg = _small_training_graph()
        ex = TrainingExecutor(tg)
        grads_cat = [
            ex.memory_plan.lifetimes[g.key].category
            for g in tg.grads.values()
        ]
        assert all(c is Category.GRADIENT for c in grads_cat)


class TestExecutor:
    def test_missing_feed_raises(self):
        tg = _small_training_graph()
        ex = TrainingExecutor(tg)
        with pytest.raises(ExecutionError, match="was not bound"):
            ex.run({}, {})

    def test_wrong_shape_raises(self):
        tg = _small_training_graph()
        ex = TrainingExecutor(tg)
        feeds = {"x": np.zeros((4, 9), np.float32),
                 "labels": np.zeros(4, np.int64)}
        params = {"w": np.zeros((5, 8), np.float32),
                  "b": np.zeros(5, np.float32)}
        with pytest.raises(ExecutionError, match="shape"):
            ex.run(feeds, params)

    def test_training_step_decreases_loss(self):
        tg = _small_training_graph()
        ex = TrainingExecutor(tg)
        gen = np.random.default_rng(1)
        params = {
            "w": gen.standard_normal((5, 8)).astype(np.float32) * 0.1,
            "b": np.zeros(5, np.float32),
        }
        feeds = {
            "x": gen.standard_normal((4, 8)).astype(np.float32),
            "labels": gen.integers(0, 5, 4),
        }
        loss0, grads, _ = ex.run(feeds, params)
        for name in params:
            params[name] = params[name] - 0.5 * grads[name]
        loss1, _, _ = ex.run(feeds, params)
        assert loss1 < loss0

    def test_deterministic_across_runs(self):
        tg = _small_training_graph()
        ex = TrainingExecutor(tg)
        gen = np.random.default_rng(2)
        params = {"w": gen.standard_normal((5, 8)).astype(np.float32),
                  "b": np.zeros(5, np.float32)}
        feeds = {"x": gen.standard_normal((4, 8)).astype(np.float32),
                 "labels": gen.integers(0, 5, 4)}
        l1, g1, _ = ex.run(feeds, params)
        l2, g2, _ = ex.run(feeds, params)
        assert l1 == l2
        for k in g1:
            np.testing.assert_array_equal(g1[k], g2[k])

    def test_simulated_timing_collection(self):
        from repro.gpumodel import DeviceModel

        tg = _small_training_graph()
        ex = TrainingExecutor(tg, device=DeviceModel())
        result = ex.simulate_cost()
        assert result.sim_seconds > 0
        assert result.sim_api_seconds > 0
        assert result.dram_bytes > 0

    def test_dropout_step_advances_but_same_step_reproducible(self):
        x = O.placeholder((32, 32), name="do_x")
        y = O.reduce_sum(O.dropout(x, 0.5, seed=7))
        ex = GraphExecutor([y])
        arr = np.ones((32, 32), np.float32)
        v1 = float(ex.run({"do_x": arr}).outputs[0])
        v2 = float(ex.run({"do_x": arr}).outputs[0])
        assert v1 != v2  # different iterations -> different masks

    def test_memory_freed_during_execution(self):
        # A long chain should keep only O(1) values alive at a time.
        x = O.placeholder((64, 64), name="chain_x")
        y = x
        for _ in range(50):
            y = O.tanh(y)
        ex = GraphExecutor([O.reduce_sum(y)])
        plan = ex.memory_plan
        one = 64 * 64 * 4
        # peak should be a few buffers, nowhere near 50 of them
        assert plan.peak_bytes < 6 * one
