"""Tests for graph printing/summaries and trainer checkpointing."""

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.echo import EchoConfig, optimize
from repro.graph import Stage, format_graph, scope, summarize
from repro.models import WordLmConfig, build_word_lm
from repro.train import Adam, SGD, Trainer, load_checkpoint, save_checkpoint


def _graph():
    x = O.placeholder((4, 8), name="gp_x")
    with scope("body"):
        w = O.variable((3, 8), name="gp_w")
        y = O.tanh(O.fully_connected(x, w))
    loss = O.reduce_mean(y)
    return compile_training(loss, {"gp_w": w}, {"gp_x": x})


class TestGraphPrinting:
    def test_summary_counts(self):
        tg = _graph()
        summary = summarize(tg.outputs)
        assert summary.num_nodes == len(tg.nodes())
        assert summary.by_op["fully_connected"] == 1
        assert summary.by_stage["forward"] > 0
        assert summary.by_stage["backward"] > 0
        assert "body" in summary.by_scope
        assert summary.total_output_bytes > 0

    def test_format_graph_lists_every_node(self):
        tg = _graph()
        text = format_graph(tg.outputs)
        assert text.count("\n") + 1 == len(tg.nodes())
        assert "tanh" in text
        assert "@body" in text

    def test_truncation(self):
        tg = _graph()
        text = format_graph(tg.outputs, max_nodes=3)
        assert "more nodes)" in text

    def test_stage_filter_shows_mirrors(self):
        # Build an echo-optimized graph and list only recompute nodes.
        queries = [O.placeholder((4, 8), name=f"gp_q{t}") for t in range(3)]
        keys = O.placeholder((4, 6, 8), name="gp_keys")
        w = O.variable((8, 8), name="gp_w2")
        total = None
        for q in queries:
            interior = O.tanh(O.add(O.expand_dims(
                O.fully_connected(q, w), 1), keys))
            flat = O.reshape(interior, (24, 8))
            s = O.reduce_sum(O.mul(flat, flat))
            total = s if total is None else O.add(total, s)
        ph = {f"gp_q{t}": q for t, q in enumerate(queries)}
        ph["gp_keys"] = keys
        tg = compile_training(total, {"gp_w2": w}, ph)
        optimize(tg, EchoConfig(overhead_budget_fraction=0.5))
        text = format_graph(tg.outputs, stages=[Stage.RECOMPUTE])
        assert "__recompute" in text
        summary = summarize(tg.outputs)
        assert summary.by_stage.get("recompute", 0) > 0

    def test_summary_format_readable(self):
        text = summarize(_graph().outputs).format()
        assert "nodes" in text
        assert "top ops" in text


class TestCheckpointing:
    def _trainer(self, optimizer):
        cfg = WordLmConfig(
            vocab_size=40, embed_size=8, hidden_size=8, num_layers=1,
            seq_len=5, batch_size=4,
        )
        model = build_word_lm(cfg)
        return Trainer(model.graph, model.store.initialize(), optimizer)

    def _feeds(self, seed=0):
        gen = np.random.default_rng(seed)
        return {"tokens": gen.integers(0, 40, (5, 4)),
                "labels": gen.integers(0, 40, (5, 4))}

    def test_roundtrip_resumes_identically(self, tmp_path):
        a = self._trainer(Adam(1e-2))
        for i in range(5):
            a.step(self._feeds(i))
        save_checkpoint(tmp_path / "ckpt.npz", a)

        b = self._trainer(Adam(1e-2))
        meta = load_checkpoint(tmp_path / "ckpt.npz", b)
        assert meta["trainer_step"] == 5

        # Continuing either trainer on the same data is identical.
        ra = a.step(self._feeds(100))
        rb = b.step(self._feeds(100))
        assert ra.loss == rb.loss
        for name in a.params:
            np.testing.assert_array_equal(a.params[name], b.params[name])

    def test_sgd_momentum_state_restored(self, tmp_path):
        a = self._trainer(SGD(0.1, momentum=0.9))
        for i in range(3):
            a.step(self._feeds(i))
        save_checkpoint(tmp_path / "m.npz", a)
        b = self._trainer(SGD(0.1, momentum=0.9))
        load_checkpoint(tmp_path / "m.npz", b)
        ra, rb = a.step(self._feeds(7)), b.step(self._feeds(7))
        assert ra.loss == rb.loss

    def test_optimizer_mismatch_rejected(self, tmp_path):
        a = self._trainer(Adam(1e-2))
        a.step(self._feeds(0))
        save_checkpoint(tmp_path / "a.npz", a)
        b = self._trainer(SGD(0.1))
        with pytest.raises(ValueError, match="optimizer"):
            load_checkpoint(tmp_path / "a.npz", b)

    def test_shape_mismatch_rejected(self, tmp_path):
        a = self._trainer(SGD(0.1))
        a.step(self._feeds(0))
        save_checkpoint(tmp_path / "s.npz", a)
        cfg = WordLmConfig(
            vocab_size=40, embed_size=16, hidden_size=16, num_layers=1,
            seq_len=5, batch_size=4,
        )
        model = build_word_lm(cfg)
        b = Trainer(model.graph, model.store.initialize(), SGD(0.1))
        with pytest.raises(ValueError, match="mismatch"):
            load_checkpoint(tmp_path / "s.npz", b)

    def test_clock_restored(self, tmp_path):
        a = self._trainer(SGD(0.1))
        for i in range(4):
            a.step(self._feeds(i))
        save_checkpoint(tmp_path / "c.npz", a)
        b = self._trainer(SGD(0.1))
        load_checkpoint(tmp_path / "c.npz", b)
        record = b.step(self._feeds(9))
        assert record.samples_seen == 5 * 4
        assert record.sim_seconds > 4 * b.iteration_seconds * 0.99

    def _dropout_trainer(self):
        cfg = WordLmConfig(
            vocab_size=40, embed_size=8, hidden_size=8, num_layers=1,
            seq_len=5, batch_size=4, dropout=0.2,
        )
        model = build_word_lm(cfg)
        return Trainer(model.graph, model.store.initialize(), Adam(1e-2))

    def test_resume_with_dropout_is_bitwise_identical(self, tmp_path):
        """A resumed run must continue the dropout mask *sequence*.

        Masks are seeded by the executor iteration; the checkpoint
        persists it (``executor_iteration``). Without that, a resumed
        trainer replays the step-0 masks and its losses diverge from the
        uninterrupted run on the very first post-resume step.
        """
        a = self._dropout_trainer()
        for i in range(3):
            a.step(self._feeds(i))
        save_checkpoint(tmp_path / "d.npz", a)
        tail = [a.step(self._feeds(10 + i)) for i in range(3)]

        b = self._dropout_trainer()
        meta = load_checkpoint(tmp_path / "d.npz", b)
        assert meta["executor_iteration"] == 3
        for i, expect in enumerate(tail):
            record = b.step(self._feeds(10 + i))
            assert record.loss == expect.loss
        for name in a.params:
            np.testing.assert_array_equal(a.params[name], b.params[name])

    def test_save_is_atomic(self, tmp_path):
        """No temp droppings, and a failed save preserves the old file."""
        a = self._trainer(SGD(0.1))
        a.step(self._feeds(0))
        path = tmp_path / "atomic.npz"
        save_checkpoint(path, a)
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.npz"]
        before = path.read_bytes()

        # A crash mid-write (simulated: a param whose array conversion
        # raises) must leave the previous checkpoint byte-identical and
        # clean up its temp file.
        class _Explodes:
            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("simulated crash mid-save")

        a.params["__bad__"] = _Explodes()
        try:
            with pytest.raises(RuntimeError, match="mid-save"):
                save_checkpoint(path, a)
        finally:
            del a.params["__bad__"]
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.npz"]
        assert path.read_bytes() == before
