"""Unit tests for the graph IR: specs, nodes, scopes, traversal."""

import numpy as np
import pytest

import repro.ops as O
from repro.graph import (
    ShapeError,
    Stage,
    TensorSpec,
    broadcast_shapes,
    consumers_map,
    current_scope,
    scope,
    topo_order,
)


class TestTensorSpec:
    def test_basic_properties(self):
        spec = TensorSpec((2, 3), np.float32)
        assert spec.num_elements == 6
        assert spec.nbytes == 24
        assert spec.rank == 2

    def test_scalar(self):
        spec = TensorSpec(())
        assert spec.num_elements == 1
        assert spec.nbytes == 4

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((2, -1))

    def test_int64_itemsize(self):
        assert TensorSpec((4,), np.int64).nbytes == 32


class TestBroadcast:
    def test_matching(self):
        assert broadcast_shapes((2, 3), (2, 3)) == (2, 3)

    def test_scalar_vs_matrix(self):
        assert broadcast_shapes((), (2, 3)) == (2, 3)

    def test_expand_ones(self):
        assert broadcast_shapes((2, 1, 4), (3, 1)) == (2, 3, 4)

    def test_incompatible(self):
        with pytest.raises(ShapeError):
            broadcast_shapes((2, 3), (2, 4))


class TestScopes:
    def test_nesting(self):
        assert current_scope() == ""
        with scope("encoder"):
            with scope("rnn"):
                x = O.placeholder((2,), name="scoped")
                assert x.node.scope == "encoder/rnn"
            assert current_scope() == "encoder"
        assert current_scope() == ""

    def test_slash_rejected(self):
        with pytest.raises(ValueError):
            scope("a/b")

    def test_gradient_inherits_forward_scope(self):
        from repro.autodiff import build_gradients

        with scope("attention"):
            x = O.placeholder((3, 3), name="att_in")
            y = O.tanh(x)
        loss = O.reduce_sum(y)
        grads = build_gradients(loss, [x])
        g = grads[x.key]
        assert g is not None
        assert g.node.scope == "attention"
        assert g.node.stage is Stage.BACKWARD


class TestTraversal:
    def test_topo_order_valid(self):
        a = O.placeholder((2, 2), name="a")
        b = O.tanh(a)
        c = O.add(a, b)
        order = topo_order([c])
        pos = {n.uid: i for i, n in enumerate(order)}
        for node in order:
            for t in node.inputs:
                assert pos[t.node.uid] < pos[node.uid]

    def test_topo_order_deep_graph_no_recursion_error(self):
        x = O.placeholder((2,), name="deep")
        y = x
        for _ in range(5000):
            y = O.add_scalar(y, 1.0)
        assert len(topo_order([y])) == 5001

    def test_consumers_map(self):
        a = O.placeholder((2,), name="cm")
        b = O.tanh(a)
        c = O.add(a, b)
        cm = consumers_map(topo_order([c]))
        assert {n.uid for n in cm[a.key]} == {b.node.uid, c.node.uid}


class TestNodeConstruction:
    def test_shape_inference_error_surfaces(self):
        a = O.placeholder((2, 3), name="bad_a")
        b = O.placeholder((3, 2), name="bad_b")
        with pytest.raises(ShapeError):
            O.add(a, b)

    def test_multi_output_indexing(self):
        x = O.placeholder((2, 8), name="mo")
        parts = O.split(x, 4, axis=1)
        assert len(parts) == 4
        assert all(p.shape == (2, 2) for p in parts)
        assert len({p.index for p in parts}) == 4

    def test_dtype_mismatch_rejected(self):
        a = O.placeholder((2,), np.float32, name="dt_a")
        b = O.placeholder((2,), np.float64, name="dt_b")
        with pytest.raises(TypeError):
            O.add(a, b)
