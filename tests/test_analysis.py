"""Tests for the static-analysis subsystem (repro.analysis).

Three layers:
1. seeded-defect fixtures — hand-corrupted plans, schedules, and Echo
   regions, each caught with its expected finding code (the analyzers
   must *detect*, not just stay quiet on clean inputs);
2. clean-input checks — the shipped benchmark models, serial and
   wavefront-parallel, report zero errors end to end (CLI included);
3. the property test — randomized DAGs whose plans pass the lifetime
   sanitizer and race detector execute bitwise-identically serial vs.
   wavefront-parallel at 4 threads.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.ops as O
from repro.analysis import (
    CODES,
    AnalysisReport,
    Severity,
    check_lifetimes,
    check_plan_races,
    check_recompute_safety,
    check_schedule,
    labeled_edges,
    lint_graph,
    verify_plan,
)
from repro.analysis.lint import main as lint_main
from repro.analysis.verify import PlanVerificationError, assert_plan_safe
from repro.autodiff import compile_training
from repro.echo.pass_ import EchoPass
from repro.echo.rewrite import _clone_as_mirror
from repro.graph import Stage, Tensor
from repro.runtime import Arena, CompiledPlan, PlanCache, schedule
from repro.runtime.wavefront import InstrInfo, Wavefront, WavefrontSchedule


def _small_training_graph():
    """x,y -> elementwise + matmul mix with a real backward pass."""
    x = O.placeholder((4, 8), name="x")
    w = O.variable((8, 8), name="w")
    h = O.tanh(O.fully_connected(x, w))
    loss = O.reduce_mean(O.mul(h, h))
    return compile_training(loss, {"w": w}, {"x": x})


def _diamond_plan(fuse=False, threads=1, **kw):
    """add/sub both live into mul: two overlapping static live ranges."""
    x = O.placeholder((16, 16), name="x")
    y = O.placeholder((16, 16), name="y")
    a = O.add(x, y)
    b = O.sub(x, y)
    out = O.matmul(a, b)
    outputs = [out]
    order = schedule(outputs)
    plan = CompiledPlan(order, outputs, arena=Arena(), fuse=fuse,
                        threads=threads, **kw)
    return plan, order, outputs


def info(i, reads=(), writes=(), rb=(), wb=(), stage=Stage.FORWARD,
         cost=1.0):
    return InstrInfo(i, tuple(reads), tuple(writes), tuple(rb), tuple(wb),
                     stage, cost)


class TestFindingModel:
    def test_catalog_is_consistent(self):
        for code, (severity, desc) in CODES.items():
            assert code[:2] in ("IR", "LT", "RC", "EC", "MP", "DS", "EQ")
            assert isinstance(severity, Severity)
            assert desc

    def test_report_roundtrip_and_filtering(self):
        report = AnalysisReport()
        report.extend(lint_graph([Tensor(O.placeholder((2,), name="p_unused").node, 0)]))
        assert report.ok  # the placeholder is its own output: no findings
        payload = json.loads(report.to_json())
        assert payload["errors"] == 0
        filtered = report.without(["IR006"])
        assert isinstance(filtered, AnalysisReport)


class TestIrLint:
    def test_clean_graph(self):
        tg = _small_training_graph()
        assert lint_graph(tg.outputs) == []

    def test_cycle_detected(self):
        x = O.placeholder((4, 4), name="cx")
        a = O.add(x, x)
        b = O.mul(a, a)
        # Re-point a's input at b's output: a -> b -> a.
        a.node.inputs = (b, x)
        codes = {f.code for f in lint_graph([b])}
        assert "IR001" in codes

    def test_dangling_output_index(self):
        x = O.placeholder((4, 4), name="dx")
        a = O.add(x, x)
        a.node.inputs = (x, Tensor(x.node, 3))  # placeholder has 1 output
        codes = {f.code for f in lint_graph([a])}
        assert "IR002" in codes

    def test_shape_and_dtype_reinference(self):
        x = O.placeholder((4, 4), name="sx")
        a = O.add(x, x)
        from repro.graph import TensorSpec

        a.node.out_specs = (TensorSpec((4, 5)),)
        assert {f.code for f in lint_graph([a])} == {"IR003"}
        a.node.out_specs = (TensorSpec((4, 4), np.float64),)
        assert {f.code for f in lint_graph([a])} == {"IR004"}

    def test_forward_consuming_backward(self):
        x = O.placeholder((4, 4), name="fx")
        g = O.add(x, x)
        g.node.stage = Stage.BACKWARD
        y = O.mul(g, x)  # forward by default
        codes = {f.code for f in lint_graph([y])}
        assert "IR005" in codes

    def test_unused_source_warning(self):
        x = O.placeholder((4, 4), name="ux")
        unused = O.placeholder((4, 4), name="u_dead")
        out = O.add(x, x)
        findings = lint_graph([out], sources=[x, unused])
        assert [f.code for f in findings] == ["IR006"]
        assert findings[0].severity is Severity.WARNING
        assert "u_dead" in findings[0].message

    def test_duplicate_binding_names(self):
        x = O.placeholder((4, 4), name="dup_name")
        y = O.placeholder((4, 4), name="dup_name")
        out = O.add(x, y)
        codes = [f.code for f in lint_graph([out])]
        assert codes == ["IR007"]


class TestLifetimeSanitizer:
    def test_clean_plan(self):
        plan, _, _ = _diamond_plan()
        assert check_lifetimes(plan) == []

    def test_clean_fused_and_batched_nmt(self):
        from repro.models import NmtConfig, build_nmt

        cfg = NmtConfig(
            src_vocab_size=40, tgt_vocab_size=40, embed_size=16,
            hidden_size=16, encoder_layers=1, decoder_layers=1,
            src_len=4, tgt_len=4, batch_size=2,
        )
        tg = build_nmt(cfg).graph
        order = schedule(tg.outputs)
        plan = CompiledPlan(order, tg.outputs, arena=Arena(),
                            batch_gemms=True)
        assert check_lifetimes(plan) == []

    def test_corrupted_slot_assignment_is_lt103(self):
        # The seeded fixture from the issue: hand-corrupt the static slot
        # assignment so two concurrently-live values share one buffer.
        plan, _, _ = _diamond_plan()
        low = plan.lowering
        # add and sub results are both static and both live into matmul.
        static_roots = sorted(low.static_views)
        assert len(static_roots) >= 2
        r_a, r_b = static_roots[:2]
        low.static_views[r_b] = low.static_views[r_a]
        findings = check_lifetimes(plan)
        assert {f.code for f in findings} == {"LT103"}

    def test_premature_free_is_lt102(self):
        plan, _, _ = _diamond_plan()
        low = plan.lowering
        # Take the latest-freed slot and free it before instruction 0.
        idx = max(low.frees_at)
        assert idx > 0
        entry = low.frees_at.pop(idx)
        low.frees_at.setdefault(0, []).extend(entry)
        codes = {f.code for f in check_lifetimes(plan)}
        assert "LT102" in codes

    def test_undefined_read_is_lt101(self):
        plan, _, _ = _diamond_plan()
        low = plan.lowering
        low.descs[-1]["in_slots"] = tuple(low.descs[-1]["in_slots"]) + (999,)
        codes = {f.code for f in check_lifetimes(plan)}
        assert "LT101" in codes

    def test_static_output_is_lt104(self):
        plan, _, _ = _diamond_plan()
        low = plan.lowering
        out_slot = next(iter(low.output_slots))
        donor = next(iter(low.static_views.values()))
        low.static_views[low.root[out_slot]] = donor
        codes = {f.code for f in check_lifetimes(plan)}
        assert "LT104" in codes

    def test_dropped_free_is_lt105_warning(self):
        plan, _, _ = _diamond_plan()
        low = plan.lowering
        idx, entry = next(iter(low.frees_at.items()))
        slot = entry[0][0]
        low.frees_at[idx] = entry[1:]
        findings = check_lifetimes(plan)
        assert any(
            f.code == "LT105" and f.slot == slot
            and f.severity is Severity.WARNING
            for f in findings
        )


class TestRaceDetector:
    def test_hazard_edges_labeled(self):
        infos = [
            info(0, writes=[0], wb=[100]),
            info(1, reads=[0], writes=[1], rb=[100], wb=[200]),
            info(2, writes=[2], wb=[100]),
        ]
        kinds = {(p, s, k) for p, s, k, _ in labeled_edges(infos)}
        assert (0, 1, "raw") in kinds
        assert (1, 2, "war") in kinds  # 2 overwrites base 100 after 1 read it
        assert (0, 2, "waw") in kinds

    def test_clean_schedule(self):
        infos = [
            info(0, writes=[0], wb=[100]),
            info(1, writes=[1], wb=[200]),
            info(2, reads=[0, 1], writes=[2], rb=[100, 200], wb=[300]),
        ]
        sched = WavefrontSchedule(
            levels=[Wavefront([0, 1], 2.0, True), Wavefront([2], 1.0, False)],
            region_count=1,
        )
        assert check_schedule(infos, sched) == []

    def test_removed_hazard_edge_is_caught(self):
        # The seeded fixture from the issue: a schedule built as if the
        # WAW storage hazard between 0 and 1 had been dropped.
        infos = [
            info(0, writes=[0], wb=[100]),
            info(1, writes=[1], wb=[100]),  # same raw buffer
            info(2, reads=[0, 1], writes=[2], rb=[100], wb=[300]),
        ]
        racy = WavefrontSchedule(
            levels=[Wavefront([0, 1], 2.0, True), Wavefront([2], 1.0, False)],
            region_count=1,
        )
        findings = check_schedule(infos, racy)
        assert {f.code for f in findings} == {"RC201"}
        assert findings[0].instr == 1

    def test_read_write_conflict_is_rc202(self):
        infos = [
            info(0, writes=[0], wb=[100]),
            info(1, reads=[0], writes=[1], rb=[100], wb=[200]),
            info(2, writes=[2], wb=[100]),
        ]
        racy = WavefrontSchedule(
            levels=[Wavefront([0], 1.0, False), Wavefront([1, 2], 2.0, True)],
            region_count=1,
        )
        codes = {f.code for f in check_schedule(infos, racy)}
        assert "RC202" in codes

    def test_value_dependency_in_level_is_rc204(self):
        infos = [
            info(0, writes=[0]),
            info(1, reads=[0], writes=[1]),
        ]
        racy = WavefrontSchedule(
            levels=[Wavefront([0, 1], 2.0, True)], region_count=1
        )
        codes = {f.code for f in check_schedule(infos, racy)}
        assert codes == {"RC204"}

    def test_stage_mixing_is_rc203(self):
        infos = [
            info(0, writes=[0], stage=Stage.FORWARD),
            info(1, writes=[1], stage=Stage.BACKWARD),
        ]
        sched = WavefrontSchedule(
            levels=[Wavefront([0, 1], 2.0, True)], region_count=2
        )
        codes = {f.code for f in check_schedule(infos, sched)}
        assert "RC203" in codes

    def test_coverage_violations_are_rc205(self):
        infos = [info(0, writes=[0]), info(1, writes=[1])]
        missing = WavefrontSchedule(
            levels=[Wavefront([0], 1.0, False)], region_count=1
        )
        assert {f.code for f in check_schedule(infos, missing)} == {"RC205"}
        duplicated = WavefrontSchedule(
            levels=[
                Wavefront([0, 1], 2.0, False),
                Wavefront([1], 1.0, False),
            ],
            region_count=1,
        )
        assert {f.code for f in check_schedule(infos, duplicated)} == {"RC205"}

    def test_happens_before_inversion_is_rc206(self):
        infos = [
            info(0, writes=[0]),
            info(1, reads=[0], writes=[1]),
        ]
        inverted = WavefrontSchedule(
            levels=[Wavefront([1], 1.0, False), Wavefront([0], 1.0, False)],
            region_count=1,
        )
        codes = {f.code for f in check_schedule(infos, inverted)}
        assert codes == {"RC206"}

    def test_serial_plan_probe_is_clean(self):
        plan, _, _ = _diamond_plan()
        assert check_plan_races(plan) == []

    def test_parallel_plan_stored_schedule_is_clean(self):
        from repro.models import NmtConfig, build_nmt

        cfg = NmtConfig(
            src_vocab_size=40, tgt_vocab_size=40, embed_size=16,
            hidden_size=16, encoder_layers=1, decoder_layers=1,
            src_len=4, tgt_len=4, batch_size=2,
        )
        tg = build_nmt(cfg).graph
        order = schedule(tg.outputs)
        plan = CompiledPlan(order, tg.outputs, arena=Arena(), threads=4)
        assert check_plan_races(plan) == []


class TestRecomputeChecker:
    def _mirrored_dropout_order(self):
        """A hand-built forward + mirror + backward-consumer schedule."""
        x = O.placeholder((8, 8), name="rx")
        y = O.dropout(x, 0.5, seed=O.stable_seed("test", 0))
        fwd = y.node
        mirror = _clone_as_mirror(fwd, {})
        grad = O.mul(Tensor(mirror, 1), x)
        grad.node.stage = Stage.BACKWARD
        order = [x.node, fwd, mirror, grad.node]
        return order, fwd, mirror, grad.node

    def test_clean_mirrored_region(self):
        order, _, _, _ = self._mirrored_dropout_order()
        assert check_recompute_safety(order) == []

    def test_provenance_attrs_do_not_trip_ec304(self):
        # echo/manual.py pops its scheduling marker from originals but
        # mirrors keep the copy; kernels never read it, so EC304 must
        # ignore it (found and triaged on tests/test_echo_manual.py).
        order, _, mirror, _ = self._mirrored_dropout_order()
        mirror.attrs["echo_manual_recompute"] = True
        assert check_recompute_safety(order) == []

    def test_unseeded_dropout_is_ec303(self):
        # The seeded fixture from the issue: an Echo region containing a
        # dropout whose seed was lost (None instead of a stable int).
        order, _, mirror, _ = self._mirrored_dropout_order()
        mirror.attrs["seed"] = None
        codes = {f.code for f in check_recompute_safety(order)}
        assert "EC303" in codes
        assert "EC304" in codes  # attrs now differ from the original's

    def test_backward_input_is_ec301(self):
        order, _, mirror, consumer = self._mirrored_dropout_order()
        mirror.inputs = (Tensor(consumer, 0),)
        codes = {f.code for f in check_recompute_safety(order)}
        assert "EC301" in codes

    def test_mirror_divergence_is_ec302(self):
        order, _, mirror, _ = self._mirrored_dropout_order()
        mirror.mirror_of = None
        codes = {f.code for f in check_recompute_safety(order)}
        assert "EC302" in codes

    def test_forward_consuming_recompute_is_ec305(self):
        order, _, mirror, _ = self._mirrored_dropout_order()
        leak = O.add(Tensor(mirror, 0), Tensor(mirror, 0))  # forward stage
        order.append(leak.node)
        codes = {f.code for f in check_recompute_safety(order)}
        assert "EC305" in codes

    def test_dead_mirror_is_ec306_warning(self):
        order, _, mirror, consumer = self._mirrored_dropout_order()
        x_node = order[0]
        consumer.inputs = (Tensor(x_node, 0), Tensor(x_node, 0))
        findings = check_recompute_safety(order)
        assert [f.code for f in findings] == ["EC306"]
        assert findings[0].severity is Severity.WARNING

    def test_schedule_inversion_is_ec307(self):
        order, fwd, mirror, _ = self._mirrored_dropout_order()
        order[0], order[1] = order[1], order[0]  # dropout before its input
        codes = {f.code for f in check_recompute_safety(order)}
        assert "EC307" in codes

    def test_missing_producer_is_ec308(self):
        order, _, _, _ = self._mirrored_dropout_order()
        del order[0]
        codes = {f.code for f in check_recompute_safety(order)}
        assert "EC308" in codes

    def test_echo_rewritten_model_is_clean(self):
        tg = _small_training_graph()
        EchoPass(plan_cache=PlanCache()).run(tg)
        order = schedule(tg.outputs)
        findings = check_recompute_safety(
            order, {t.key for t in tg.outputs}
        )
        assert [f for f in findings if f.severity is Severity.ERROR] == []


class TestVerifyFacade:
    def test_verify_plan_clean_end_to_end(self):
        tg = _small_training_graph()
        order = schedule(tg.outputs)
        plan = CompiledPlan(order, tg.outputs, arena=Arena())
        report = verify_plan(plan)
        assert report.ok and not report.findings

    def test_assert_plan_safe_raises_with_report(self):
        plan, _, _ = _diamond_plan()
        low = plan.lowering
        static_roots = sorted(low.static_views)
        low.static_views[static_roots[1]] = low.static_views[static_roots[0]]
        with pytest.raises(PlanVerificationError) as exc_info:
            assert_plan_safe(plan)
        assert "LT103" in str(exc_info.value)
        assert exc_info.value.report.codes() == {"LT103"}
        # Triaged suppression lets the same plan through.
        report = assert_plan_safe(plan, ignore=["LT103"])
        assert report.ok

    def test_plancache_guard_runs_on_miss_only(self, monkeypatch):
        import repro.analysis.verify as verify_mod

        calls = []
        real = verify_mod.assert_plan_safe
        monkeypatch.setattr(
            verify_mod, "assert_plan_safe",
            lambda plan, **kw: calls.append(plan) or real(plan, **kw),
        )
        monkeypatch.setenv("REPRO_VERIFY", "1")
        x = O.placeholder((4, 4), name="gx")
        outputs = [O.tanh(O.add(x, x))]
        cache = PlanCache()
        arena = Arena()
        plan = cache.compiled_for(outputs, arena)
        assert calls == [plan]
        cache.compiled_for(outputs, arena)  # cache hit: no re-verification
        assert calls == [plan]

    def test_plancache_guard_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        import repro.analysis.verify as verify_mod

        monkeypatch.setattr(
            verify_mod, "assert_plan_safe",
            lambda *a, **k: pytest.fail("guard ran with REPRO_VERIFY unset"),
        )
        x = O.placeholder((4, 4), name="hx")
        PlanCache().compiled_for([O.add(x, x)], Arena())

    def test_executor_verify_method(self):
        from repro.runtime import GraphExecutor

        tg = _small_training_graph()
        ex = GraphExecutor(tg.outputs, threads=1)
        report = ex.verify()
        assert report.ok


class TestLintCli:
    def test_json_output_clean(self, capsys):
        rc = lint_main(["--model", "nmt", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["model"] == "nmt"
        assert payload[0]["errors"] == 0

    def test_broken_model_fails(self, capsys, monkeypatch):
        from repro.analysis import lint as lint_cli
        from repro.autodiff.training import TrainingGraph

        def broken():
            a = O.placeholder((2, 2), name="clash")
            b = O.placeholder((2, 2), name="clash")
            out = O.add(a, b)
            return (
                TrainingGraph(
                    loss=out, placeholders={"clash": a}, params={},
                    grads={},
                ),
                "broken fixture",
            )

        monkeypatch.setitem(lint_cli._MODELS, "broken", broken)
        rc = lint_main(["--model", "broken", "--no-echo"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "IR007" in out
        # Suppressing the triaged code flips the verdict.
        rc = lint_main(["--model", "broken", "--no-echo", "--ignore", "IR007"])
        assert rc == 0


OPS2 = [O.add, O.mul, O.sub, O.matmul]
OPS1 = [O.tanh, O.sigmoid, O.relu]


@st.composite
def random_dag_program(draw):
    """A random DAG builder recipe: list of (kind, op_idx, a, b) picks."""
    n_steps = draw(st.integers(min_value=3, max_value=14))
    steps = []
    for i in range(n_steps):
        binary = draw(st.booleans())
        pool = 2 + i  # placeholders + prior steps
        if binary:
            op = draw(st.integers(0, len(OPS2) - 1))
            a = draw(st.integers(0, pool - 1))
            b = draw(st.integers(0, pool - 1))
            steps.append(("bin", op, a, b))
        else:
            op = draw(st.integers(0, len(OPS1) - 1))
            a = draw(st.integers(0, pool - 1))
            steps.append(("un", op, a, 0))
    return steps


class _UnitCostDevice:
    """Prices every node at one simulated second, defeating the cost gate
    so the wavefront planner parallelizes every eligible level."""

    def node_cost(self, node):
        class _C:
            kernel_seconds = 1.0

        return _C()


class TestSerialParallelProperty:
    @settings(max_examples=20, deadline=None)
    @given(program=random_dag_program(), seed=st.integers(0, 2**16))
    def test_verified_plans_execute_bitwise_identically(self, program, seed):
        x = O.placeholder((6, 6), name="pa")
        y = O.placeholder((6, 6), name="pb")
        values = [x, y]
        for kind, op, a, b in program:
            if kind == "bin":
                values.append(OPS2[op](values[a], values[b]))
            else:
                values.append(OPS1[op](values[a]))
        out = O.reduce_mean(values[-1])
        outputs = [out, values[-1]]
        order = schedule(outputs)

        serial = CompiledPlan(order, outputs, arena=Arena(), threads=1)
        parallel = CompiledPlan(
            order, outputs, arena=Arena(), threads=4,
            device=_UnitCostDevice(),
        )

        # The property's precondition: both plans pass the lifetime
        # sanitizer and the race detector (and the graph lints clean).
        assert lint_graph(outputs) == []
        for plan in (serial, parallel):
            assert check_lifetimes(plan) == []
            assert check_plan_races(plan) == []

        rng = np.random.default_rng(seed)
        feeds = {
            "pa": rng.standard_normal((6, 6)).astype(np.float32),
            "pb": rng.standard_normal((6, 6)).astype(np.float32),
        }
        res_s = serial.run(feeds)
        res_p = parallel.run(feeds)
        for arr_s, arr_p in zip(res_s, res_p):
            assert arr_s.dtype == arr_p.dtype
            assert np.array_equal(arr_s, arr_p)

    def test_unit_cost_device_forces_parallelism(self):
        # Guard against the property silently degrading to serial-only.
        x = O.placeholder((6, 6), name="wa")
        y = O.placeholder((6, 6), name="wb")
        outputs = [O.matmul(O.add(x, y), O.sub(x, y))]
        order = schedule(outputs)
        plan = CompiledPlan(
            order, outputs, arena=Arena(), threads=4,
            device=_UnitCostDevice(),
        )
        assert plan.parallel_level_count >= 1
