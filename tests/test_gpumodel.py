"""Tests for the GPU device & cost model (the silicon substitute)."""


import repro.ops as O
from repro.gpumodel import (
    ALL_DEVICES,
    RTX_2080_TI,
    TITAN_V,
    TITAN_XP,
    DeviceModel,
    estimate_gemm,
    gemm_efficiency,
)


class TestDeviceSpecs:
    def test_capacities_match_products(self):
        assert TITAN_XP.dram_capacity == 12 * 1024**3
        assert RTX_2080_TI.dram_capacity == 11 * 1024**3

    def test_newer_devices_are_faster(self):
        assert TITAN_V.peak_flops > TITAN_XP.peak_flops
        assert TITAN_V.dram_bandwidth > TITAN_XP.dram_bandwidth

    def test_all_devices_registered(self):
        assert len(ALL_DEVICES) == 3
        assert len({d.name for d in ALL_DEVICES}) == 3


class TestGemmModel:
    def _est(self, m, n, k, **kw):
        return estimate_gemm(
            TITAN_XP.peak_flops, TITAN_XP.dram_bandwidth, TITAN_XP.l2_bytes,
            m, n, k, **kw,
        )

    def test_time_monotone_in_work(self):
        small = self._est(128, 128, 128)
        big = self._est(512, 512, 512)
        assert big.seconds > small.seconds

    def test_large_square_gemm_near_peak(self):
        est = self._est(4096, 4096, 4096)
        assert est.achieved_fraction > 0.75
        ideal = 2 * 4096**3 / TITAN_XP.peak_flops
        assert est.seconds < 2.2 * ideal

    def test_never_faster_than_memory_bound(self):
        for dims in [(64, 2048, 512), (2048, 64, 512), (16, 16, 4096)]:
            est = self._est(*dims)
            min_bytes = 4 * (dims[0] * dims[2] + dims[2] * dims[1]
                             + dims[0] * dims[1])
            assert est.seconds >= min_bytes / TITAN_XP.dram_bandwidth

    def test_figure9_calibration_points(self):
        """The published layout ratios the model is calibrated against."""
        lstm_row = self._est(64, 2048, 512)
        lstm_col = self._est(2048, 64, 512)
        assert 1.6 < lstm_row.seconds / lstm_col.seconds < 2.4
        gru_row = self._est(64, 3072, 1024)
        gru_col = self._est(3072, 64, 1024)
        assert 1.15 < gru_row.seconds / gru_col.seconds < 1.7

    def test_batched_gemm_scales_with_batch(self):
        # Sublinear in batch: the fixed kernel cost amortizes, which is
        # the whole point of batched GEMM.
        single = self._est(64, 64, 256, batch=1)
        batched = self._est(64, 64, 256, batch=8)
        assert 2 < batched.seconds / max(single.seconds, 1e-12) < 8

    def test_gemv_shapes_bandwidth_bound(self):
        est = self._est(1, 512, 2048)
        bytes_moved = 4 * (512 * 2048 + 2048 + 512)
        bound = bytes_moved / TITAN_XP.dram_bandwidth
        assert est.seconds < 3 * bound

    def test_efficiency_in_unit_interval(self):
        for m, n, k in [(1, 1, 1), (64, 64, 64), (8192, 8192, 8192)]:
            assert 0 < gemm_efficiency(m, n, k) <= 0.95


class TestNodeCosting:
    def test_views_are_free(self):
        device = DeviceModel()
        x = O.placeholder((4, 4), name="nc_x")
        cost = device.node_cost(O.reshape(x, (16,)).node)
        assert cost.kernel_seconds == 0.0
        assert cost.api_seconds == 0.0

    def test_sources_are_free(self):
        device = DeviceModel()
        x = O.placeholder((4, 4), name="nc_src")
        assert device.node_cost(x.node).kernel_seconds == 0.0

    def test_elementwise_scales_with_bytes(self):
        device = DeviceModel()
        small = O.tanh(O.placeholder((128, 128), name="nc_s"))
        large = O.tanh(O.placeholder((2048, 2048), name="nc_l"))
        t_small = device.node_cost(small.node).kernel_seconds
        t_large = device.node_cost(large.node).kernel_seconds
        assert t_large > 10 * t_small

    def test_small_kernels_pay_wave_latency(self):
        """Per-sample cost falls as kernels grow (the Figure 4b driver)."""
        device = DeviceModel()
        t1 = device.node_cost(
            O.tanh(O.placeholder((64, 512), name="nc_w1")).node
        ).kernel_seconds
        t2 = device.node_cost(
            O.tanh(O.placeholder((128, 512), name="nc_w2")).node
        ).kernel_seconds
        assert t2 < 2 * t1  # sublinear in size

    def test_sequential_sequence_reverse_pathology(self):
        device = DeviceModel()
        x = O.placeholder((50, 64, 512), name="nc_sr")
        slow = device.node_cost(O.sequence_reverse(x, parallel=False).node)
        fast = device.node_cost(O.sequence_reverse(x, parallel=True).node)
        assert slow.kernel_seconds > 100 * fast.kernel_seconds
        assert slow.launches > fast.launches

    def test_fused_lstm_one_launch(self):
        device = DeviceModel()
        g = O.placeholder((64, 2048), name="nc_g")
        c = O.placeholder((64, 512), name="nc_c")
        h, _ = O.lstm_gates(g, c)
        assert device.node_cost(h.node).launches == 1

    def test_gemm_layout_affects_cost_not_result(self):
        from repro.layout import Layout

        device = DeviceModel()
        x = O.placeholder((64, 512), name="nc_fx")
        w = O.variable((2048, 512), name="nc_fw")
        row = O.fully_connected(x, w, layout=Layout.ROW_MAJOR)
        col = O.fully_connected(x, w, layout=Layout.COL_MAJOR)
        t_row = device.node_cost(row.node).kernel_seconds
        t_col = device.node_cost(col.node).kernel_seconds
        assert t_row > 1.5 * t_col


class TestPowerModel:
    def test_power_within_board_limits(self):
        device = DeviceModel()
        for busy in (0.0, 0.5, 1.0):
            p = device.power_watts(busy)
            assert TITAN_XP.idle_power_watts <= p <= TITAN_XP.max_power_watts

    def test_power_nearly_flat(self):
        """The paper's Figure 19a: power varies little across configs."""
        device = DeviceModel()
        assert device.power_watts(1.0) / device.power_watts(0.5) < 1.35

    def test_energy_proportional_to_time(self):
        device = DeviceModel()
        e1 = device.energy_joules(0.8, 100.0)
        e2 = device.energy_joules(0.8, 200.0)
        assert abs(e2 / e1 - 2.0) < 1e-9

    def test_out_of_range_busy_clamped(self):
        device = DeviceModel()
        assert device.power_watts(-1.0) == device.power_watts(0.0)
        assert device.power_watts(2.0) == device.power_watts(1.0)
