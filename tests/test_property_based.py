"""Property-based tests (hypothesis) on the core invariants.

These exercise the substrate and the Echo pass on *generated* structures,
not just the hand-built models: shape inference against numpy, allocator
conservation laws, scheduler validity under random priorities, and the
pass's two guarantees (numerics preserved bitwise, footprint never worse)
on randomized O-shape graphs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.ops as O
from repro.autodiff import compile_training
from repro.echo import EchoConfig, optimize
from repro.graph import ShapeError, broadcast_shapes
from repro.graph.shapes import reduced_shape
from repro.runtime import (
    Category,
    GraphExecutor,
    TrainingExecutor,
    plan_memory,
    schedule,
    validate_schedule,
)
from repro.train.metrics import corpus_bleu

# -- strategies --------------------------------------------------------------

dims = st.integers(min_value=1, max_value=6)
shapes = st.lists(dims, min_size=0, max_size=4).map(tuple)


@st.composite
def broadcastable_pairs(draw):
    """Two shapes that numpy can broadcast together."""
    base = draw(st.lists(dims, min_size=1, max_size=4))
    a = list(base)
    b = list(base)
    for i in range(len(base)):
        which = draw(st.integers(0, 2))
        if which == 0:
            a[i] = 1
        elif which == 1:
            b[i] = 1
    cut = draw(st.integers(0, len(base)))
    return tuple(a), tuple(b[cut:])


# -- shape inference ----------------------------------------------------------


class TestShapeProperties:
    @given(broadcastable_pairs())
    def test_broadcast_matches_numpy(self, pair):
        a, b = pair
        ours = broadcast_shapes(a, b)
        theirs = np.broadcast_shapes(a, b)
        assert ours == theirs

    @given(shapes, shapes)
    def test_broadcast_agrees_with_numpy_on_errors(self, a, b):
        try:
            theirs = np.broadcast_shapes(a, b)
        except ValueError:
            theirs = None
        try:
            ours = broadcast_shapes(a, b)
        except ShapeError:
            ours = None
        assert ours == theirs

    @given(st.lists(dims, min_size=1, max_size=4).map(tuple),
           st.integers(-4, 3), st.booleans())
    def test_reduced_shape_matches_numpy(self, shape, axis, keepdims):
        if not -len(shape) <= axis < len(shape):
            return
        arr = np.zeros(shape)
        expected = np.sum(arr, axis=axis, keepdims=keepdims).shape
        assert reduced_shape(shape, axis, keepdims) == expected


# -- random elementwise graphs: execution + gradients -------------------------


@st.composite
def random_expression(draw):
    """A random scalar-valued expression over two placeholders."""
    a = O.placeholder((3, 4), np.float64, name="pb_a")
    b = O.placeholder((3, 4), np.float64, name="pb_b")
    pool = [a, b]
    num_ops = draw(st.integers(1, 8))
    for _ in range(num_ops):
        kind = draw(st.integers(0, 5))
        x = draw(st.sampled_from(pool))
        y = draw(st.sampled_from(pool))
        if kind == 0:
            pool.append(O.add(x, y))
        elif kind == 1:
            pool.append(O.mul(x, y))
        elif kind == 2:
            pool.append(O.sub(x, y))
        elif kind == 3:
            pool.append(O.tanh(x))
        elif kind == 4:
            pool.append(O.sigmoid(x))
        else:
            pool.append(O.mul_scalar(x, draw(st.floats(-2, 2))))
    return a, b, O.reduce_mean(pool[-1])


class TestRandomGraphs:
    @given(random_expression(), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_execution_deterministic_and_finite(self, expr, seed):
        a, b, out = expr
        gen = np.random.default_rng(seed)
        feeds = {
            "pb_a": gen.standard_normal((3, 4)),
            "pb_b": gen.standard_normal((3, 4)),
        }
        ex = GraphExecutor([out])
        v1 = ex.run(feeds).outputs[0]
        v2 = ex.run(feeds).outputs[0]
        assert np.isfinite(v1)
        assert v1 == v2

    @given(random_expression())
    @settings(max_examples=20, deadline=None)
    def test_schedule_always_valid(self, expr):
        _a, _b, out = expr
        validate_schedule(schedule([out]))


# -- memory planner conservation laws ------------------------------------------


class TestAllocatorProperties:
    @given(random_expression())
    @settings(max_examples=20, deadline=None)
    def test_timeline_nonnegative_and_peak_consistent(self, expr):
        _a, _b, out = expr
        order = schedule([out])
        plan = plan_memory(order, [out])
        assert all(v >= 0 for v in plan.timeline)
        assert plan.peak_bytes == max(plan.timeline)
        assert sum(plan.peak_by_category.values()) == plan.peak_bytes

    @given(random_expression())
    @settings(max_examples=20, deadline=None)
    def test_lifetimes_cover_all_uses(self, expr):
        _a, _b, out = expr
        order = schedule([out])
        plan = plan_memory(order, [out])
        position = {n.uid: i for i, n in enumerate(order)}
        for node in order:
            for t in node.inputs:
                life = plan.lifetimes[t.key]
                assert life.alloc_step <= position[node.uid] <= life.free_step

    @given(random_expression())
    @settings(max_examples=20, deadline=None)
    def test_peak_bounded_by_total_allocation(self, expr):
        _a, _b, out = expr
        order = schedule([out])
        plan = plan_memory(order, [out])
        total = sum(life.nbytes for life in plan.lifetimes.values())
        assert plan.peak_bytes <= total + plan.workspace_pool_hwm


# -- Echo on randomized O-shape graphs ----------------------------------------


@st.composite
def o_shape_training_graph(draw):
    """Random number of attention-like steps with random interior depth."""
    steps = draw(st.integers(2, 5))
    depth = draw(st.integers(1, 3))
    batch, seq, hidden = 4, draw(st.integers(4, 10)), 8
    keys = O.placeholder((batch, seq, hidden), name="pb_keys")
    w = O.variable((hidden, hidden), name="pb_w")
    v = O.variable((1, hidden), name="pb_v")
    queries = [
        O.placeholder((batch, hidden), name=f"pb_q{t}") for t in range(steps)
    ]
    total = None
    for t in range(steps):
        q_proj = O.fully_connected(queries[t], w)
        interior = O.add(O.expand_dims(q_proj, 1), keys)
        for _ in range(depth):
            interior = O.tanh(interior)
        flat = O.reshape(interior, (batch * seq, hidden))
        scores = O.fully_connected(flat, v)
        total = scores if total is None else O.add(total, scores)
    loss = O.reduce_mean(total)
    placeholders = {"pb_keys": keys}
    placeholders.update(
        {f"pb_q{t}": q for t, q in enumerate(queries)}
    )
    graph = compile_training(loss, {"pb_w": w, "pb_v": v}, placeholders)
    return graph, steps, seq, batch, hidden


class TestEchoProperties:
    @given(o_shape_training_graph(), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_numerics_bitwise_preserved(self, built, seed):
        graph, steps, seq, batch, hidden = built
        gen = np.random.default_rng(seed)
        feeds = {"pb_keys": gen.standard_normal((batch, seq, hidden))
                 .astype(np.float32)}
        for t in range(steps):
            feeds[f"pb_q{t}"] = gen.standard_normal(
                (batch, hidden)).astype(np.float32)
        params = {
            "pb_w": gen.standard_normal((hidden, hidden)).astype(np.float32),
            "pb_v": gen.standard_normal((1, hidden)).astype(np.float32),
        }
        before = TrainingExecutor(graph)
        l0, g0, _ = before.run(feeds, params)
        optimize(graph, EchoConfig(overhead_budget_fraction=0.5))
        after = TrainingExecutor(graph)
        l1, g1, _ = after.run(feeds, params)
        assert l0 == l1
        for k in g0:
            np.testing.assert_array_equal(g0[k], g1[k])

    @given(o_shape_training_graph())
    @settings(max_examples=15, deadline=None)
    def test_footprint_never_increases(self, built):
        graph = built[0]
        report = optimize(graph, EchoConfig(overhead_budget_fraction=0.5))
        assert report.optimized_peak_bytes <= report.baseline_peak_bytes
        validate_schedule(schedule(graph.outputs))

    @given(o_shape_training_graph())
    @settings(max_examples=10, deadline=None)
    def test_mirror_outputs_are_workspace(self, built):
        graph = built[0]
        optimize(graph, EchoConfig(overhead_budget_fraction=0.5))
        order = schedule(graph.outputs)
        plan = plan_memory(order, graph.outputs)
        from repro.graph import Stage

        for node in order:
            if node.stage is Stage.RECOMPUTE:
                for i in range(len(node.out_specs)):
                    life = plan.lifetimes[(node.uid, i)]
                    assert life.category is Category.WORKSPACE


# -- metric properties ---------------------------------------------------------

token_lists = st.lists(
    st.lists(st.integers(3, 20), min_size=1, max_size=12),
    min_size=1,
    max_size=6,
)


class TestBleuProperties:
    @given(token_lists)
    def test_perfect_match_scores_100(self, sentences):
        assert corpus_bleu(sentences, sentences, smooth=False) == 100.0

    @given(token_lists)
    def test_range(self, sentences):
        shifted = [[t + 1 for t in s] for s in sentences]
        score = corpus_bleu(shifted, sentences)
        assert 0.0 <= score <= 100.0

    @given(token_lists)
    def test_disjoint_vocab_scores_zero_unsmoothed(self, sentences):
        disjoint = [[t + 100 for t in s] for s in sentences]
        assert corpus_bleu(disjoint, sentences, smooth=False) == 0.0


# -- compiled-plan fusion properties ------------------------------------------

_CHAIN_UNARY = ["tanh", "sigmoid", "relu", "neg", "add_scalar", "mul_scalar",
                "rsub_scalar", "dropout"]
_CHAIN_BINARY = ["add", "mul", "sub"]


@st.composite
def elementwise_chains(draw):
    """A random elementwise/activation program over broadcastable inputs.

    Returns (steps, input_shapes): each step is ("unary", name) applied to
    the running value, or ("binary", name, input_index) combining it with
    one of the graph inputs (possibly of broadcast shape).
    """
    shapes = [(3, 4), draw(st.sampled_from([(3, 4), (1, 4), (3, 1), ()]))]
    n = draw(st.integers(2, 8))
    steps = []
    for _ in range(n):
        if draw(st.booleans()):
            steps.append(("unary", draw(st.sampled_from(_CHAIN_UNARY))))
        else:
            steps.append((
                "binary",
                draw(st.sampled_from(_CHAIN_BINARY)),
                draw(st.integers(0, len(shapes) - 1)),
            ))
    return steps, shapes


def _build_chain(steps, placeholders):
    cur = placeholders[0]
    for k, step in enumerate(steps):
        if step[0] == "unary":
            name = step[1]
            if name == "add_scalar":
                cur = O.add_scalar(cur, 0.5)
            elif name == "mul_scalar":
                cur = O.mul_scalar(cur, 1.25)
            elif name == "rsub_scalar":
                cur = O.rsub_scalar(cur, 1.0)
            elif name == "neg":
                cur = O.neg(cur)
            elif name == "dropout":
                cur = O.dropout(cur, 0.4, seed=17 + k)
            else:
                cur = getattr(O, name)(cur)
        else:
            _, name, idx = step
            cur = getattr(O, name)(cur, placeholders[idx])
    return O.reduce_sum(O.mul(cur, cur))


class TestFusedExecutionProperties:
    """Compiled (fused, arena-reusing) execution is bitwise-identical to
    the interpreted baseline on random elementwise/activation chains —
    outputs AND gradients, including broadcast and step-seeded dropout."""

    @settings(max_examples=30, deadline=None)
    @given(elementwise_chains(), st.integers(0, 2**31 - 1))
    def test_fused_matches_unfused_bitwise(self, chain, seed):
        from repro.autodiff import build_gradients
        from repro.runtime import PlanCache

        steps, shapes = chain
        placeholders = [
            O.placeholder(s, np.float64, name=f"pb_in{i}")
            for i, s in enumerate(shapes)
        ]
        loss = _build_chain(steps, placeholders)
        grad_map = build_gradients(loss, placeholders)
        grads = [g for g in grad_map.values() if g is not None]
        outputs = [loss, *grads]

        rng = np.random.default_rng(seed)
        feeds = {
            f"pb_in{i}": rng.standard_normal(s) for i, s in enumerate(shapes)
        }

        compiled = GraphExecutor(outputs, plan_cache=PlanCache())
        interp = GraphExecutor(outputs, plan_cache=PlanCache())
        for _ in range(2):  # two iterations: dropout steps must track
            got = compiled.run(feeds).outputs
            want = interp.run_interpreted(feeds).outputs
            for a, b in zip(want, got):
                assert a.dtype == b.dtype
                assert a.shape == b.shape
                assert np.array_equal(a, b), "fused result diverged"
