"""Shared test utilities: numerical gradient checking against autodiff."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

import repro.ops as O
from repro.autodiff import build_gradients
from repro.graph import Tensor
from repro.runtime import GraphExecutor


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def check_gradients(
    build: Callable[[Sequence[Tensor]], Tensor],
    input_arrays: Sequence[np.ndarray],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    seed: int = 0,
) -> None:
    """Verify autodiff gradients of ``build(inputs) -> output tensor``.

    Inputs are float64 placeholders; the output is contracted with a fixed
    random cotangent to produce a scalar, whose gradient is compared to
    central differences.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in input_arrays]
    placeholders = [
        O.placeholder(a.shape, np.float64, name=f"gc_in{i}")
        for i, a in enumerate(arrays)
    ]
    out = build(placeholders)
    cotangent = rng(seed).standard_normal(out.shape)
    weights = O.constant(cotangent.astype(np.float64))
    loss = O.reduce_sum(O.mul(out, weights)) if out.shape else O.mul(out, weights)

    grad_map = build_gradients(loss, placeholders)
    grad_tensors = [grad_map[p.key] for p in placeholders]
    missing = [i for i, g in enumerate(grad_tensors) if g is None]
    assert not missing, f"no gradient flowed to inputs {missing}"

    executor = GraphExecutor([loss, *grad_tensors])

    def feeds_for(values: Sequence[np.ndarray]) -> dict[str, np.ndarray]:
        return {f"gc_in{i}": v for i, v in enumerate(values)}

    result = executor.run(feeds_for(arrays))
    analytic = result.outputs[1:]

    loss_exec = GraphExecutor([loss])

    def loss_at(values: Sequence[np.ndarray]) -> float:
        return float(loss_exec.run(feeds_for(values)).outputs[0])

    for idx, base in enumerate(arrays):
        numeric = np.zeros_like(base)
        flat = base.reshape(-1)
        num_flat = numeric.reshape(-1)
        for j in range(flat.size):
            orig = flat[j]
            flat[j] = orig + eps
            up = loss_at(arrays)
            flat[j] = orig - eps
            down = loss_at(arrays)
            flat[j] = orig
            num_flat[j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(
            analytic[idx],
            numeric,
            rtol=rtol,
            atol=atol,
            err_msg=f"gradient mismatch for input {idx}",
        )
