"""Tests for the backend microbenchmark and transparent autotuner."""

import pytest

from repro.backends import (
    Backend,
    autotune_backend,
    benchmark_lstm,
    pure_lstm_graph,
)
from repro.gpumodel import DeviceModel, TITAN_V


class TestPureLstmGraph:
    def test_contains_only_rnn_machinery(self):
        graph, store = pure_lstm_graph(8, 16, 2, 5, Backend.CUDNN)
        ops = {n.op.name for n in graph.nodes()}
        assert "embedding" not in ops
        assert "softmax_cross_entropy" not in ops
        assert "lstm_gates" in ops

    def test_default_backend_unfused(self):
        graph, _ = pure_lstm_graph(8, 16, 1, 5, Backend.DEFAULT)
        ops = {n.op.name for n in graph.nodes()}
        assert "lstm_gates" not in ops
        assert "sigmoid" in ops

    def test_parameter_count(self):
        _, store = pure_lstm_graph(8, 16, 2, 5, Backend.CUDNN)
        # layer0: 4H*(H+H)+4H ; layer1 same (input_size == hidden)
        per_layer = 4 * 16 * 16 * 2 + 4 * 16
        assert store.num_parameters() == 2 * per_layer


class TestBenchmarkLstm:
    def test_times_positive_and_split(self):
        res = benchmark_lstm(16, 32, 1, 10, Backend.DEFAULT)
        assert res.forward_seconds > 0
        assert res.backward_seconds > 0
        assert res.total_seconds == pytest.approx(
            res.forward_seconds + res.backward_seconds
        )

    def test_backward_costs_more_than_forward(self):
        """Backward has ~2x the GEMMs of forward, on every backend."""
        for backend in Backend:
            res = benchmark_lstm(32, 256, 1, 25, backend)
            assert res.backward_seconds > res.forward_seconds, backend

    def test_fused_beats_default(self):
        default = benchmark_lstm(64, 512, 1, 25, Backend.DEFAULT)
        fused = benchmark_lstm(64, 512, 1, 25, Backend.CUDNN)
        assert default.total_seconds > 1.3 * fused.total_seconds

    def test_echo_layout_beats_cudnn_at_small_batch(self):
        cudnn = benchmark_lstm(32, 512, 1, 25, Backend.CUDNN)
        echo = benchmark_lstm(32, 512, 1, 25, Backend.ECHO)
        assert echo.total_seconds < cudnn.total_seconds

    def test_device_parameter_respected(self):
        xp = benchmark_lstm(64, 512, 1, 25, Backend.ECHO)
        volta = benchmark_lstm(64, 512, 1, 25, Backend.ECHO,
                               device=DeviceModel(TITAN_V))
        assert volta.total_seconds < xp.total_seconds


class TestAutotuner:
    def test_selects_minimum(self):
        report = autotune_backend(64, 512, 1, 25)
        best = min(report.results.values(), key=lambda r: r.total_seconds)
        assert report.results[report.choice].total_seconds == pytest.approx(
            best.total_seconds
        )

    def test_never_selects_default_at_scale(self):
        """Default's launch storm loses at every realistic config."""
        for batch, hidden in [(32, 256), (64, 512), (128, 1024)]:
            report = autotune_backend(batch, hidden, 1, 25)
            assert report.choice is not Backend.DEFAULT

    def test_format_marks_selection(self):
        report = autotune_backend(32, 256, 1, 10)
        text = report.format()
        assert "<-- selected" in text
        assert all(b.value in text for b in Backend)
