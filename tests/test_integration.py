"""End-to-end integration tests across the whole stack."""

import itertools

import numpy as np
import pytest

from repro.backends import autotune_backend
from repro.data import (
    BucketedTranslationBatches,
    TranslationTask,
    default_buckets,
    lm_batches,
    markov_corpus,
)
from repro.echo import optimize
from repro.gpumodel import DeviceModel
from repro.models import NmtConfig, WordLmConfig, build_nmt, build_word_lm
from repro.nn import Backend
from repro.profiler import profile_memory, profile_runtime
from repro.runtime import TrainingExecutor
from repro.train import (
    Adam,
    BeamSearchDecoder,
    BucketedTrainer,
    GreedyDecoder,
    Trainer,
    corpus_bleu,
    load_checkpoint,
    save_checkpoint,
)


class TestLanguageModelingPipeline:
    def test_autotune_build_train_converges(self):
        """The full transparent flow: microbenchmark -> backend -> train."""
        vocab, hidden, layers, seq_len, batch = 150, 48, 1, 12, 16
        choice = autotune_backend(batch, hidden, layers, seq_len).choice
        assert choice is not Backend.DEFAULT

        cfg = WordLmConfig(
            vocab_size=vocab, embed_size=hidden, hidden_size=hidden,
            num_layers=layers, seq_len=seq_len, batch_size=batch,
            backend=choice,
        )
        model = build_word_lm(cfg)
        optimize(model.graph)
        trainer = Trainer(model.graph, model.store.initialize(), Adam(8e-3))
        corpus = markov_corpus(vocab, 60_000, seed=5)
        records = [
            trainer.step(feeds)
            for feeds in itertools.islice(
                lm_batches(corpus, batch, seq_len), 120
            )
        ]
        assert records[-1].perplexity < records[5].perplexity / 3

    def test_echo_training_equals_baseline_training(self):
        """Full training runs (not just single steps) stay bitwise equal."""
        cfg = WordLmConfig(
            vocab_size=80, embed_size=16, hidden_size=16, num_layers=1,
            seq_len=8, batch_size=8, backend=Backend.CUDNN,
        )
        corpus = markov_corpus(80, 10_000, seed=6)

        def run(echo: bool):
            model = build_word_lm(cfg)
            if echo:
                optimize(model.graph)
            trainer = Trainer(model.graph, model.store.initialize(),
                              Adam(5e-3))
            losses = [
                trainer.step(feeds).loss
                for feeds in itertools.islice(lm_batches(corpus, 8, 8), 25)
            ]
            return losses, trainer.params

        base_losses, base_params = run(echo=False)
        echo_losses, echo_params = run(echo=True)
        assert base_losses == echo_losses
        for name in base_params:
            np.testing.assert_array_equal(base_params[name],
                                          echo_params[name])


class TestNmtPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        cfg = NmtConfig(
            src_vocab_size=100, tgt_vocab_size=100, embed_size=48,
            hidden_size=48, encoder_layers=1, decoder_layers=1,
            src_len=9, tgt_len=9, batch_size=12, backend=Backend.CUDNN,
        )
        task = TranslationTask(100, 100, 9, 9)
        model = build_nmt(cfg)
        optimize(model.graph)
        params = model.store.initialize()
        trainer = Trainer(model.graph, params, Adam(4e-3))
        rng = np.random.default_rng(1)
        for _ in range(450):
            trainer.step(task.sample_batch(cfg.batch_size, rng))
        return cfg, model, params, task

    def test_bleu_improves_over_untrained(self, setup):
        cfg, model, params, task = setup
        val = task.sample_batch(cfg.batch_size, np.random.default_rng(42))
        refs = task.references(val["src_tokens"])
        decoder = GreedyDecoder(cfg, model.store)
        trained_bleu = corpus_bleu(decoder.translate(val["src_tokens"],
                                                     params), refs)
        fresh = model.store.initialize(seed=123)
        untrained_bleu = corpus_bleu(
            decoder.translate(val["src_tokens"], fresh), refs
        )
        assert trained_bleu > untrained_bleu + 5.0

    def test_beam_bleu_at_least_near_greedy(self, setup):
        cfg, model, params, task = setup
        val = task.sample_batch(cfg.batch_size, np.random.default_rng(43))
        refs = task.references(val["src_tokens"])
        greedy = GreedyDecoder(cfg, model.store)
        beam = BeamSearchDecoder(cfg, model.store, beam_size=4)
        bleu_g = corpus_bleu(greedy.translate(val["src_tokens"], params),
                             refs)
        bleu_b = corpus_bleu(beam.translate(val["src_tokens"], params),
                             refs)
        assert bleu_b >= bleu_g - 8.0  # beam must not collapse

    def test_profilers_run_on_optimized_graph(self, setup):
        cfg, model, params, task = setup
        ex = TrainingExecutor(model.graph, device=DeviceModel())
        mem = profile_memory(ex.memory_plan)
        run = profile_runtime(ex.simulate_cost().timings)
        assert mem.total_bytes > 0
        assert run.kernel_seconds > 0
        assert "attention" in mem.by_layer or "rnn" in mem.by_layer


class TestCheckpointedEchoTraining:
    def test_resume_mid_training_with_echo_graph(self, tmp_path):
        cfg = WordLmConfig(
            vocab_size=60, embed_size=12, hidden_size=12, num_layers=1,
            seq_len=6, batch_size=6, backend=Backend.ECHO,
        )
        corpus = markov_corpus(60, 8_000, seed=7)

        def fresh_trainer():
            model = build_word_lm(cfg)
            optimize(model.graph)
            return Trainer(model.graph, model.store.initialize(), Adam(5e-3))

        batches = list(itertools.islice(lm_batches(corpus, 6, 6), 30))
        a = fresh_trainer()
        for feeds in batches[:15]:
            a.step(feeds)
        save_checkpoint(tmp_path / "mid.npz", a)
        for feeds in batches[15:]:
            a.step(feeds)

        b = fresh_trainer()
        load_checkpoint(tmp_path / "mid.npz", b)
        for feeds in batches[15:]:
            b.step(feeds)
        assert a.history[-1].loss == b.history[-1].loss


class TestBucketedNmtPipeline:
    def test_bucketed_echo_training_and_footprint(self):
        cfg = NmtConfig(
            src_vocab_size=80, tgt_vocab_size=80, embed_size=16,
            hidden_size=16, encoder_layers=1, decoder_layers=1,
            src_len=12, tgt_len=12, batch_size=8, backend=Backend.CUDNN,
        )
        buckets = default_buckets(12, step=6)
        base = BucketedTrainer(cfg, buckets, Adam(3e-3), echo=False)
        echo = BucketedTrainer(cfg, buckets, Adam(3e-3), echo=True)
        assert echo.peak_bytes < base.peak_bytes

        task = TranslationTask(80, 80, 12, 12)
        data = BucketedTranslationBatches(task, buckets, batch_size=8,
                                          seed=3)
        losses = []
        for _ in range(20):
            bucket, feeds = data.sample()
            losses.append(echo.step(bucket, feeds).loss)
        assert np.isfinite(losses).all()
        assert np.mean(losses[-4:]) < np.mean(losses[:4])
