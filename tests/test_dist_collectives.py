"""Tests for the distributed substrate: channels, groups, collectives.

The load-bearing property is *bitwise determinism*: a ring all-reduce
over any rank count and any chunking must equal the serial canonical
fold (:func:`reference_allreduce`) bit for bit, on both backends — the
foundation the "N-rank training equals 1-rank training" guarantee in
``test_dist_trainer.py`` stands on. The rest covers the fault machinery:
timeouts, dead peers, generation filtering, and ring re-forming.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    CollectiveTimeout,
    DistError,
    DistWorkerError,
    PeerGone,
    ProtocolError,
    allreduce_named,
    barrier,
    create_thread_groups,
    reference_allreduce,
    ring_allgather,
    ring_allreduce,
    ring_broadcast,
    run_distributed,
)
from repro.dist.channels import ChannelClosed, ChannelTimeout, ThreadChannel
from repro.dist.wire import Message


# -- module-level workers (picklable for the process backend) ----------------

def _allreduce_worker(group, arrays, op, chunk_bytes):
    out = ring_allreduce(group, arrays[group.rank], op=op,
                         chunk_bytes=chunk_bytes)
    return out


def _die_then_reduce_worker(group, arrays, victim):
    if group.rank == victim:
        raise RuntimeError("simulated rank crash")
    with pytest.raises((CollectiveTimeout, PeerGone)):
        ring_allreduce(group, arrays[group.rank], timeout_s=0.5)
    roster = group.reform(timeout_s=2.0)
    assert victim not in roster
    survivors = [r for r in roster]
    out = ring_allreduce(group, arrays[group.rank], timeout_s=5.0)
    expected = reference_allreduce([arrays[r] for r in survivors])
    assert np.array_equal(out, expected)
    return roster


# -- channels ----------------------------------------------------------------

class TestThreadChannel:
    def test_fifo_and_copy_isolation(self):
        chan = ThreadChannel()
        payload = np.arange(4.0)
        chan.send(Message(0, 1, ("t",), payload))
        payload[:] = -1  # sender mutates after send; receiver unaffected
        got = chan.recv(timeout=1.0)
        assert np.array_equal(got.payload, [0, 1, 2, 3])

    def test_timeout(self):
        chan = ThreadChannel()
        with pytest.raises(ChannelTimeout):
            chan.recv(timeout=0.01)

    def test_close_wakes_receiver(self):
        chan = ThreadChannel()
        timer = threading.Timer(0.05, chan.close)
        timer.start()
        with pytest.raises(ChannelClosed):
            chan.recv(timeout=5.0)
        timer.join()


# -- bitwise determinism (the core property) ---------------------------------

class TestAllreduceBitwise:
    @settings(max_examples=40, deadline=None)
    @given(
        world=st.integers(min_value=1, max_value=5),
        size=st.integers(min_value=1, max_value=700),
        chunk_bytes=st.integers(min_value=8, max_value=4096),
        op=st.sampled_from(["sum", "mean"]),
        dtype=st.sampled_from([np.float32, np.float64]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_ring_equals_serial_fold(
        self, world, size, chunk_bytes, op, dtype, seed
    ):
        """Any rank count x any chunking == the serial sum, bitwise."""
        rng = np.random.default_rng(seed)
        arrays = [
            rng.standard_normal(size).astype(dtype) for _ in range(world)
        ]
        results = run_distributed(
            _allreduce_worker, world, backend="thread",
            args=(arrays, op, chunk_bytes),
        )
        expected = reference_allreduce(arrays, op=op)
        for rank, out in enumerate(results):
            assert out.dtype == expected.dtype
            assert np.array_equal(out, expected), f"rank {rank} diverged"

    def test_chunking_cannot_move_bits(self):
        """Same inputs, wildly different chunk sizes -> identical bits."""
        rng = np.random.default_rng(3)
        arrays = [rng.standard_normal(999).astype(np.float32)
                  for _ in range(4)]
        outs = [
            run_distributed(
                _allreduce_worker, 4, backend="thread",
                args=(arrays, "sum", cb),
            )[0]
            for cb in (16, 128, 1 << 20)
        ]
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])

    @pytest.mark.parametrize("world", [2, 4])
    @pytest.mark.parametrize("op", ["sum", "mean"])
    def test_process_backend_matches_reference(self, world, op):
        rng = np.random.default_rng(11)
        arrays = [rng.standard_normal(257).astype(np.float64)
                  for _ in range(world)]
        results = run_distributed(
            _allreduce_worker, world, backend="process",
            args=(arrays, op, 64),
        )
        expected = reference_allreduce(arrays, op=op)
        for out in results:
            assert np.array_equal(out, expected)

    def test_mean_rescales_by_live_count(self):
        """op="mean" divides by the ring size — the degrade reweighting."""
        arrays = [np.full(5, 3.0), np.full(5, 6.0), np.full(5, 9.0)]

        def work(group):
            return ring_allreduce(group, arrays[group.rank], op="mean")

        results = run_distributed(work, 3, backend="thread")
        assert np.array_equal(results[0], np.full(5, 6.0))


# -- the other collectives ---------------------------------------------------

class TestOtherCollectives:
    def test_allgather_roundtrip(self):
        def work(group):
            mine = np.arange(3) + 10 * group.rank
            return ring_allgather(group, mine)

        for gathered in run_distributed(work, 4, backend="thread"):
            assert sorted(gathered) == [0, 1, 2, 3]
            for rank, arr in gathered.items():
                assert np.array_equal(arr, np.arange(3) + 10 * rank)

    def test_broadcast_from_each_root(self):
        value = np.arange(17.0)

        def work(group, root):
            mine = value if group.rank == root else None
            return ring_broadcast(group, mine, root=root)

        for root in range(3):
            for out in run_distributed(work, 3, backend="thread",
                                       args=(root,)):
                assert np.array_equal(out, value)

    def test_barrier_orders_side_effects(self):
        hits: list[int] = []
        lock = threading.Lock()

        def work(group):
            if group.rank == 0:
                time.sleep(0.05)
            with lock:
                hits.append(group.rank)
            barrier(group)
            # After the barrier every rank must see all four arrivals.
            with lock:
                return len(hits)

        assert run_distributed(work, 4, backend="thread") == [4, 4, 4, 4]

    def test_allreduce_named_matches_per_array(self):
        rng = np.random.default_rng(5)
        per_rank = [
            {"b": rng.standard_normal(7), "a": rng.standard_normal(13)}
            for _ in range(3)
        ]

        def work(group):
            return allreduce_named(group, per_rank[group.rank],
                                   chunk_bytes=32)

        results = run_distributed(work, 3, backend="thread")
        for key in ("a", "b"):
            expected = reference_allreduce([d[key] for d in per_rank])
            assert np.array_equal(results[0][key], expected)


# -- faults ------------------------------------------------------------------

class TestFaults:
    def test_timeout_when_peer_never_sends(self):
        def work(group):
            if group.rank == 1:
                time.sleep(1.0)  # never joins the collective in time
                return None
            with pytest.raises(CollectiveTimeout):
                ring_allreduce(group, np.ones(4), timeout_s=0.2)
            return "timed-out"

        results = run_distributed(work, 2, backend="thread")
        assert results[0] == "timed-out"

    def test_dead_rank_thread_backend_reform(self):
        rng = np.random.default_rng(8)
        arrays = [rng.standard_normal(65) for _ in range(4)]
        results = run_distributed(
            _die_then_reduce_worker, 4, backend="thread",
            args=(arrays, 2), timeout_s=1.0, return_exceptions=True,
        )
        assert isinstance(results[2], RuntimeError)
        for rank in (0, 1, 3):
            assert results[rank] == (0, 1, 3)

    def test_dead_rank_process_backend_reform(self):
        rng = np.random.default_rng(9)
        arrays = [rng.standard_normal(33) for _ in range(4)]
        results = run_distributed(
            _die_then_reduce_worker, 4, backend="process",
            args=(arrays, 1), timeout_s=1.0, return_exceptions=True,
        )
        assert isinstance(results[1], DistWorkerError)
        for rank in (0, 2, 3):
            assert results[rank] == (0, 2, 3)

    def test_stale_generation_traffic_is_dropped(self):
        groups = create_thread_groups(2, timeout_s=1.0)
        a, b = groups
        # A message from generation 0 must be invisible after a reform.
        a.send(1, seq=1, tag=("x",), payload="old-news")
        t = threading.Thread(target=a.reform, args=(1.0,))
        t.start()
        b.reform(timeout_s=1.0)
        t.join()
        assert a.live == b.live == (0, 1)
        assert a.generation == b.generation == 1
        seq = b.next_seq()
        a.next_seq()
        a.send(1, seq=seq, tag=("y",), payload="fresh")
        assert b.recv(0, seq=seq, tag=("y",), timeout_s=1.0) == "fresh"
        assert b.stats.snapshot()["stale_dropped"] == 1

    def test_seq_mismatch_is_protocol_error(self):
        groups = create_thread_groups(2, timeout_s=1.0)
        a, b = groups
        a.send(1, seq=7, tag=("t",), payload=None)
        with pytest.raises(ProtocolError):
            b.recv(0, seq=8, tag=("t",), timeout_s=1.0)

    def test_isolated_rank_raises(self):
        """A rank whose every peer is gone cannot re-form a usable ring
        with itself pretending others exist: reform shrinks to itself."""
        groups = create_thread_groups(3, timeout_s=0.3)
        a = groups[0]
        groups[1].close()
        groups[2].close()
        roster = a.reform(timeout_s=0.3)
        assert roster == (0,)
        # Singleton collectives still work (identity).
        out = ring_allreduce(a, np.arange(4.0))
        assert np.array_equal(out, np.arange(4.0))

    def test_worker_error_propagates_by_default(self):
        def work(group):
            if group.rank == 0:
                raise ValueError("boom")
            return 1

        with pytest.raises(ValueError, match="boom"):
            run_distributed(work, 2, backend="thread")


class TestStats:
    def test_counters_and_report(self):
        def work(group):
            ring_allreduce(group, np.ones(2048, np.float64),
                           chunk_bytes=1024)
            barrier(group)
            return group.stats.snapshot()

        snaps = run_distributed(work, 3, backend="thread")
        for snap in snaps:
            assert snap["collectives"]["allreduce_sum"] == 1
            assert snap["collectives"]["barrier"] == 1
            assert snap["bytes_sent"] > 0
            assert snap["messages_sent"] > 0

    def test_straggler_detection(self):
        groups = create_thread_groups(2, timeout_s=5.0,
                                      straggler_threshold_s=0.01)
        a, b = groups

        def late_send():
            time.sleep(0.1)
            a.send(1, seq=1, tag=("s",), payload=None)

        t = threading.Thread(target=late_send)
        t.start()
        b.next_seq()
        b.recv(0, seq=1, tag=("s",))
        t.join()
        snap = b.stats.snapshot()
        assert snap["stragglers"].get(0, 0) == 1
