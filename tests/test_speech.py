"""Tests for the speech stack: conv2d, CTC loss, DS2 model, speech task."""

import itertools

import numpy as np
import pytest
from scipy import signal

import repro.ops as O
from repro.data import SpeechTask, exact_match_rate
from repro.echo import optimize
from repro.graph import ShapeError
from repro.models import (
    DeepSpeechConfig,
    build_deepspeech,
    ctc_greedy_decode,
)
from repro.runtime import GraphExecutor, TrainingExecutor
from tests.helpers import check_gradients, rng


class TestConv2dForward:
    def test_matches_scipy_correlate(self):
        x = rng(0).standard_normal((1, 1, 7, 6)).astype(np.float32)
        w = rng(1).standard_normal((1, 1, 3, 3)).astype(np.float32)
        px = O.placeholder(x.shape, name="cv_x")
        pw = O.placeholder(w.shape, name="cv_w")
        out = GraphExecutor([O.conv2d(px, pw, stride=1, pad=0)]).run(
            {"cv_x": x, "cv_w": w}
        ).outputs[0]
        ref = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out[0, 0], ref, rtol=1e-4, atol=1e-5)

    def test_multi_channel_sums(self):
        x = rng(2).standard_normal((2, 3, 5, 5)).astype(np.float32)
        w = rng(3).standard_normal((4, 3, 3, 3)).astype(np.float32)
        px, pw = O.placeholder(x.shape, name="mc_x"), O.placeholder(
            w.shape, name="mc_w")
        out = GraphExecutor([O.conv2d(px, pw, pad=1)]).run(
            {"mc_x": x, "mc_w": w}).outputs[0]
        assert out.shape == (2, 4, 5, 5)
        ref = np.zeros((5, 5))
        for c in range(3):
            ref += signal.correlate2d(
                np.pad(x[0, c], 1), w[0, c], mode="valid"
            )
        np.testing.assert_allclose(out[0, 0], ref, rtol=1e-4, atol=1e-4)

    def test_stride_and_padding_shapes(self):
        x = O.placeholder((1, 1, 10, 8), name="sp_x")
        w = O.placeholder((2, 1, 3, 3), name="sp_w")
        assert O.conv2d(x, w, stride=2, pad=1).shape == (1, 2, 5, 4)
        assert O.conv2d(x, w, stride=1, pad=0).shape == (1, 2, 8, 6)

    def test_channel_mismatch_rejected(self):
        x = O.placeholder((1, 2, 5, 5), name="cm_x")
        w = O.placeholder((2, 3, 3, 3), name="cm_w")
        with pytest.raises(ShapeError):
            O.conv2d(x, w)

    def test_gradients(self):
        check_gradients(
            lambda t: O.conv2d(t[0], t[1], t[2], stride=2, pad=1),
            [rng(4).standard_normal((2, 2, 6, 5)),
             rng(5).standard_normal((3, 2, 3, 3)),
             rng(6).standard_normal(3)],
        )

    def test_gradients_no_bias_stride1(self):
        check_gradients(
            lambda t: O.conv2d(t[0], t[1], pad=1),
            [rng(7).standard_normal((1, 2, 4, 4)),
             rng(8).standard_normal((2, 2, 3, 3))],
        )


def _brute_force_ctc(log_probs: np.ndarray, transcript: list[int],
                     blank: int = 0) -> float:
    """Reference CTC likelihood by enumerating all frame labelings."""
    t_len, vocab = log_probs.shape
    total = -np.inf
    for path in itertools.product(range(vocab), repeat=t_len):
        # Collapse: remove repeats, then blanks.
        collapsed = []
        prev = None
        for s in path:
            if s != prev:
                collapsed.append(s)
            prev = s
        collapsed = [s for s in collapsed if s != blank]
        if collapsed == list(transcript):
            total = np.logaddexp(
                total, sum(log_probs[t, path[t]] for t in range(t_len))
            )
    return -total


class TestCtcLoss:
    def _loss(self, logits, labels):
        pl = O.placeholder(logits.shape, name="ct_l")
        out = O.ctc_loss(pl, O.constant(labels))
        return float(GraphExecutor([out]).run({"ct_l": logits}).outputs[0])

    def test_matches_brute_force(self):
        gen = np.random.default_rng(9)
        logits = gen.standard_normal((4, 1, 3)).astype(np.float64)
        labels = np.array([[1, 2]], np.int64)
        ours = self._loss(logits, labels)
        shifted = logits[:, 0] - logits[:, 0].max(axis=1, keepdims=True)
        log_probs = shifted - np.log(
            np.exp(shifted).sum(axis=1, keepdims=True))
        ref = _brute_force_ctc(log_probs, [1, 2])
        assert abs(ours - ref) < 1e-6

    def test_repeated_label_needs_blank(self):
        """Transcript 'aa' requires a blank between the a's; with exactly
        2 frames it is infeasible and the likelihood is ~0."""
        logits = np.zeros((2, 1, 3), np.float64)
        labels = np.array([[1, 1]], np.int64)
        loss = self._loss(logits, labels)
        assert loss > 20  # -log(0) clamped by log-space floor

    def test_batch_mean(self):
        gen = np.random.default_rng(10)
        logits = gen.standard_normal((5, 2, 4))
        labels = np.array([[1, 2, -1], [3, -1, -1]], np.int64)
        both = self._loss(logits, labels)
        first = self._loss(logits[:, :1], labels[:1])
        second = self._loss(logits[:, 1:], labels[1:])
        assert abs(both - (first + second) / 2) < 1e-6

    def test_empty_transcript_all_blank(self):
        logits = np.zeros((3, 1, 2), np.float64)
        labels = np.array([[-1, -1]], np.int64)
        loss = self._loss(logits, labels)
        # Uniform logits: p(blank)=0.5 each frame -> nll = 3*log(2).
        assert abs(loss - 3 * np.log(2)) < 1e-6

    def test_gradient_numerically(self):
        labels = np.array([[2, 1, -1]], np.int64)
        check_gradients(
            lambda t: O.ctc_loss(t[0], O.constant(labels)),
            [rng(11).standard_normal((5, 1, 4))],
            rtol=1e-3,
            atol=1e-6,
        )

    def test_too_long_transcript_rejected_at_runtime(self):
        logits = np.zeros((2, 1, 3), np.float32)
        labels = np.array([[1, 2, 1]], np.int64)
        pl = O.placeholder(logits.shape, name="ct_long")
        out = O.ctc_loss(pl, O.constant(labels))
        from repro.runtime import ExecutionError

        with pytest.raises(ExecutionError, match="cannot align"):
            GraphExecutor([out]).run({"ct_long": logits})


class TestGreedyCtcDecode:
    def test_collapse_and_blank_removal(self):
        # Frames argmax: [1, 1, 0, 2, 2, 0, 2]
        logits = np.full((7, 1, 3), -5.0, np.float32)
        for t, s in enumerate([1, 1, 0, 2, 2, 0, 2]):
            logits[t, 0, s] = 5.0
        assert ctc_greedy_decode(logits) == [[1, 2, 2]]

    def test_all_blank_is_empty(self):
        logits = np.zeros((4, 2, 3), np.float32)
        logits[:, :, 0] = 5.0
        assert ctc_greedy_decode(logits) == [[], []]


class TestSpeechTask:
    def test_batch_shapes(self):
        task = SpeechTask(12, 16, 30, 6)
        feeds = task.sample_batch(5, np.random.default_rng(0))
        assert feeds["features"].shape == (30, 5, 16)
        assert feeds["ctc_labels"].shape == (5, 6)
        assert feeds["ctc_labels"].max() < 12

    def test_transcripts_strip_padding(self):
        task = SpeechTask(12, 16, 30, 6)
        feeds = task.sample_batch(4, np.random.default_rng(1))
        refs = task.transcripts(feeds["ctc_labels"])
        assert all(all(t >= 1 for t in r) for r in refs)

    def test_exact_match_rate(self):
        assert exact_match_rate([[1, 2]], [[1, 2]]) == 1.0
        assert exact_match_rate([[1]], [[1, 2]]) == 0.0
        with pytest.raises(ValueError):
            exact_match_rate([[1]], [])

    def test_degenerate_configs_rejected(self):
        with pytest.raises(ValueError):
            SpeechTask(2, 16, 30, 6)
        with pytest.raises(ValueError):
            SpeechTask(12, 16, 8, 6)


class TestDeepSpeechModel:
    def _cfg(self, **over):
        base = dict(
            vocab_size=10, feat_dim=12, num_frames=24, conv_channels=4,
            hidden_size=16, num_layers=1, max_label_len=5, batch_size=4,
        )
        base.update(over)
        return DeepSpeechConfig(**base)

    def test_builds_with_expected_scopes(self):
        model = build_deepspeech(self._cfg())
        from repro.graph import Stage

        scopes = {
            n.scope.split("/")[0]
            for n in model.graph.nodes()
            if n.scope and n.stage is Stage.FORWARD
        }
        assert {"conv", "rnn", "output"} <= scopes

    def test_loss_and_gradients_flow(self):
        model = build_deepspeech(self._cfg())
        task = SpeechTask(10, 12, 24, 5)
        feeds = task.sample_batch(4, np.random.default_rng(2))
        ex = TrainingExecutor(model.graph)
        loss, grads, _ = ex.run(feeds, model.store.initialize())
        assert np.isfinite(loss)
        assert np.any(grads["conv1.w"] != 0)
        assert np.any(grads["birnn.l0.fwd.w_x"] != 0)

    def test_echo_bitwise_identical_on_ds2(self):
        model = build_deepspeech(self._cfg())
        task = SpeechTask(10, 12, 24, 5)
        feeds = task.sample_batch(4, np.random.default_rng(3))
        params = model.store.initialize()
        l0, g0, _ = TrainingExecutor(model.graph).run(feeds, params)
        optimize(model.graph)
        l1, g1, _ = TrainingExecutor(model.graph).run(feeds, params)
        assert l0 == l1
        for k in g0:
            np.testing.assert_array_equal(g0[k], g1[k])

    def test_conv_nodes_never_mirrored(self):
        """Convolutions are GEMM-class: Echo must not recompute them."""
        model = build_deepspeech(self._cfg(num_layers=2))
        optimize(model.graph)
        from repro.graph import Stage
        from repro.runtime import schedule

        for node in schedule(model.graph.outputs):
            if node.stage is Stage.RECOMPUTE:
                assert not node.op.name.startswith("conv2d")

    def test_infeasible_alignment_config_rejected(self):
        with pytest.raises(ValueError, match="align"):
            self._cfg(num_frames=10, max_label_len=5)
