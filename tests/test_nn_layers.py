"""Tests for the NN layer zoo: LSTM backends, attention, GRU, embeddings."""

import numpy as np
import pytest

import repro.ops as O
from repro.nn import (
    Backend,
    DotAttention,
    GruCell,
    MlpAttention,
    OutputLayer,
    ParamStore,
    WordEmbedding,
)
from repro.nn.rnn import (
    bidirectional_lstm,
    gru_layer,
    lstm_layer,
    multilayer_lstm,
    unstack_time,
)
from repro.runtime import GraphExecutor
from tests.helpers import rng


def _run(outputs, feeds, params):
    ex = GraphExecutor(list(outputs))
    return ex.run(feeds, params).outputs


class TestParamStore:
    def test_shapes_tracked_and_unique(self):
        store = ParamStore()
        a = store.get("layer.w", (4, 3))
        b = store.get("layer.w", (4, 3))
        assert a is b
        with pytest.raises(ValueError):
            store.get("layer.w", (5, 3))
        assert store.num_parameters() == 12

    def test_initializers(self):
        store = ParamStore(seed=1)
        store.get("w", (64, 64))
        store.get("b", (64,), init="zeros")
        store.get("g", (64,), init="ones")
        values = store.initialize()
        assert np.all(values["b"] == 0)
        assert np.all(values["g"] == 1)
        assert abs(float(values["w"].mean())) < 0.05
        assert values["w"].dtype == np.float32

    def test_unknown_init_rejected(self):
        store = ParamStore()
        store.get("w", (2, 2), init="nonsense")
        with pytest.raises(ValueError):
            store.initialize()

    def test_deterministic_initialization(self):
        s1, s2 = ParamStore(seed=7), ParamStore(seed=7)
        s1.get("w", (8, 8))
        s2.get("w", (8, 8))
        np.testing.assert_array_equal(s1.initialize()["w"],
                                      s2.initialize()["w"])


def _lstm_reference(x_seq, w_x, w_h, bias, hidden):
    """Pure-numpy reference LSTM over [T x B x I]."""
    def sig(v):
        return 1 / (1 + np.exp(-v))

    seq_len, batch, _ = x_seq.shape
    h = np.zeros((batch, hidden), np.float64)
    c = np.zeros((batch, hidden), np.float64)
    outs = []
    for t in range(seq_len):
        gates = x_seq[t] @ w_x.T + bias + h @ w_h.T
        i = sig(gates[:, 0:hidden])
        f = sig(gates[:, hidden:2 * hidden])
        g = np.tanh(gates[:, 2 * hidden:3 * hidden])
        o = sig(gates[:, 3 * hidden:4 * hidden])
        c = f * c + i * g
        h = o * np.tanh(c)
        outs.append(h)
    return np.stack(outs)


class TestLstmBackends:
    @pytest.mark.parametrize("backend", list(Backend))
    def test_matches_numpy_reference(self, backend):
        seq_len, batch, hidden = 4, 3, 6
        store = ParamStore(seed=2)
        seq = O.placeholder((seq_len, batch, hidden), name="seq")
        out, _state = lstm_layer(store, "l", seq, hidden, backend=backend)
        params = store.initialize()
        x = rng(3).standard_normal((seq_len, batch, hidden)).astype(np.float32)
        (result,) = _run([out], {"seq": x}, params)
        ref = _lstm_reference(
            x.astype(np.float64), params["l.w_x"].astype(np.float64),
            params["l.w_h"].astype(np.float64),
            params["l.bias"].astype(np.float64), hidden,
        )
        np.testing.assert_allclose(result, ref, rtol=1e-4, atol=1e-5)

    def test_backends_agree_with_each_other(self):
        seq_len, batch, hidden = 5, 2, 8
        x = rng(4).standard_normal((seq_len, batch, hidden)).astype(np.float32)
        results = {}
        for backend in Backend:
            store = ParamStore(seed=9)
            seq = O.placeholder((seq_len, batch, hidden),
                                name=f"seq_{backend.value}")
            out, _ = lstm_layer(store, "l", seq, hidden, backend=backend)
            (results[backend],) = _run(
                [out], {f"seq_{backend.value}": x}, store.initialize()
            )
        np.testing.assert_allclose(results[Backend.DEFAULT],
                                   results[Backend.CUDNN], rtol=1e-4,
                                   atol=1e-6)
        np.testing.assert_allclose(results[Backend.CUDNN],
                                   results[Backend.ECHO], rtol=1e-4,
                                   atol=1e-6)

    def test_final_state_matches_last_output(self):
        store = ParamStore()
        seq = O.placeholder((3, 2, 4), name="st_seq")
        out, state = lstm_layer(store, "l", seq, 4, backend=Backend.CUDNN)
        x = rng(5).standard_normal((3, 2, 4)).astype(np.float32)
        hidden, h_final = _run([out, state.h], {"st_seq": x},
                               store.initialize())
        np.testing.assert_array_equal(hidden[-1], h_final)

    def test_multilayer_stacking(self):
        store = ParamStore()
        seq = O.placeholder((3, 2, 4), name="ml_seq")
        out, states = multilayer_lstm(store, "stack", seq, 6, 3,
                                      backend=Backend.CUDNN)
        assert out.shape == (3, 2, 6)
        assert len(states) == 3
        # 3 layers x (w_x, w_h, bias)
        assert len(store.tensors) == 9


class TestBidirectional:
    def test_shapes_and_direction(self):
        store = ParamStore(seed=3)
        seq = O.placeholder((4, 2, 6), name="bi_seq")
        out = bidirectional_lstm(store, "bi", seq, 6)
        assert out.shape == (4, 2, 6)
        x = rng(6).standard_normal((4, 2, 6)).astype(np.float32)
        (result,) = _run([out], {"bi_seq": x}, store.initialize())
        # Forward half at t=0 depends only on x[0]; backward half at t=0
        # depends on the whole sequence. Perturb x[3] and check.
        x2 = x.copy()
        x2[3] += 1.0
        (result2,) = _run([out], {"bi_seq": x2}, store.initialize())
        np.testing.assert_array_equal(result[0, :, :3], result2[0, :, :3])
        assert not np.allclose(result[0, :, 3:], result2[0, :, 3:])

    def test_odd_hidden_rejected(self):
        store = ParamStore()
        seq = O.placeholder((4, 2, 6), name="bi_seq2")
        with pytest.raises(ValueError):
            bidirectional_lstm(store, "bi", seq, 5)


class TestGru:
    def test_gru_layer_matches_reference(self):
        seq_len, batch, hidden = 4, 2, 5
        store = ParamStore(seed=8)
        seq = O.placeholder((seq_len, batch, hidden), name="gru_seq")
        out = gru_layer(store, "g", seq, hidden)
        params = store.initialize()
        x = rng(7).standard_normal((seq_len, batch, hidden)).astype(np.float32)
        (result,) = _run([out], {"gru_seq": x}, params)

        def sig(v):
            return 1 / (1 + np.exp(-v))

        w_x = params["g.w_x"].astype(np.float64)
        w_h = params["g.w_h"].astype(np.float64)
        bias = params["g.bias"].astype(np.float64)
        h = np.zeros((batch, hidden))
        for t in range(seq_len):
            xp = x[t].astype(np.float64) @ w_x.T + bias
            hp = h @ w_h.T
            r = sig(xp[:, :hidden] + hp[:, :hidden])
            z = sig(xp[:, hidden:2 * hidden] + hp[:, hidden:2 * hidden])
            n = np.tanh(xp[:, 2 * hidden:] + r * hp[:, 2 * hidden:])
            h = (1 - z) * n + z * h
        np.testing.assert_allclose(result[-1], h, rtol=1e-4, atol=1e-5)

    def test_gru_cell_state_shape(self):
        store = ParamStore()
        cell = GruCell(store, "gc", 4, 6)
        x = O.placeholder((3, 4), name="gc_x")
        h = cell.zero_state(3)
        out = cell.step(x, h)
        assert out.shape == (3, 6)


class TestAttention:
    def _setup(self, attention_cls):
        batch, seq_len, hidden = 3, 5, 8
        store = ParamStore(seed=4)
        enc = O.placeholder((batch, seq_len, hidden), name="enc")
        query = O.placeholder((batch, hidden), name="query")
        att = attention_cls(store, "att", hidden)
        state = att.precompute(enc)
        context = att(query, state)
        return store, context, batch, seq_len, hidden

    @pytest.mark.parametrize("cls", [MlpAttention, DotAttention])
    def test_context_shape(self, cls):
        store, context, batch, _seq, hidden = self._setup(cls)
        assert context.shape == (batch, hidden)

    def test_context_is_convex_combination_dot(self):
        """Dot attention context lies in the convex hull of the values."""
        store, context, batch, seq_len, hidden = self._setup(DotAttention)
        enc = rng(8).standard_normal((batch, seq_len, hidden)).astype(np.float32)
        query = rng(9).standard_normal((batch, hidden)).astype(np.float32)
        (result,) = _run([context], {"enc": enc, "query": query},
                         store.initialize())
        mins = enc.min(axis=1) - 1e-5
        maxs = enc.max(axis=1) + 1e-5
        assert np.all(result >= mins)
        assert np.all(result <= maxs)

    def test_mlp_attention_interior_scoped(self):
        store, context, *_ = self._setup(MlpAttention)
        from repro.graph import topo_order

        nodes = topo_order([context])
        scopes = {n.scope for n in nodes if n.op.name == "layer_norm"}
        assert scopes == {"attention"}

    def test_uniform_keys_give_uniform_weights(self):
        """If all encoder positions are identical, context == that value."""
        batch, seq_len, hidden = 2, 6, 4
        store = ParamStore(seed=5)
        enc = O.placeholder((batch, seq_len, hidden), name="u_enc")
        query = O.placeholder((batch, hidden), name="u_query")
        att = DotAttention(store, "att", hidden)
        context = att(query, att.precompute(enc))
        one = rng(10).standard_normal((batch, 1, hidden)).astype(np.float32)
        enc_v = np.repeat(one, seq_len, axis=1)
        q_v = rng(11).standard_normal((batch, hidden)).astype(np.float32)
        (result,) = _run([context], {"u_enc": enc_v, "u_query": q_v},
                         store.initialize())
        np.testing.assert_allclose(result, one[:, 0], rtol=1e-5)


class TestEmbeddingAndOutput:
    def test_word_embedding_shape_and_lookup(self):
        store = ParamStore(seed=6)
        emb = WordEmbedding(store, "emb", vocab_size=50, embed_size=12)
        tokens = O.placeholder((7, 3), np.int64, name="tok")
        out = emb(tokens)
        assert out.shape == (7, 3, 12)
        params = store.initialize()
        ids = np.zeros((7, 3), np.int64)
        (result,) = _run([out], {"tok": ids}, params)
        np.testing.assert_array_equal(result[0, 0], params["emb.weight"][0])

    def test_output_layer_loss_is_scalar_and_positive(self):
        store = ParamStore(seed=7)
        layer = OutputLayer(store, "out", hidden_size=8, vocab_size=30)
        hidden = O.placeholder((4, 2, 8), name="oh")
        labels = O.placeholder((4, 2), np.int64, name="ol")
        loss = layer.loss(hidden, labels)
        assert loss.shape == ()
        h = rng(12).standard_normal((4, 2, 8)).astype(np.float32)
        y = rng(13).integers(0, 30, (4, 2))
        (val,) = _run([loss], {"oh": h, "ol": y}, store.initialize())
        assert float(val) > 0

    def test_unstack_time_roundtrip(self):
        seq = O.placeholder((5, 2, 3), name="ut")
        steps = unstack_time(seq)
        assert len(steps) == 5
        assert all(s.shape == (2, 3) for s in steps)
        restacked = O.concat([O.expand_dims(s, 0) for s in steps], axis=0)
        x = rng(14).standard_normal((5, 2, 3)).astype(np.float32)
        (result,) = _run([restacked], {"ut": x}, {})
        np.testing.assert_array_equal(result, x)
