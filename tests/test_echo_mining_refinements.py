"""Tests for the mining refinements: free-region candidates, the
lifetime-gain guard, shared-border amortization, preserved stashes, and
chain-mirror scheduling priorities.

These encode the failure modes found while bringing up the DeepSpeech2
workload: borders that outweigh interiors, boundary-consumed roots that
pin whole mirror cones live, and recurrent chains inverting the backward
schedule.
"""

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.echo import EchoConfig, mine_candidates, optimize
from repro.graph import Stage, topo_order
from repro.gpumodel import DeviceModel
from repro.runtime import TrainingExecutor, schedule


def _collect_placeholders(loss):
    placeholders = {}
    for node in topo_order([loss]):
        if node.op.name == "placeholder":
            placeholders[node.name] = node.out()
    return placeholders


def _recurrent_chain_graph(steps=12, batch=16, hidden=64):
    """A real fused LSTM layer: the recurrent GEMM stashes h_t, the
    pointwise block stashes gates and c_t. The full cone's border (the
    per-step GEMM contributions) outweighs h/c, but the free region
    (recompute h/c from the stashed gate pre-activations) is profitable."""
    from repro.nn import ParamStore
    from repro.nn.rnn import Backend, lstm_layer

    store = ParamStore(seed=5)
    x = O.placeholder((steps, batch, hidden), name="rc_x")
    hidden_seq, _ = lstm_layer(store, "rc", x, hidden,
                               backend=Backend.CUDNN)
    loss = O.reduce_mean(O.mul(hidden_seq, hidden_seq))
    return compile_training(loss, store.tensors,
                            _collect_placeholders(loss))


class TestFreeRegionCandidates:
    def test_free_variant_emitted_for_chains(self):
        tg = _recurrent_chain_graph()
        order = schedule(tg.outputs)
        cands = mine_candidates(order, {t.key for t in tg.outputs},
                                device=DeviceModel())
        free = [c for c in cands if not c.new_stashes and any(
            n.op.name == "lstm_gates" for n in c.nodes)]
        assert free, "chain component should have a zero-stash variant"
        assert all(c.benefit_bytes > 0 for c in free)

    def test_full_and_free_share_component_id(self):
        tg = _recurrent_chain_graph()
        order = schedule(tg.outputs)
        cands = mine_candidates(order, {t.key for t in tg.outputs},
                                device=DeviceModel())
        from collections import Counter

        per_component = Counter(c.component_id for c in cands)
        assert max(per_component.values()) <= 2

    def test_chain_recompute_reduces_footprint(self):
        tg = _recurrent_chain_graph()
        before = TrainingExecutor(tg).peak_bytes
        report = optimize(tg, EchoConfig(overhead_budget_fraction=0.5))
        assert report.optimized_peak_bytes < before
        assert report.accepted

    def test_chain_numerics_bitwise(self):
        from repro.nn import ParamStore

        tg = _recurrent_chain_graph()
        gen = np.random.default_rng(0)
        feeds = {"rc_x": gen.standard_normal((12, 16, 64)).astype(np.float32)}
        params = {
            name: gen.standard_normal(t.shape).astype(np.float32) * 0.2
            for name, t in tg.params.items()
        }
        l0, g0, _ = TrainingExecutor(tg).run(feeds, params)
        optimize(tg, EchoConfig(overhead_budget_fraction=0.5))
        l1, g1, _ = TrainingExecutor(tg).run(feeds, params)
        assert l0 == l1
        for name in g0:
            np.testing.assert_array_equal(g0[name], g1[name])


class TestLifetimeGainGuard:
    def test_boundary_consumed_root_not_eliminated(self):
        """A stash whose first backward use is at the boundary (feeds the
        loss head directly) must not appear in any eliminated set."""
        from repro.nn.rnn import unstack_time

        steps, batch, hidden = 10, 8, 16
        x = O.placeholder((steps, batch, hidden), name="lg_x")
        w = O.variable((4, hidden), name="lg_w")
        labels = O.placeholder((steps * batch,), np.int64, name="lg_y")
        pieces = [O.expand_dims(O.tanh(s), 0) for s in unstack_time(x)]
        stacked = O.concat(pieces, axis=0)  # consumed by head backward early
        flat = O.reshape(stacked, (steps * batch, hidden))
        logits = O.fully_connected(flat, w)
        # Cross-entropy head: its gradient consumes `flat` via the weight
        # gradient within the first couple of backward nodes.
        loss = O.softmax_cross_entropy(logits, labels)
        tg = compile_training(loss, {"lg_w": w}, _collect_placeholders(loss))
        order = schedule(tg.outputs)
        cands = mine_candidates(order, {t.key for t in tg.outputs},
                                device=DeviceModel())
        flat_key = flat.key
        for c in cands:
            assert flat_key not in {t.key for t in c.eliminated}

    def test_preserved_keys_stay_stashed_after_apply(self):
        tg = _recurrent_chain_graph()
        report = optimize(tg, EchoConfig(overhead_budget_fraction=0.5))
        preserved = set()
        for cand in report.accepted:
            preserved |= set(cand.preserved)
        if not preserved:
            pytest.skip("no preserved stashes in this build")
        order = schedule(tg.outputs)
        # Preserved tensors must still be consumed by backward nodes.
        still_stashed = set()
        for node in order:
            if node.stage is Stage.BACKWARD:
                still_stashed.update(t.key for t in node.inputs)
        assert preserved <= still_stashed


class TestChainMirrorScheduling:
    def test_chain_mirrors_front_load_the_backward(self):
        """Mirrors that feed the first backward step must be scheduled at
        the front of the backward pass (the priority-propagation fix)."""
        tg = _recurrent_chain_graph(steps=16)
        optimize(tg, EchoConfig(overhead_budget_fraction=0.5))
        order = schedule(tg.outputs)
        pos = {n.uid: i for i, n in enumerate(order)}
        stages = [n.stage for n in order]
        if Stage.RECOMPUTE not in stages:
            pytest.skip("no mirrors accepted")
        boundary = next(
            i for i, n in enumerate(order) if n.stage is not Stage.FORWARD
        )
        chain_mirrors = [
            n for n in order
            if n.stage is Stage.RECOMPUTE and n.op.name == "lstm_gates"
        ]
        if not chain_mirrors:
            pytest.skip("chain variant not selected")
        span = max(pos[n.uid] for n in chain_mirrors) - boundary
        backward_len = len(order) - boundary
        # The whole chain replays within the first third of the backward.
        assert span < backward_len / 3

    def test_non_chain_mirrors_stay_lazy(self):
        """Independent per-step regions still recompute just-in-time."""
        batch, seq, hidden, steps = 8, 12, 16, 6
        keys = O.placeholder((batch, seq, hidden), name="lz_keys")
        w = O.variable((hidden, hidden), name="lz_w")
        v = O.variable((1, hidden), name="lz_v")
        total = None
        for t in range(steps):
            q = O.placeholder((batch, hidden), name=f"lz_q{t}")
            interior = O.tanh(O.add(O.expand_dims(
                O.fully_connected(q, w), 1), keys))
            flat = O.reshape(interior, (batch * seq, hidden))
            term = O.reduce_sum(O.fully_connected(flat, v))
            total = term if total is None else O.add(total, term)
        tg = compile_training(total, {"lz_w": w, "lz_v": v},
                              _collect_placeholders(total))
        optimize(tg, EchoConfig(overhead_budget_fraction=0.5))
        order = schedule(tg.outputs)
        pos = {n.uid: i for i, n in enumerate(order)}
        consumers = {}
        for n in order:
            for t in n.inputs:
                consumers.setdefault(t.node.uid, []).append(n)
        mirrors = [n for n in order
                   if n.stage is Stage.RECOMPUTE and n.op.name == "tanh"]
        assert mirrors
        for m in mirrors:
            first_use = min(pos[c.uid] for c in consumers[m.uid])
            assert first_use - pos[m.uid] < 25, (
                "mirror computed long before its first consumer"
            )
