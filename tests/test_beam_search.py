"""Tests for beam-search decoding."""

import numpy as np
import pytest

from repro.data import TranslationTask
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend
from repro.train import (
    Adam,
    BeamSearchDecoder,
    GreedyDecoder,
    Trainer,
)
from repro.ops.softmax import log_softmax_array


@pytest.fixture(scope="module")
def trained_model():
    """A small NMT model trained enough to have non-trivial preferences."""
    cfg = NmtConfig(
        src_vocab_size=60, tgt_vocab_size=60, embed_size=24, hidden_size=24,
        encoder_layers=1, decoder_layers=1, src_len=8, tgt_len=8,
        batch_size=8, backend=Backend.CUDNN,
    )
    task = TranslationTask(60, 60, 8, 8)
    model = build_nmt(cfg)
    params = model.store.initialize()
    trainer = Trainer(model.graph, params, Adam(5e-3))
    rng = np.random.default_rng(0)
    for _ in range(150):
        trainer.step(task.sample_batch(cfg.batch_size, rng))
    val = task.sample_batch(cfg.batch_size, np.random.default_rng(99))
    return cfg, model, params, val


def _sequence_log_prob(cfg, store, params, src, tokens, bos=1, eos=2):
    """Teacher-forced log-probability of a token sequence (via the
    greedy step graph, stepping through the given tokens)."""
    from repro.models.nmt import build_decoder_step, build_encoder_inference
    from repro.runtime import GraphExecutor

    enc_ex = GraphExecutor([build_encoder_inference(cfg, store)])
    step = build_decoder_step(cfg, store)
    step_ex = GraphExecutor(step.outputs)

    enc = enc_ex.run({"infer_src_tokens": src}, params).outputs[0]
    batch = cfg.batch_size
    att = np.zeros((batch, cfg.hidden_size), np.float32)
    states = [
        (np.zeros((batch, cfg.hidden_size), np.float32),
         np.zeros((batch, cfg.hidden_size), np.float32))
        for _ in range(cfg.decoder_layers)
    ]
    prev = np.full((1, batch), bos, np.int64)
    totals = np.zeros(batch)
    done = np.zeros(batch, bool)
    max_steps = max((len(t) for t in tokens), default=0) + 1
    for t in range(max_steps):
        feeds = {"step_prev_token": prev, "step_att_hidden": att,
                 "step_encoder_states": enc}
        for layer, (h, c) in enumerate(states):
            feeds[f"step_h{layer}"] = h
            feeds[f"step_c{layer}"] = c
        out = step_ex.run(feeds, params).outputs
        logits, att = out[0], out[1]
        states = [(out[2 + 2 * i], out[3 + 2 * i])
                  for i in range(cfg.decoder_layers)]
        logp = log_softmax_array(logits)
        nxt = np.full(batch, eos, np.int64)
        for b in range(batch):
            if done[b]:
                continue
            target = tokens[b][t] if t < len(tokens[b]) else eos
            totals[b] += logp[b, target]
            if target == eos or t >= len(tokens[b]):
                done[b] = True
            nxt[b] = target
        if done.all():
            break
        prev = nxt.reshape(1, batch)
    return totals


class TestBeamBasics:
    def test_beam_one_equals_greedy(self, trained_model):
        cfg, model, params, val = trained_model
        greedy = GreedyDecoder(cfg, model.store)
        beam1 = BeamSearchDecoder(cfg, model.store, beam_size=1)
        assert (greedy.translate(val["src_tokens"], params)
                == beam1.translate(val["src_tokens"], params))

    def test_deterministic(self, trained_model):
        cfg, model, params, val = trained_model
        beam = BeamSearchDecoder(cfg, model.store, beam_size=3)
        a = beam.translate(val["src_tokens"], params)
        b = beam.translate(val["src_tokens"], params)
        assert a == b

    def test_invalid_beam_size(self, trained_model):
        cfg, model, *_ = trained_model
        with pytest.raises(ValueError):
            BeamSearchDecoder(cfg, model.store, beam_size=0)

    def test_n_best_sorted_and_distinct_scores(self, trained_model):
        cfg, model, params, val = trained_model
        beam = BeamSearchDecoder(cfg, model.store, beam_size=4)
        n_best = beam.translate_n_best(val["src_tokens"], params)
        assert all(len(beams) == 4 for beams in n_best)
        for beams in n_best:
            norm = [h.normalized_score(1.0) for h in beams]
            assert norm == sorted(norm, reverse=True)

    def test_outputs_respect_max_len_and_eos(self, trained_model):
        cfg, model, params, val = trained_model
        beam = BeamSearchDecoder(cfg, model.store, beam_size=3)
        outs = beam.translate(val["src_tokens"], params, max_len=4)
        assert all(len(s) <= 4 for s in outs)
        assert all(2 not in s for s in outs)


class TestBeamQuality:
    def test_beam_scores_better_than_greedy_on_average(self, trained_model):
        """Beam search finds higher-probability sequences than greedy in
        aggregate. (Per-sentence dominance is NOT guaranteed: the greedy
        prefix can be evicted from a finite beam, so we assert the mean
        and the majority, which is the property practitioners rely on.)"""
        cfg, model, params, val = trained_model
        greedy = GreedyDecoder(cfg, model.store)
        beam = BeamSearchDecoder(cfg, model.store, beam_size=4,
                                 length_penalty=0.0)
        g = greedy.translate(val["src_tokens"], params)
        b = beam.translate(val["src_tokens"], params)
        lp_g = _sequence_log_prob(cfg, model.store, params,
                                  val["src_tokens"], g)
        lp_b = _sequence_log_prob(cfg, model.store, params,
                                  val["src_tokens"], b)
        assert lp_b.mean() >= lp_g.mean()
        assert np.mean(lp_b >= lp_g - 1e-4) >= 0.5

    def test_log_softmax_normalized(self):
        x = np.random.default_rng(0).standard_normal((5, 11)).astype(
            np.float32)
        lp = log_softmax_array(x)
        np.testing.assert_allclose(np.exp(lp).sum(axis=1), np.ones(5),
                                   rtol=1e-5)
