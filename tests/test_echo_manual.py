"""Tests for the manual recomputation annotation API (echo.manual)."""

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.echo import apply_manual_recompute, recompute_region
from repro.graph import Stage
from repro.runtime import TrainingExecutor, schedule


def _annotated_graph(steps=3, batch=4, seq=12, hidden=16, annotate=True):
    keys = O.placeholder((batch, seq, hidden), name="man_keys")
    w = O.variable((hidden, hidden), name="man_w")
    v = O.variable((1, hidden), name="man_v")
    total = None
    for t in range(steps):
        q = O.placeholder((batch, hidden), name=f"man_q{t}")
        q_proj = O.fully_connected(q, w)

        def interior():
            combined = O.add(O.expand_dims(q_proj, 1), keys)
            return O.tanh(combined)

        if annotate:
            with recompute_region():
                activated = interior()
        else:
            activated = interior()
        flat = O.reshape(activated, (batch * seq, hidden))
        scores = O.fully_connected(flat, v)
        total = scores if total is None else O.add(total, scores)
    loss = O.reduce_mean(total)
    placeholders = {"man_keys": keys}
    placeholders.update({
        f"man_q{t}": O.placeholder((1,), name="_ignored")  # replaced below
        for t in range(0)
    })
    # collect the real query placeholders from the graph
    from repro.graph import topo_order

    for node in topo_order([loss]):
        if node.op.name == "placeholder":
            placeholders[node.name] = node.out()
    return compile_training(loss, {"man_w": w, "man_v": v}, placeholders)


class TestRecomputeRegionMarking:
    def test_nodes_inside_block_are_marked(self):
        x = O.placeholder((2, 2), name="mark_x")
        with recompute_region():
            y = O.tanh(x)
        z = O.sigmoid(y)
        assert y.node.attrs.get("echo_manual_recompute")
        assert not z.node.attrs.get("echo_manual_recompute")

    def test_nesting(self):
        x = O.placeholder((2, 2), name="mark_n")
        with recompute_region():
            with recompute_region():
                y = O.tanh(x)
            z = O.relu(y)
        assert y.node.attrs.get("echo_manual_recompute")
        assert z.node.attrs.get("echo_manual_recompute")


class TestApplyManualRecompute:
    def test_reduces_footprint(self):
        graph = _annotated_graph()
        before = TrainingExecutor(graph).peak_bytes
        report = apply_manual_recompute(graph)
        after = TrainingExecutor(graph).peak_bytes
        assert after < before
        assert report.accepted

    def test_numerics_bitwise_identical(self):
        graph = _annotated_graph()
        gen = np.random.default_rng(0)
        feeds = {"man_keys": gen.standard_normal((4, 12, 16))
                 .astype(np.float32)}
        for t in range(3):
            feeds[f"man_q{t}"] = gen.standard_normal((4, 16)).astype(np.float32)
        params = {
            "man_w": gen.standard_normal((16, 16)).astype(np.float32),
            "man_v": gen.standard_normal((1, 16)).astype(np.float32),
        }
        l0, g0, _ = TrainingExecutor(graph).run(feeds, params)
        apply_manual_recompute(graph)
        l1, g1, _ = TrainingExecutor(graph).run(feeds, params)
        assert l0 == l1
        for k in g0:
            np.testing.assert_array_equal(g0[k], g1[k])

    def test_unannotated_graph_raises(self):
        graph = _annotated_graph(annotate=False)
        with pytest.raises(ValueError, match="no nodes are marked"):
            apply_manual_recompute(graph)

    def test_marks_consumed_after_apply(self):
        graph = _annotated_graph()
        apply_manual_recompute(graph)
        order = schedule(graph.outputs)
        forward_marks = [
            n for n in order
            if n.stage is Stage.FORWARD
            and n.attrs.get("echo_manual_recompute")
        ]
        assert not forward_marks
        with pytest.raises(ValueError):
            apply_manual_recompute(graph)  # nothing left to do

    def test_footprint_increase_rejected(self):
        """Annotating an X-shape (big border, tiny stashed interior) must
        raise: recomputing it would extend the big input's lifetime into
        the backward pass, *increasing* the footprint."""
        x = O.placeholder((64, 64), name="bad_x")
        w = O.variable((1024, 64), name="bad_w")
        total = None
        # Several X-shapes: each annotation keeps a [64 x 1024] border
        # alive into the backward pass; together they exceed the baseline
        # peak (where only one such tensor was ever live at a time).
        for i in range(6):
            big = O.fully_connected(O.add_scalar(x, float(i)), w)
            with recompute_region():
                y = O.reduce_mean(big, axis=1, keepdims=True)
            term = O.reduce_sum(O.mul(y, y))  # backward reads y
            total = term if total is None else O.add(total, term)
        graph = compile_training(total, {"bad_w": w}, {"bad_x": x})
        with pytest.raises(RuntimeError, match="increased the footprint"):
            apply_manual_recompute(graph)
