"""Tests for the Echo pass: mining, rewriting, and its guarantees.

The two load-bearing properties, tested end-to-end on real models:
1. numerics are bitwise identical with and without the pass;
2. the measured peak footprint never increases (and drops substantially
   on attention models).
"""

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.echo import (
    EchoConfig,
    EchoPass,
    mine_candidates,
    optimize,
    stashed_tensors,
)
from repro.echo.baselines import recompute_all, sublinear_checkpoint
from repro.graph import Stage, scope
from repro.gpumodel import DeviceModel
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend
from repro.runtime import TrainingExecutor, schedule, validate_schedule


def _o_shape_graph(batch=8, seq=16, hidden=32, steps=4):
    """A multi-step O-shape, like the decoder's attention: each step has a
    small GEMM input and a [B x T x H] cheap interior; the interiors of all
    steps are stashed simultaneously at the forward/backward boundary,
    which is what recomputation eliminates. (A single-step region has an
    irreducible peak — its interior is live at its own backward moment —
    and Echo's verify-replan correctly rejects it.)"""
    queries = [
        O.placeholder((batch, hidden), name=f"q{t}") for t in range(steps)
    ]
    keys = O.placeholder((batch, seq, hidden), name="keys")
    w = O.variable((hidden, hidden), name="w")
    v = O.variable((1, hidden), name="v")
    score_sum = None
    for t in range(steps):
        with scope("attention"):
            q_proj = O.fully_connected(queries[t], w)
            combined = O.add(O.expand_dims(q_proj, 1), keys)  # interior
            activated = O.tanh(combined)  # interior
            flat = O.reshape(activated, (batch * seq, hidden))
            scores = O.fully_connected(flat, v)
        score_sum = scores if score_sum is None else O.add(score_sum, scores)
    loss = O.reduce_mean(score_sum)
    placeholders = {f"q{t}": q for t, q in enumerate(queries)}
    placeholders["keys"] = keys
    return compile_training(loss, {"w": w, "v": v}, placeholders)


def _tiny_nmt(backend=Backend.CUDNN, seed=0):
    cfg = NmtConfig(
        src_vocab_size=80, tgt_vocab_size=80, embed_size=24, hidden_size=24,
        encoder_layers=1, decoder_layers=1, src_len=8, tgt_len=8,
        batch_size=4, backend=backend,
    )
    model = build_nmt(cfg)
    rng = np.random.default_rng(seed)
    feeds = {
        "src_tokens": rng.integers(3, 80, (8, 4)),
        "tgt_tokens": rng.integers(3, 80, (8, 4)),
        "tgt_labels": rng.integers(3, 80, (8, 4)),
    }
    return model, feeds


class TestStashDetection:
    def test_tanh_output_is_stashed(self):
        tg = _o_shape_graph()
        order = schedule(tg.outputs)
        stashes = stashed_tensors(order, {t.key for t in tg.outputs})
        stashed_ops = {t.node.op.name for t in stashes.values()}
        assert "tanh" in stashed_ops

    def test_placeholders_never_stashed(self):
        tg = _o_shape_graph()
        order = schedule(tg.outputs)
        stashes = stashed_tensors(order, {t.key for t in tg.outputs})
        assert all(
            t.node.op.name not in ("placeholder", "variable")
            for t in stashes.values()
        )


class TestCandidateMining:
    def test_finds_o_shape(self):
        tg = _o_shape_graph()
        order = schedule(tg.outputs)
        cands = mine_candidates(order, {t.key for t in tg.outputs},
                                device=DeviceModel())
        best = max(cands, key=lambda c: c.benefit_bytes)
        assert best.is_o_shape
        # interior is B*T*H floats, at least twice (combined + activated)
        assert best.eliminated_bytes >= 2 * 8 * 16 * 32 * 4

    def test_no_gemm_in_candidates_by_default(self):
        tg = _o_shape_graph()
        order = schedule(tg.outputs)
        cands = mine_candidates(order, {t.key for t in tg.outputs})
        for cand in cands:
            assert all(
                n.op.name not in ("matmul", "fully_connected", "batch_dot")
                for n in cand.nodes
            )

    def test_allow_gemm_expands_regions(self):
        tg = _o_shape_graph()
        order = schedule(tg.outputs)
        keys = {t.key for t in tg.outputs}
        without = mine_candidates(order, keys)
        with_gemm = mine_candidates(order, keys, allow_gemm=True)
        assert all(
            n.op.name != "fully_connected"
            for c in without for n in c.nodes
        )
        assert any(
            n.op.name == "fully_connected"
            for c in with_gemm for n in c.nodes
        )


#: Generous budget for micro-graphs, whose fixed per-kernel costs dwarf
#: their (tiny) iteration time; these tests target the rewrite mechanics.
_LOOSE = EchoConfig(overhead_budget_fraction=0.5)


class TestEchoRewrite:
    def test_footprint_decreases(self):
        tg = _o_shape_graph()
        before = TrainingExecutor(tg).peak_bytes
        report = optimize(tg, _LOOSE)
        after = TrainingExecutor(tg).peak_bytes
        assert after < before
        assert report.optimized_peak_bytes == after
        assert report.baseline_peak_bytes == before

    def test_schedule_remains_valid(self):
        tg = _o_shape_graph()
        optimize(tg, _LOOSE)
        validate_schedule(schedule(tg.outputs))

    def test_mirror_nodes_tagged(self):
        tg = _o_shape_graph()
        report = optimize(tg, _LOOSE)
        assert report.accepted
        order = schedule(tg.outputs)
        mirrors = [n for n in order if n.stage is Stage.RECOMPUTE]
        assert mirrors
        assert all(m.mirror_of is not None for m in mirrors)
        assert all(m.op is m.mirror_of.op for m in mirrors)

    def test_bitwise_identical_results(self):
        model, feeds = _tiny_nmt()
        params = model.store.initialize()
        l0, g0, _ = TrainingExecutor(model.graph).run(feeds, params)
        report = optimize(model.graph)
        assert report.accepted, "pass should fire on an attention model"
        l1, g1, _ = TrainingExecutor(model.graph).run(feeds, params)
        assert l0 == l1
        for name in g0:
            np.testing.assert_array_equal(g0[name], g1[name])

    def test_bitwise_identical_with_dropout(self):
        cfg = NmtConfig(
            src_vocab_size=80, tgt_vocab_size=80, embed_size=24,
            hidden_size=24, encoder_layers=1, decoder_layers=1,
            src_len=8, tgt_len=8, batch_size=4, dropout=0.3,
            backend=Backend.CUDNN,
        )
        model = build_nmt(cfg)
        rng = np.random.default_rng(1)
        feeds = {
            "src_tokens": rng.integers(3, 80, (8, 4)),
            "tgt_tokens": rng.integers(3, 80, (8, 4)),
            "tgt_labels": rng.integers(3, 80, (8, 4)),
        }
        params = model.store.initialize()
        ex0 = TrainingExecutor(model.graph)
        l0, _, _ = ex0.run(feeds, params)
        optimize(model.graph)
        ex1 = TrainingExecutor(model.graph)
        l1, _, _ = ex1.run(feeds, params)
        # Executors advance the dropout stream identically (fresh ones
        # both start at iteration 0), so losses must match exactly.
        assert l0 == l1

    def test_overhead_within_budget(self):
        model, _ = _tiny_nmt()
        config = EchoConfig(overhead_budget_fraction=0.05)
        report = EchoPass(config).run(model.graph)
        assert report.overhead_fraction <= 0.05 + 1e-9

    def test_zero_budget_accepts_only_free_candidates(self):
        model, _ = _tiny_nmt()
        config = EchoConfig(overhead_budget_fraction=0.0)
        report = EchoPass(config).run(model.graph)
        # With zero budget, anything accepted must have zero marginal cost
        # (hidden entirely in the non-binding stream's slack).
        assert report.overhead_fraction == 0.0

    def test_attention_fraction_collapses_on_nmt(self):
        cfg = NmtConfig(
            src_vocab_size=200, tgt_vocab_size=200, embed_size=64,
            hidden_size=64, encoder_layers=1, decoder_layers=1,
            src_len=16, tgt_len=16, batch_size=16, backend=Backend.CUDNN,
        )
        model = build_nmt(cfg)
        plan_before = TrainingExecutor(model.graph).memory_plan
        att_before = plan_before.scope_breakdown().get("attention", 0)
        optimize(model.graph)
        plan_after = TrainingExecutor(model.graph).memory_plan
        att_after = plan_after.scope_breakdown().get("attention", 0)
        assert att_after < att_before / 3

    def test_pass_is_rerunnable_noop(self):
        """Second run finds nothing big: stashes are already eliminated."""
        tg = _o_shape_graph()
        first = optimize(tg, _LOOSE)
        second = optimize(tg, _LOOSE)
        assert second.bytes_saved <= first.bytes_saved
        assert second.optimized_peak_bytes <= first.optimized_peak_bytes


class TestWorkspaceSharing:
    def test_eager_scheduling_spikes_workspace(self):
        """The Section 4.1.2 ablation: hoisting all recompute to the start
        of the backward pass makes mirror outputs coexist."""
        model_shared, _ = _tiny_nmt(seed=2)
        model_eager, _ = _tiny_nmt(seed=2)
        shared = EchoPass(EchoConfig(workspace_sharing=True)).run(
            model_shared.graph
        )
        eager = EchoPass(EchoConfig(workspace_sharing=False)).run(
            model_eager.graph
        )
        assert shared.optimized_peak_bytes <= eager.optimized_peak_bytes

    def test_eager_rollback_never_worse_than_baseline(self):
        model, _ = _tiny_nmt(seed=3)
        report = EchoPass(EchoConfig(workspace_sharing=False)).run(model.graph)
        assert report.optimized_peak_bytes <= report.baseline_peak_bytes


class TestBaselines:
    def test_sublinear_checkpoint_saves_memory(self):
        model, feeds = _tiny_nmt(seed=4)
        params = model.store.initialize()
        l0, g0, _ = TrainingExecutor(model.graph).run(feeds, params)
        report = sublinear_checkpoint(model.graph)
        assert report.optimized_peak_bytes < report.baseline_peak_bytes
        l1, g1, _ = TrainingExecutor(model.graph).run(feeds, params)
        assert l0 == l1
        for name in g0:
            np.testing.assert_array_equal(g0[name], g1[name])

    def test_sublinear_costs_more_time_than_echo(self):
        m1, _ = _tiny_nmt(seed=5)
        m2, _ = _tiny_nmt(seed=5)
        echo = optimize(m1.graph)
        chen = sublinear_checkpoint(m2.graph)
        assert chen.overhead_fraction > echo.overhead_fraction

    def test_recompute_all_saves_at_least_as_much_as_echo(self):
        m1, _ = _tiny_nmt(seed=6)
        m2, _ = _tiny_nmt(seed=6)
        echo = optimize(m1.graph)
        extreme = recompute_all(m2.graph)
        assert extreme.optimized_peak_bytes <= echo.optimized_peak_bytes * 1.05


class TestConfigValidation:
    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            EchoConfig(overhead_budget_fraction=1.5)

    def test_negative_min_benefit_rejected(self):
        with pytest.raises(ValueError):
            EchoConfig(min_benefit_bytes=-1)
