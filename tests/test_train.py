"""Tests for optimizers, metrics, and the training loop."""

import math

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.train import SGD, Adam, Speedometer, Trainer, corpus_bleu
from repro.train.metrics import perplexity, sentence_clip_counts, token_accuracy
from repro.train.optimizer import Optimizer


class TestSgd:
    def test_plain_update(self):
        opt = SGD(learning_rate=0.5)
        params = {"w": np.array([1.0, 2.0], np.float32)}
        grads = {"w": np.array([0.2, -0.4], np.float32)}
        opt.update(params, grads)
        np.testing.assert_allclose(params["w"], [0.9, 2.2], rtol=1e-6)

    def test_momentum_accumulates(self):
        opt = SGD(learning_rate=1.0, momentum=0.9)
        params = {"w": np.zeros(1, np.float32)}
        grads = {"w": np.ones(1, np.float32)}
        opt.update(params, grads)   # v=1, w=-1
        opt.update(params, grads)   # v=1.9, w=-2.9
        np.testing.assert_allclose(params["w"], [-2.9], rtol=1e-6)
        assert opt.state_copies == 1.0

    def test_clipping_rescales(self):
        opt = SGD(learning_rate=1.0, clip_norm=1.0)
        params = {"w": np.zeros(2, np.float32)}
        grads = {"w": np.array([3.0, 4.0], np.float32)}  # norm 5
        norm = opt.update(params, grads)
        assert abs(norm - 5.0) < 1e-6
        np.testing.assert_allclose(
            np.linalg.norm(params["w"]), 1.0, rtol=1e-5
        )

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step is ~lr * sign(g)."""
        opt = Adam(learning_rate=0.01)
        params = {"w": np.zeros(3, np.float32)}
        grads = {"w": np.array([1.0, -2.0, 0.5], np.float32)}
        opt.update(params, grads)
        np.testing.assert_allclose(
            params["w"], [-0.01, 0.01, -0.01], rtol=1e-3
        )

    def test_matches_reference_implementation(self):
        opt = Adam(learning_rate=0.1, beta1=0.9, beta2=0.999)
        w = np.array([0.3], np.float64)
        params = {"w": w.copy().astype(np.float32)}
        m = v = 0.0
        ref = w.copy()
        rng = np.random.default_rng(0)
        for step in range(1, 6):
            g = rng.standard_normal(1)
            opt.update(params, {"w": g.astype(np.float32)})
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            m_hat = m / (1 - 0.9 ** step)
            v_hat = v / (1 - 0.999 ** step)
            ref -= 0.1 * m_hat / (np.sqrt(v_hat) + 1e-8)
        np.testing.assert_allclose(params["w"], ref, rtol=1e-4)

    def test_state_copies_for_profiler(self):
        assert Adam().state_copies == 2.0

    def test_base_class_abstract(self):
        opt = Optimizer(0.1)
        with pytest.raises(NotImplementedError):
            opt.update({"w": np.zeros(1)}, {"w": np.ones(1)})


class TestMetrics:
    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert abs(perplexity(math.log(50.0)) - 50.0) < 1e-9
        assert math.isfinite(perplexity(1000.0))  # clamped

    def test_bleu_known_value(self):
        # hyp 4-token, ref 4-token, 3 unigram matches, 2 bigram, 1 trigram
        hyp = [[5, 6, 7, 9]]
        ref = [[5, 6, 7, 8]]
        score = corpus_bleu(hyp, ref, max_order=2, smooth=False)
        # p1 = 3/4, p2 = 2/3, BP = 1 -> 100*sqrt(0.5) = 70.71
        assert abs(score - 100 * math.sqrt(0.5)) < 0.01

    def test_bleu_brevity_penalty(self):
        hyp = [[5, 6]]
        ref = [[5, 6, 7, 8]]
        score = corpus_bleu(hyp, ref, max_order=1, smooth=False)
        assert abs(score - 100 * math.exp(1 - 2.0)) < 0.01

    def test_bleu_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1], [2]])

    def test_bleu_empty_corpus(self):
        assert corpus_bleu([], []) == 0.0

    def test_clip_counts(self):
        matches, total = sentence_clip_counts([1, 1, 1], [1, 1], 1)
        assert (matches, total) == (2, 3)  # clipping caps repeats

    def test_token_accuracy_ignores_padding(self):
        preds = [[1, 2, 3]]
        labels = [[1, 9, -1]]
        assert token_accuracy(preds, labels) == 0.5


class TestSpeedometer:
    def test_windowed_throughput(self):
        meter = Speedometer(window=3)
        for i in range(5):
            meter.update(samples=i * 10, sim_seconds=i * 1.0)
        assert abs(meter.throughput() - 10.0) < 1e-9

    def test_insufficient_data(self):
        meter = Speedometer()
        assert meter.throughput() == 0.0
        meter.update(10, 1.0)
        assert meter.throughput() == 0.0


def _toy_graph(batch=4, dim=6, classes=5):
    x = O.placeholder((batch, dim), name="tx")
    labels = O.placeholder((batch,), np.int64, name="ty")
    w = O.variable((classes, dim), name="tw")
    loss = O.softmax_cross_entropy(O.fully_connected(x, w), labels)
    return compile_training(loss, {"tw": w}, {"tx": x, "ty": labels})


class TestTrainer:
    def _make(self):
        graph = _toy_graph()
        params = {"tw": np.random.default_rng(0)
                  .standard_normal((5, 6)).astype(np.float32) * 0.1}
        return Trainer(graph, params, SGD(0.5), batch_size=4)

    def _feeds(self, seed=0):
        gen = np.random.default_rng(seed)
        return {"tx": gen.standard_normal((4, 6)).astype(np.float32),
                "ty": gen.integers(0, 5, 4)}

    def test_history_and_clock_advance(self):
        trainer = self._make()
        r1 = trainer.step(self._feeds(1))
        r2 = trainer.step(self._feeds(2))
        assert r2.step == r1.step + 1
        assert r2.sim_seconds > r1.sim_seconds
        assert r2.samples_seen == 8
        assert len(trainer.history) == 2

    def test_loss_decreases_on_fixed_batch(self):
        trainer = self._make()
        feeds = self._feeds(3)
        first = trainer.step(feeds).loss
        for _ in range(20):
            last = trainer.step(feeds).loss
        assert last < first

    def test_divergence_detected(self):
        graph = _toy_graph()
        params = {"tw": np.full((5, 6), np.nan, np.float32)}
        trainer = Trainer(graph, params, SGD(0.1), batch_size=4)
        with pytest.raises(FloatingPointError, match="diverged"):
            trainer.step(self._feeds(4))

    def test_throughput_positive(self):
        trainer = self._make()
        assert trainer.throughput() > 0
        assert trainer.iteration_seconds > 0
        assert trainer.power_watts() > 0

    def test_batch_inference_requires_2d_placeholder(self):
        x = O.placeholder((4,), name="bi_x")
        w = O.variable((4,), name="bi_w")
        loss = O.reduce_mean(O.mul(x, w))
        graph = compile_training(loss, {"bi_w": w}, {"bi_x": x})
        with pytest.raises(ValueError):
            Trainer(graph, {"bi_w": np.ones(4, np.float32)}, SGD(0.1))

    def test_run_epoch(self):
        trainer = self._make()
        records = trainer.run_epoch(self._feeds(i) for i in range(5))
        assert len(records) == 5
