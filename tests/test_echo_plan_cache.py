"""Plan-cache memoization must not change anything the Echo pass reports.

The pass re-plans the graph at entry, after applying rewrites, and once
per rollback victim. With a :class:`PlanCache` those re-plans are memoized
by graph signature; with a :class:`NullPlanCache` every one is rebuilt
from scratch (the seed behavior). The reports must be identical field for
field — the cache may only change how fast the pass runs, never what it
decides.
"""

from dataclasses import replace

import numpy as np

from repro.echo import EchoConfig, EchoPass
from repro.models import NmtConfig, WordLmConfig, build_nmt, build_word_lm
from repro.nn import Backend
from repro.runtime import NullPlanCache, PlanCache

SMALL_NMT = NmtConfig(
    src_vocab_size=120,
    tgt_vocab_size=120,
    embed_size=16,
    hidden_size=16,
    encoder_layers=1,
    decoder_layers=1,
    src_len=10,
    tgt_len=10,
    batch_size=4,
    backend=Backend.CUDNN,
)

SMALL_LM = WordLmConfig(
    vocab_size=120,
    embed_size=16,
    hidden_size=16,
    num_layers=2,
    seq_len=12,
    batch_size=4,
    backend=Backend.CUDNN,
)


def _report_fields(report):
    return {
        "baseline_peak_bytes": report.baseline_peak_bytes,
        "optimized_peak_bytes": report.optimized_peak_bytes,
        "candidates_found": report.candidates_found,
        # component ids embed globally-unique node uids; compare the
        # decisions structurally instead
        "num_accepted": len(report.accepted),
        "accepted_benefit": [c.benefit_bytes for c in report.accepted],
        "accepted_recompute": [c.recompute_seconds for c in report.accepted],
        "rejected_low_benefit": report.rejected_low_benefit,
        "rejected_budget": report.rejected_budget,
        "rolled_back": report.rolled_back,
        "recompute_seconds": report.recompute_seconds,
        "iteration_seconds": report.iteration_seconds,
    }


def _parity(build_model):
    cached_cache = PlanCache()
    cached = EchoPass(
        EchoConfig(), plan_cache=cached_cache
    ).run(build_model().graph)
    uncached = EchoPass(
        EchoConfig(), plan_cache=NullPlanCache()
    ).run(build_model().graph)
    assert _report_fields(cached) == _report_fields(uncached)
    return cached, cached_cache


class TestEchoPlanCacheParity:
    def test_nmt_report_identical(self):
        report, cache = _parity(lambda: build_nmt(SMALL_NMT))
        assert report.candidates_found > 0
        # The rollback/replan loop revisits identical graph states, so the
        # memoized pass must actually hit.
        assert cache.hits + cache.misses > 0

    def test_word_lm_report_identical(self):
        report, _ = _parity(lambda: build_word_lm(SMALL_LM))
        assert report.candidates_found > 0

    def test_repeat_pass_on_same_graph_hits_cache(self):
        """Re-running planning for the optimized graph (what a Trainer
        does right after the pass) is served from the cache."""
        cache = PlanCache()
        model = build_nmt(SMALL_NMT)
        EchoPass(EchoConfig(), plan_cache=cache).run(model.graph)
        misses_before = cache.misses
        from repro.runtime import GraphExecutor

        GraphExecutor(model.graph.outputs, plan_cache=cache)
        # schedule + memory plan for the final graph state were already
        # built inside the pass; only the compiled plan is new.
        assert cache.misses - misses_before <= 1
        assert cache.hits > 0

    def test_peak_memory_matches_replanned_figure(self):
        """The cached optimized plan equals a from-scratch replan."""
        from repro.runtime import plan_memory, schedule

        model = build_nmt(SMALL_NMT)
        report = EchoPass(EchoConfig(), plan_cache=PlanCache()).run(model.graph)
        fresh = plan_memory(schedule(model.graph.outputs), model.graph.outputs)
        assert report.optimized_peak_bytes == fresh.peak_bytes

    def test_batch_size_variants_cached_independently(self):
        """Different shapes (the bucketing case) never collide."""
        cache = PlanCache()
        a = EchoPass(EchoConfig(), plan_cache=cache).run(
            build_nmt(SMALL_NMT).graph
        )
        b = EchoPass(EchoConfig(), plan_cache=cache).run(
            build_nmt(replace(SMALL_NMT, batch_size=8)).graph
        )
        assert a.baseline_peak_bytes < b.baseline_peak_bytes
        assert np.isfinite(a.recompute_seconds)
        assert np.isfinite(b.recompute_seconds)
