"""Tests for length bucketing and the bucketed trainer."""

import numpy as np
import pytest

from repro.data import (
    BucketedTranslationBatches,
    BucketSpec,
    TranslationTask,
    bucket_for,
    default_buckets,
)
from repro.models import NmtConfig
from repro.nn import Backend
from repro.train import Adam, BucketedTrainer


def _cfg(**over):
    base = dict(
        src_vocab_size=80, tgt_vocab_size=80, embed_size=16, hidden_size=16,
        encoder_layers=1, decoder_layers=1, src_len=12, tgt_len=12,
        batch_size=8, backend=Backend.CUDNN,
    )
    base.update(over)
    return NmtConfig(**base)


class TestBucketSpecs:
    def test_default_buckets_cover_max(self):
        buckets = default_buckets(35, step=10)
        assert buckets[-1].src_len == 35
        assert [b.src_len for b in buckets] == [10, 20, 30, 35]

    def test_bucket_for_picks_smallest_fit(self):
        buckets = default_buckets(30, step=10)
        assert bucket_for(7, buckets).src_len == 10
        assert bucket_for(10, buckets).src_len == 10
        assert bucket_for(11, buckets).src_len == 20

    def test_too_long_rejected(self):
        buckets = default_buckets(20, step=10)
        with pytest.raises(ValueError, match="exceeds"):
            bucket_for(25, buckets)

    def test_degenerate_bucket_rejected(self):
        with pytest.raises(ValueError):
            BucketSpec(src_len=10, tgt_len=5)


class TestBucketedBatches:
    def test_batches_fit_their_bucket(self):
        task = TranslationTask(80, 80, 12, 12)
        data = BucketedTranslationBatches(
            task, default_buckets(12, step=6), batch_size=4, seed=1
        )
        for _ in range(10):
            bucket, feeds = data.sample()
            assert feeds["src_tokens"].shape == (bucket.src_len, 4)
            assert feeds["tgt_labels"].shape == (bucket.tgt_len, 4)

    def test_task_must_cover_buckets(self):
        task = TranslationTask(80, 80, 8, 8)
        with pytest.raises(ValueError, match="cover"):
            BucketedTranslationBatches(
                task, default_buckets(12, step=6), batch_size=4
            )


class TestBucketedTrainer:
    def _make(self, echo=False):
        buckets = default_buckets(12, step=6)
        trainer = BucketedTrainer(_cfg(), buckets, Adam(3e-3), echo=echo)
        task = TranslationTask(80, 80, 12, 12)
        data = BucketedTranslationBatches(task, buckets, batch_size=8, seed=2)
        return trainer, data

    def test_parameters_shared_across_buckets(self):
        trainer, _ = self._make()
        param_dicts = {
            id(t.params) for t in trainer._trainers.values()
        }
        assert len(param_dicts) == 1

    def test_training_across_buckets_converges(self):
        trainer, data = self._make()
        losses = []
        for _ in range(30):
            bucket, feeds = data.sample()
            losses.append(trainer.step(bucket, feeds).loss)
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_peak_set_by_largest_bucket(self):
        trainer, _ = self._make()
        per_bucket = [
            (b.src_len, t.peak_bytes)
            for b, t in trainer._trainers.items()
        ]
        per_bucket.sort()
        assert trainer.peak_bytes == per_bucket[-1][1]
        assert per_bucket[-1][1] > per_bucket[0][1]

    def test_echo_applies_per_bucket(self):
        trainer, _ = self._make(echo=True)
        assert len(trainer.echo_reports) == 2
        largest = max(trainer.echo_reports, key=lambda b: b.src_len)
        assert trainer.echo_reports[largest].footprint_reduction > 1.2

    def test_echo_and_baseline_training_agree(self):
        base_trainer, base_data = self._make(echo=False)
        echo_trainer, echo_data = self._make(echo=True)
        for _ in range(5):
            bucket, feeds = base_data.sample()
            r_base = base_trainer.step(bucket, feeds)
            bucket_e, feeds_e = echo_data.sample()
            r_echo = echo_trainer.step(bucket_e, feeds_e)
            assert bucket_e == bucket  # same seed -> same stream
            assert r_base.loss == r_echo.loss  # bitwise, as always

    def test_unknown_bucket_rejected(self):
        trainer, _ = self._make()
        with pytest.raises(ValueError, match="unknown bucket"):
            trainer.step(BucketSpec(9, 9), {})

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BucketedTrainer(_cfg(), (), Adam(1e-3))

    def test_mean_iteration_time(self):
        trainer, _ = self._make()
        mean = trainer.mean_iteration_seconds()
        times = [t.iteration_seconds for t in trainer._trainers.values()]
        assert min(times) <= mean <= max(times)
