"""Forward-semantics tests: every operator against its numpy reference."""

import numpy as np
import pytest

import repro.ops as O
from repro.graph import ShapeError
from repro.layout import Layout
from repro.runtime import GraphExecutor
from tests.helpers import rng


def run_op(out, feeds=None):
    """Execute a single output tensor with named placeholder feeds."""
    return GraphExecutor([out]).run(feeds or {}).outputs[0]


def place(name, arr):
    return O.placeholder(arr.shape, arr.dtype, name=name)


class TestElementwiseForward:
    def setup_method(self):
        self.a = rng(1).standard_normal((3, 4)).astype(np.float32)
        self.b = rng(2).standard_normal((3, 4)).astype(np.float32) + 2.0

    def _check(self, op, ref):
        pa, pb = place("a", self.a), place("b", self.b)
        out = run_op(op(pa, pb), {"a": self.a, "b": self.b})
        np.testing.assert_allclose(out, ref(self.a, self.b), rtol=1e-6)
        assert out.dtype == np.float32

    def test_add(self):
        self._check(O.add, np.add)

    def test_sub(self):
        self._check(O.sub, np.subtract)

    def test_mul(self):
        self._check(O.mul, np.multiply)

    def test_div(self):
        self._check(O.div, np.divide)

    def test_broadcast_row(self):
        row = self.b[0]
        pa, pb = place("a", self.a), place("b", row)
        out = run_op(O.add(pa, pb), {"a": self.a, "b": row})
        np.testing.assert_allclose(out, self.a + row, rtol=1e-6)

    @pytest.mark.parametrize("c", [-1.5, 0.0, 3.25])
    def test_scalar_ops(self, c):
        pa = place("a", self.a)
        feeds = {"a": self.a}
        np.testing.assert_allclose(
            run_op(O.add_scalar(pa, c), feeds), self.a + np.float32(c),
            rtol=1e-6,
        )
        np.testing.assert_allclose(
            run_op(O.mul_scalar(pa, c), feeds), self.a * np.float32(c),
            rtol=1e-6,
        )
        np.testing.assert_allclose(
            run_op(O.rsub_scalar(pa, c), feeds), np.float32(c) - self.a,
            rtol=1e-6,
        )

    def test_unary_chain(self):
        x = np.abs(self.a) + 0.5
        px = place("x", x)
        out = run_op(O.log(O.sqrt(O.exp(px))), {"x": x})
        np.testing.assert_allclose(out, x / 2.0, rtol=1e-5)

    def test_pow_scalar(self):
        x = np.abs(self.a) + 0.1
        out = run_op(O.pow_scalar(place("x", x), 2.5), {"x": x})
        np.testing.assert_allclose(out, x ** 2.5, rtol=1e-5)


class TestActivationForward:
    def test_tanh_sigmoid_relu(self):
        x = rng(3).standard_normal((5, 7)).astype(np.float32) * 3
        px = place("x", x)
        feeds = {"x": x}
        np.testing.assert_allclose(run_op(O.tanh(px), feeds), np.tanh(x),
                                   rtol=1e-6)
        np.testing.assert_allclose(
            run_op(O.sigmoid(px), feeds), 1 / (1 + np.exp(-x)), rtol=1e-5
        )
        np.testing.assert_allclose(run_op(O.relu(px), feeds),
                                   np.maximum(x, 0))

    def test_sigmoid_extreme_values_stable(self):
        x = np.array([-500.0, -50.0, 0.0, 50.0, 500.0], dtype=np.float32)
        out = run_op(O.sigmoid(place("x", x)), {"x": x})
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[[0, -1]], [0.0, 1.0], atol=1e-20)


class TestMatmulForward:
    def test_matmul_all_transposes(self):
        a = rng(4).standard_normal((3, 5))
        b = rng(5).standard_normal((5, 4))
        for ta in (False, True):
            for tb in (False, True):
                aa = a.T if ta else a
                bb = b.T if tb else b
                pa, pb = place("a", aa), place("b", bb)
                out = run_op(O.matmul(pa, pb, ta=ta, tb=tb),
                             {"a": aa, "b": bb})
                np.testing.assert_allclose(out, a @ b, rtol=1e-6)

    def test_fully_connected_layouts_match(self):
        x = rng(6).standard_normal((4, 8)).astype(np.float32)
        w = rng(7).standard_normal((6, 8)).astype(np.float32)
        bias = rng(8).standard_normal(6).astype(np.float32)
        px, pw, pb = place("x", x), place("w", w), place("b", bias)
        feeds = {"x": x, "w": w, "b": bias}
        row = run_op(O.fully_connected(px, pw, pb, layout=Layout.ROW_MAJOR),
                     feeds)
        col = run_op(O.fully_connected(px, pw, pb, layout=Layout.COL_MAJOR),
                     feeds)
        np.testing.assert_allclose(row, x @ w.T + bias, rtol=1e-5)
        np.testing.assert_allclose(col, row, rtol=1e-5)

    def test_batch_dot(self):
        a = rng(9).standard_normal((2, 3, 5))
        b = rng(10).standard_normal((2, 5, 4))
        out = run_op(O.batch_dot(place("a", a), place("b", b)),
                     {"a": a, "b": b})
        np.testing.assert_allclose(out, a @ b, rtol=1e-6)

    def test_inner_dim_mismatch_raises(self):
        a = O.placeholder((3, 5), name="mm_a")
        b = O.placeholder((4, 4), name="mm_b")
        with pytest.raises(ShapeError):
            O.matmul(a, b)


class TestReduceForward:
    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (0, False), (1, True), (-1, False),
    ])
    def test_reductions(self, axis, keepdims):
        x = rng(11).standard_normal((3, 5))
        px = place("x", x)
        feeds = {"x": x}
        for fn, ref in ((O.reduce_sum, np.sum), (O.reduce_mean, np.mean),
                        (O.reduce_max, np.max)):
            out = run_op(fn(px, axis=axis, keepdims=keepdims), feeds)
            np.testing.assert_allclose(
                out, ref(x, axis=axis, keepdims=keepdims), rtol=1e-6
            )


class TestShapeOpsForward:
    def test_reshape_transpose_roundtrip(self):
        x = rng(12).standard_normal((2, 3, 4))
        px = place("x", x)
        out = run_op(
            O.transpose(O.transpose(px, (2, 0, 1)), (1, 2, 0)), {"x": x}
        )
        np.testing.assert_array_equal(out, x)

    def test_slice_axis(self):
        x = rng(13).standard_normal((4, 6))
        out = run_op(O.slice_axis(place("x", x), 1, 2, 5), {"x": x})
        np.testing.assert_array_equal(out, x[:, 2:5])

    def test_slice_out_of_range_raises(self):
        x = O.placeholder((4, 6), name="sl_x")
        with pytest.raises(ShapeError):
            O.slice_axis(x, 1, 2, 9)

    def test_concat_split_roundtrip(self):
        x = rng(14).standard_normal((6, 4))
        px = place("x", x)
        parts = O.split(px, 3, axis=0)
        out = run_op(O.concat(list(parts), axis=0), {"x": x})
        np.testing.assert_array_equal(out, x)

    def test_split_uneven_raises(self):
        x = O.placeholder((5, 2), name="sp_x")
        with pytest.raises(ShapeError):
            O.split(x, 2, axis=0)

    def test_broadcast_to_and_expand_dims(self):
        x = rng(15).standard_normal((3, 1))
        out = run_op(O.broadcast_to(place("x", x), (2, 3, 5)), {"x": x})
        np.testing.assert_array_equal(out, np.broadcast_to(x, (2, 3, 5)))
        out2 = run_op(O.expand_dims(place("y", x), 0), {"y": x})
        assert out2.shape == (1, 3, 1)

    def test_sequence_reverse(self):
        x = rng(16).standard_normal((5, 2, 3))
        out = run_op(O.sequence_reverse(place("x", x)), {"x": x})
        np.testing.assert_array_equal(out, x[::-1])


class TestSoftmaxAndNormForward:
    def test_softmax_rows_sum_to_one(self):
        x = rng(17).standard_normal((4, 9)) * 5
        out = run_op(O.softmax(place("x", x), axis=-1), {"x": x})
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-6)
        assert np.all(out >= 0)

    def test_softmax_shift_invariance(self):
        x = rng(18).standard_normal((3, 5))
        a = run_op(O.softmax(place("x", x), axis=-1), {"x": x})
        b = run_op(O.softmax(place("y", x + 100.0), axis=-1),
                   {"y": x + 100.0})
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_layer_norm_statistics(self):
        x = rng(19).standard_normal((6, 16)).astype(np.float32) * 3 + 2
        gamma = np.ones(16, np.float32)
        beta = np.zeros(16, np.float32)
        out = run_op(
            O.layer_norm(place("x", x), place("g", gamma), place("b", beta)),
            {"x": x, "g": gamma, "b": beta},
        )
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(6), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(6), atol=1e-3)

    def test_layer_norm_affine(self):
        x = rng(20).standard_normal((2, 8)).astype(np.float32)
        gamma = np.full(8, 2.0, np.float32)
        beta = np.full(8, -1.0, np.float32)
        out = run_op(
            O.layer_norm(place("x", x), place("g", gamma), place("b", beta)),
            {"x": x, "g": gamma, "b": beta},
        )
        np.testing.assert_allclose(out.mean(axis=-1), np.full(2, -1.0),
                                   atol=1e-5)


class TestEmbeddingForward:
    def test_gather(self):
        w = rng(21).standard_normal((10, 4)).astype(np.float32)
        idx = np.array([[0, 9], [3, 3]], dtype=np.int64)
        out = run_op(
            O.embedding(place("w", w), place("i", idx)), {"w": w, "i": idx}
        )
        np.testing.assert_array_equal(out, w[idx])

    def test_float_indices_rejected(self):
        w = O.placeholder((10, 4), name="emb_w")
        idx = O.placeholder((2,), np.float32, name="emb_i")
        with pytest.raises(TypeError):
            O.embedding(w, idx)


class TestLossForward:
    def test_cross_entropy_matches_reference(self):
        logits = rng(22).standard_normal((5, 7)).astype(np.float32)
        labels = np.array([0, 6, 3, 2, 1], dtype=np.int64)
        out = run_op(
            O.softmax_cross_entropy(place("l", logits), place("y", labels)),
            {"l": logits, "y": labels},
        )
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(
            np.exp(shifted).sum(axis=1, keepdims=True)
        )
        ref = -log_probs[np.arange(5), labels].mean()
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_ignore_label_masks_padding(self):
        logits = rng(23).standard_normal((4, 3)).astype(np.float32)
        labels = np.array([1, -1, 2, -1], dtype=np.int64)
        masked = run_op(
            O.softmax_cross_entropy(place("l", logits), place("y", labels)),
            {"l": logits, "y": labels},
        )
        sub_logits = logits[[0, 2]]
        sub_labels = labels[[0, 2]]
        ref = run_op(
            O.softmax_cross_entropy(place("l2", sub_logits),
                                    place("y2", sub_labels)),
            {"l2": sub_logits, "y2": sub_labels},
        )
        np.testing.assert_allclose(masked, ref, rtol=1e-6)

    def test_all_padding_does_not_crash(self):
        logits = rng(24).standard_normal((2, 3)).astype(np.float32)
        labels = np.array([-1, -1], dtype=np.int64)
        out = run_op(
            O.softmax_cross_entropy(place("l", logits), place("y", labels)),
            {"l": logits, "y": labels},
        )
        assert np.isfinite(out)


class TestFusedLstmForward:
    def test_matches_unfused_reference(self):
        batch, hidden = 3, 5
        gates = rng(25).standard_normal((batch, 4 * hidden)).astype(np.float32)
        c_prev = rng(26).standard_normal((batch, hidden)).astype(np.float32)

        pg, pc = place("g", gates), place("c", c_prev)
        h_t, c_t = O.lstm_gates(pg, pc)
        ex = GraphExecutor([h_t, c_t])
        h_out, c_out = ex.run({"g": gates, "c": c_prev}).outputs

        def sig(v):
            return 1 / (1 + np.exp(-v))

        i = sig(gates[:, 0:hidden])
        f = sig(gates[:, hidden:2 * hidden])
        g = np.tanh(gates[:, 2 * hidden:3 * hidden])
        o = sig(gates[:, 3 * hidden:4 * hidden])
        c_ref = f * c_prev + i * g
        h_ref = o * np.tanh(c_ref)
        np.testing.assert_allclose(c_out, c_ref, rtol=1e-5)
        np.testing.assert_allclose(h_out, h_ref, rtol=1e-5)

    def test_bad_gate_width_rejected(self):
        g = O.placeholder((2, 10), name="badg")  # not divisible by 4
        c = O.placeholder((2, 2), name="badc")
        with pytest.raises(ShapeError):
            O.lstm_gates(g, c)


class TestDropoutForward:
    def test_zero_probability_is_identity(self):
        x = rng(27).standard_normal((8, 8)).astype(np.float32)
        out = run_op(O.dropout(place("x", x), 0.0), {"x": x})
        np.testing.assert_array_equal(out, x)

    def test_scaling_preserves_expectation(self):
        x = np.ones((400, 400), np.float32)
        out = run_op(O.dropout(place("x", x), 0.3, seed=1), {"x": x})
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_probability_rejected(self):
        x = O.placeholder((2, 2), name="dp_x")
        with pytest.raises(ValueError):
            O.dropout(x, 1.0)


class TestSourceOps:
    def test_unfed_placeholder_raises(self):
        x = O.placeholder((2,), name="lonely")
        from repro.runtime import ExecutionError

        with pytest.raises(ExecutionError):
            GraphExecutor([O.tanh(x)]).run({})

    def test_constant_and_zeros(self):
        c = O.constant(np.arange(6, dtype=np.float32).reshape(2, 3))
        z = O.zeros((2, 3))
        out = run_op(O.add(c, z))
        np.testing.assert_array_equal(
            out, np.arange(6, dtype=np.float32).reshape(2, 3)
        )
