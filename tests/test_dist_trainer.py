"""Tests for distributed data-parallel training.

The acceptance bar: N-rank training — thread and process backends,
echo on and off — is bitwise identical to the single-process
data-parallel reference on the same global batch, and killing a rank
mid-run degrades to the survivors without deadlock. (A *single-graph*
full-batch run cannot match bitwise — its GEMMs reduce over the batch
in one pass — so the reference replays the shard graphs serially and
folds gradients in canonical rank order; see
:mod:`repro.dist.collectives`.)
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis import check_bucket_plan, check_rank_layouts
from repro.data import lm_batches, markov_corpus, shard_feeds
from repro.data.sharding import ShardedBatches
from repro.dist import (
    DistributedTrainer,
    data_parallel_reference,
    plan_grad_buckets,
    run_distributed,
)
from repro.dist.bucketing import GradBucketPlan
from repro.echo import optimize
from repro.models import WordLmConfig, build_word_lm
from repro.train import SGD


# -- fixtures ----------------------------------------------------------------

VOCAB, HIDDEN, T = 50, 10, 6
CORPUS = markov_corpus(VOCAB, 4000, seed=21)


def _cfg(shard_batch: int, dropout: float = 0.0) -> WordLmConfig:
    return WordLmConfig(
        vocab_size=VOCAB, embed_size=HIDDEN, hidden_size=HIDDEN,
        num_layers=1, seq_len=T, batch_size=shard_batch, dropout=dropout,
    )


def _global_batches(global_batch: int, steps: int):
    return list(
        itertools.islice(lm_batches(CORPUS, global_batch, T), steps)
    )


def _rank_training(group, cfg, batches, echo, opt_args, trainer_kwargs):
    """Worker: one rank's full training run (module-level: picklable)."""
    model = build_word_lm(cfg)
    if echo:
        optimize(model.graph)
    # Ranks initialize differently on purpose: the broadcast from the
    # leader must win, or nothing here would be deterministic.
    params = model.store.initialize(seed=100 + group.rank)
    with DistributedTrainer(
        group, model.graph, params, SGD(*opt_args), **trainer_kwargs
    ) as trainer:
        records = [trainer.step(feeds) for feeds in batches]
    return (
        [r.loss for r in records],
        [r.grad_norm for r in records],
        params,
        group.stats.snapshot(),
    )


def _reference_run(cfg, batches, world, echo, opt_args):
    model = build_word_lm(cfg)
    if echo:
        optimize(model.graph)
    params = model.store.initialize(seed=100)  # the leader's init
    records = data_parallel_reference(
        model.graph, params, SGD(*opt_args), batches, world
    )
    return records, params


# -- sharding ----------------------------------------------------------------

class TestSharding:
    def test_contiguous_blocks_cover_the_batch(self):
        feeds = {"tokens": np.arange(24).reshape(2, 12),
                 "weights": np.arange(12.0)}
        shards = [shard_feeds(feeds, 4, r) for r in range(4)]
        assert all(s["tokens"].shape == (2, 3) for s in shards)
        assert all(s["weights"].shape == (3,) for s in shards)
        rebuilt = np.concatenate([s["tokens"] for s in shards], axis=1)
        assert np.array_equal(rebuilt, feeds["tokens"])

    def test_uneven_batch_raises(self):
        feeds = {"tokens": np.zeros((2, 10))}
        with pytest.raises(ValueError, match="not divisible"):
            shard_feeds(feeds, 4, 0)

    def test_batch_axes_override(self):
        feeds = {"x": np.zeros((8, 3))}
        out = shard_feeds(feeds, 2, 1, batch_axes={"x": 0})
        assert out["x"].shape == (4, 3)

    def test_sharded_batches_wrapper(self):
        stream = _global_batches(8, 3)
        shards = list(ShardedBatches(stream, world=2, rank=1))
        assert len(shards) == 3
        for full, part in zip(stream, shards):
            assert np.array_equal(part["tokens"], full["tokens"][:, 4:])


# -- bucket planning and the DS5xx checker -----------------------------------

class TestBucketPlan:
    SPECS = {
        "a": ((4, 4), "float32"),   # 64 B
        "b": ((8,), "float32"),     # 32 B
        "c": ((100,), "float32"),   # 400 B (oversized alone)
        "d": ((2,), "float64"),     # dtype break
    }
    NAMES = ["a", "b", "c", "d"]

    def test_greedy_packing_in_param_order(self):
        plan = plan_grad_buckets(self.NAMES, self.SPECS, bucket_bytes=128)
        assert plan.param_names == ("a", "b", "c", "d")
        sizes = [[s.name for s in b.segments] for b in plan.buckets]
        assert sizes == [["a", "b"], ["c"], ["d"]]
        assert [s.offset for s in plan.buckets[0].segments] == [0, 16]

    def test_fingerprint_tracks_layout(self):
        one = plan_grad_buckets(self.NAMES, self.SPECS, bucket_bytes=128)
        two = plan_grad_buckets(self.NAMES, self.SPECS, bucket_bytes=128)
        assert one.fingerprint() == two.fingerprint()
        other = plan_grad_buckets(self.NAMES, self.SPECS, bucket_bytes=64)
        assert one.fingerprint() != other.fingerprint()

    def test_flatten_unflatten_roundtrip(self):
        plan = plan_grad_buckets(self.NAMES, self.SPECS, bucket_bytes=128)
        rng = np.random.default_rng(0)
        grads = {
            n: rng.standard_normal(self.SPECS[n][0]).astype(self.SPECS[n][1])
            for n in self.NAMES
        }
        for bucket in plan.buckets:
            back = plan.unflatten(bucket, plan.flatten(bucket, grads))
            for name, arr in back.items():
                assert np.array_equal(arr, grads[name])

    def test_checker_passes_sound_plan(self):
        plan = plan_grad_buckets(self.NAMES, self.SPECS, bucket_bytes=128)
        assert check_bucket_plan(plan, self.SPECS) == []

    def test_checker_catches_seeded_defects(self):
        plan = plan_grad_buckets(self.NAMES, self.SPECS, bucket_bytes=128)
        # DS501: a parameter the plan never covers
        specs = dict(self.SPECS, extra=((3,), "float32"))
        assert {f.code for f in check_bucket_plan(plan, specs)} == {"DS501"}
        # DS502/DS503: duplicate a segment inside a bucket
        bucket = plan.buckets[0]
        corrupt = GradBucketPlan(
            (
                bucket.__class__(
                    0, bucket.dtype,
                    bucket.segments + (bucket.segments[0],),
                ),
            )
            + plan.buckets[1:],
            plan.bucket_bytes,
        )
        codes = {f.code for f in check_bucket_plan(corrupt, self.SPECS)}
        assert "DS502" in codes and "DS503" in codes
        # DS504: shape disagrees with the model
        wrong = dict(self.SPECS, a=((2, 8), "float32"))
        assert "DS504" in {
            f.code for f in check_bucket_plan(plan, wrong)
        }

    def test_checker_warns_on_oversized_bucket(self):
        specs = {"x": ((8,), "float32"), "y": ((8,), "float32")}
        plan = plan_grad_buckets(["x", "y"], specs, bucket_bytes=64)
        # Force both into one bucket over a tiny cap
        squeezed = GradBucketPlan(plan.buckets, bucket_bytes=16)
        codes = {f.code for f in check_bucket_plan(squeezed, specs)}
        assert codes == {"DS505"}

    def test_rank_layout_divergence(self):
        assert check_rank_layouts(["abc", "abc", "abc"]) == []
        findings = check_rank_layouts({0: "abc", 1: "abc", 3: "xyz"})
        assert [f.code for f in findings] == ["DS506"]


# -- bitwise equality with the single-process reference ----------------------

class TestBitwiseEquality:
    @pytest.mark.parametrize("world", [2, 4])
    @pytest.mark.parametrize("echo", [False, True])
    def test_thread_backend_matches_reference(self, world, echo):
        cfg = _cfg(shard_batch=4, dropout=0.1)
        batches = _global_batches(4 * world, steps=4)
        opt_args = (0.2,)
        results = run_distributed(
            _rank_training, world, backend="thread",
            args=(cfg, batches, echo, opt_args,
                  dict(bucket_bytes=2048, chunk_bytes=256)),
        )
        ref_records, ref_params = _reference_run(
            cfg, batches, world, echo, opt_args
        )
        ref_losses = [r["loss"] for r in ref_records]
        for rank, (losses, _, params, _) in enumerate(results):
            assert losses == ref_losses, f"rank {rank} loss trajectory"
            for name in ref_params:
                assert np.array_equal(params[name], ref_params[name]), (
                    f"rank {rank} param {name!r}"
                )

    @pytest.mark.parametrize("world", [2, 4])
    def test_process_backend_matches_reference(self, world):
        cfg = _cfg(shard_batch=2)
        batches = _global_batches(2 * world, steps=3)
        opt_args = (0.2,)
        results = run_distributed(
            _rank_training, world, backend="process",
            args=(cfg, batches, False, opt_args,
                  dict(bucket_bytes=1024, chunk_bytes=128)),
        )
        ref_records, ref_params = _reference_run(
            cfg, batches, world, False, opt_args
        )
        losses, _, params, _ = results[0]
        assert losses == [r["loss"] for r in ref_records]
        for name in ref_params:
            assert np.array_equal(params[name], ref_params[name]), name

    def test_bucket_and_chunk_sizes_cannot_move_bits(self):
        """The layout knobs are pure performance: numerics invariant."""
        cfg = _cfg(shard_batch=4)
        batches = _global_batches(8, steps=3)
        runs = [
            run_distributed(
                _rank_training, 2, backend="thread",
                args=(cfg, batches, False, (0.2,),
                      dict(bucket_bytes=bb, chunk_bytes=cb)),
            )
            for bb, cb in ((256, 64), (1 << 20, 1 << 20))
        ]
        for name in runs[0][0][2]:
            assert np.array_equal(runs[0][0][2][name], runs[1][0][2][name])

    def test_overlap_actually_happens(self):
        """With small buckets and a wavefront plan (threads > 1 — a
        serial plan is one program item, so everything is "tail"), some
        reductions launch before backward ends: the stats prove the
        level-completion hook is doing its job."""
        cfg = _cfg(shard_batch=4)
        batches = _global_batches(8, steps=2)
        results = run_distributed(
            _rank_training, 2, backend="thread",
            args=(cfg, batches, False, (0.2,),
                  dict(bucket_bytes=512, chunk_bytes=256, threads=2)),
        )
        snap = results[0][3]
        assert snap["overlap_reduced_buckets"] > 0


# -- global gradient clipping ------------------------------------------------

class TestGlobalClipping:
    def test_clip_uses_global_norm_bitwise(self):
        """Distributed clipping must equal the reference's, which clips
        the globally reduced gradient — not each shard's."""
        cfg = _cfg(shard_batch=4)
        batches = _global_batches(16, steps=3)
        opt_args = (0.5, 0.0, 0.05)  # lr, momentum, tight clip_norm
        results = run_distributed(
            _rank_training, 4, backend="thread",
            args=(cfg, batches, False, opt_args, {}),
        )
        ref_records, ref_params = _reference_run(
            cfg, batches, 4, False, opt_args
        )
        losses, norms, params, _ = results[0]
        assert norms == [r["grad_norm"] for r in ref_records]
        for name in ref_params:
            assert np.array_equal(params[name], ref_params[name]), name

    def test_one_vs_four_rank_clipped_updates_agree(self):
        """4-rank mean-of-shards ~= 1-rank full batch: same global norm,
        same clipped update, up to float summation-order differences."""
        batches = _global_batches(16, steps=2)
        runs = {}
        for world, shard in ((1, 16), (4, 4)):
            cfg = _cfg(shard_batch=shard)
            model = build_word_lm(cfg)
            params = model.store.initialize(seed=100)
            records = data_parallel_reference(
                model.graph, params, SGD(0.5, clip_norm=0.05),
                batches, world,
            )
            runs[world] = (records, params)
        norm1 = runs[1][0][0]["grad_norm"]
        norm4 = runs[4][0][0]["grad_norm"]
        # Both runs clip every step (tight threshold) on nearly equal
        # global norms; a per-shard clip would scale by ~4x less.
        assert norm1 > 0.05 and norm4 > 0.05
        assert norm4 == pytest.approx(norm1, rel=1e-4)
        for name, ref in runs[1][1].items():
            np.testing.assert_allclose(
                runs[4][1][name], ref, rtol=1e-4, atol=1e-6,
                err_msg=name,
            )


# -- event-driven synchronization + metrics ----------------------------------

def _event_sync_rank(group, cfg, batches):
    """Worker: rely on ``step_done`` (never a sleep) and mirror metrics."""
    from repro.obs import MetricsRegistry

    model = build_word_lm(cfg)
    params = model.store.initialize(seed=100 + group.rank)
    reg = MetricsRegistry()
    with DistributedTrainer(
        group, model.graph, params, SGD(0.2), metrics=reg
    ) as trainer:
        for feeds in batches:
            trainer.step(feeds)
            # Event-driven sync point: already set once step() returns,
            # so a zero-timeout wait must succeed.
            assert trainer.step_done.wait(timeout=0)
    return reg.snapshot()


class TestEventDrivenSync:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_step_done_and_metrics_mirror(self, backend):
        cfg = _cfg(shard_batch=2)
        batches = _global_batches(4, steps=2)
        snaps = run_distributed(
            _event_sync_rank, 2, backend=backend, args=(cfg, batches),
        )
        for rank, snap in enumerate(snaps):
            assert snap["train.steps"] == 2
            prefix = f"dist.rank{rank}."
            dist_keys = [k for k in snap if k.startswith(prefix)]
            assert dist_keys, snap.keys()
            frac = snap[prefix + "overlap_fraction"]
            assert 0.0 <= frac <= 1.0


# -- fault tolerance ---------------------------------------------------------

def _dying_rank_training(group, cfg, batches, victim, die_after):
    model = build_word_lm(cfg)
    params = model.store.initialize(seed=100 + group.rank)
    with DistributedTrainer(
        group, model.graph, params, SGD(0.2), bucket_bytes=1024
    ) as trainer:
        records = []
        for step, feeds in enumerate(batches):
            if group.rank == victim and step == die_after:
                raise RuntimeError("simulated crash")
            records.append(trainer.step(feeds))
    return [r.loss for r in records], params, group.stats.snapshot()


class TestDegradePath:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_killed_rank_degrades_without_deadlock(self, backend):
        world, victim, die_after = 4, 2, 2
        cfg = _cfg(shard_batch=2)
        batches = _global_batches(8, steps=4)
        results = run_distributed(
            _dying_rank_training, world, backend=backend,
            args=(cfg, batches, victim, die_after),
            timeout_s=1.5, join_timeout_s=120.0,
            return_exceptions=True,
        )
        assert isinstance(results[victim], Exception)
        survivors = [r for r in range(world) if r != victim]
        # Every survivor finished all steps and agrees bitwise.
        base_losses, base_params, _ = results[survivors[0]]
        assert len(base_losses) == 4
        for rank in survivors[1:]:
            losses, params, snap = results[rank]
            assert losses == base_losses
            for name in base_params:
                assert np.array_equal(params[name], base_params[name])
            assert snap["reforms"] >= 1
        # Pre-death steps match the full-cohort reference; the ring
        # shrank only afterwards.
        model = build_word_lm(cfg)
        ref_params = model.store.initialize(seed=100)
        ref = data_parallel_reference(
            model.graph, ref_params, SGD(0.2), batches[:die_after], world
        )
        assert base_losses[:die_after] == [r["loss"] for r in ref]
