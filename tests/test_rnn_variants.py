"""Tests for the RNN cell variants: peephole LSTM and GRU workloads.

The paper argues (Section 4.2) that the data layout optimization applies
to any cell preserving the gate GEMM structure — peephole LSTM and GRU
included — and that cuDNN's closed-source kernels cannot serve such
variants at all, which is why framework-side implementations matter.
"""

import numpy as np
import pytest

import repro.ops as O
from repro.gpumodel import DeviceModel
from repro.models import WordLmConfig, build_word_lm
from repro.nn import Backend, LstmCell, ParamStore
from repro.nn.rnn import lstm_layer
from repro.runtime import GraphExecutor, TrainingExecutor
from repro.profiler import profile_runtime
from repro.train import SGD, Trainer
from tests.helpers import rng


def _sgemm_seconds(cell: str, backend: Backend) -> float:
    """GEMM-family kernel seconds of one LM iteration for a cell type."""
    cfg = WordLmConfig(
        vocab_size=500, embed_size=256, hidden_size=256, num_layers=1,
        seq_len=20, batch_size=32, cell=cell, backend=backend,
    )
    model = build_word_lm(cfg)
    ex = TrainingExecutor(model.graph, device=DeviceModel())
    report = profile_runtime(ex.simulate_cost().timings)
    return report.by_kernel.get("sgemm (fully-connected)", 0.0)


class TestPeepholeLstm:
    def test_has_extra_parameters(self):
        store = ParamStore()
        LstmCell(store, "p", 4, 8, peephole=True)
        names = set(store.tensors)
        assert {"p.p_i", "p.p_f", "p.p_o"} <= names

    def test_matches_numpy_reference(self):
        batch, hidden = 3, 5
        store = ParamStore(seed=11)
        cell = LstmCell(store, "p", hidden, hidden, peephole=True)
        x = O.placeholder((batch, hidden), name="pp_x")
        state = cell.zero_state(batch)
        new_state = cell.step(x, state)
        params = store.initialize()
        xv = rng(0).standard_normal((batch, hidden)).astype(np.float32)
        ex = GraphExecutor([new_state.h, new_state.c])
        h_out, c_out = ex.run({"pp_x": xv}, params).outputs

        def sig(v):
            return 1 / (1 + np.exp(-v))

        gates = xv.astype(np.float64) @ params["p.w_x"].T.astype(np.float64)
        gates += params["p.bias"]
        c_prev = np.zeros((batch, hidden))
        i = sig(gates[:, :hidden] + params["p.p_i"] * c_prev)
        f = sig(gates[:, hidden:2 * hidden] + params["p.p_f"] * c_prev)
        g = np.tanh(gates[:, 2 * hidden:3 * hidden])
        c = f * c_prev + i * g
        o = sig(gates[:, 3 * hidden:] + params["p.p_o"] * c)
        h = o * np.tanh(c)
        np.testing.assert_allclose(c_out, c, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(h_out, h, rtol=1e-4, atol=1e-6)

    def test_peephole_changes_output(self):
        """Nonzero peephole weights must change the computation."""
        batch, hidden = 2, 4
        outs = {}
        for flag in (False, True):
            store = ParamStore(seed=12)
            seq = O.placeholder((3, batch, hidden), name=f"pc_{flag}")
            out, _ = lstm_layer(store, "l", seq, hidden, peephole=flag)
            params = store.initialize()
            for key in ("l.p_i", "l.p_f", "l.p_o"):
                if key in params:
                    params[key] = np.full(hidden, 0.5, np.float32)
            x = rng(1).standard_normal((3, batch, hidden)).astype(np.float32)
            outs[flag] = GraphExecutor([out]).run(
                {f"pc_{flag}": x}, params
            ).outputs[0]
        assert not np.allclose(outs[False], outs[True])

    def test_peephole_gradients_flow(self):
        cfg = WordLmConfig(
            vocab_size=50, embed_size=8, hidden_size=8, num_layers=1,
            seq_len=5, batch_size=4, cell="lstm_peephole",
            backend=Backend.ECHO,
        )
        model = build_word_lm(cfg)
        ex = TrainingExecutor(model.graph)
        gen = np.random.default_rng(0)
        feeds = {"tokens": gen.integers(0, 50, (5, 4)),
                 "labels": gen.integers(0, 50, (5, 4))}
        _, grads, _ = ex.run(feeds, model.store.initialize())
        assert np.any(grads["lstm.l0.p_o"] != 0)

    def test_layout_optimization_still_applies(self):
        """Echo's COL_MAJOR layout cuts the peephole LM's GEMM time.

        End-to-end the unfused peephole block is launch-bound (the paper's
        Amdahl observation about framework cells), so the gain is asserted
        on the sgemm kernel family, where the layout choice acts.
        """
        assert (_sgemm_seconds("lstm_peephole", Backend.DEFAULT)
                > 1.3 * _sgemm_seconds("lstm_peephole", Backend.ECHO))


class TestGruLanguageModel:
    def _cfg(self, **over):
        base = dict(
            vocab_size=60, embed_size=10, hidden_size=10, num_layers=2,
            seq_len=6, batch_size=4, cell="gru",
        )
        base.update(over)
        return WordLmConfig(**base)

    def test_builds_and_trains(self):
        model = build_word_lm(self._cfg())
        trainer = Trainer(model.graph, model.store.initialize(), SGD(0.5))
        gen = np.random.default_rng(1)
        feeds = {"tokens": gen.integers(0, 60, (6, 4)),
                 "labels": gen.integers(0, 60, (6, 4))}
        first = trainer.step(feeds).loss
        for _ in range(15):
            last = trainer.step(feeds).loss
        assert last < first

    def test_fewer_parameters_than_lstm(self):
        gru = build_word_lm(self._cfg()).store.num_parameters()
        lstm = build_word_lm(self._cfg(cell="lstm")).store.num_parameters()
        assert gru < lstm  # 3 gates vs 4

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown cell"):
            self._cfg(cell="mgu")

    def test_gru_layout_gain(self):
        """Figure 9b's promise: the layout choice pays off on GRU GEMMs."""
        assert (_sgemm_seconds("gru", Backend.DEFAULT)
                > 1.3 * _sgemm_seconds("gru", Backend.ECHO))
