"""Unit tests for Echo's analysis internals: stash detection, candidate
mining details, the stream-aware cost accounting, and rewrite mechanics."""

import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.echo.analysis import (
    IterationCost,
    is_recompute_cheap,
    mine_candidates,
    stashed_tensors,
)
from repro.echo.rewrite import AppliedCandidate, apply_candidate
from repro.graph import Stage, scope
from repro.gpumodel import DeviceModel
from repro.runtime import schedule


def _simple_graph():
    x = O.placeholder((4, 8), name="ea_x")
    w = O.variable((8, 8), name="ea_w")
    h = O.tanh(O.fully_connected(x, w))
    loss = O.reduce_mean(O.mul(h, h))
    return compile_training(loss, {"ea_w": w}, {"ea_x": x})


class TestIterationCost:
    def test_bound_by_larger_stream(self):
        cost = IterationCost(kernel_seconds=10.0, api_seconds=4.0)
        assert cost.seconds == 10.0

    def test_marginal_free_in_slack(self):
        """Extra API work below the kernel stream costs nothing."""
        cost = IterationCost(kernel_seconds=10.0, api_seconds=4.0)
        assert cost.marginal(0.0, 5.0) == 0.0

    def test_marginal_binding_stream(self):
        cost = IterationCost(kernel_seconds=10.0, api_seconds=4.0)
        assert cost.marginal(3.0, 0.0) == pytest.approx(3.0)

    def test_marginal_crossover(self):
        """API work that overflows the slack pays only the overflow."""
        cost = IterationCost(kernel_seconds=10.0, api_seconds=4.0)
        assert cost.marginal(0.0, 8.0) == pytest.approx(2.0)


class TestStashDetection:
    def test_mul_inputs_stashed(self):
        tg = _simple_graph()
        order = schedule(tg.outputs)
        stashes = stashed_tensors(order, {t.key for t in tg.outputs})
        ops = {t.node.op.name for t in stashes.values()}
        assert "tanh" in ops  # read by both mul backward and tanh_grad

    def test_inference_graph_has_no_stashes(self):
        x = O.placeholder((4, 8), name="ea_inf")
        y = O.tanh(x)
        order = schedule([y])
        assert stashed_tensors(order, {y.key}) == {}

    def test_outputs_excluded(self):
        tg = _simple_graph()
        order = schedule(tg.outputs)
        output_keys = {t.key for t in tg.outputs}
        stashes = stashed_tensors(order, output_keys)
        assert not (set(stashes) & output_keys)


class TestCheapness:
    def test_elementwise_cheap_gemm_not(self):
        x = O.placeholder((4, 8), name="ea_c")
        w = O.variable((8, 8), name="ea_cw")
        fc = O.fully_connected(x, w)
        act = O.tanh(fc)
        assert is_recompute_cheap(act.node, allow_gemm=False)
        assert not is_recompute_cheap(fc.node, allow_gemm=False)
        assert is_recompute_cheap(fc.node, allow_gemm=True)

    def test_sources_never_cheap(self):
        x = O.placeholder((4,), name="ea_s")
        assert not is_recompute_cheap(x.node, allow_gemm=True)

    def test_backward_nodes_never_cheap(self):
        tg = _simple_graph()
        for node in tg.nodes():
            if node.stage is Stage.BACKWARD:
                assert not is_recompute_cheap(node, allow_gemm=True)


class TestMiningDetails:
    def _attention_like(self, steps=3):
        keys_raw = O.placeholder((4, 6, 8), name="ea_keys")
        w = O.variable((8, 8), name="ea_mw")
        v = O.variable((1, 8), name="ea_mv")
        keys = O.tanh(keys_raw)  # cheap node with fanout = steps
        total = None
        for t in range(steps):
            q = O.placeholder((4, 8), name=f"ea_q{t}")
            interior = O.tanh(O.add(O.expand_dims(
                O.fully_connected(q, w), 1), keys))
            flat = O.reshape(interior, (24, 8))
            # GEMM border before the accumulation chain, as in the real
            # model: the per-step regions must not fuse through the loss.
            term = O.reduce_sum(O.fully_connected(flat, v))
            total = term if total is None else O.add(total, term)
        ph = {"ea_keys": keys_raw}
        from repro.graph import topo_order

        for node in topo_order([total]):
            if node.op.name == "placeholder":
                ph[node.name] = node.out()
        return compile_training(total, {"ea_mw": w, "ea_mv": v}, ph)

    def test_fanout_limit_splits_regions(self):
        tg = self._attention_like(steps=5)
        order = schedule(tg.outputs)
        keys = {t.key for t in tg.outputs}
        split = mine_candidates(order, keys, fanout_limit=3)
        merged = mine_candidates(order, keys, fanout_limit=100)
        assert len(split) > len(merged)

    def test_candidate_costs_populated_with_device(self):
        tg = self._attention_like()
        order = schedule(tg.outputs)
        cands = mine_candidates(order, {t.key for t in tg.outputs},
                                device=DeviceModel())
        big = max(cands, key=lambda c: c.eliminated_bytes)
        assert big.kernel_seconds > 0
        assert big.api_seconds > 0
        assert big.recompute_seconds == pytest.approx(
            big.kernel_seconds + big.api_seconds
        )

    def test_candidate_costs_zero_without_device(self):
        tg = self._attention_like()
        order = schedule(tg.outputs)
        cands = mine_candidates(order, {t.key for t in tg.outputs})
        assert all(c.recompute_seconds == 0 for c in cands)

    def test_nodes_topologically_ordered_within_candidate(self):
        tg = self._attention_like()
        order = schedule(tg.outputs)
        position = {n.uid: i for i, n in enumerate(order)}
        for cand in mine_candidates(order, {t.key for t in tg.outputs}):
            positions = [position[n.uid] for n in cand.nodes]
            assert positions == sorted(positions)


class TestRewriteMechanics:
    def _one_candidate(self):
        tg = TestMiningDetails()._attention_like(steps=3)
        order = schedule(tg.outputs)
        keys = {t.key for t in tg.outputs}
        cands = mine_candidates(order, keys, device=DeviceModel())
        cand = max(cands, key=lambda c: c.benefit_bytes)
        return tg, order, keys, cand

    def test_mirrors_scheduled_after_forward(self):
        tg, order, keys, cand = self._one_candidate()
        apply_candidate(cand, order, keys)
        new_order = schedule(tg.outputs)
        stage_seq = [n.stage for n in new_order
                     if n.op.name not in ("placeholder", "variable",
                                          "constant")]
        first_recompute = stage_seq.index(Stage.RECOMPUTE)
        assert Stage.FORWARD not in stage_seq[first_recompute:]

    def test_rollback_restores_graph_exactly(self):
        tg, order, keys, cand = self._one_candidate()
        inputs_before = {
            n.uid: n.inputs for n in order if n.stage is Stage.BACKWARD
        }
        applied = apply_candidate(cand, order, keys)
        assert isinstance(applied, AppliedCandidate)
        changed = [
            uid for uid, ins in inputs_before.items()
            if any(n.uid == uid and n.inputs != ins for n in order)
        ]
        assert changed, "rewrite should have re-pointed someone"
        applied.rollback()
        for node in order:
            if node.stage is Stage.BACKWARD:
                assert node.inputs == inputs_before[node.uid]
        # No RECOMPUTE nodes remain reachable.
        assert all(
            n.stage is not Stage.RECOMPUTE for n in schedule(tg.outputs)
        )

    def test_mirror_scope_preserved(self):
        x = O.placeholder((8, 16, 32), name="ms_x")
        w = O.variable((32, 32), name="ms_w")
        v = O.variable((1, 32), name="ms_v")
        total = None
        for t in range(4):
            q = O.placeholder((8, 32), name=f"ms_q{t}")
            with scope("attention"):
                interior = O.tanh(
                    O.add(O.expand_dims(O.fully_connected(q, w), 1), x)
                )
            flat = O.reshape(interior, (8 * 16, 32))
            term = O.reduce_sum(O.fully_connected(flat, v))
            total = term if total is None else O.add(total, term)
        ph = {"ms_x": x}
        from repro.graph import topo_order

        for node in topo_order([total]):
            if node.op.name == "placeholder":
                ph[node.name] = node.out()
        tg = compile_training(total, {"ms_w": w, "ms_v": v}, ph)
        from repro.echo import EchoConfig, optimize

        optimize(tg, EchoConfig(overhead_budget_fraction=0.5))
        mirrors = [n for n in schedule(tg.outputs)
                   if n.stage is Stage.RECOMPUTE]
        assert mirrors
        assert all(m.scope == m.mirror_of.scope for m in mirrors)
