"""Tests for the ASCII timeline renderer and the headline report driver."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.ops as O
from repro.autodiff import compile_training
from repro.profiler import compare_timelines, format_timeline, sparkline
from repro.runtime import TrainingExecutor


def _plan(scale=1):
    x = O.placeholder((8 * scale, 16), name=f"tl_x{scale}")
    w = O.variable((16, 16), name=f"tl_w{scale}")
    h = O.tanh(O.fully_connected(x, w))
    loss = O.reduce_mean(O.mul(h, h))
    tg = compile_training(loss, {f"tl_w{scale}": w}, {f"tl_x{scale}": x})
    return TrainingExecutor(tg).memory_plan


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped_at_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3

    def test_max_renders_full_bar(self):
        line = sparkline([0, 10])
        assert line[-1] == "█"

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=300))
    def test_never_crashes_and_bounded(self, values):
        line = sparkline(values, width=50)
        assert 1 <= len(line) <= 50


class TestTimelineFormat:
    def test_contains_peak_annotation(self):
        text = format_timeline(_plan(), label="unit")
        assert "unit: peak" in text
        assert "^peak" in text

    def test_compare_shares_scale(self):
        small, big = _plan(1), _plan(4)
        text = compare_timelines(small, big)
        lines = text.splitlines()
        assert len(lines) == 2
        # The larger plan should contain the taller bar.
        assert "█" in lines[1]
        assert "█" not in lines[0]


class TestHeadlineReport:
    @pytest.mark.slow
    def test_report_runs_and_reproduces_headlines(self):
        from repro.experiments.report import run_report

        buf = io.StringIO()
        rows = run_report(out=buf)
        text = buf.getvalue()
        assert "headline results" in text
        claims = {claim: measured for claim, _paper, measured in rows}
        reduction = float(
            claims["footprint reduction at equal batch"].rstrip("x")
        )
        assert reduction > 2.0
        attention = claims["attention share of NMT memory"]
        assert int(attention.rstrip("%")) > 45
