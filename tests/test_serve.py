"""Tests for the inference serving subsystem (repro.serve).

Covers the plan-cache thread-safety/LRU satellite, the micro-batching
policy, admission control (backpressure, deadline shedding, drain), and
the subsystem's load-bearing determinism contract: concurrent
micro-batched serving is bitwise-identical to sequential single-request
decode through the same compiled plans.
"""

import threading
import time

import numpy as np
import pytest

from repro.data import BucketSpec, pad_to_bucket
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend
from repro.runtime import PlanCache
from repro.serve import (
    BatchPolicy,
    DeadlineExceeded,
    InferenceServer,
    InferenceSession,
    MicroBatcher,
    QueueFullError,
    Request,
    RequestKind,
    RequestQueue,
    ServerClosed,
    ServerStats,
    percentile,
)

BUCKETS = (BucketSpec(4, 6), BucketSpec(8, 10), BucketSpec(12, 12))


@pytest.fixture(scope="module")
def model():
    cfg = NmtConfig(
        src_vocab_size=40, tgt_vocab_size=40, embed_size=12, hidden_size=12,
        encoder_layers=1, decoder_layers=1, src_len=12, tgt_len=12,
        batch_size=4, backend=Backend.CUDNN,
    )
    nmt = build_nmt(cfg)
    params = nmt.store.initialize()
    return cfg, nmt.store, params


def make_session(model, **kwargs):
    cfg, store, params = model
    kwargs.setdefault("max_batch_size", 4)
    return InferenceSession(cfg, store, params, BUCKETS, **kwargs)


def random_requests(n, seed=0, kinds=(RequestKind.TRANSLATE,)):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        length = int(rng.integers(2, 13))
        tokens = [int(t) for t in rng.integers(3, 40, size=length)]
        kind = kinds[i % len(kinds)]
        targets = None
        if kind is RequestKind.SCORE:
            targets = [int(t) for t in rng.integers(3, 40, size=length)]
        requests.append((kind, tokens, targets))
    return requests


def reference_results(session, requests):
    reqs = [
        Request(kind=kind, tokens=tokens, targets=targets,
                bucket=session.bucket_for_length(len(tokens)))
        for kind, tokens, targets in requests
    ]
    return session.run_sequential(reqs)


# ---------------------------------------------------------------------------
# PlanCache: LRU eviction + thread safety (satellite)
# ---------------------------------------------------------------------------


class TestPlanCacheConcurrency:
    def test_lru_eviction_on_capacity_overflow(self):
        cache = PlanCache(capacity=2)
        cache.memo("a", lambda: 1)
        cache.memo("b", lambda: 2)
        cache.memo("c", lambda: 3)  # evicts "a" (least recently used)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert len(cache) == 2
        misses = cache.misses
        assert cache.memo("a", lambda: 1) == 1  # rebuild
        assert cache.misses == misses + 1
        # "b" was older than the re-inserted "a": it is the evictee.
        assert "b" not in cache

    def test_lru_access_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.memo("a", lambda: 1)
        cache.memo("b", lambda: 2)
        cache.memo("a", lambda: 1)  # touch: "b" becomes LRU
        cache.memo("c", lambda: 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_concurrent_same_key_builds_once(self):
        cache = PlanCache(capacity=8)
        builds = []

        def builder():
            time.sleep(0.01)
            builds.append(1)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.memo("k", builder))
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["value"] * 8
        assert len(builds) == 1
        assert cache.counters() == (7, 1)

    def test_concurrent_mixed_keys_with_eviction(self):
        cache = PlanCache(capacity=4)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(300):
                key = int(rng.integers(0, 8))
                value = cache.memo(key, lambda k=key: k * 10)
                if value != key * 10:
                    errors.append((key, value))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 4

    def test_reentrant_builder(self):
        cache = PlanCache(capacity=8)

        def outer():
            return cache.memo("inner", lambda: 41) + 1

        assert cache.memo("outer", outer) == 42
        assert "inner" in cache


# ---------------------------------------------------------------------------
# Bucket padding
# ---------------------------------------------------------------------------


class TestPadToBucket:
    def test_shapes_padding_and_filler(self):
        bucket = BucketSpec(6, 8)
        out = pad_to_bucket([[5, 6], [7, 8, 9]], bucket, 4, pad_token=0)
        assert out.shape == (6, 4) and out.dtype == np.int64
        np.testing.assert_array_equal(out[:, 0], [5, 6, 0, 0, 0, 0])
        np.testing.assert_array_equal(out[:, 1], [7, 8, 9, 0, 0, 0])
        # filler rows repeat row 0
        np.testing.assert_array_equal(out[:, 2], out[:, 0])
        np.testing.assert_array_equal(out[:, 3], out[:, 0])

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            pad_to_bucket([[1] * 9], BucketSpec(6, 8), 4)
        with pytest.raises(ValueError):
            pad_to_bucket([[1]] * 5, BucketSpec(6, 8), 4)
        with pytest.raises(ValueError):
            pad_to_bucket([], BucketSpec(6, 8), 4)


# ---------------------------------------------------------------------------
# Micro-batching policy
# ---------------------------------------------------------------------------


def _req(tokens, bucket, kind=RequestKind.TRANSLATE, deadline_s=None):
    return Request(kind=kind, tokens=tokens, bucket=bucket,
                   deadline_s=deadline_s,
                   targets=[1] if kind is RequestKind.SCORE else None)


class TestMicroBatcher:
    def test_coalesces_same_bucket_fifo(self):
        queue = RequestQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4,
                                                  max_wait_ms=0.0))
        reqs = [_req([1, 2], BUCKETS[0]) for _ in range(3)]
        for r in reqs:
            queue.put(r)
        planned = batcher.next_batch()
        assert [r.request_id for r in planned.requests] == \
            [r.request_id for r in reqs]
        assert not planned.shed
        assert len(queue) == 0

    def test_splits_by_bucket_head_of_line(self):
        queue = RequestQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4,
                                                  max_wait_ms=0.0))
        a = _req([1, 2], BUCKETS[0])
        b = _req([1] * 7, BUCKETS[1])
        c = _req([3, 4], BUCKETS[0])
        for r in (a, b, c):
            queue.put(r)
        first = batcher.next_batch()
        assert [r.request_id for r in first.requests] == \
            [a.request_id, c.request_id]
        second = batcher.next_batch()
        assert [r.request_id for r in second.requests] == [b.request_id]

    def test_kind_splits_batches(self):
        queue = RequestQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4,
                                                  max_wait_ms=0.0))
        a = _req([1, 2], BUCKETS[0])
        b = _req([1, 2], BUCKETS[0], kind=RequestKind.SCORE)
        queue.put(a)
        queue.put(b)
        assert [r.request_id for r in batcher.next_batch().requests] == \
            [a.request_id]
        assert [r.request_id for r in batcher.next_batch().requests] == \
            [b.request_id]

    def test_max_batch_size_caps_group(self):
        queue = RequestQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=2,
                                                  max_wait_ms=0.0))
        for _ in range(5):
            queue.put(_req([1, 2], BUCKETS[0]))
        assert len(batcher.next_batch().requests) == 2
        assert len(batcher.next_batch().requests) == 2
        assert len(batcher.next_batch().requests) == 1

    def test_waits_for_coalescing_window(self):
        # Event-driven, no sleeps: the window (10s) is far longer than the
        # test, so the *only* way the batcher can return is the fourth put
        # reaching max_batch_size. A premature dispatch yields a short
        # batch and fails the occupancy assertion deterministically.
        queue = RequestQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4,
                                                  max_wait_ms=10_000.0))
        closed = threading.Event()
        batcher.on_batch_close = lambda planned: closed.set()
        queue.put(_req([1, 2], BUCKETS[0]))
        got = []

        def consume():
            got.append(batcher.next_batch())

        t = threading.Thread(target=consume)
        t.start()
        queue.put(_req([3, 4], BUCKETS[0]))
        queue.put(_req([5, 6], BUCKETS[0]))
        queue.put(_req([7, 8], BUCKETS[0]))  # fills max_batch_size -> dispatch
        assert closed.wait(timeout=5.0)
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert len(got[0].requests) == 4

    def test_sheds_expired_requests(self):
        queue = RequestQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4,
                                                  max_wait_ms=0.0))
        past = time.monotonic() - 1.0
        live = _req([1, 2], BUCKETS[0])
        dead_head = _req([1, 2], BUCKETS[0], deadline_s=past)
        dead_mid = _req([3, 4], BUCKETS[0], deadline_s=past)
        queue.put(dead_head)
        queue.put(live)
        queue.put(dead_mid)
        planned = batcher.next_batch()
        assert [r.request_id for r in planned.requests] == [live.request_id]
        assert {r.request_id for r in planned.shed} == \
            {dead_head.request_id, dead_mid.request_id}

    def test_all_expired_returns_shed_only_batch(self):
        queue = RequestQueue(max_depth=16)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=4,
                                                  max_wait_ms=0.0))
        past = time.monotonic() - 1.0
        queue.put(_req([1, 2], BUCKETS[0], deadline_s=past))
        planned = batcher.next_batch()
        assert planned.requests == [] and len(planned.shed) == 1

    def test_closed_empty_returns_none(self):
        queue = RequestQueue(max_depth=4)
        batcher = MicroBatcher(queue, BatchPolicy())
        queue.close()
        assert batcher.next_batch() is None

    def test_on_take_runs_in_removal_section(self):
        queue = RequestQueue(max_depth=4)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=2,
                                                  max_wait_ms=0.0))
        queue.put(_req([1, 2], BUCKETS[0]))
        seen = []
        batcher.next_batch(on_take=lambda p: seen.append(p.occupancy))
        assert seen == [1]


class TestRequestQueueBackpressure:
    def test_put_refuses_when_full(self):
        queue = RequestQueue(max_depth=2)
        queue.put(_req([1, 2], BUCKETS[0]))
        queue.put(_req([1, 2], BUCKETS[0]))
        with pytest.raises(QueueFullError):
            queue.put(_req([1, 2], BUCKETS[0]), timeout=0.0)

    def test_put_waits_for_space(self):
        # Event-driven, no sleeps: the queue holds one request, so the
        # second put blocks until the batcher's removal frees the slot —
        # whichever thread runs first, the put must eventually succeed
        # and the batch-close event must fire.
        queue = RequestQueue(max_depth=1)
        batcher = MicroBatcher(queue, BatchPolicy(max_batch_size=1,
                                                  max_wait_ms=0.0))
        freed = threading.Event()
        batcher.on_batch_close = lambda planned: freed.set()
        queue.put(_req([1, 2], BUCKETS[0]))

        t = threading.Thread(target=batcher.next_batch)
        t.start()
        queue.put(_req([3, 4], BUCKETS[0]), timeout=5.0)  # must not raise
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert freed.wait(timeout=5.0)
        assert len(queue) == 1

    def test_put_after_close_raises(self):
        queue = RequestQueue(max_depth=2)
        queue.close()
        with pytest.raises(ServerClosed):
            queue.put(_req([1, 2], BUCKETS[0]))


# ---------------------------------------------------------------------------
# InferenceSession
# ---------------------------------------------------------------------------


class TestInferenceSession:
    def test_warmup_precompiles_every_bucket(self, model):
        session = make_session(model)
        report = session.warmup()
        assert report["buckets"] == len(BUCKETS)
        assert report["plans_compiled"] > 0
        # Second warmup is pure cache hits.
        again = session.warmup()
        assert again["plans_compiled"] == 0
        assert again["cache_hits"] == len(BUCKETS)

    def test_serving_after_warmup_never_compiles(self, model):
        session = make_session(model)
        session.warmup()
        _, misses0 = session.plan_cache.counters()
        for kind, tokens, targets in random_requests(12, seed=3):
            bucket = session.bucket_for_length(len(tokens))
            session.run_batch(
                kind, bucket,
                [Request(kind=kind, tokens=tokens, targets=targets,
                         bucket=bucket)],
            )
        _, misses1 = session.plan_cache.counters()
        assert misses1 == misses0

    def test_partial_batch_matches_full_batch_rows(self, model):
        """Row results are independent of batch composition (the property
        micro-batching rests on)."""
        session = make_session(model)
        reqs = [
            Request(kind=RequestKind.TRANSLATE, tokens=t)
            for t in ([4, 5, 6], [7, 8], [9, 10, 11], [12])
        ]
        bucket = session.bucket_for_length(3)
        full = session.run_batch(RequestKind.TRANSLATE, bucket, reqs)
        for i, req in enumerate(reqs):
            alone = session.run_batch(RequestKind.TRANSLATE, bucket, [req])
            assert alone[0] == full[i]

    def test_max_len_trims_output(self, model):
        session = make_session(model)
        req = Request(kind=RequestKind.TRANSLATE, tokens=[4, 5, 6], max_len=2)
        bucket = session.bucket_for_length(3)
        trimmed = session.run_batch(RequestKind.TRANSLATE, bucket, [req])[0]
        free = session.run_batch(
            RequestKind.TRANSLATE, bucket,
            [Request(kind=RequestKind.TRANSLATE, tokens=[4, 5, 6])],
        )[0]
        assert trimmed == free[:2]

    def test_score_batch_matches_sequential(self, model):
        session = make_session(model)
        rng = np.random.default_rng(11)
        same_bucket = []
        for length in (9, 10, 11, 12):
            tokens = [int(t) for t in rng.integers(3, 40, size=length)]
            targets = [int(t) for t in rng.integers(3, 40, size=length - 1)]
            same_bucket.append(
                Request(kind=RequestKind.SCORE, tokens=tokens,
                        targets=targets, bucket=BUCKETS[2])
            )
        batched = session.run_batch(RequestKind.SCORE, BUCKETS[2], same_bucket)
        sequential = session.run_sequential(same_bucket)
        assert batched == sequential  # exact float equality

    def test_rejects_oversize_and_bad_config(self, model):
        cfg, store, params = model
        session = make_session(model)
        with pytest.raises(ValueError):
            session.bucket_for_length(13)
        with pytest.raises(ValueError):
            InferenceSession(cfg, store, params,
                             (BucketSpec(24, 24),))  # exceeds model src_len
        with pytest.raises(ValueError):
            make_session(model, decoder="sampling")


# ---------------------------------------------------------------------------
# InferenceServer: concurrency, determinism, admission control
# ---------------------------------------------------------------------------


def serve_concurrently(server, requests, n_threads=4, timeout=60.0):
    """Submit ``requests`` from ``n_threads`` threads; returns results in
    submission-list order."""
    futures = [None] * len(requests)

    def client(indices):
        for i in indices:
            kind, tokens, targets = requests[i]
            futures[i] = server.submit(tokens, kind=kind, targets=targets,
                                       timeout=30.0)

    threads = [
        threading.Thread(target=client, args=(range(s, len(requests),
                                                    n_threads),))
        for s in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [f.result(timeout=timeout) for f in futures]


class TestInferenceServer:
    def test_concurrent_serving_is_bitwise_sequential(self, model):
        """The headline determinism contract: N threads of mixed-length
        mixed-kind requests, micro-batched, match single-request decode
        bitwise."""
        session = make_session(model)
        requests = random_requests(
            32, seed=7, kinds=(RequestKind.TRANSLATE, RequestKind.SCORE)
        )
        server = InferenceServer(
            session,
            BatchPolicy(max_batch_size=4, max_wait_ms=4.0,
                        max_queue_depth=64),
        )
        with server:
            served = serve_concurrently(server, requests, n_threads=4)
        expected = reference_results(session, requests)
        assert served == expected
        snap = server.snapshot()
        assert snap["completed"] == len(requests)
        assert snap["shed"] == 0 and snap["failed"] == 0
        assert snap["plan_cache_misses_post_warmup"] == 0
        assert snap["plan_cache_hit_rate"] == 1.0

    def test_micro_batching_coalesces(self, model):
        session = make_session(model)
        requests = [
            (RequestKind.TRANSLATE, [5, 6, 7], None) for _ in range(16)
        ]
        server = InferenceServer(
            session,
            BatchPolicy(max_batch_size=4, max_wait_ms=50.0,
                        max_queue_depth=64),
        )
        with server:
            serve_concurrently(server, requests, n_threads=8)
        snap = server.snapshot()
        assert snap["mean_batch_occupancy"] > 1.0
        assert snap["batches"] < len(requests)

    def test_beam_session_serves_identically(self, model):
        session = make_session(model, decoder="beam", beam_size=2)
        requests = random_requests(8, seed=5)
        server = InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=4.0)
        )
        with server:
            served = serve_concurrently(server, requests, n_threads=2)
        assert served == reference_results(session, requests)

    def test_deadline_shedding(self, model):
        session = make_session(model)
        server = InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=0.0)
        )
        with server:
            future = server.submit([5, 6, 7], deadline_ms=-1.0)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10.0)
        assert server.snapshot()["shed"] == 1

    def test_backpressure_rejects_when_full(self, model):
        session = make_session(model)
        server = InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=0.0,
                                 max_queue_depth=2),
            warmup=False,
        )
        # Not started: nothing drains the queue, so capacity is hard.
        server._accepting = True
        server.submit([5, 6], timeout=0.0)
        server.submit([5, 6], timeout=0.0)
        with pytest.raises(QueueFullError):
            server.submit([5, 6], timeout=0.0)
        assert server.snapshot()["rejected_full"] == 1

    def test_rejects_unbucketable_length(self, model):
        session = make_session(model)
        with InferenceServer(session, warmup=False) as server:
            with pytest.raises(ValueError):
                server.submit([1] * 13)
        assert server.snapshot()["rejected_invalid"] == 1

    def test_submit_after_shutdown_raises(self, model):
        session = make_session(model)
        server = InferenceServer(session, warmup=False)
        server.start()
        server.shutdown()
        with pytest.raises(ServerClosed):
            server.submit([5, 6])

    def test_shutdown_without_drain_fails_pending(self, model):
        session = make_session(model)
        server = InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=0.0,
                                 max_queue_depth=8),
            warmup=False,
        )
        server._accepting = True  # admit without a dispatcher running
        future = server.submit([5, 6, 7])
        server.shutdown(drain=False)
        with pytest.raises(ServerClosed):
            future.result(timeout=10.0)

    def test_drain_completes_all_admitted_work(self, model):
        session = make_session(model)
        server = InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=10.0,
                                 max_queue_depth=64),
        )
        server.start()
        futures = [server.submit([5, 6, 7], timeout=5.0) for _ in range(12)]
        assert server.drain(timeout=60.0)
        assert all(f.done() for f in futures)
        server.shutdown()
        assert server.snapshot()["completed"] == 12

    def test_wait_idle_is_event_driven(self, model):
        # wait_idle returns the moment in-flight work resolves, with
        # admissions still open — the no-sleep way to quiesce a server
        # mid-test before asserting on its stats.
        session = make_session(model)
        server = InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=0.0,
                                 max_queue_depth=64),
        )
        with server:
            futures = [server.submit([5, 6, 7], timeout=5.0)
                       for _ in range(6)]
            assert server.wait_idle(timeout=60.0)
            assert all(f.done() for f in futures)
            # Still accepting: a post-idle submit is served normally.
            assert server.submit([5, 6, 7], timeout=5.0).result(timeout=60.0)

    def test_metrics_registry_mirrors_stats(self, model):
        from repro.obs import MetricsRegistry

        session = make_session(model)
        reg = MetricsRegistry()
        server = InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=0.0),
            metrics=reg,
        )
        with server:
            for _ in range(5):
                server.submit([5, 6, 7], timeout=5.0)
            assert server.wait_idle(timeout=60.0)
        snap = reg.snapshot()
        assert snap["serve.submitted"] == 5
        assert snap["serve.completed"] == 5
        assert snap["serve.latency_ms"]["count"] == 5
        assert snap["serve.batch_occupancy"]["count"] >= 1
        # Exact-bucket percentile on the mirrored histogram is a real
        # observed value, never an interpolation.
        p99 = snap["serve.latency_ms"]["p99"]
        assert p99 is not None and p99 >= 0.0

    def test_warmup_runs_on_start(self, model):
        session = make_session(model)
        with InferenceServer(session) as server:
            assert server.warmup_report is not None
            assert server.warmup_report["buckets"] == len(BUCKETS)

    def test_policy_batch_must_fit_session(self, model):
        session = make_session(model, max_batch_size=2)
        with pytest.raises(ValueError):
            InferenceServer(session, BatchPolicy(max_batch_size=4))


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


class TestServerStats:
    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_percentile_empty_window_is_none(self):
        # Regression: an empty window used to report a fabricated 0.0
        # "latency"; there is no percentile of nothing.
        for p in (0, 50, 99, 100):
            assert percentile([], p) is None

    def test_percentile_single_sample_is_exact(self):
        # Regression: a single-sample window returns that exact sample
        # for every p, never an interpolation artifact.
        for p in (0, 1, 50, 99, 100):
            assert percentile([7.0], p) == 7.0

    def test_empty_stats_snapshot_has_no_fake_latencies(self):
        snap = ServerStats().snapshot()
        assert snap["latency_ms_p50"] is None
        assert snap["latency_ms_p99"] is None
        assert snap["completed"] == 0

    def test_format_report_handles_empty_windows(self):
        report = ServerStats().format_report()
        assert "latency_ms_p99" in report
        assert "None" not in report

    def test_report_contains_key_metrics(self, model):
        session = make_session(model)
        requests = random_requests(8, seed=2)
        with InferenceServer(
            session, BatchPolicy(max_batch_size=4, max_wait_ms=4.0)
        ) as server:
            serve_concurrently(server, requests, n_threads=2)
        report = server.report()
        for needle in ("latency_ms_p99", "mean_batch_occupancy",
                       "plan_cache_hit_rate", "queue depth over time"):
            assert needle in report
