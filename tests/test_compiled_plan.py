"""Tests for compiled execution plans: parity, fusion, arena, plan cache."""

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.models import WordLmConfig, build_word_lm
from repro.ops.dropout import set_global_step
from repro.runtime import (
    Arena,
    CompiledPlan,
    ExecutionError,
    GraphExecutor,
    NullPlanCache,
    PlanCache,
    TrainingExecutor,
    graph_signature,
    schedule,
)


def small_lm(dropout=0.0):
    cfg = WordLmConfig(
        vocab_size=60,
        embed_size=8,
        hidden_size=8,
        num_layers=2,
        seq_len=5,
        batch_size=3,
        dropout=dropout,
    )
    return build_word_lm(cfg)


def lm_feeds(cfg, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "tokens": rng.integers(0, cfg.vocab_size, (cfg.seq_len, cfg.batch_size)),
        "labels": rng.integers(-1, cfg.vocab_size, (cfg.seq_len, cfg.batch_size)),
    }


class TestParity:
    def test_bitwise_identical_to_interpreter(self):
        model = small_lm(dropout=0.3)
        params = model.store.initialize(seed=1)
        feeds = lm_feeds(model.config)
        compiled = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())
        interp = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())
        for _ in range(3):  # same dropout step sequence on both sides
            got = compiled.run(feeds, params).outputs
            want = interp.run_interpreted(feeds, params).outputs
            assert len(got) == len(want)
            for a, b in zip(want, got):
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_unfused_plan_matches_fused(self):
        model = small_lm()
        params = model.store.initialize(seed=2)
        feeds = lm_feeds(model.config)
        fused = GraphExecutor(
            model.graph.outputs, plan_cache=PlanCache(), fuse=True
        )
        unfused = GraphExecutor(
            model.graph.outputs, plan_cache=PlanCache(), fuse=False
        )
        assert fused.plan.fused_chain_count > 0
        assert unfused.plan.fused_chain_count == 0
        for a, b in zip(
            fused.run(feeds, params).outputs,
            unfused.run(feeds, params).outputs,
        ):
            assert np.array_equal(a, b)

    def test_training_executor_loss_and_grads(self):
        model = small_lm()
        params = model.store.initialize(seed=3)
        feeds = lm_feeds(model.config)
        ex = TrainingExecutor(model.graph)
        loss, grads, _ = ex.run(feeds, params)
        assert np.isfinite(loss)
        assert set(grads) == set(model.graph.grads)
        base = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())
        want = base.run_interpreted(feeds, params).outputs
        assert float(want[0]) == loss


class TestErrorContract:
    def test_missing_placeholder(self):
        x = O.placeholder((2, 2), np.float64, name="px")
        y = O.add(x, x)
        ex = GraphExecutor([y], plan_cache=PlanCache())
        with pytest.raises(ExecutionError, match="placeholder 'px' was not bound"):
            ex.run({})

    def test_shape_mismatch_on_feed(self):
        x = O.placeholder((2, 2), np.float64, name="px")
        y = O.add(x, x)
        ex = GraphExecutor([y], plan_cache=PlanCache())
        with pytest.raises(ExecutionError, match="bound shape"):
            ex.run({"px": np.zeros((3, 3))})

    def test_missing_variable(self):
        w = O.variable((2,), np.float64, name="vw")
        y = O.mul(w, w)
        ex = GraphExecutor([y], plan_cache=PlanCache())
        with pytest.raises(ExecutionError, match="variable 'vw' was not bound"):
            ex.run({}, {})


class TestFusion:
    def test_chain_collapses_to_one_instruction(self):
        x = O.placeholder((4, 4), np.float64, name="x")
        y = O.tanh(O.mul_scalar(O.add_scalar(x, 1.0), 2.0))
        plan = CompiledPlan(schedule([y]), [y])
        assert plan.fused_chain_count == 1
        assert plan.fused_node_count == 3
        got = plan.run({"x": np.ones((4, 4))})
        want = np.tanh((np.ones((4, 4)) + 1.0) * 2.0)
        assert np.array_equal(got[0], want)

    def test_fanout_node_stays_materialized(self):
        x = O.placeholder((4,), np.float64, name="x")
        a = O.add_scalar(x, 1.0)
        y = O.add(O.tanh(a), a)  # a has two consumers: never absorbed
        plan = CompiledPlan(schedule([y]), [y])
        # tanh may fuse into add, but the fanout node a must keep a slot
        # (it is read again after tanh consumes it).
        assert (a.node.uid, 0) in plan._slot_of
        arr = np.arange(4.0)
        got = plan.run({"x": arr})
        assert np.array_equal(got[0], np.tanh(arr + 1.0) + (arr + 1.0))

    def test_graph_output_not_absorbed(self):
        x = O.placeholder((4,), np.float64, name="x")
        a = O.add_scalar(x, 1.0)
        y = O.tanh(a)
        plan = CompiledPlan(schedule([a, y]), [a, y])
        assert plan.fused_node_count == 0
        arr = np.arange(4.0)
        got = plan.run({"x": arr})
        assert np.array_equal(got[0], arr + 1.0)
        assert np.array_equal(got[1], np.tanh(arr + 1.0))

    def test_fusion_never_crosses_stage(self):
        model = small_lm()
        ex = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())
        for step in ex.plan._steps:
            if getattr(step, "_fused", False):
                # every fused instruction's members share one stage
                pass  # structural guarantee checked at compile; smoke only
        # explicit check on the compiled chains:
        plan = ex.plan
        chains = CompiledPlan._fuse_chains(
            [
                n
                for n in plan.order
                if n.op.name not in ("placeholder", "variable", "constant")
            ],
            {t.key for t in plan.outputs},
        )
        for chain in chains:
            assert len({n.stage for n in chain}) == 1


class TestArena:
    def test_steady_state_allocates_only_outputs(self):
        model = small_lm(dropout=0.2)
        params = model.store.initialize(seed=4)
        feeds = lm_feeds(model.config)
        ex = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())
        for _ in range(3):  # warm the arena
            ex.run(feeds, params)
        arena, plan = ex.arena, ex.plan
        fresh0, generic0 = arena.fresh_count, plan.generic_alloc_count
        ex.run(feeds, params)
        fresh = arena.fresh_count - fresh0
        generic = plan.generic_alloc_count - generic0
        # Fresh arena buffers per iteration are bounded by the escaping
        # outputs; generic allocations by the few non-out= kernels
        # (dropout's two results, the scalar loss).
        assert fresh <= len(model.graph.outputs)
        assert generic <= 8
        # Every other intermediate writes into one of the plan's static
        # buffers, assigned once at compile time by replaying the arena's
        # free lists over the instruction stream.
        assert plan.static_slot_count > 10 * (fresh + generic)
        assert plan.static_storage_bytes > 0

    def test_outputs_not_recycled_across_iterations(self):
        x = O.placeholder((3,), np.float64, name="x")
        y = O.mul_scalar(O.add_scalar(x, 1.0), 3.0)
        ex = GraphExecutor([y], plan_cache=PlanCache())
        first = ex.run({"x": np.zeros(3)}).outputs[0]
        snapshot = first.copy()
        ex.run({"x": np.full(3, 9.0)})
        assert np.array_equal(first, snapshot)

    def test_zero_byte_tensors(self):
        x = O.placeholder((0, 4), np.float64, name="x")
        y = O.reduce_sum(O.mul_scalar(x, 2.0))
        ex = GraphExecutor([y], plan_cache=PlanCache())
        out = ex.run({"x": np.zeros((0, 4))}).outputs[0]
        assert float(out) == 0.0
        assert ex.arena.zero_byte_count > 0

    def test_release_ignores_foreign_arrays(self):
        arena = Arena()
        arena.release(np.zeros(8))  # never acquired — must be a no-op
        assert arena.held_bytes == 0
        buf = arena.acquire((4,), np.dtype(np.float64), 32)
        arena.release(buf)
        assert arena.held_bytes > 0
        again = arena.acquire((4,), np.dtype(np.float64), 32)
        assert arena.reuse_count == 1
        assert again.shape == (4,)


class TestPlanCache:
    def test_same_graph_shares_plan(self):
        model = small_lm()
        cache = PlanCache()
        arena = Arena()
        a = GraphExecutor(model.graph.outputs, arena=arena, plan_cache=cache)
        b = GraphExecutor(model.graph.outputs, arena=arena, plan_cache=cache)
        assert a.plan is b.plan
        assert cache.hits >= 3  # schedule, memory plan, compiled plan

    def test_different_arena_different_plan(self):
        model = small_lm()
        cache = PlanCache()
        a = GraphExecutor(model.graph.outputs, arena=Arena(), plan_cache=cache)
        b = GraphExecutor(model.graph.outputs, arena=Arena(), plan_cache=cache)
        assert a.plan is not b.plan

    def test_signature_tracks_priority_rewrites(self):
        x = O.placeholder((2,), np.float64, name="x")
        y = O.add_scalar(x, 1.0)
        sig0 = graph_signature([y])
        assert graph_signature([y]) == sig0
        y.node.priority += 1
        try:
            assert graph_signature([y]) != sig0
        finally:
            y.node.priority -= 1
        assert graph_signature([y]) == sig0

    def test_null_cache_never_retains(self):
        model = small_lm()
        cache = NullPlanCache()
        a = GraphExecutor(model.graph.outputs, plan_cache=cache)
        b = GraphExecutor(model.graph.outputs, plan_cache=cache)
        assert a.plan is not b.plan
        assert cache.hits == 0

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.memo("a", lambda: 1)
        cache.memo("b", lambda: 2)
        cache.memo("c", lambda: 3)
        assert cache.memo("a", lambda: -1) == -1  # evicted, rebuilt


class TestTrainingParity:
    def test_two_steps_of_sgd_match_interpreter(self):
        from repro.train.optimizer import SGD

        model_a = small_lm()
        model_b = small_lm()
        params_a = model_a.store.initialize(seed=5)
        params_b = model_b.store.initialize(seed=5)
        feeds = lm_feeds(model_a.config)
        opt_a, opt_b = SGD(0.1), SGD(0.1)

        ex_a = GraphExecutor(model_a.graph.outputs, plan_cache=PlanCache())
        ex_b = GraphExecutor(model_b.graph.outputs, plan_cache=PlanCache())
        names = list(model_a.graph.grads)
        for _ in range(2):
            out_a = ex_a.run(feeds, params_a).outputs
            out_b = ex_b.run_interpreted(feeds, params_b).outputs
            ga = dict(zip(names, out_a[1:]))
            gb = dict(zip(names, out_b[1:]))
            opt_a.update(params_a, ga)
            opt_b.update(params_b, gb)
        for name in params_a:
            assert np.array_equal(params_a[name], params_b[name])


class TestEchoCompiledParity:
    def test_echo_rewritten_graph_runs_compiled(self):
        from repro.echo import EchoConfig, optimize

        model = small_lm()
        report = optimize(
            model.graph, EchoConfig(), plan_cache=PlanCache()
        )
        assert report.optimized_peak_bytes <= report.baseline_peak_bytes
        params = model.store.initialize(seed=6)
        feeds = lm_feeds(model.config)
        ex = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())
        got = ex.run(feeds, params).outputs
        want = ex.run_interpreted(feeds, params).outputs
        set_global_step(0)
        for a, b in zip(want, got):
            assert np.array_equal(a, b)


class TestDeterminism:
    def test_dropout_steps_advance_identically(self):
        x = O.placeholder((8, 8), np.float64, name="x")
        y = O.reduce_sum(O.dropout(x, 0.5, seed=7))
        graph = compile_training(y, params={}, placeholders={"x": x})
        a = GraphExecutor(graph.outputs, plan_cache=PlanCache())
        b = GraphExecutor(graph.outputs, plan_cache=PlanCache())
        arr = np.ones((8, 8))
        r1 = [float(a.run({"x": arr}).outputs[0]) for _ in range(3)]
        r2 = [float(b.run_interpreted({"x": arr}).outputs[0]) for _ in range(3)]
        assert r1 == r2
