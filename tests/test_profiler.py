"""Tests for the memory and runtime profilers."""

import numpy as np
import pytest

import repro.ops as O
from repro.autodiff import compile_training
from repro.graph import scope
from repro.gpumodel import DeviceModel
from repro.profiler import (
    CUDA_CONTEXT_BYTES,
    dram_transactions,
    kernel_family,
    profile_memory,
    profile_runtime,
)
from repro.runtime import TrainingExecutor


def _scoped_graph():
    x = O.placeholder((8, 16), name="pf_x")
    labels = O.placeholder((8,), np.int64, name="pf_y")
    with scope("rnn"):
        w1 = O.variable((16, 16), name="pf_w1")
        hidden = O.tanh(O.fully_connected(x, w1))
    with scope("output"):
        w2 = O.variable((5, 16), name="pf_w2")
        logits = O.fully_connected(hidden, w2)
    loss = O.softmax_cross_entropy(logits, labels)
    return compile_training(
        loss, {"pf_w1": w1, "pf_w2": w2}, {"pf_x": x, "pf_y": labels}
    )


class TestMemoryProfiler:
    def test_categories_and_total(self, monkeypatch):
        # The classic priority order: the memory-aware tie-break can move
        # the peak step to one where no feature map is live in a graph
        # this small, and this test is about category accounting.
        monkeypatch.setenv("REPRO_MEMPLAN", "greedy")
        ex = TrainingExecutor(_scoped_graph())
        report = profile_memory(ex.memory_plan, optimizer="sgd")
        assert report.total_bytes == report.tracked_bytes + report.untrackable
        assert report.untrackable >= CUDA_CONTEXT_BYTES
        assert report.weights > 0
        assert report.feature_maps > 0

    def test_optimizer_state_accounting(self):
        ex = TrainingExecutor(_scoped_graph())
        sgd = profile_memory(ex.memory_plan, optimizer="sgd")
        momentum = profile_memory(ex.memory_plan, optimizer="momentum")
        adam = profile_memory(ex.memory_plan, optimizer="adam")
        assert sgd.weights < momentum.weights < adam.weights
        # Adam keeps two extra copies vs sgd's zero, over W itself.
        param_bytes = (16 * 16 + 5 * 16) * 4
        assert adam.weights - sgd.weights == 2 * param_bytes

    def test_unknown_optimizer_rejected(self):
        ex = TrainingExecutor(_scoped_graph())
        with pytest.raises(ValueError, match="unknown optimizer"):
            profile_memory(ex.memory_plan, optimizer="lion")

    def test_untrackable_can_be_disabled(self):
        ex = TrainingExecutor(_scoped_graph())
        report = profile_memory(ex.memory_plan, include_untrackable=False)
        assert report.untrackable == 0

    def test_by_layer_breakdown_uses_scopes(self):
        ex = TrainingExecutor(_scoped_graph())
        report = profile_memory(ex.memory_plan)
        assert "rnn" in report.by_layer

    def test_format_includes_all_rows(self):
        ex = TrainingExecutor(_scoped_graph())
        text = profile_memory(ex.memory_plan).format("unit test")
        for key in ("placeholders", "weights", "feature_maps",
                    "workspace", "untrackable", "total"):
            assert key in text

    def test_fraction_sums_to_one(self):
        ex = TrainingExecutor(_scoped_graph())
        report = profile_memory(ex.memory_plan)
        total = sum(
            report.fraction(k) for k in report.by_data_structure()
        )
        assert abs(total - 1.0) < 1e-9


class TestRuntimeProfiler:
    def _report(self):
        ex = TrainingExecutor(_scoped_graph(), device=DeviceModel())
        return profile_runtime(ex.simulate_cost().timings)

    def test_totals_consistent(self):
        report = self._report()
        assert report.kernel_seconds > 0
        assert report.api_seconds > 0
        assert abs(sum(report.by_kernel.values())
                   - report.kernel_seconds) < 1e-12
        assert abs(sum(report.by_scope.values())
                   - report.kernel_seconds) < 1e-12

    def test_kernel_families(self):
        assert kernel_family("fully_connected") == "sgemm (fully-connected)"
        assert kernel_family("lstm_gates") == "fused LSTM pointwise"
        assert kernel_family("add") == "elementwise / other"
        assert kernel_family("sequence_reverse") == "SequenceReverse"

    def test_scope_attribution_includes_backward(self):
        report = self._report()
        # rnn scope covers both the forward FC and its backward GEMMs.
        assert report.by_scope.get("rnn", 0) > 0
        assert report.by_scope.get("output", 0) > 0

    def test_iteration_bound_by_larger_stream(self):
        report = self._report()
        assert report.iteration_seconds == max(
            report.kernel_seconds, report.api_seconds
        )

    def test_dram_transactions(self):
        ex = TrainingExecutor(_scoped_graph(), device=DeviceModel())
        timings = ex.simulate_cost().timings
        tx = dram_transactions(timings)
        assert tx == sum(t.dram_bytes for t in timings) // 32

    def test_format_readable(self):
        text = self._report().format("unit test")
        assert "GPU kernels" in text
        assert "by model scope" in text
