"""Tests for the workload models: word LM, NMT, decode graphs, ResNet."""

import numpy as np
import pytest

from repro.graph import Stage
from repro.gpumodel import DeviceModel
from repro.models import (
    NmtConfig,
    WordLmConfig,
    build_nmt,
    build_word_lm,
)
from repro.models.resnet_manifest import (
    RESNET50_STAGES,
    resnet50_iteration_seconds,
    resnet50_throughput,
)
from repro.nn import Backend
from repro.runtime import TrainingExecutor
from repro.train import GreedyDecoder


def _tiny_lm(backend=Backend.CUDNN, **overrides):
    defaults = dict(
        vocab_size=60, embed_size=12, hidden_size=12, num_layers=1,
        seq_len=6, batch_size=4, backend=backend,
    )
    defaults.update(overrides)
    return build_word_lm(WordLmConfig(**defaults))


def _tiny_nmt(backend=Backend.CUDNN, **overrides):
    defaults = dict(
        src_vocab_size=50, tgt_vocab_size=50, embed_size=10, hidden_size=10,
        encoder_layers=1, decoder_layers=1, src_len=5, tgt_len=5,
        batch_size=3, backend=backend,
    )
    defaults.update(overrides)
    return build_nmt(NmtConfig(**defaults))


class TestWordLm:
    def test_placeholders_and_params(self):
        model = _tiny_lm()
        assert set(model.graph.placeholders) == {"tokens", "labels"}
        names = set(model.store.tensors)
        assert "embedding.weight" in names
        assert "output.weight" in names
        assert any(n.startswith("lstm.l0") for n in names)

    def test_runs_and_loss_near_log_vocab(self):
        model = _tiny_lm()
        ex = TrainingExecutor(model.graph)
        gen = np.random.default_rng(0)
        feeds = {"tokens": gen.integers(0, 60, (6, 4)),
                 "labels": gen.integers(0, 60, (6, 4))}
        loss, grads, _ = ex.run(feeds, model.store.initialize())
        assert abs(loss - np.log(60)) < 1.0
        assert set(grads) == set(model.store.tensors)

    def test_scopes_cover_components(self):
        model = _tiny_lm()
        scopes = {
            n.scope.split("/")[0]
            for n in model.graph.nodes()
            if n.scope and n.stage is Stage.FORWARD
        }
        assert {"embedding", "rnn", "output"} <= scopes

    def test_dropout_variant_builds(self):
        model = _tiny_lm(dropout=0.2, num_layers=2)
        assert any(
            n.op.name == "dropout" for n in model.graph.nodes()
        )

    def test_degenerate_config_rejected(self):
        with pytest.raises(ValueError):
            WordLmConfig(vocab_size=1)

    def test_memory_scales_linearly_with_batch(self):
        peaks = []
        for batch in (4, 8):
            model = _tiny_lm(batch_size=batch)
            peaks.append(TrainingExecutor(model.graph).peak_bytes)
        # Activations dominate -> close to proportional (weights constant).
        ratio = peaks[1] / peaks[0]
        assert 1.4 < ratio < 2.1


class TestNmt:
    def test_structure(self):
        model = _tiny_nmt()
        assert set(model.graph.placeholders) == {
            "src_tokens", "tgt_tokens", "tgt_labels"
        }
        ops = {n.op.name for n in model.graph.nodes()}
        assert "sequence_reverse" in ops  # bidirectional encoder
        assert "layer_norm" in ops  # MLP attention
        assert "batch_dot" in ops  # context computation

    def test_dot_attention_variant(self):
        model = _tiny_nmt(attention="dot")
        ops = {n.op.name for n in model.graph.nodes()}
        assert "layer_norm" not in ops

    def test_bad_attention_rejected(self):
        with pytest.raises(ValueError):
            NmtConfig(attention="bilinear")

    def test_cudnn_decoder_falls_back_to_framework_cells(self):
        """cuDNN can't run the stepwise attention decoder (Section 5.4)."""
        model = _tiny_nmt(backend=Backend.CUDNN)
        decoder_gates = [
            n for n in model.graph.nodes()
            if n.op.name == "lstm_gates" and "decoder" in str(n.inputs)
        ]
        unfused_sigmoids = [
            n for n in model.graph.nodes()
            if n.op.name == "sigmoid" and n.scope.startswith("rnn")
        ]
        assert not decoder_gates, "decoder must not use fused cells"
        assert unfused_sigmoids, "decoder should use unfused cells"

    def test_teacher_forcing_loss_finite(self):
        model = _tiny_nmt()
        ex = TrainingExecutor(model.graph)
        gen = np.random.default_rng(1)
        feeds = {
            "src_tokens": gen.integers(3, 50, (5, 3)),
            "tgt_tokens": gen.integers(3, 50, (5, 3)),
            "tgt_labels": gen.integers(3, 50, (5, 3)),
        }
        loss, _, _ = ex.run(feeds, model.store.initialize())
        assert np.isfinite(loss)

    def test_padding_labels_reduce_loss_contributions(self):
        model = _tiny_nmt()
        ex = TrainingExecutor(model.graph)
        gen = np.random.default_rng(2)
        feeds = {
            "src_tokens": gen.integers(3, 50, (5, 3)),
            "tgt_tokens": gen.integers(3, 50, (5, 3)),
            "tgt_labels": gen.integers(3, 50, (5, 3)),
        }
        params = model.store.initialize()
        loss_full, _, _ = ex.run(feeds, params)
        feeds["tgt_labels"] = feeds["tgt_labels"].copy()
        feeds["tgt_labels"][2:] = -1  # mask most positions
        loss_masked, _, _ = ex.run(feeds, params)
        assert loss_masked != loss_full
        assert np.isfinite(loss_masked)


class TestGreedyDecoder:
    def test_decode_shapes_and_determinism(self):
        cfg = NmtConfig(
            src_vocab_size=50, tgt_vocab_size=50, embed_size=10,
            hidden_size=10, encoder_layers=1, decoder_layers=2,
            src_len=5, tgt_len=6, batch_size=3, backend=Backend.CUDNN,
        )
        model = build_nmt(cfg)
        params = model.store.initialize()
        decoder = GreedyDecoder(cfg, model.store)
        gen = np.random.default_rng(3)
        src = gen.integers(3, 50, (5, 3))
        out1 = decoder.translate(src, params)
        out2 = decoder.translate(src, params)
        assert out1 == out2
        assert len(out1) == 3
        assert all(len(s) <= cfg.tgt_len for s in out1)
        assert all(t != 2 for s in out1 for t in s)  # EOS trimmed

    def test_decoder_step_shares_training_parameters(self):
        cfg = NmtConfig(
            src_vocab_size=50, tgt_vocab_size=50, embed_size=10,
            hidden_size=10, encoder_layers=1, decoder_layers=1,
            src_len=5, tgt_len=5, batch_size=3, backend=Backend.CUDNN,
        )
        model = build_nmt(cfg)
        before = set(model.store.tensors)
        GreedyDecoder(cfg, model.store)
        after = set(model.store.tensors)
        assert before == after, "decoding must not create new parameters"


class TestResnetManifest:
    def test_total_flops_about_3_9_gflop(self):
        total = sum(s.flops_per_image for s in RESNET50_STAGES)
        assert 3.5e9 < total < 4.3e9

    def test_iteration_time_monotone_in_batch(self):
        device = DeviceModel()
        times = [resnet50_iteration_seconds(device, b) for b in (1, 8, 64)]
        assert times[0] < times[1] < times[2]

    def test_throughput_saturates(self):
        device = DeviceModel()
        t32 = resnet50_throughput(device, 32)
        t256 = resnet50_throughput(device, 256)
        assert t256 / t32 < 1.4

    def test_absolute_throughput_plausible(self):
        """Calibrated to the MXNet-era published ~200 img/s on Titan Xp."""
        thr = resnet50_throughput(DeviceModel(), 64)
        assert 100 < thr < 300
