"""Tests for the synthetic corpora and batching."""

import numpy as np
import pytest

from repro.data import (
    BOS,
    EOS,
    IWSLT15_EN_VI,
    PAD,
    PTB,
    WIKITEXT2,
    TranslationTask,
    batches,
    lm_batches,
    markov_corpus,
    markov_transitions,
)


class TestMarkovCorpus:
    def test_token_range(self):
        corpus = markov_corpus(100, 5000, seed=0)
        assert corpus.min() >= 3  # specials never emitted
        assert corpus.max() < 100
        assert corpus.dtype == np.int64

    def test_deterministic(self):
        a = markov_corpus(100, 1000, seed=1)
        b = markov_corpus(100, 1000, seed=1)
        np.testing.assert_array_equal(a, b)
        c = markov_corpus(100, 1000, seed=2)
        assert not np.array_equal(a, c)

    def test_transitions_are_stochastic(self):
        probs = markov_transitions(50, branching=4, seed=0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(47), rtol=1e-9)
        assert np.all(probs >= 0)

    def test_low_entropy(self):
        """The chain must be learnable: conditional entropy well below
        uniform (which would be log2(97) ~ 6.6 bits)."""
        probs = markov_transitions(100, branching=4, seed=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            plogp = np.where(probs > 0, probs * np.log2(probs), 0.0)
        entropy = -plogp.sum(axis=1).mean()
        assert entropy < 3.5

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            markov_corpus(5, 100)


class TestLmBatches:
    def test_labels_are_next_tokens(self):
        corpus = np.arange(100, dtype=np.int64) + 3
        batch = next(lm_batches(corpus, batch_size=2, seq_len=5))
        np.testing.assert_array_equal(
            batch["labels"], batch["tokens"] + 1
        )
        assert batch["tokens"].shape == (5, 2)

    def test_continuity_across_batches(self):
        """Consecutive batches continue each lane (truncated BPTT)."""
        corpus = np.arange(1000, dtype=np.int64) + 3
        it = lm_batches(corpus, batch_size=4, seq_len=7)
        first = next(it)
        second = next(it)
        np.testing.assert_array_equal(
            second["tokens"][0], first["tokens"][-1] + 1
        )

    def test_too_small_corpus_rejected(self):
        with pytest.raises(ValueError):
            next(lm_batches(np.arange(10), batch_size=8, seq_len=8))


class TestTranslationTask:
    def _task(self):
        return TranslationTask(
            src_vocab_size=60, tgt_vocab_size=60, src_len=8, tgt_len=8,
            seed=3,
        )

    def test_batch_shapes_and_conventions(self):
        task = self._task()
        batch = task.sample_batch(5, np.random.default_rng(0))
        assert batch["src_tokens"].shape == (8, 5)
        assert batch["tgt_tokens"].shape == (8, 5)
        assert batch["tgt_labels"].shape == (8, 5)
        # Decoder input starts with BOS in every lane.
        assert np.all(batch["tgt_tokens"][0] == BOS)

    def test_labels_match_references(self):
        task = self._task()
        batch = task.sample_batch(4, np.random.default_rng(1))
        refs = task.references(batch["src_tokens"])
        for b, ref in enumerate(refs):
            labels = batch["tgt_labels"][:, b]
            produced = [int(t) for t in labels if t >= 3]
            assert produced == ref

    def test_labels_terminate_with_eos_when_room(self):
        task = self._task()
        batch = task.sample_batch(6, np.random.default_rng(2))
        for b in range(6):
            labels = batch["tgt_labels"][:, b]
            real = labels[labels != -1]
            if len(real) < task.tgt_len:
                assert real[-1] == EOS

    def test_target_is_reversed_relabeled_source(self):
        task = self._task()
        batch = task.sample_batch(3, np.random.default_rng(3))
        refs = task.references(batch["src_tokens"])
        for b in range(3):
            src = batch["src_tokens"][:, b]
            src = src[src != PAD]
            assert len(refs[b]) == len(src)

    def test_teacher_forcing_alignment(self):
        """tgt_tokens[t+1] must equal tgt_labels[t] for real tokens."""
        task = self._task()
        batch = task.sample_batch(4, np.random.default_rng(4))
        for b in range(4):
            labels = batch["tgt_labels"][:, b]
            inputs = batch["tgt_tokens"][:, b]
            for t in range(task.tgt_len - 1):
                if labels[t] >= 3:
                    assert inputs[t + 1] == labels[t]

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            TranslationTask(60, 60, src_len=10, tgt_len=5)

    def test_batches_iterator(self):
        task = self._task()
        out = list(batches(task, batch_size=2, num_batches=3, seed=5))
        assert len(out) == 3
        assert all(b["src_tokens"].shape == (8, 2) for b in out)


class TestCorpusSpecs:
    def test_paper_vocab_sizes(self):
        assert PTB.vocab_size == 10000
        assert WIKITEXT2.vocab_size == 33278
        assert IWSLT15_EN_VI.src_vocab_size == 17191
        assert IWSLT15_EN_VI.tgt_vocab_size == 7709

    def test_synthetic_stream(self):
        stream = PTB.synthetic(num_tokens=2000)
        assert len(stream) == 2000
        assert stream.max() < PTB.vocab_size
