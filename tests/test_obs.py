"""Tests for the observability spine (``repro.obs``).

Four layers of coverage:

* Chrome trace-event schema validation — required keys, ``ph``/``pid``/
  ``tid`` types, strictly nested ``B``/``E`` pairs per thread, monotone
  timestamps — run against real exports from instrumented workloads;
* the nine-boundary acceptance trace: a 2-rank distributed NMT training
  step (echo on, verify on, wavefront threads, GEMM batching) must emit
  spans for every instrumented pipeline boundary;
* cross-rank merge: per-rank payloads from the process backend align by
  the collective (generation, seq) tags;
* the inertness contract — tracing + metrics enabled is bitwise
  identical to disabled, across threads x echo x memplan (hypothesis)
  plus a 2-rank distributed leg — and the metrics primitives themselves
  (exact-bucket percentiles, absorb, typed registration).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import DistributedTrainer, run_distributed
from repro.echo import optimize
from repro.models import NmtConfig, WordLmConfig, build_nmt, build_word_lm
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    merge_chrome_traces,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.train import SGD, Trainer
from tests.test_memplan import shape_heavy_training_graph, _memplan, _run_graph


@pytest.fixture
def _ambient_obs_state():
    """Save the ambient tracer/registry (REPRO_TRACE may have armed them
    for the whole suite — the CI ``obs`` job does) and restore on exit."""
    saved = (obs_trace._tracer, obs_trace.TRACING, obs_metrics._registry)
    try:
        yield
    finally:
        obs_trace._tracer, obs_trace.TRACING = saved[0], saved[1]
        obs_metrics._registry = saved[2]


@pytest.fixture
def traced(_ambient_obs_state):
    """A fresh tracer + registry for one test, whatever the env armed."""
    yield obs_trace.enable(fresh=True), obs_metrics.enable(fresh=True)


@pytest.fixture
def untraced(_ambient_obs_state):
    """Force-disabled obs for one test (the inertness baseline)."""
    obs_trace.disable()
    obs_metrics.disable()
    yield


# -- golden schema: the trace-event contract every export must satisfy -------

#: required keys per phase, per the Chrome trace-event spec
GOLDEN_SCHEMA = {
    "B": {"name": str, "cat": str, "ph": str, "ts": int, "pid": int,
          "tid": int},
    "E": {"ph": str, "ts": int, "pid": int, "tid": int},
    "M": {"name": str, "ph": str, "pid": int, "tid": int, "args": dict},
}


def validate_chrome_payload(payload: dict) -> None:
    """Assert ``payload`` satisfies the trace-event contract."""
    assert isinstance(payload, dict)
    assert "traceEvents" in payload
    events = payload["traceEvents"]
    assert isinstance(events, list)
    json.dumps(payload)  # must serialize as-is

    stacks: dict[tuple, list] = {}
    last_ts: dict[tuple, int] = {}
    for ev in events:
        assert isinstance(ev, dict)
        ph = ev.get("ph")
        assert ph in GOLDEN_SCHEMA, f"unknown phase {ph!r}"
        for key, typ in GOLDEN_SCHEMA[ph].items():
            assert key in ev, f"{ph} event missing {key!r}: {ev}"
            assert isinstance(ev[key], typ), (key, ev)
        if ph == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert isinstance(ev["args"].get("name"), str)
            continue
        thread = (ev["pid"], ev["tid"])
        # Monotone timestamps per thread (non-decreasing).
        assert ev["ts"] >= last_ts.get(thread, ev["ts"]), ev
        last_ts[thread] = ev["ts"]
        if ph == "B":
            assert ev["name"]
            stacks.setdefault(thread, []).append(ev["name"])
        else:
            stack = stacks.get(thread)
            assert stack, f"E without matching B on {thread}"
            stack.pop()
    for thread, stack in stacks.items():
        assert not stack, f"unclosed spans on {thread}: {stack}"


def _tiny_lm_steps(steps: int = 2, threads: int | None = None,
                   echo: bool = False, seed: int = 0):
    """Run a tiny word-LM training loop; returns (losses, grads-free params)."""
    cfg = WordLmConfig(
        vocab_size=30, embed_size=8, hidden_size=8, num_layers=1,
        seq_len=5, batch_size=4, dropout=0.0,
    )
    model = build_word_lm(cfg)
    if echo:
        optimize(model.graph)
    params = model.store.initialize(seed=seed)
    trainer = Trainer(model.graph, params, SGD(0.1), threads=threads)
    gen = np.random.default_rng(seed)
    losses = []
    for _ in range(steps):
        feeds = {
            "tokens": gen.integers(0, cfg.vocab_size,
                                   size=(cfg.seq_len, cfg.batch_size)),
            "labels": gen.integers(0, cfg.vocab_size,
                                   size=(cfg.seq_len, cfg.batch_size)),
        }
        losses.append(trainer.step(feeds).loss)
    return losses, params


class TestTraceSchema:
    def test_export_of_real_workload_validates(self, traced):
        tracer, _ = traced
        _tiny_lm_steps(steps=2, threads=2)
        payload = tracer.export_payload()
        validate_chrome_payload(payload)
        assert tracer.span_count() > 0

    def test_export_file_round_trips(self, traced, tmp_path):
        tracer, _ = traced
        _tiny_lm_steps(steps=1)
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        loaded = json.loads(path.read_text())
        validate_chrome_payload(loaded)

    def test_mid_span_export_closes_open_spans(self):
        tracer = Tracer(pid=1)
        with tracer.span("outer", "t"):
            with tracer.span("inner", "t"):
                payload = tracer.export_payload()
        validate_chrome_payload(payload)

    def test_late_annotation_lands_in_export(self):
        tracer = Tracer(pid=1)
        with tracer.span("s", "t", {"early": 1}) as sp:
            sp["late"] = "verdict"
        begins = [e for e in tracer.export_payload()["traceEvents"]
                  if e["ph"] == "B"]
        assert begins[0]["args"] == {"early": 1, "late": "verdict"}

    def test_event_cap_drops_b_but_never_orphans_e(self):
        tracer = Tracer(pid=1, max_events_per_thread=4)
        for _ in range(10):
            with tracer.span("s", "t"):
                pass
        validate_chrome_payload(tracer.export_payload())
        assert tracer.dropped_count() == 8  # 2 spans fit (B+E each)

    def test_per_thread_streams_are_separate(self, traced):
        tracer, _ = traced
        import threading

        # Keep all three threads alive at once — OS thread ids (and so
        # trace tids) are reused once a thread exits.
        barrier = threading.Barrier(3)

        def work():
            with obs_trace.span("threaded", "t"):
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=work) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        payload = tracer.export_payload()
        validate_chrome_payload(payload)
        tids = {e["tid"] for e in payload["traceEvents"]
                if e["ph"] == "B" and e["name"] == "threaded"}
        assert len(tids) == 3


# -- the nine-boundary acceptance trace --------------------------------------

#: one span name per instrumented pipeline boundary of a distributed
#: training step (the serve lifecycle is covered in test_serve.py)
NINE_BOUNDARIES = {
    "plan.compile",     # 1 plan cache compile tier
    "plan.lower",       # 2 lowering
    "plan.verify",      # 3 static verification tier
    "cache.lookup",     # 4 PlanCache hit/miss
    "echo.pass",        # 5 Echo accept/reject search
    "memplan.pack",     # 6 memory-plan packing
    "wavefront.item",   # 7 wavefront level execution
    "gemm.batch",       # 8 GEMM-batch dispatch
    "dist.allreduce",   # 9 ring collective (chunk send/recv below it)
}


def _nmt_rank(group, batches):
    """Worker: one rank's traced NMT training (module-level: picklable)."""
    cfg = NmtConfig(
        src_vocab_size=30, tgt_vocab_size=30, embed_size=12,
        hidden_size=12, encoder_layers=1, decoder_layers=1,
        src_len=4, tgt_len=4, batch_size=2, dropout=0.0,
    )
    model = build_nmt(cfg)
    optimize(model.graph)
    params = model.store.initialize(seed=11)
    with DistributedTrainer(
        group, model.graph, params, SGD(0.1),
        threads=2, batch_gemms=True,
        batch_axes={"src_tokens": 1, "tgt_tokens": 1, "tgt_labels": 1},
    ) as trainer:
        records = [trainer.step(feeds) for feeds in batches]
        assert trainer.step_done.is_set()
    return [r.loss for r in records], params


def _nmt_batches(steps: int, global_batch: int = 4, seed: int = 3):
    gen = np.random.default_rng(seed)
    return [
        {
            "src_tokens": gen.integers(0, 30, size=(4, global_batch)),
            "tgt_tokens": gen.integers(0, 30, size=(4, global_batch)),
            "tgt_labels": gen.integers(0, 30, size=(4, global_batch)),
        }
        for _ in range(steps)
    ]


class TestNineBoundaries:
    def test_two_rank_nmt_trace_covers_every_boundary(
        self, traced, monkeypatch
    ):
        tracer, _ = traced
        monkeypatch.setenv("REPRO_VERIFY", "1")
        results = run_distributed(
            _nmt_rank, 2, backend="thread", args=(_nmt_batches(2),),
            timeout_s=60.0,
        )
        # Both ranks trained in lockstep (thread backend shares the
        # tracer, so the trace holds both ranks' timelines by thread).
        assert results[0][0] == results[1][0]

        payload = tracer.export_payload()
        validate_chrome_payload(payload)
        names = tracer.span_names()
        missing = NINE_BOUNDARIES - names
        assert not missing, f"boundaries missing from trace: {missing}"
        # The collective's wire-level children are present too.
        assert "dist.chunk.send" in names and "dist.chunk.recv" in names
        # Collective spans are rank-tagged for the cross-rank merge.
        ranks = {
            ev["args"]["rank"]
            for ev in payload["traceEvents"]
            if ev.get("ph") == "B" and ev.get("name") == "dist.allreduce"
        }
        assert ranks == {0, 1}


# -- cross-rank merge --------------------------------------------------------


def _traced_rank(group, batches):
    """Worker (process backend): per-rank tracer, returns its payload."""
    tracer = obs_trace.enable(fresh=True)
    tracer.set_process(group.rank, f"rank{group.rank}")
    try:
        cfg = WordLmConfig(
            vocab_size=30, embed_size=8, hidden_size=8, num_layers=1,
            seq_len=5, batch_size=2, dropout=0.0,
        )
        model = build_word_lm(cfg)
        params = model.store.initialize(seed=100 + group.rank)
        with DistributedTrainer(
            group, model.graph, params, SGD(0.1)
        ) as trainer:
            for feeds in batches:
                trainer.step(feeds)
        return tracer.export_payload()
    finally:
        obs_trace.disable()


class TestCrossRankMerge:
    def test_collective_spans_align_by_gen_seq(self):
        gen = np.random.default_rng(5)
        batches = [
            {
                "tokens": gen.integers(0, 30, size=(5, 4)),
                "labels": gen.integers(0, 30, size=(5, 4)),
            }
            for _ in range(2)
        ]
        payloads = run_distributed(
            _traced_rank, 2, backend="process", args=(batches,),
            timeout_s=60.0,
        )
        assert all(isinstance(p, dict) for p in payloads)

        def collective_keys(payload):
            out = {}
            for ev in payload["traceEvents"]:
                if ev.get("ph") != "B":
                    continue
                args = ev.get("args") or {}
                if "gen" in args and "seq" in args:
                    key = (args["gen"], args["seq"])
                    out.setdefault(key, ev["ts"])
            return out

        keys0, keys1 = map(collective_keys, payloads)
        # The same collectives happened on both ranks.
        assert set(keys0) == set(keys1) and keys0

        merged = merge_chrome_traces(payloads)
        validate_chrome_payload(merged)
        assert {e["pid"] for e in merged["traceEvents"]} == {0, 1}

        # The anchor collective starts at the same merged timestamp on
        # both ranks; every other shared collective keeps its per-rank
        # relative order (constant shift preserves monotonicity).
        merged_keys = {0: {}, 1: {}}
        for ev in merged["traceEvents"]:
            if ev.get("ph") != "B":
                continue
            args = ev.get("args") or {}
            if "gen" in args and "seq" in args:
                merged_keys[ev["pid"]].setdefault(
                    (args["gen"], args["seq"]), ev["ts"]
                )
        anchor = sorted(set(keys0) & set(keys1))[0]
        assert merged_keys[0][anchor] == merged_keys[1][anchor]

    def test_merge_of_nothing_is_empty(self):
        assert merge_chrome_traces([]) == {
            "traceEvents": [], "displayTimeUnit": "ms",
        }


# -- inertness: tracing + metrics may never change a computed value ----------


def _losses_and_grads(graph, rows, cols, seed, mode, threads):
    gen = np.random.default_rng(seed)
    feeds = {"mp_x": gen.standard_normal((rows, cols))}
    params = {"mp_w": gen.standard_normal((rows, cols))}
    loss, grads, _ = _run_graph(graph, feeds, params, mode, threads)
    return loss, {k: np.array(v, copy=True) for k, v in grads.items()}


class TestInertness:
    @given(shape_heavy_training_graph(), st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_tracing_and_metrics_are_bitwise_inert(self, built, seed):
        # Manual ambient save/restore: hypothesis @given composes badly
        # with function-scoped stateful fixtures.
        saved = (obs_trace._tracer, obs_trace.TRACING, obs_metrics._registry)
        try:
            obs_trace.disable()
            obs_metrics.disable()
            self._check_inert(built, seed)
        finally:
            obs_trace._tracer, obs_trace.TRACING = saved[0], saved[1]
            obs_metrics._registry = saved[2]

    def _check_inert(self, built, seed):
        graph, rows, cols = built
        for echo in (False, True):
            if echo:
                optimize(graph)
            for mode in ("greedy", "color"):
                for threads in (1, 4):
                    assert obs_trace.tracer() is None
                    ref_loss, ref_grads = _losses_and_grads(
                        graph, rows, cols, seed, mode, threads
                    )
                    obs_trace.enable(fresh=True)
                    obs_metrics.enable(fresh=True)
                    try:
                        loss, grads = _losses_and_grads(
                            graph, rows, cols, seed, mode, threads
                        )
                    finally:
                        obs_trace.disable()
                        obs_metrics.disable()
                    assert loss == ref_loss, (echo, mode, threads)
                    for k in ref_grads:
                        np.testing.assert_array_equal(
                            grads[k], ref_grads[k], err_msg=str(
                                (echo, mode, threads, k)
                            )
                        )

    def test_traced_trainer_matches_untraced(self, untraced):
        ref_losses, ref_params = _tiny_lm_steps(steps=3, threads=2,
                                                echo=True, seed=4)
        obs_trace.enable(fresh=True)
        obs_metrics.enable(fresh=True)
        try:
            losses, params = _tiny_lm_steps(steps=3, threads=2,
                                            echo=True, seed=4)
            assert obs_trace.tracer().span_count() > 0
        finally:
            obs_trace.disable()
            obs_metrics.disable()
        assert losses == ref_losses
        for k in ref_params:
            np.testing.assert_array_equal(params[k], ref_params[k])

    def test_two_rank_dist_leg_is_inert(self, untraced):
        gen = np.random.default_rng(9)
        batches = [
            {
                "tokens": gen.integers(0, 30, size=(5, 4)),
                "labels": gen.integers(0, 30, size=(5, 4)),
            }
            for _ in range(2)
        ]
        ref = run_distributed(
            _dist_leg_rank, 2, backend="thread", args=(batches,),
            timeout_s=60.0,
        )
        obs_trace.enable(fresh=True)
        obs_metrics.enable(fresh=True)
        try:
            traced = run_distributed(
                _dist_leg_rank, 2, backend="thread", args=(batches,),
                timeout_s=60.0,
            )
        finally:
            obs_trace.disable()
            obs_metrics.disable()
        for rank in range(2):
            assert traced[rank][0] == ref[rank][0]  # losses, bitwise
            for k in ref[rank][1]:
                np.testing.assert_array_equal(
                    traced[rank][1][k], ref[rank][1][k]
                )


def _dist_leg_rank(group, batches):
    cfg = WordLmConfig(
        vocab_size=30, embed_size=8, hidden_size=8, num_layers=1,
        seq_len=5, batch_size=2, dropout=0.0,
    )
    model = build_word_lm(cfg)
    params = model.store.initialize(seed=100 + group.rank)
    with DistributedTrainer(group, model.graph, params, SGD(0.1)) as trainer:
        losses = [trainer.step(feeds).loss for feeds in batches]
    return losses, params


# -- metrics primitives ------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_basics(self):
        c, g = Counter(), Gauge()
        assert c.value == 0 and g.value is None
        c.inc()
        c.inc(4)
        g.set(2.5)
        assert c.value == 5 and g.value == 2.5

    def test_histogram_exact_percentiles(self):
        h = Histogram()
        for v in [1.0] * 3 + [4.0] * 97:
            h.observe(v)
        assert h.percentile(50) == 4.0
        assert h.percentile(1) == 1.0
        assert h.count == 100 and h.sum == 3.0 + 4.0 * 97

    def test_histogram_degenerate_windows(self):
        h = Histogram()
        assert h.percentile(99) is None
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["p99"] is None
        h.observe(7.0)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 7.0

    def test_registry_type_collisions_raise(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_absorb_flattens_and_skips_non_numeric(self):
        reg = MetricsRegistry()
        reg.absorb("dist", {
            "rank": 1,
            "collectives": {"allreduce_mean": 4},
            "note": "not-a-number",
        })
        snap = reg.snapshot()
        assert snap["dist.rank"] == 1
        assert snap["dist.collectives.allreduce_mean"] == 4
        assert "dist.note" not in snap

    def test_snapshot_shape_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(3.0)
        snap = reg.snapshot()
        json.dumps(snap)
        assert snap["c"] == {
            "count": 1, "sum": 3.0, "min": 3.0, "max": 3.0,
            "p50": 3.0, "p95": 3.0, "p99": 3.0,
        }

    def test_dump_cli_runs_and_prints_json(self, capsys, tmp_path,
                                           untraced):
        from repro.obs import dump

        try:
            rc = dump.main(["--steps", "1",
                            "--trace", str(tmp_path / "t.json")])
        finally:
            obs_trace.disable()
            obs_metrics.disable()
        assert rc == 0
        out = capsys.readouterr().out
        snap = json.loads(out)
        assert "plancache.hit_rate" in snap
        assert "train.steps" in snap
        validate_chrome_payload(
            json.loads((tmp_path / "t.json").read_text())
        )


class TestZeroOverheadContract:
    def test_disabled_span_is_shared_noop(self, untraced):
        sp1 = obs_trace.span("a", "b", {"x": 1})
        sp2 = obs_trace.span("c")
        assert sp1 is sp2
        with sp1 as s:
            s["ignored"] = True  # must not raise

    def test_enable_disable_toggles_flag(self, untraced):
        assert not obs_trace.TRACING
        obs_trace.enable(fresh=True)
        try:
            assert obs_trace.TRACING
            assert obs_trace.tracer() is not None
        finally:
            obs_trace.disable()
        assert not obs_trace.TRACING and obs_trace.tracer() is None
