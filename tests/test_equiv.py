"""Translation validation: the symbolic equivalence certifier (EQ6xx).

Three layers of evidence:

* a **clean matrix** — every pass combination ({echo on/off} x {memplan
  color,greedy} x {threads 1,4} x {batching on/off}) certifies with zero
  EQ findings AND executes bitwise-identically to the baseline plan;
* a **mutation corpus** — ten seeded semantic defects, each injected
  into a freshly compiled plan and each caught by exactly the expected
  EQ code with no cascade noise;
* a **hypothesis property** — random training graphs through random
  pass combinations certify clean.

The corpus mutates the compiler's own working records (the lowering's
descriptors reference the same Node objects as the graph, so defects are
injected by swapping in clones, corrupting witnesses, or editing the
lowering — never by editing a node both sides would see).
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.ops as O
from repro.analysis import AnalysisReport, InplaceWitness, check_equivalence
from repro.analysis.equiv import fingerprint_outputs
from repro.analysis.findings import CODES, Severity, finding
from repro.analysis.lint import list_codes
from repro.autodiff import compile_training
from repro.echo.pass_ import EchoPass
from repro.echo.rewrite import _clone_as_mirror
from repro.graph import Stage, Tensor
from repro.memplan.elision import inplace_positions
from repro.runtime import Arena, CompiledPlan, PlanCache, schedule


def _codes(findings):
    return {f.code for f in findings}


def _mlp_graph():
    """Training MLP with a seeded dropout: fused chains, real backward."""
    x = O.placeholder((8, 16), name="x")
    y = O.placeholder((8, 4), name="y")
    w1 = O.variable((12, 16), name="w1")
    w2 = O.variable((4, 12), name="w2")
    h = O.tanh(O.fully_connected(x, w1))
    h = O.dropout(h, 0.5, seed=O.stable_seed("equiv", 0))
    p = O.fully_connected(h, w2)
    loss = O.reduce_mean(O.mul(O.sub(p, y), O.sub(p, y)))
    return compile_training(loss, {"w1": w1, "w2": w2}, {"x": x, "y": y})


def _mlp_plan(**kw):
    tg = _mlp_graph()
    outs = tg.outputs
    order = schedule(outs)
    return CompiledPlan(order, outs, Arena(), **kw), order, outs


def _batched_plan():
    """Two independent isomorphic GEMMs: one batched group of two."""
    x1 = O.placeholder((8, 8), name="b1")
    x2 = O.placeholder((8, 8), name="b2")
    w = O.variable((8, 8), name="bw")
    # One consumer needing both products keeps the GEMMs adjacent in any
    # schedule, so the batching pre-pass always sees an open group of 2.
    out = O.reduce_mean(O.add(O.matmul(x1, w), O.matmul(x2, w)))
    outputs = [out]
    order = schedule(outputs)
    plan = CompiledPlan(order, outputs, Arena(), fuse=False,
                        batch_gemms=True)
    assert plan.lowering.witnesses.batches, "fixture must batch"
    return plan


def _aliased_plan():
    """split + partial slice_axis, color mode: two alias instructions."""
    x = O.placeholder((8, 16), name="vx")
    lo, hi = O.split(x, 2, axis=0)
    s = O.slice_axis(x, 0, 0, 4)
    outputs = [
        O.reduce_mean(O.concat([O.tanh(lo), O.sigmoid(hi)], 0)),
        O.reduce_mean(O.relu(s)),
    ]
    order = schedule(outputs)
    plan = CompiledPlan(order, outputs, Arena(), fuse=False,
                        memplan="color")
    assert plan.lowering.witnesses.aliases, "fixture must elide"
    return plan


def _mirrored_plan():
    """Hand-built Echo-style rewrite: dropout mirrored into the backward."""
    x = O.placeholder((8, 8), name="mx")
    fwd = O.dropout(x, 0.5, seed=O.stable_seed("mirror", 1)).node
    mirror = _clone_as_mirror(fwd, {})
    grad = O.mul(Tensor(mirror, 1), x)
    grad.node.stage = Stage.BACKWARD
    order = [x.node, fwd, mirror, grad.node]
    outputs = [Tensor(grad.node, 0)]
    plan = CompiledPlan(order, outputs, Arena(), fuse=False)
    return plan, fwd, mirror


def _clone_node(node, **extra_attrs):
    """A same-op clone with perturbed attrs (a fresh uid, no mirror)."""
    from repro.graph.node import Node, _NODE_COUNTER

    clone = Node.__new__(Node)
    clone.uid = next(_NODE_COUNTER)
    clone.op = node.op
    clone.inputs = node.inputs
    clone.attrs = dict(node.attrs)
    clone.attrs.update(extra_attrs)
    clone.name = f"{node.name}__mutant"
    clone.stage = node.stage
    clone.scope = node.scope
    clone.out_specs = node.out_specs
    clone.mirror_of = None
    clone.priority = node.priority
    return clone


class TestCleanMatrix:
    def test_all_pass_combinations_certify_and_match_bitwise(self):
        rng = np.random.default_rng(0)
        feeds = {
            "x": rng.standard_normal((8, 16)).astype(np.float32),
            "y": rng.standard_normal((8, 4)).astype(np.float32),
        }
        params = {
            "w1": rng.standard_normal((12, 16)).astype(np.float32),
            "w2": rng.standard_normal((4, 12)).astype(np.float32),
        }
        reference: list[np.ndarray] | None = None
        for echo in (False, True):
            tg = _mlp_graph()
            if echo:
                EchoPass(plan_cache=PlanCache()).run(tg)
            outs = tg.outputs
            order = schedule(outs)
            for memplan in ("color", "greedy"):
                for threads in (1, 4):
                    for batch in (False, True):
                        plan = CompiledPlan(
                            order, outs, Arena(), threads=threads,
                            memplan=memplan, batch_gemms=batch,
                        )
                        tag = (echo, memplan, threads, batch)
                        assert check_equivalence(plan) == [], tag
                        got = plan.run(feeds, params)
                        if reference is None:
                            reference = got
                            continue
                        assert len(got) == len(reference), tag
                        for ref, arr in zip(reference, got):
                            assert ref.dtype == arr.dtype, tag
                            assert np.array_equal(ref, arr), tag

    def test_fixture_plans_certify_clean(self):
        assert check_equivalence(_batched_plan()) == []
        assert check_equivalence(_aliased_plan()) == []
        plan, _fwd, _mirror = _mirrored_plan()
        assert check_equivalence(plan) == []

    def test_fingerprint_is_mirror_invariant(self):
        tg = _mlp_graph()
        before = fingerprint_outputs(tg.outputs)
        EchoPass(plan_cache=PlanCache()).run(tg)
        assert fingerprint_outputs(tg.outputs) == before


class TestMutationCorpus:
    """Each seeded defect is caught by exactly the expected EQ code."""

    def test_eq601_flipped_attr_on_lowered_node(self):
        # Mutation 1: a descriptor silently swaps its node for a clone
        # whose attrs differ — the classic miscompile the owner map pins
        # to the corrupt instruction itself.
        plan, _order, _outs = _mlp_plan(fuse=False)
        low = plan.lowering
        idx = next(
            i for i, d in enumerate(low.descs)
            if d["kind"] == "out" and d["node"].op.name == "tanh"
        )
        low.descs[idx]["node"] = _clone_node(
            low.descs[idx]["node"], flipped=1
        )
        fs = check_equivalence(plan)
        assert _codes(fs) == {"EQ601"}
        assert [f.instr for f in fs] == [idx]

    def test_eq602_recompute_node_without_mirror(self):
        # Mutation 2: the Echo witness link is dropped — a RECOMPUTE node
        # with no mirror_of cannot be certified against any original.
        plan, _fwd, mirror = _mirrored_plan()
        mirror.mirror_of = None
        assert _codes(check_equivalence(plan)) == {"EQ602"}

    def test_eq602_deleted_alias_witness(self):
        # Mutation 3: the elision pass "forgot" to justify one rewrite.
        plan = _aliased_plan()
        wit = plan.lowering.witnesses
        del wit.aliases[next(iter(wit.aliases))]
        assert _codes(check_equivalence(plan)) == {"EQ602"}

    def test_eq602_unexplained_root_merge(self):
        # Mutation 4: two unrelated registers silently share storage in
        # the alias-root table with no witness explaining the merge.
        plan, _order, _outs = _mlp_plan(fuse=False, memplan="greedy")
        low = plan.lowering
        a, b = sorted(
            s for s in range(len(low.root)) if low.root[s] == s
        )[-2:]
        low.root[b] = a
        assert _codes(check_equivalence(plan)) == {"EQ602"}

    def test_eq603_swapped_batched_member(self):
        # Mutation 5: two batched-GEMM members trade operand slots — each
        # member now computes the other's product.
        plan = _batched_plan()
        low = plan.lowering
        idx, w = next(iter(low.witnesses.batches.items()))
        a = list(low.descs[idx]["a_slots"])
        a[0], a[1] = a[1], a[0]
        low.descs[idx]["a_slots"] = tuple(a)
        assert "EQ603" in _codes(check_equivalence(plan))

    def test_eq603_corrupted_fusion_witness(self):
        # Mutation 6: a fusion witness claims a different member list
        # than the chain the instruction actually composes.
        plan, _order, _outs = _mlp_plan(fuse=True)
        low = plan.lowering
        assert low.witnesses.fusions, "fixture must fuse"
        idx, w = next(iter(low.witnesses.fusions.items()))
        low.witnesses.fusions[idx] = dataclasses.replace(
            w, members=w.members[:-1] + (w.members[-1] + 10_000,)
        )
        assert _codes(check_equivalence(plan)) == {"EQ603"}

    def test_eq604_inplace_redirect_over_live_target(self):
        # Mutation 7: an in-place redirect overwrites a register some
        # later instruction still reads — fabricated witness plus the
        # matching root merge, so only the value check can object.
        plan, _order, _outs = _mlp_plan(fuse=False, memplan="greedy")
        low = plan.lowering
        chosen = None
        for idx, desc in enumerate(low.descs):
            if desc["kind"] != "out" or len(desc["out_slots"]) != 1:
                continue
            for slot, occurrences in inplace_positions(desc):
                if occurrences != 1 or slot in low.source_slots:
                    continue
                read_later = any(
                    slot in later["in_slots"]
                    for later in low.descs[idx + 1:]
                )
                if read_later:
                    chosen = (idx, desc["out_slots"][0], slot)
                    break
            if chosen:
                break
        assert chosen is not None, "fixture needs a live in-place target"
        idx, out, target = chosen
        wit = InplaceWitness(
            instr=idx, out=out, target=target,
            root=low.root[target], members=(target,),
        )
        low.witnesses.inplace = (*low.witnesses.inplace, wit)
        ro, rt = low.root[out], low.root[target]
        low.root[:] = [rt if r == ro else r for r in low.root]
        assert _codes(check_equivalence(plan)) == {"EQ604"}

    def test_eq605_misranged_alias_view(self):
        # Mutation 8: the baked view index of an elided copy is narrowed
        # — the bound view no longer holds the copy kernel's values.
        plan = _aliased_plan()
        low = plan.lowering
        idx = next(
            i for i, d in enumerate(low.descs)
            if d["kind"] == "alias" and d["node"].op.name == "slice_axis"
        )
        low.descs[idx]["alias_index"] = [(slice(0, 2),)]
        assert _codes(check_equivalence(plan)) == {"EQ605"}

    def test_eq606_unstable_rng_reordered(self):
        # Mutation 9: two clock-dependent dropouts swap stream positions,
        # inverting the RNG-clock order the schedule promised.
        x = O.placeholder((8, 8), name="rx2")
        d1 = O.dropout(x, 0.5, seed=O.stable_seed("eq606", 0))
        d2 = O.dropout(O.tanh(d1), 0.5, seed=O.stable_seed("eq606", 1))
        outputs = [O.reduce_mean(d2)]
        order = schedule(outputs)
        plan = CompiledPlan(order, outputs, Arena(), fuse=False)
        low = plan.lowering
        # Clock-dependence is a property of the node (shared by graph and
        # stream), so this alone keeps the plan clean...
        d1.node.attrs["seed"] = None
        d2.node.attrs["seed"] = None
        assert check_equivalence(plan) == []
        # ...until the two RNG instructions trade places.
        i1 = next(i for i, d in enumerate(low.descs)
                  if d["node"] is d1.node)
        i2 = next(i for i, d in enumerate(low.descs)
                  if d["node"] is d2.node)
        low.descs[i1], low.descs[i2] = low.descs[i2], low.descs[i1]
        assert _codes(check_equivalence(plan)) == {"EQ606"}

    def test_eq606_mirrored_unstable_rng(self):
        # Mutation 10: an unstable (clock-seeded) dropout gets mirrored —
        # replaying it advances the clock and draws a different mask.
        plan, fwd, mirror = _mirrored_plan()
        fwd.attrs["seed"] = None
        mirror.attrs["seed"] = None
        assert _codes(check_equivalence(plan)) == {"EQ606"}

    def test_eq607_perturbed_mirror(self):
        # Mutation 11: a recompute mirror's attrs drift from the
        # original's — it no longer recomputes the same function.
        plan, _fwd, mirror = _mirrored_plan()
        mirror.attrs["p"] = 0.75
        assert _codes(check_equivalence(plan)) == {"EQ607"}

    def test_corpus_covers_every_eq_code(self):
        corpus = {"EQ601", "EQ602", "EQ603", "EQ604", "EQ605", "EQ606",
                  "EQ607"}
        assert corpus == {c for c in CODES if c.startswith("EQ")}


class TestRandomPipelines:
    @settings(max_examples=12, deadline=None)
    @given(
        hidden=st.integers(4, 12),
        depth=st.integers(1, 3),
        act=st.sampled_from(["tanh", "sigmoid", "relu"]),
        use_dropout=st.booleans(),
        memplan=st.sampled_from(["color", "greedy"]),
        fuse=st.booleans(),
        batch=st.booleans(),
        threads=st.sampled_from([1, 4]),
    )
    def test_random_training_graph_certifies_clean(
        self, hidden, depth, act, use_dropout, memplan, fuse, batch, threads
    ):
        activation = {"tanh": O.tanh, "sigmoid": O.sigmoid,
                      "relu": O.relu}[act]
        x = O.placeholder((4, 8), name="hx")
        y = O.placeholder((4, 2), name="hy")
        params = {}
        h, width = x, 8
        for layer in range(depth):
            w = O.variable((hidden, width), name=f"hw{layer}")
            params[f"hw{layer}"] = w
            h = activation(O.fully_connected(h, w))
            if use_dropout:
                h = O.dropout(h, 0.25, seed=O.stable_seed("hyp", layer))
            width = hidden
        wo = O.variable((2, width), name="hwo")
        params["hwo"] = wo
        p = O.fully_connected(h, wo)
        loss = O.reduce_mean(O.mul(O.sub(p, y), O.sub(p, y)))
        tg = compile_training(loss, params, {"x": x, "y": y})
        outs = tg.outputs
        order = schedule(outs)
        plan = CompiledPlan(order, outs, Arena(), fuse=fuse,
                            threads=threads, memplan=memplan,
                            batch_gemms=batch)
        assert check_equivalence(plan) == []


class TestDeterministicReports:
    def test_json_report_is_deduped_and_stable_sorted(self):
        a = finding("EQ601", "zzz mismatch", "equiv", node="n2", instr=5)
        b = finding("EQ601", "aaa mismatch", "equiv", node="n1", instr=3)
        c = finding("LT101", "read before def", "lifetime", slot=2)
        shuffled = AnalysisReport([a, c, b, a, c])  # duplicates, unsorted
        payload = json.loads(shuffled.to_json())
        assert payload["errors"] == 3  # duplicates collapsed
        codes = [f["code"] for f in payload["findings"]]
        assert codes == ["EQ601", "EQ601", "LT101"]
        nodes = [f.get("node") for f in payload["findings"]]
        assert nodes == ["n1", "n2", None]
        # Byte determinism: two differently-ordered reports serialize
        # identically.
        assert shuffled.to_json() == AnalysisReport([c, b, a]).to_json()

    def test_list_codes_covers_whole_registry(self):
        table = list_codes()
        for code, (severity, meaning) in CODES.items():
            assert code in table
            assert meaning in table
        for severity in Severity:
            assert (severity in (Severity.INFO,)) or (
                severity.value in table
            )
