"""Tests for the pooled storage-manager simulation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.ops as O
from repro.autodiff import compile_training
from repro.runtime import (
    PoolStats,
    TrainingExecutor,
    plan_memory,
    round_up,
    schedule,
    simulate_pool,
)
from repro.runtime.pool import PAGE_BYTES, _ExactFitPool


class TestRounding:
    def test_page_multiples_unchanged(self):
        assert round_up(PAGE_BYTES) == PAGE_BYTES
        assert round_up(3 * PAGE_BYTES) == 3 * PAGE_BYTES

    def test_rounds_up(self):
        assert round_up(1) == PAGE_BYTES
        assert round_up(PAGE_BYTES + 1) == 2 * PAGE_BYTES

    def test_zero(self):
        assert round_up(0) == 0

    @given(st.integers(1, 10**9))
    def test_always_at_least_request(self, n):
        assert round_up(n) >= n
        assert round_up(n) % PAGE_BYTES == 0
        assert round_up(n) - n < PAGE_BYTES


class TestExactFitPool:
    def test_reuse_same_class(self):
        pool = _ExactFitPool()
        cls = pool.allocate(10_000)
        pool.release(cls)
        cls2 = pool.allocate(10_000)
        assert cls2 == cls
        assert pool.hits == 1
        assert pool.reserved == cls

    def test_no_reuse_beyond_double(self):
        pool = _ExactFitPool()
        big = pool.allocate(100 * PAGE_BYTES)
        pool.release(big)
        small = pool.allocate(PAGE_BYTES)
        # The 100-page buffer must not serve a 1-page request.
        assert small == PAGE_BYTES
        assert pool.reserved == big + small

    def test_reuse_within_double(self):
        pool = _ExactFitPool()
        buf = pool.allocate(15 * PAGE_BYTES)
        pool.release(buf)
        got = pool.allocate(10 * PAGE_BYTES)  # 15 <= 2*10
        assert got == buf
        assert pool.reserved == buf

    def test_reserved_monotone(self):
        pool = _ExactFitPool()
        reserved = 0
        rng = np.random.default_rng(0)
        live = []
        for _ in range(200):
            if live and rng.random() < 0.5:
                pool.release(live.pop(rng.integers(len(live))))
            else:
                live.append(pool.allocate(int(rng.integers(1, 10**6))))
            assert pool.reserved >= reserved
            reserved = pool.reserved


class TestSimulatePool:
    def _plan(self):
        x = O.placeholder((16, 64), name="pool_x")
        w = O.variable((32, 64), name="pool_w")
        h = O.tanh(O.fully_connected(x, w))
        loss = O.reduce_mean(O.mul(h, h))
        tg = compile_training(loss, {"pool_w": w}, {"pool_x": x})
        order = schedule(tg.outputs)
        return plan_memory(order, tg.outputs)

    def test_reserved_at_least_ideal(self):
        stats = simulate_pool(self._plan())
        assert stats.reserved_bytes >= stats.ideal_peak_bytes
        assert 0.0 <= stats.fragmentation_fraction < 1.0

    def test_counts_consistent(self):
        stats = simulate_pool(self._plan())
        assert stats.reuse_hits + stats.reuse_misses > 0
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_repetitive_rnn_gets_high_reuse(self):
        """An RNN allocates the same shapes T times — the pool should
        serve most requests from its free lists (the reason real RNN
        training doesn't fragment catastrophically)."""
        from repro.models import WordLmConfig, build_word_lm
        from repro.nn import Backend

        cfg = WordLmConfig(
            vocab_size=100, embed_size=32, hidden_size=32, num_layers=1,
            seq_len=20, batch_size=8, backend=Backend.CUDNN,
        )
        ex = TrainingExecutor(build_word_lm(cfg).graph)
        stats = simulate_pool(ex.memory_plan)
        assert stats.hit_rate > 0.6
        assert stats.fragmentation_fraction < 0.5

    def test_echo_does_not_explode_fragmentation(self):
        """Recompute buffers cycle through the same size classes."""
        from repro.echo import optimize
        from repro.models import NmtConfig, build_nmt
        from repro.nn import Backend

        cfg = NmtConfig(
            src_vocab_size=100, tgt_vocab_size=100, embed_size=24,
            hidden_size=24, encoder_layers=1, decoder_layers=1,
            src_len=8, tgt_len=8, batch_size=8, backend=Backend.CUDNN,
        )
        model = build_nmt(cfg)
        base_stats = simulate_pool(TrainingExecutor(model.graph).memory_plan)
        optimize(model.graph)
        echo_stats = simulate_pool(TrainingExecutor(model.graph).memory_plan)
        assert echo_stats.reserved_bytes <= base_stats.reserved_bytes
        # At this miniature scale page rounding dominates the fraction;
        # the invariant is that Echo doesn't make pooling pathological.
        assert (echo_stats.fragmentation_fraction
                < base_stats.fragmentation_fraction + 0.1)


class TestZeroByteAndPinned:
    """Regression tests: empty tensors and end-of-iteration survivors."""

    def test_round_up_rejects_negative(self):
        with pytest.raises(ValueError, match="negative allocation"):
            round_up(-1)

    def test_zero_byte_requests_counted_not_reserved(self):
        pool = _ExactFitPool()
        assert pool.allocate(0) == 0
        assert pool.allocate(0) == 0
        pool.release(0)  # releasing the empty class is a no-op
        assert pool.zero_byte == 2
        assert pool.reserved == 0
        assert pool.hits == 0 and pool.misses == 0

    def _empty_batch_plan(self):
        """A graph whose activations are all zero-byte (batch dim 0)."""
        x = O.placeholder((0, 8), name="zb_x")
        w = O.variable((4, 8), name="zb_w")
        h = O.tanh(O.fully_connected(x, w))
        loss = O.reduce_sum(O.mul(h, h))
        tg = compile_training(loss, {"zb_w": w}, {"zb_x": x})
        order = schedule(tg.outputs)
        return plan_memory(order, tg.outputs)

    def test_empty_tensor_graph_stats(self):
        stats = simulate_pool(self._empty_batch_plan())
        assert isinstance(stats, PoolStats)
        assert stats.zero_byte_requests > 0
        # Empty activations never count as hits or misses, and the pool
        # reserves only for the real (weight/gradient/loss) buffers.
        assert stats.reserved_bytes >= stats.ideal_peak_bytes
        assert stats.rounding_waste_bytes >= 0
        assert 0.0 <= stats.fragmentation_fraction <= 1.0

    def test_pinned_outputs_held_out_of_free_lists(self):
        x = O.placeholder((16, 64), name="pin_x")
        w = O.variable((32, 64), name="pin_w")
        h = O.tanh(O.fully_connected(x, w))
        loss = O.reduce_mean(O.mul(h, h))
        tg = compile_training(loss, {"pin_w": w}, {"pin_x": x})
        plan = plan_memory(schedule(tg.outputs), tg.outputs)
        stats = simulate_pool(plan)
        # Outputs (loss + gradients) and sources survive the iteration;
        # their classes are reported as pinned, not recycled.
        assert stats.pinned_bytes > 0
        last = len(plan.order) - 1
        expected = sum(
            round_up(life.nbytes)
            for life in plan.lifetimes.values()
            if life.free_step >= last and life.nbytes > 0
        )
        assert stats.pinned_bytes <= expected
