"""Profile-guided tuning: calibration records, the persistent store, and
warm-start plan loading.

Durability is the point of most of these tests: a tuning directory is an
*advisory* cache, so corruption, truncation, staleness, and concurrent
writers must all degrade to cold-path behavior — never to a wrong plan.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.backends import Backend
from repro.backends.microbench import autotune_backend, measure_lstm, pure_lstm_graph
from repro.gpumodel import DeviceModel
from repro.pgo import (
    BytecodeCache,
    CalibratedDeviceModel,
    CalibrationDB,
    CostRecord,
    TuneStore,
    default_device,
    graph_fingerprint,
    reset_default_stores,
    robust_best,
    shape_class,
)
from repro.pgo.harvest import harvest_training_graph
from repro.profiler import measure_node_timings
from repro.runtime import PlanCache
from repro.runtime.executor import TrainingExecutor
from repro.runtime.plancache import _UNSET, default_plan_cache
from repro.runtime.scheduler import schedule


@pytest.fixture
def tune_dir(tmp_path, monkeypatch):
    """A fresh REPRO_TUNE_DIR, isolated from other tests' default stores."""
    d = tmp_path / "tune"
    monkeypatch.setenv("REPRO_TUNE_DIR", str(d))
    reset_default_stores()
    cache = default_plan_cache()
    monkeypatch.setattr(cache, "_store", _UNSET)
    yield d
    reset_default_stores()


def small_graph():
    graph, store = pure_lstm_graph(4, 16, 1, 3, Backend.DEFAULT)
    params = store.initialize()
    rng = np.random.default_rng(7)
    feeds = {
        "lstm_in": rng.standard_normal((3, 4, 16), dtype=np.float32)
    }
    return graph, params, feeds


class TestRobustBest:
    def test_slow_outlier_discarded(self):
        t = robust_best([1.0, 1.02, 1.01, 1.03, 9.0])
        assert t.seconds == 1.0
        assert t.discarded == 1
        assert t.stable

    def test_fast_glitch_discarded(self):
        # A below-resolution timer glitch must not become the report.
        t = robust_best([1e-9, 1.0, 1.01, 1.02, 1.03])
        assert t.seconds == 1.0
        assert t.discarded == 1

    def test_unstable_spread_flagged(self):
        t = robust_best([1.0, 1.5, 2.0, 2.5, 3.0])
        assert not t.stable
        assert t.seconds == 1.0  # min is still reported

    def test_few_samples(self):
        t = robust_best([2.0, 2.1])
        assert t.seconds == 2.0
        assert t.discarded == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            robust_best([])


class TestRecords:
    def test_decay_sharpens(self):
        rec = CostRecord(seconds=1.0, min_seconds=1.0)
        for _ in range(50):
            rec.observe(2.0, ref_seconds=0.5)
        assert rec.seconds == pytest.approx(2.0, rel=0.01)
        assert rec.min_seconds == 1.0
        assert rec.count == 51

    def test_merge_weighted(self):
        a = CostRecord(seconds=1.0, weight=1.0, min_seconds=1.0)
        b = CostRecord(seconds=3.0, weight=3.0, min_seconds=2.5)
        m = a.merged_with(b)
        assert m.seconds == pytest.approx(2.5)
        assert m.count == 2
        assert m.min_seconds == 1.0

    def test_db_payload_roundtrip(self):
        db = CalibrationDB(epoch=3)
        db.observe("dot:g8x8x8x1", 1e-4, 1e-6)
        db.observe("add:b40", 2e-5, 4e-7)
        back = CalibrationDB.from_payload(db.to_payload())
        assert back.epoch == 3
        assert back.records.keys() == db.records.keys()
        assert back.records["add:b40"].seconds == pytest.approx(2e-5)

    def test_payload_version_mismatch_raises(self):
        payload = CalibrationDB().to_payload()
        payload["version"] = 999
        with pytest.raises(ValueError):
            CalibrationDB.from_payload(payload)

    def test_shape_classes(self):
        graph, _params, _feeds = small_graph()
        classes = {shape_class(n) for n in schedule(graph.outputs)}
        classes.discard(None)
        assert any(c.split(":")[1].startswith("g") for c in classes)  # GEMMs
        assert any(":b" in c for c in classes)  # bytes-bucketed elementwise
        placeholder = next(
            n for n in schedule(graph.outputs) if n.op.name == "placeholder"
        )
        assert shape_class(placeholder) is None


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        g1, _, _ = small_graph()
        g2, _, _ = small_graph()
        # Different uids, same structure: the canonical renaming must agree.
        assert graph_fingerprint(g1.outputs) == graph_fingerprint(g2.outputs)

    def test_distinguishes_shapes(self):
        g1, _, _ = small_graph()
        g3, _ = pure_lstm_graph(4, 32, 1, 3, Backend.DEFAULT)
        assert graph_fingerprint(g1.outputs) != graph_fingerprint(g3.outputs)


class TestStoreDurability:
    def test_calibration_roundtrip(self, tmp_path):
        ts = TuneStore(tmp_path)
        db = CalibrationDB()
        db.observe("dot:g8x8x8x1", 1e-4, 1e-6)
        merged = ts.save_calibration(db)
        assert merged.epoch == 1
        fresh = TuneStore(tmp_path).calibration()
        assert fresh.coverage() == 1
        assert fresh.epoch == 1

    def test_corrupted_calibration_falls_back(self, tmp_path):
        (tmp_path / "calibration.json").write_text("{ not json !!")
        ts = TuneStore(tmp_path)
        assert ts.calibration().coverage() == 0
        assert ts.stats()["load_errors"] == 1

    def test_truncated_bytecode_falls_back(self, tmp_path):
        cache = BytecodeCache(tmp_path / "bytecode.bin")
        code = cache.compile("def body(regs):\n    pass\n")
        assert cache.flush()
        blob = (tmp_path / "bytecode.bin").read_bytes()
        (tmp_path / "bytecode.bin").write_bytes(blob[: len(blob) // 2])
        cold = BytecodeCache(tmp_path / "bytecode.bin")
        again = cold.compile("def body(regs):\n    pass\n")
        assert cold.load_errors == 1
        assert cold.misses == 1  # recompiled, not served from the torn file
        assert again.co_code == code.co_code

    def test_bytecode_roundtrip_hits(self, tmp_path):
        path = tmp_path / "bytecode.bin"
        cache = BytecodeCache(path)
        cache.compile("def body(regs):\n    regs[0] = 1\n")
        cache.flush()
        warm = BytecodeCache(path)
        warm.compile("def body(regs):\n    regs[0] = 1\n")
        assert warm.hits == 1 and warm.misses == 0

    def test_corrupted_order_file_is_a_miss(self, tmp_path):
        graph, _, _ = small_graph()
        ts = TuneStore(tmp_path)
        order = schedule(graph.outputs)
        ts.save_order(graph.outputs, order)
        fp = graph_fingerprint(graph.outputs)
        path = tmp_path / "plans" / f"{fp}.order.json"
        assert path.exists()
        # Torn JSON -> miss; well-formed but wrong permutation -> miss.
        path.write_text('{"version": 1, "order": [0, 1')
        assert TuneStore(tmp_path).load_order(graph.outputs) is None
        payload = {"version": 1, "order": list(range(len(order) - 1))}
        path.write_text(json.dumps(payload))
        ts3 = TuneStore(tmp_path)
        assert ts3.load_order(graph.outputs) is None
        assert ts3.stats()["load_errors"] == 1

    def test_invalid_order_permutation_rejected(self, tmp_path):
        """An order that breaks producer-before-consumer must not load."""
        graph, _, _ = small_graph()
        ts = TuneStore(tmp_path)
        order = schedule(graph.outputs)
        ts.save_order(graph.outputs, order)
        fp = graph_fingerprint(graph.outputs)
        path = tmp_path / "plans" / f"{fp}.order.json"
        payload = json.loads(path.read_text())
        payload["order"].reverse()  # valid permutation, invalid schedule
        path.write_text(json.dumps(payload))
        assert TuneStore(tmp_path).load_order(graph.outputs) is None

    def test_corrupted_wavefront_artifact_is_a_miss(self, tmp_path):
        ts = TuneStore(tmp_path)
        token = ("Titan Xp", "analytic")
        ts.save_wavefront("f" * 32, token, 4, True, True,
                          {"instructions": 10, "serial": True})
        assert ts.load_wavefront("f" * 32, token, 4, True, True) is not None
        for path in (tmp_path / "plans").glob("*.wavefront.json"):
            path.write_text("garbage")
        ts2 = TuneStore(tmp_path)
        assert ts2.load_wavefront("f" * 32, token, 4, True, True) is None

    def test_concurrent_writers_both_land(self, tmp_path):
        script = (
            "import sys\n"
            "from repro.pgo import CalibrationDB, TuneStore\n"
            "db = CalibrationDB()\n"
            "db.observe(sys.argv[2], 1e-4, 1e-6)\n"
            "db.observe('shared:b10', float(sys.argv[3]), 1e-6)\n"
            "TuneStore(sys.argv[1]).save_calibration(db)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), cls, val],
                env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
            )
            for cls, val in (("a:b10", "1e-4"), ("b:b10", "3e-4"))
        ]
        for p in procs:
            assert p.wait(timeout=120) == 0
        db = TuneStore(tmp_path).calibration()
        assert {"a:b10", "b:b10", "shared:b10"} <= db.records.keys()
        assert db.epoch >= 2  # both saves bumped it
        shared = db.records["shared:b10"]
        assert shared.count == 2


class TestCalibratedDevice:
    def _db(self):
        return CalibrationDB(epoch=2)

    def test_covered_class_overrides(self):
        graph, _, _ = small_graph()
        node = next(
            n for n in schedule(graph.outputs)
            if shape_class(n) is not None
        )
        cls = shape_class(node)
        analytic = DeviceModel()
        ref = analytic.node_cost(node).kernel_seconds
        db = self._db()
        db.observe(cls, 100.0 * ref, ref)  # scale becomes 1/100
        cal = CalibratedDeviceModel(db)
        cost = cal.node_cost(node)
        # measured * geomean(ref/measured) == ref for a single record
        assert cost.kernel_seconds == pytest.approx(ref)
        assert cal.calibrated_hits == 1
        assert cost.api_seconds == analytic.node_cost(node).api_seconds

    def test_uncovered_class_falls_back(self):
        graph, _, _ = small_graph()
        node = next(
            n for n in schedule(graph.outputs)
            if shape_class(n) is not None
        )
        cal = CalibratedDeviceModel(self._db())
        assert (
            cal.node_cost(node).kernel_seconds
            == DeviceModel().node_cost(node).kernel_seconds
        )
        assert cal.analytic_fallbacks == 1

    def test_cache_token_tracks_epoch(self):
        assert CalibratedDeviceModel(CalibrationDB(epoch=5)).cache_token == (
            "Titan Xp", "calibrated", 5,
        )
        assert DeviceModel().cache_token == ("Titan Xp", "analytic")

    def test_default_device_plain_without_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNE_DIR", raising=False)
        reset_default_stores()
        dev = default_device()
        assert type(dev) is DeviceModel

    def test_default_device_calibrated_with_coverage(self, tune_dir):
        db = CalibrationDB()
        db.observe("dot:g8x8x8x1", 1e-4, 1e-6)
        TuneStore(tune_dir).save_calibration(db)
        reset_default_stores()
        dev = default_device()
        assert isinstance(dev, CalibratedDeviceModel)

    def test_default_device_survives_corrupt_store(self, tune_dir):
        tune_dir.mkdir(parents=True, exist_ok=True)
        (tune_dir / "calibration.json").write_text("!corrupt!")
        reset_default_stores()
        dev = default_device()
        assert type(dev) is DeviceModel  # fell back to analytical


class TestHarvest:
    def test_measure_node_timings(self):
        graph, params, feeds = small_graph()
        order = schedule(graph.outputs)
        timings = measure_node_timings(order, feeds, params, repeats=3)
        assert timings
        computed = [
            n for n in order
            if n.op.name not in ("placeholder", "variable")
        ]
        assert len(timings) == len(computed)
        assert all(t.seconds >= 0.0 for t in timings)
        assert all(len(t.samples) == 3 for t in timings)

    def test_harvest_populates_db(self):
        graph, params, feeds = small_graph()
        db = CalibrationDB()
        n = harvest_training_graph(graph, feeds, params, db, repeats=2)
        assert n > 0
        assert db.coverage() > 0
        assert db.model_scale() != 1.0  # host/model domains really differ


class TestWarmPlans:
    def test_cold_then_warm_bitwise_identical(self, tune_dir):
        graph, params, feeds = small_graph()
        ts = TuneStore(tune_dir)

        cold_ex = TrainingExecutor(
            graph, plan_cache=PlanCache(store=ts), threads=4
        )
        cold_loss, cold_grads, _ = cold_ex.run(feeds, params)
        ts.flush_code_cache()
        assert not cold_ex.executor.plan.wavefront_from_cache
        stats = ts.stats()
        assert stats["order_misses"] == 1 and stats["wavefront_misses"] == 1

        # Same store, fresh in-process caches == a new process, warm disk.
        graph2, store2 = pure_lstm_graph(4, 16, 1, 3, Backend.DEFAULT)
        params2 = store2.initialize()
        warm_store = TuneStore(tune_dir)
        warm_ex = TrainingExecutor(
            graph2, plan_cache=PlanCache(store=warm_store), threads=4
        )
        warm_loss, warm_grads, _ = warm_ex.run(feeds, params2)
        wstats = warm_store.stats()
        assert wstats["order_hits"] == 1
        assert wstats["wavefront_hits"] == 1
        assert wstats["bytecode_hits"] > 0 and wstats["bytecode_misses"] == 0
        assert warm_ex.executor.plan.wavefront_from_cache

        # params2 initializes identically (same seed path), so execution
        # through the deserialized plan must be bitwise-identical.
        assert warm_loss == cold_loss
        for name in cold_grads:
            np.testing.assert_array_equal(cold_grads[name], warm_grads[name])

    def test_warm_plan_passes_verifier(self, tune_dir, monkeypatch):
        graph, params, feeds = small_graph()
        ts = TuneStore(tune_dir)
        TrainingExecutor(graph, plan_cache=PlanCache(store=ts), threads=4)
        ts.flush_code_cache()

        monkeypatch.setenv("REPRO_VERIFY", "1")
        graph2, _ = pure_lstm_graph(4, 16, 1, 3, Backend.DEFAULT)
        warm_store = TuneStore(tune_dir)
        # assert_plan_safe runs inside the builder and raises on findings;
        # the deserialized schedule is checked against re-derived hazards.
        warm_ex = TrainingExecutor(
            graph2, plan_cache=PlanCache(store=warm_store), threads=4
        )
        assert warm_ex.executor.plan.wavefront_from_cache
        report = warm_ex.executor.verify()
        assert report.ok, report.findings

    def test_stale_epoch_invalidates_wavefront(self, tune_dir):
        graph, params, feeds = small_graph()
        db = CalibrationDB()
        harvest_training_graph(graph, feeds, params, db, repeats=1)
        ts = TuneStore(tune_dir)
        ts.save_calibration(db)

        dev1 = default_device()
        TrainingExecutor(
            graph, plan_cache=PlanCache(store=ts), device=dev1, threads=4
        )
        assert ts.stats()["wavefront_misses"] == 1

        # Recalibration bumps the epoch -> new device token -> the cached
        # layout's filename never matches again (fresh process modeled by
        # resetting the memoized default store).
        ts.save_calibration(db)
        reset_default_stores()
        dev2 = default_device()
        assert dev2.cache_token != dev1.cache_token
        graph2, _ = pure_lstm_graph(4, 16, 1, 3, Backend.DEFAULT)
        ts2 = TuneStore(tune_dir)
        TrainingExecutor(
            graph2, plan_cache=PlanCache(store=ts2), device=dev2, threads=4
        )
        stats = ts2.stats()
        assert stats["wavefront_hits"] == 0
        assert stats["wavefront_misses"] == 1

    def test_store_none_means_no_persistence(self, tune_dir):
        graph, _, _ = small_graph()
        TrainingExecutor(graph, plan_cache=PlanCache(store=None), threads=4)
        assert not (tune_dir / "plans").exists() or not any(
            (tune_dir / "plans").iterdir()
        )


class TestAutotunePersistence:
    def test_warm_autotune_reproduces_choice(self, tmp_path):
        ts = TuneStore(tmp_path)
        device = DeviceModel()
        cold = autotune_backend(2, 16, 1, 3, device=device, store=ts)
        assert ts.stats()["autotune_misses"] == 1
        warm_store = TuneStore(tmp_path)
        warm = autotune_backend(2, 16, 1, 3, device=device, store=warm_store)
        assert warm_store.stats()["autotune_hits"] == 1
        assert warm.choice is cold.choice
        for backend, res in cold.results.items():
            assert warm.results[backend].total_seconds == pytest.approx(
                res.total_seconds
            )

    def test_measure_lstm_robust(self):
        result = measure_lstm(2, 8, 1, 2, Backend.DEFAULT, repeats=3)
        assert result.total_seconds > 0
        assert len(result.timing.samples) == 3
