"""Numerical gradient checks for every differentiable operator."""

import numpy as np
import pytest

import repro.ops as O
from tests.helpers import check_gradients, rng


def _randn(*shape):
    return rng(42).standard_normal(shape)


class TestElementwiseGradients:
    def test_add(self):
        check_gradients(lambda t: O.add(t[0], t[1]), [_randn(3, 4), _randn(3, 4)])

    def test_add_broadcast(self):
        check_gradients(lambda t: O.add(t[0], t[1]), [_randn(3, 4), _randn(4)])

    def test_add_broadcast_middle(self):
        check_gradients(
            lambda t: O.add(t[0], t[1]), [_randn(2, 1, 4), _randn(2, 3, 4)]
        )

    def test_sub(self):
        check_gradients(lambda t: O.sub(t[0], t[1]), [_randn(3, 4), _randn(1, 4)])

    def test_mul(self):
        check_gradients(lambda t: O.mul(t[0], t[1]), [_randn(3, 4), _randn(3, 1)])

    def test_div(self):
        b = np.abs(_randn(3, 4)) + 1.0
        check_gradients(lambda t: O.div(t[0], t[1]), [_randn(3, 4), b])

    def test_scalars(self):
        check_gradients(
            lambda t: O.mul_scalar(O.add_scalar(t[0], 1.5), -2.0), [_randn(5)]
        )

    def test_rsub_scalar(self):
        check_gradients(lambda t: O.rsub_scalar(t[0], 3.0), [_randn(4)])

    def test_pow_scalar(self):
        x = np.abs(_randn(3, 3)) + 0.5
        check_gradients(lambda t: O.pow_scalar(t[0], 3.0), [x])

    def test_neg_exp_log_sqrt(self):
        x = np.abs(_randn(4, 4)) + 0.5
        check_gradients(
            lambda t: O.neg(O.log(O.sqrt(O.exp(t[0])))), [x], rtol=1e-3
        )


class TestActivationGradients:
    def test_tanh(self):
        check_gradients(lambda t: O.tanh(t[0]), [_randn(3, 5)])

    def test_sigmoid(self):
        check_gradients(lambda t: O.sigmoid(t[0]), [_randn(3, 5)])

    def test_relu(self):
        # Keep values away from the kink for finite differences.
        x = _randn(3, 5)
        x[np.abs(x) < 0.1] = 0.5
        check_gradients(lambda t: O.relu(t[0]), [x])


class TestMatmulGradients:
    @pytest.mark.parametrize("ta,tb", [(False, False), (False, True),
                                       (True, False), (True, True)])
    def test_matmul_transposes(self, ta, tb):
        a_shape = (5, 3) if ta else (3, 5)
        b_shape = (4, 5) if tb else (5, 4)
        check_gradients(
            lambda t: O.matmul(t[0], t[1], ta=ta, tb=tb),
            [_randn(*a_shape), _randn(*b_shape)],
        )

    @pytest.mark.parametrize("ta,tb", [(False, False), (False, True),
                                       (True, False), (True, True)])
    def test_batch_dot(self, ta, tb):
        a_shape = (2, 5, 3) if ta else (2, 3, 5)
        b_shape = (2, 4, 5) if tb else (2, 5, 4)
        check_gradients(
            lambda t: O.batch_dot(t[0], t[1], ta=ta, tb=tb),
            [_randn(*a_shape), _randn(*b_shape)],
        )

    def test_fully_connected_with_bias(self):
        check_gradients(
            lambda t: O.fully_connected(t[0], t[1], t[2]),
            [_randn(4, 3), _randn(6, 3), _randn(6)],
        )

    def test_fully_connected_col_major_matches(self):
        from repro.layout import Layout

        check_gradients(
            lambda t: O.fully_connected(t[0], t[1], t[2], layout=Layout.COL_MAJOR),
            [_randn(4, 3), _randn(6, 3), _randn(6)],
        )


class TestReduceGradients:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False),
                                               (1, True), (-1, False)])
    def test_reduce_sum(self, axis, keepdims):
        check_gradients(
            lambda t: O.reduce_sum(t[0], axis=axis, keepdims=keepdims),
            [_randn(3, 4)],
        )

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_reduce_mean(self, axis):
        check_gradients(lambda t: O.reduce_mean(t[0], axis=axis), [_randn(3, 4)])

    def test_reduce_max(self):
        x = _randn(4, 5)  # distinct values almost surely
        check_gradients(lambda t: O.reduce_max(t[0], axis=1), [x])


class TestShapeOpGradients:
    def test_reshape(self):
        check_gradients(lambda t: O.reshape(t[0], (6, 2)), [_randn(3, 4)])

    def test_transpose(self):
        check_gradients(lambda t: O.transpose(t[0], (2, 0, 1)), [_randn(2, 3, 4)])

    def test_slice_axis(self):
        check_gradients(lambda t: O.slice_axis(t[0], 1, 1, 3), [_randn(2, 5)])

    def test_concat(self):
        check_gradients(
            lambda t: O.concat([t[0], t[1]], axis=1), [_randn(2, 3), _randn(2, 2)]
        )

    def test_split_partial_use(self):
        def build(t):
            a, b, c = O.split(t[0], 3, axis=1)
            return O.add(a, c)  # middle piece unused -> zeros grad path

        check_gradients(build, [_randn(2, 6)])

    def test_broadcast_to(self):
        check_gradients(lambda t: O.broadcast_to(t[0], (4, 3, 5)), [_randn(3, 1)])

    def test_expand_dims(self):
        check_gradients(lambda t: O.expand_dims(t[0], 1), [_randn(3, 4)])

    def test_sequence_reverse(self):
        check_gradients(lambda t: O.sequence_reverse(t[0]), [_randn(5, 2, 3)])


class TestFusedAndNormalizationGradients:
    def test_softmax(self):
        check_gradients(lambda t: O.softmax(t[0], axis=-1), [_randn(3, 6)])

    def test_layer_norm(self):
        check_gradients(
            lambda t: O.layer_norm(t[0], t[1], t[2]),
            [_randn(3, 8), _randn(8) + 1.0, _randn(8)],
            rtol=1e-3,
            atol=1e-5,
        )

    def test_lstm_gates(self):
        def build(t):
            h, c = O.lstm_gates(t[0], t[1])
            return O.add(h, c)

        check_gradients(build, [_randn(3, 16), _randn(3, 4)])

    def test_lstm_gates_only_h_used(self):
        def build(t):
            h, _c = O.lstm_gates(t[0], t[1])
            return h

        check_gradients(build, [_randn(2, 8), _randn(2, 2)])

    def test_softmax_cross_entropy(self):
        labels = np.array([0, 2, 1], dtype=np.int64)

        def build(t):
            return O.softmax_cross_entropy(t[0], O.constant(labels))

        check_gradients(build, [_randn(3, 4)], rtol=1e-3)

    def test_softmax_cross_entropy_ignore_label(self):
        labels = np.array([0, -1, 1, -1], dtype=np.int64)

        def build(t):
            return O.softmax_cross_entropy(t[0], O.constant(labels))

        check_gradients(build, [_randn(4, 3)], rtol=1e-3)


class TestEmbeddingGradient:
    def test_embedding_scatter_add(self):
        indices = np.array([[0, 2], [2, 1]], dtype=np.int64)

        def build(t):
            return O.embedding(t[0], O.constant(indices))

        check_gradients(build, [_randn(4, 3)])


class TestOperatorOverloads:
    def test_expression(self):
        check_gradients(
            lambda t: (t[0] * 2.0 + t[1]) / (t[1] * t[1] + 4.0) - 1.0,
            [_randn(3, 3), _randn(3, 3)],
        )

    def test_matmul_overload(self):
        check_gradients(lambda t: t[0] @ t[1], [_randn(2, 3), _randn(3, 4)])
