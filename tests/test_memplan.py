"""Tests for the graph-level memory optimizer (``repro.memplan``).

Four layers of coverage:

* unit tests + hypothesis properties for the interval packer and the
  atomic byte-range tokens;
* the headline property — color-planned plans (copy elision, in-place
  rewriting, interval coloring, memory-aware scheduling) execute
  bitwise-identically to the ``REPRO_MEMPLAN=greedy`` reference across
  threads {1, 4} and with/without the Echo rewrite;
* seeded-defect fixtures proving the MP401/MP402/MP403 analyzers catch
  a corrupted alias root table, overlapping colorings, and unsafe
  in-place records;
* the satellite fixes — ``validate_schedule`` coverage/duplicate
  rejection, per-step workspace accounting in ``plan_memory``, the
  memplan-keyed plan cache, and the arena extent pool.
"""

import contextlib
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.ops as O
from repro.analysis import check_packing
from repro.autodiff import compile_training
from repro.echo import EchoConfig, optimize
from repro.memplan import (
    atomic_tokens,
    memplan_mode,
    pack_intervals,
    packed_peak_bytes,
    waterline,
)
from repro.memplan.coloring import ALIGN
from repro.runtime import (
    Arena,
    PlanCache,
    SchedulingError,
    TrainingExecutor,
    plan_memory,
    schedule,
    validate_schedule,
)


@contextlib.contextmanager
def _memplan(mode):
    saved = os.environ.get("REPRO_MEMPLAN")
    os.environ["REPRO_MEMPLAN"] = mode
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_MEMPLAN", None)
        else:
            os.environ["REPRO_MEMPLAN"] = saved


# -- interval packer ----------------------------------------------------------

requests_strategy = st.lists(
    st.tuples(
        st.integers(0, 20),  # lo
        st.integers(0, 20),  # extent
        st.integers(1, 4096),  # nbytes
    ),
    min_size=1,
    max_size=24,
).map(
    lambda raw: [
        (i, lo, lo + ext, nb) for i, (lo, ext, nb) in enumerate(raw)
    ]
)


class TestPackIntervals:
    def test_disjoint_lifetimes_share_bytes(self):
        packed = pack_intervals([("a", 0, 1, 100), ("b", 2, 3, 100)])
        assert packed.offsets["a"] == packed.offsets["b"] == 0
        assert packed.extent_bytes == 100  # one shared 100-byte buffer

    def test_overlapping_lifetimes_are_separated(self):
        packed = pack_intervals([("a", 0, 2, 100), ("b", 1, 3, 100)])
        offs = sorted((packed.offsets["a"], packed.offsets["b"]))
        assert offs[1] >= offs[0] + 100
        assert packed.extent_bytes >= 200

    def test_zero_requests(self):
        packed = pack_intervals([])
        assert packed.extent_bytes == 0
        assert packed.offsets == {}

    @given(requests_strategy)
    @settings(max_examples=200, deadline=None)
    def test_placements_never_overlap_in_time_and_bytes(self, requests):
        packed = pack_intervals(requests)
        placed = [
            (lo, hi, packed.offsets[key], nb)
            for key, lo, hi, nb in requests
        ]
        for i, (lo_a, hi_a, off_a, nb_a) in enumerate(placed):
            assert off_a % ALIGN == 0
            assert off_a + nb_a <= packed.extent_bytes
            for lo_b, hi_b, off_b, nb_b in placed[i + 1:]:
                time_overlap = lo_a <= hi_b and lo_b <= hi_a
                byte_overlap = off_a < off_b + nb_b and off_b < off_a + nb_a
                assert not (time_overlap and byte_overlap)

    @given(requests_strategy)
    @settings(max_examples=200, deadline=None)
    def test_extent_bounded_by_waterline_and_total(self, requests):
        packed = pack_intervals(requests)
        low = waterline(requests)
        total = sum(nb for _k, _lo, _hi, nb in requests)
        assert packed.planned_peak_bytes == low
        assert packed.extent_bytes >= low
        # FFD with alignment can fragment, but never past the aligned sum.
        aligned_total = sum(-(-nb // ALIGN) * ALIGN for *_x, nb in requests)
        assert packed.extent_bytes <= aligned_total

    def test_atomic_tokens_intersect_iff_bytes_do(self):
        tokens = atomic_tokens(
            {"a": (0, 128), "b": (64, 128), "c": (256, 64), "z": (0, 0)}
        )
        assert set(tokens["a"]) & set(tokens["b"])  # [0,128) vs [64,192)
        assert not set(tokens["a"]) & set(tokens["c"])
        assert not set(tokens["b"]) & set(tokens["c"])
        assert tokens["z"] == ()


# -- the bitwise-identity property -------------------------------------------


@st.composite
def shape_heavy_training_graph(draw):
    """A training graph dense in elidable copies and in-place chances."""
    rows, cols = 4, draw(st.integers(1, 3)) * 4
    x = O.placeholder((rows, cols), np.float64, name="mp_x")
    w = O.variable((rows, cols), np.float64, name="mp_w")
    pool = [O.add(x, w)]
    for _ in range(draw(st.integers(2, 7))):
        kind = draw(st.integers(0, 6))
        t = draw(st.sampled_from(pool))
        if kind == 0:
            # Full-range leading slice: elided to an identity alias.
            pool.append(O.slice_axis(t, 0, 0, rows))
        elif kind == 1:
            # Leading split + concat: per-section aliases.
            a, b = O.split(t, 2, 0)
            pool.append(O.concat([a, b], 0))
        elif kind == 2:
            # Interior slices: strided alias views.
            lo = O.slice_axis(t, 1, 0, cols // 2)
            hi = O.slice_axis(t, 1, cols // 2, cols)
            pool.append(O.concat([lo, hi], 1))
        elif kind == 3:
            pool.append(O.broadcast_to(t, (rows, cols)))
        elif kind == 4:
            pool.append(O.tanh(t))
        elif kind == 5:
            pool.append(O.mul(t, draw(st.sampled_from(pool))))
        else:
            pool.append(O.add(t, draw(st.sampled_from(pool))))
    loss = O.reduce_mean(pool[-1])
    graph = compile_training(loss, {"mp_w": w}, {"mp_x": x})
    return graph, rows, cols


def _run_graph(graph, feeds, params, mode, threads):
    with _memplan(mode):
        ex = TrainingExecutor(
            graph, plan_cache=PlanCache(store=None), threads=threads
        )
        loss, grads, _ = ex.run(feeds, params)
        plan = ex.executor.plan
    return loss, grads, plan


def _assert_modes_agree(graph, rows, cols, seed):
    gen = np.random.default_rng(seed)
    feeds = {"mp_x": gen.standard_normal((rows, cols))}
    params = {"mp_w": gen.standard_normal((rows, cols))}
    ref_loss, ref_grads, ref_plan = _run_graph(
        graph, feeds, params, "greedy", 1
    )
    for mode in ("greedy", "color"):
        for threads in (1, 4):
            loss, grads, plan = _run_graph(
                graph, feeds, params, mode, threads
            )
            assert loss == ref_loss, (mode, threads)
            for k in ref_grads:
                np.testing.assert_array_equal(grads[k], ref_grads[k])
            if mode == "color":
                assert (
                    plan.static_storage_bytes
                    <= ref_plan.static_storage_bytes
                )


class TestBitwiseIdentity:
    @given(shape_heavy_training_graph(), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_color_matches_greedy(self, built, seed):
        graph, rows, cols = built
        _assert_modes_agree(graph, rows, cols, seed)

    @given(shape_heavy_training_graph(), st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_color_matches_greedy_after_echo(self, built, seed):
        graph, rows, cols = built
        optimize(graph, EchoConfig(overhead_budget_fraction=0.5))
        _assert_modes_agree(graph, rows, cols, seed)


# -- seeded defects for the MP analyzers --------------------------------------


def _color_plan():
    """A deterministic plan with at least one elision and one in-place."""
    with _memplan("color"):
        x = O.placeholder((4, 8), np.float64, name="df_x")
        w = O.variable((4, 8), np.float64, name="df_w")
        a = O.add(x, w)
        s = O.slice_axis(a, 0, 0, 4)
        lo = O.slice_axis(a, 1, 0, 4)
        hi = O.slice_axis(a, 1, 4, 8)
        c = O.concat([lo, hi], 1)
        u = O.add(O.tanh(c), O.sigmoid(s))
        loss = O.reduce_mean(u)
        graph = compile_training(loss, {"df_w": w}, {"df_x": x})
        plan = PlanCache(store=None).compiled_for(graph.outputs, Arena())
    return plan


def _codes(plan):
    return {f.code for f in check_packing(plan)}


class TestSeededPackingDefects:
    def test_healthy_plan_is_clean(self):
        plan = _color_plan()
        record = plan.lowering.memplan
        assert record is not None
        assert record.elided and record.inplace  # the fixture's premise
        assert _codes(plan) == set()

    def test_mp401_broken_alias_root(self):
        plan = _color_plan()
        low = plan.lowering
        out = low.memplan.elided[0]["out_slots"][0]
        low.root[out] = out  # detach the alias from its source group
        assert "MP401" in _codes(plan)

    def test_mp401_malformed_index_list(self):
        plan = _color_plan()
        low = plan.lowering
        idx = low.memplan.elided[0]["instr"]
        low.descs[idx]["alias_index"] = None
        assert "MP401" in _codes(plan)

    def test_mp402_overlapping_colors(self):
        plan = _color_plan()
        record = plan.lowering.memplan
        keys = sorted(record.placements, key=str)
        assert len(keys) >= 2
        lo, hi, _off, nbytes = record.placements[keys[0]]
        # Force the second placement onto the first's bytes and lifetime.
        record.placements[keys[1]] = (lo, hi, _off, max(nbytes, 1))
        assert "MP402" in _codes(plan)

    def test_mp402_placement_outside_extent(self):
        plan = _color_plan()
        record = plan.lowering.memplan
        key = next(iter(record.placements))
        lo, hi, _off, nbytes = record.placements[key]
        record.placements[key] = (lo, hi, record.extent_bytes, max(nbytes, 1))
        assert "MP402" in _codes(plan)

    def test_mp403_target_not_inplace_capable(self):
        plan = _color_plan()
        record = plan.lowering.memplan
        rec = dict(record.inplace[0])
        rec["target"] = 10**6  # not an operand of the instruction at all
        record.inplace.append(rec)
        assert "MP403" in _codes(plan)

    def test_mp403_live_member_overwritten(self):
        plan = _color_plan()
        low = plan.lowering
        record = low.memplan
        rec = dict(record.inplace[0])
        # Claim the group also contained a slot that outlives the write.
        later = max(
            (s for d in low.descs for s in d["in_slots"]),
            key=lambda s: max(
                i for i, d in enumerate(low.descs) if s in d["in_slots"]
            ),
        )
        rec["members"] = list(rec["members"]) + [later]
        record.inplace.append(rec)
        assert "MP403" in _codes(plan)

    def test_mp403_escaping_group(self):
        plan = _color_plan()
        record = plan.lowering.memplan
        rec = dict(record.inplace[0])
        rec["members"] = list(rec["members"]) + [
            next(iter(plan.lowering.output_slots))
        ]
        record.inplace.append(rec)
        assert "MP403" in _codes(plan)

    def test_mp403_out_of_range_instr(self):
        plan = _color_plan()
        record = plan.lowering.memplan
        rec = dict(record.inplace[0])
        rec["instr"] = len(plan.lowering.descs) + 7
        record.inplace.append(rec)
        assert "MP403" in _codes(plan)


# -- satellite: validate_schedule coverage ------------------------------------


def _tiny_order():
    x = O.placeholder((2, 2), name="vs_x")
    out = O.reduce_mean(O.tanh(O.add(x, x)))
    return schedule([out])


class TestValidateSchedule:
    def test_duplicate_node_rejected(self):
        order = _tiny_order()
        with pytest.raises(SchedulingError, match="duplicate"):
            validate_schedule(order + [order[0]])

    def test_missing_producer_rejected(self):
        order = _tiny_order()
        consumed = order[0]
        assert any(
            t.node is consumed for n in order[1:] for t in n.inputs
        )
        with pytest.raises(SchedulingError, match="missing"):
            validate_schedule(order[1:])

    def test_producer_after_consumer_rejected(self):
        order = _tiny_order()
        with pytest.raises(SchedulingError, match="after its consumer"):
            validate_schedule(list(reversed(order)))

    def test_memory_aware_schedule_is_valid_permutation(self):
        x = O.placeholder((4, 4), name="vs_y")
        w = O.variable((4, 4), name="vs_w")
        loss = O.reduce_mean(O.tanh(O.mul(O.add(x, w), x)))
        graph = compile_training(loss, {"vs_w": w}, {"vs_x": x})
        plain = schedule(graph.outputs, memory_aware=False)
        aware = schedule(graph.outputs, memory_aware=True)
        validate_schedule(aware)
        assert {n.uid for n in aware} == {n.uid for n in plain}


# -- satellite: per-step workspace accounting ---------------------------------


class TestWorkspaceAccounting:
    def test_timeline_charges_each_step_its_own_workspace(self):
        x = O.placeholder((2, 3, 8, 8), name="ws_x")
        w1 = O.variable((4, 3, 3, 3), name="ws_w1")
        w2 = O.variable((4, 4, 3, 3), name="ws_w2")
        h = O.tanh(O.conv2d(x, w1, pad=1))
        loss = O.reduce_mean(O.conv2d(h, w2, pad=1))
        graph = compile_training(loss, {"ws_w1": w1, "ws_w2": w2},
                                 {"ws_x": x})
        order = schedule(graph.outputs)
        plan = plan_memory(order, graph.outputs)
        ws = [n.op.workspace_bytes(n) for n in order]
        assert plan.workspace_pool_hwm == max(ws)
        # The pool HWM must not be charged to steps that requested less.
        assert min(ws) < max(ws)
        for step in range(len(order)):
            live = sum(
                life.nbytes
                for life in plan.lifetimes.values()
                if life.alloc_step <= step <= life.free_step
            )
            assert plan.timeline[step] == live + ws[step]
        assert plan.peak_bytes == max(plan.timeline)


# -- satellite: plan cache keying + arena extents ----------------------------


class TestMemplanPlumbing:
    def test_mode_resolution(self):
        with _memplan("greedy"):
            assert memplan_mode() == "greedy"
            assert memplan_mode("color") == "color"
        with _memplan("color"):
            assert memplan_mode() == "color"
        with _memplan("typo"), pytest.raises(ValueError, match="typo"):
            memplan_mode()

    def test_compiled_plans_keyed_by_mode(self):
        x = O.placeholder((4, 4), name="pc_x")
        out = O.reduce_mean(O.tanh(O.add(x, x)))
        cache = PlanCache(store=None)
        arena = Arena()
        greedy = cache.compiled_for([out], arena, memplan="greedy")
        color = cache.compiled_for([out], arena, memplan="color")
        assert greedy is not color
        assert greedy.memplan_mode == "greedy"
        assert color.memplan_mode == "color"
        assert cache.compiled_for([out], arena, memplan="greedy") is greedy

    def test_schedules_keyed_by_memory_awareness(self):
        x = O.placeholder((4, 4), name="pc_y")
        out = O.reduce_mean(O.tanh(O.add(x, x)))
        cache = PlanCache(store=None)
        misses = cache.misses
        cache.schedule_for([out], memory_aware=False)
        cache.schedule_for([out], memory_aware=True)
        assert cache.misses == misses + 2
        cache.schedule_for([out], memory_aware=True)
        assert cache.misses == misses + 2  # second aware call hits

    def test_arena_extent_pool_reuses_parked_extents(self):
        arena = Arena()
        raw = arena.acquire_extent(1000)
        assert raw.nbytes >= 1000
        assert arena.held_bytes == 0  # acquired extents are not parked
        arena.release_extent(raw)
        assert arena.held_bytes >= raw.nbytes
        again = arena.acquire_extent(500)
        assert again is raw  # smallest parked fit is reused
        assert arena.acquire_extent(2 * raw.nbytes) is not raw

    def test_packed_peak_bounded_by_waterline_peak(self):
        x = O.placeholder((8, 8), name="pp_x")
        w = O.variable((8, 8), name="pp_w")
        loss = O.reduce_mean(O.tanh(O.mul(O.add(x, w), x)))
        graph = compile_training(loss, {"pp_w": w}, {"pp_x": x})
        plan = plan_memory(schedule(graph.outputs), graph.outputs)
        packed = packed_peak_bytes(plan)
        assert packed > 0

    def test_echo_reports_packed_footprint_in_color_mode(self):
        with _memplan("color"):
            x = O.placeholder((8, 16), name="ec_x")
            w = O.variable((16, 16), name="ec_w")
            h = O.tanh(O.fully_connected(x, w))
            loss = O.reduce_mean(O.tanh(h))
            graph = compile_training(loss, {"ec_w": w}, {"ec_x": x})
            report = optimize(graph, plan_cache=PlanCache(store=None))
            assert report.baseline_packed_bytes > 0
            assert (
                report.optimized_packed_bytes <= report.baseline_packed_bytes
            )
