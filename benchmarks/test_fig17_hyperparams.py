"""Figure 17: the Groundhog and Best settings of Hieber et al. [23].

Two hyperparameter sets that differ from the primary one in every knob
(depth, width, embedding, batch); the paper's point is that Echo "is
general enough to reduce memory footprints in multiple hyperparameter
settings without losing any performance".
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import (
    BEST,
    DEFAULT,
    ECHO,
    GROUNDHOG,
    format_table,
    gib,
    measure_nmt,
)


@pytest.mark.parametrize(
    "name,config", [("Groundhog", GROUNDHOG), ("Best", BEST)]
)
def test_fig17_setting(benchmark, save_result, name, config):
    def compute():
        return measure_nmt(config, DEFAULT), measure_nmt(config, ECHO)

    base, echo = run_once(benchmark, compute)
    rows = [
        (m.label, round(gib(m.total_bytes), 2), round(m.throughput, 1))
        for m in (base, echo)
    ]
    save_result(
        f"fig17_{name.lower()}",
        format_table(
            ["configuration", "GiB", "samples/s"], rows,
            f"Figure 17: {name} setting "
            f"(H={config.hidden_size}, L={config.encoder_layers}+"
            f"{config.decoder_layers}, B={config.batch_size})",
        )
        + f"\nreduction {base.total_bytes / echo.total_bytes:.2f}x, "
        f"throughput {echo.throughput / base.throughput:.3f}x",
    )
    assert base.total_bytes / echo.total_bytes > 1.5
    assert echo.throughput >= 0.97 * base.throughput
