"""Figure 14: memory breakdown before vs after Echo.

The paper's movements: attention layers 59% -> 6% of total; feature maps
shrink by tens of points; workspace grows slightly (the recompute
regions' shared arena); weights' *share* grows because the total shrank.
"""

from benchmarks.conftest import run_once
from repro.experiments import DEFAULT, ECHO, ZHU, format_table, measure_nmt


def test_fig14_breakdown_before_after(benchmark, save_result):
    def compute():
        return measure_nmt(ZHU, DEFAULT), measure_nmt(ZHU, ECHO)

    base, echo = run_once(benchmark, compute)

    def fraction_rows(view_base: dict, view_echo: dict):
        keys = sorted(set(view_base) | set(view_echo))
        total_b, total_e = base.total_bytes, echo.total_bytes
        return [
            (k, round(100 * view_base.get(k, 0) / total_b, 1),
             round(100 * view_echo.get(k, 0) / total_e, 1))
            for k in keys
        ]

    text = (
        format_table(
            ["layer type", "Default %", "Echo %"],
            fraction_rows(base.memory.by_layer, echo.memory.by_layer),
            "Figure 14a: by layer type (share of total)",
        )
        + "\n\n"
        + format_table(
            ["data structure", "Default %", "Echo %"],
            fraction_rows(
                base.memory.by_data_structure(),
                echo.memory.by_data_structure(),
            ),
            "Figure 14b: by data structure (share of total)",
        )
    )
    save_result("fig14_breakdown_after", text)

    att_before = base.memory.by_layer.get("attention", 0) / base.total_bytes
    att_after = echo.memory.by_layer.get("attention", 0) / echo.total_bytes
    assert att_before > 0.45          # paper: 59%
    assert att_after < 0.10           # paper: 6%
    # Feature-map share decreases; workspace share does not decrease.
    assert echo.memory.fraction("feature_maps") < base.memory.fraction(
        "feature_maps"
    )
    assert echo.memory.workspace >= base.memory.workspace
    # Weights' *share* grows because the denominator halved.
    assert (echo.memory.weights / echo.total_bytes
            > base.memory.weights / base.total_bytes)
