"""Figure 12: training/validation curves.

(a) Default and Echo at the same batch size produce *identical* training
curves — ours overlap bitwise, which is stronger than the paper's visual
overlap and is the lossless-ness claim.
(b) On the validation BLEU-vs-wall-clock axis, Echo training with the
doubled batch (which only fits because of the footprint reduction)
reaches the target BLEU faster than the baseline.

Training runs on numpy with the synthetic reversal-translation task; the
time axis is simulated GPU seconds (see repro.train.trainer).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.data import TranslationTask
from repro.echo import optimize
from repro.experiments import format_table
from repro.experiments.settings import TINY
from repro.models import build_nmt
from repro.nn import Backend
from repro.train import Adam, GreedyDecoder, Trainer, corpus_bleu

TARGET_BLEU = 20.0  # "a BLEU score greater than 20 is considered decent"
MAX_STEPS = 500
EVAL_EVERY = 25


def _make_task(cfg):
    return TranslationTask(
        cfg.src_vocab_size, cfg.tgt_vocab_size, cfg.src_len, cfg.tgt_len
    )


def _train_arm(cfg, echo: bool, steps: int = MAX_STEPS, seed: int = 0):
    """Train one configuration; returns (loss curve, bleu curve vs time)."""
    model = build_nmt(cfg)
    if echo:
        optimize(model.graph)
    params = model.store.initialize()
    trainer = Trainer(model.graph, params, Adam(3e-3))
    decoder = GreedyDecoder(cfg, model.store)
    task = _make_task(cfg)
    val = task.sample_batch(cfg.batch_size, np.random.default_rng(999))
    refs = task.references(val["src_tokens"])
    rng = np.random.default_rng(seed)

    losses: list[float] = []
    bleu_curve: list[tuple[float, float]] = []  # (sim seconds, bleu)
    time_to_target = None
    for step in range(1, steps + 1):
        record = trainer.step(task.sample_batch(cfg.batch_size, rng))
        losses.append(record.loss)
        if step % EVAL_EVERY == 0:
            hyps = decoder.translate(val["src_tokens"], params)
            bleu = corpus_bleu(hyps, refs)
            bleu_curve.append((record.sim_seconds, bleu))
            if time_to_target is None and bleu >= TARGET_BLEU:
                time_to_target = record.sim_seconds
    return losses, bleu_curve, time_to_target


def test_fig12a_training_curves_overlap(benchmark, save_result):
    """Same batch size: Default vs Echo training curves are identical."""
    cfg = TINY.with_backend(Backend.CUDNN)

    def compute():
        base, _, _ = _train_arm(cfg, echo=False, steps=40)
        echo, _, _ = _train_arm(cfg, echo=True, steps=40)
        return base, echo

    base, echo = run_once(benchmark, compute)
    rows = [
        (i + 1, round(b, 6), round(e, 6))
        for i, (b, e) in enumerate(zip(base, echo))
    ][::8]
    save_result(
        "fig12a_curves_overlap",
        format_table(["step", "Default loss", "Echo loss"], rows,
                     "Figure 12a: training-curve overlap (B equal)"),
    )
    assert base == echo, "recomputation must not change training numerics"


def test_fig12b_larger_batch_converges_faster(benchmark, save_result):
    """Echo's freed memory -> 2x batch -> target BLEU sooner (wall clock)."""
    small = TINY.with_backend(Backend.CUDNN)
    large = small.with_batch_size(small.batch_size * 2)

    def compute():
        _, bleu_small, t_small = _train_arm(small, echo=False)
        _, bleu_large, t_large = _train_arm(large, echo=True)
        return bleu_small, t_small, bleu_large, t_large

    bleu_small, t_small, bleu_large, t_large = run_once(benchmark, compute)

    rows = []
    for (ts, bs), (tl, bl) in zip(bleu_small, bleu_large):
        rows.append((round(ts, 3), round(bs, 1), round(tl, 3), round(bl, 1)))
    save_result(
        "fig12b_bleu_vs_time",
        format_table(
            ["Default t(s)", "BLEU", "Echo-2B t(s)", "BLEU"],
            rows,
            "Figure 12b: validation BLEU vs simulated wall clock "
            f"(target {TARGET_BLEU})",
        )
        + f"\ntime-to-target: Default B={small.batch_size}: {t_small}, "
        f"Echo B={large.batch_size}: {t_large}",
    )
    assert t_small is not None, "baseline never reached the target BLEU"
    assert t_large is not None, "Echo arm never reached the target BLEU"
    # The paper reports 1.5x faster convergence; we require a clear win.
    assert t_large < t_small, (
        f"Echo@2B should reach BLEU {TARGET_BLEU} sooner: "
        f"{t_large:.2f}s vs {t_small:.2f}s"
    )
