"""Figure 19: power and energy.

The paper's finding: board power is nearly flat across configurations
(training keeps the GPU boosted), so energy-to-converge is proportional to
training time — making the 1.5x time win a 1.5x energy win.
"""

from benchmarks.conftest import run_once
from repro.experiments import DEFAULT, ECHO, ZHU, format_table, measure_nmt

#: samples to a fixed validation score (the constant cancels in ratios)
_SAMPLES_TO_CONVERGE = 1_000_000


def test_fig19_power_energy(benchmark, save_result):
    def compute():
        base = measure_nmt(ZHU, DEFAULT)
        echo = measure_nmt(ZHU.with_batch_size(ZHU.batch_size * 2), ECHO)
        return base, echo

    base, echo = run_once(benchmark, compute)

    rows = []
    energies = {}
    for m in (base, echo):
        train_seconds = _SAMPLES_TO_CONVERGE / m.throughput
        energy_kj = m.power_watts * train_seconds / 1e3
        energies[m.label] = energy_kj
        rows.append(
            (m.label, round(m.power_watts, 1), round(train_seconds, 0),
             round(energy_kj, 0))
        )
    save_result(
        "fig19_power_energy",
        format_table(
            ["configuration", "power (W)", "train time (s)", "energy (kJ)"],
            rows,
            "Figure 19: power and energy to process a fixed sample budget",
        ),
    )

    # Power is nearly flat across configurations (paper: negligible diff).
    assert abs(base.power_watts - echo.power_watts) / base.power_watts < 0.10
    # Energy improves roughly with throughput (paper: 1.5x more efficient).
    energy_ratio = energies[base.label] / energies[echo.label]
    throughput_ratio = echo.throughput / base.throughput
    assert energy_ratio > 1.1
    assert abs(energy_ratio - throughput_ratio) / throughput_ratio < 0.15
