"""Host-dispatch microbenchmark: interpreted executor vs. compiled plan.

The compiled-plan rework targets the regime of paper Figure 7a: an LSTM
training iteration issues thousands of tiny kernels, so the *host-side*
cost of dispatching each one (dict lookups, per-node exception plumbing,
fresh allocations) bounds the iteration, not the kernels themselves. The
compiled plan eliminates that dispatch — slot-indexed registers, baked
straight-line step functions, fused elementwise chains, and compile-time
static buffer assignment.

What to expect from the numbers: on this CPU/numpy host the "kernels" are
synchronous numpy ufunc calls, which both execution paths pay identically
— they are the irreducible floor that a real GPU would overlap with
asynchronous launches. Wall-clock speedup is therefore bounded well below
the dispatch reduction: profiling the compiled path shows >90% of its
time inside op kernels (sigmoid/tanh/matmul/reductions). The honest,
robust metrics asserted here are

* executor-attributable bytecode dispatches: >= 3x fewer (the tentpole's
  target; measured ~3.7x),
* steady-state per-iteration numpy allocations: >= 90% fewer (measured
  ~97%: a handful of output + generic-op arrays vs. one fresh array per
  scheduled intermediate),
* wall-clock: >= 1.25x at the dispatch-bound NMT config (measured
  ~1.5-1.6x), and never slower elsewhere.

Results persist to ``benchmarks/results/perf_executor.txt`` and, machine
readable for cross-PR tracking, ``BENCH_executor.json`` at the repo root.
"""

import json
import pathlib
import sys
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.echo import EchoConfig, EchoPass
from repro.experiments import ZHU, format_table
from repro.models import NmtConfig, WordLmConfig, build_nmt, build_word_lm
from repro.nn import Backend
from repro.runtime import GraphExecutor, NullPlanCache, PlanCache

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Frames attributable to the executor itself: the interpreter loop lives
#: under ``repro/runtime/``; baked step/body functions compile with
#: co_filename ``<compiled-plan>``. Kernels (numpy, ``repro/ops``) are
#: excluded from both sides — they are the shared floor.
_EXECUTOR_FRAMES = ("repro/runtime/", "compiled-plan")

#: Dispatch-bound: tiny tensors, deeply unrolled seq2seq graph (~2900
#: nodes) — per-instruction host work dominates, the Fig. 7a regime.
DISPATCH_NMT = NmtConfig(
    src_vocab_size=500, tgt_vocab_size=500, embed_size=16, hidden_size=16,
    encoder_layers=1, decoder_layers=1, src_len=12, tgt_len=12,
    batch_size=4, backend=Backend.CUDNN,
)

#: Kernel-bound reference row: larger tensors shift time into numpy
#: kernels shared by both paths, so the wall-clock gap narrows — reported
#: to document the floor, only sanity-asserted.
KERNEL_NMT = NmtConfig(
    src_vocab_size=2000, tgt_vocab_size=2000, embed_size=128,
    hidden_size=128, encoder_layers=1, decoder_layers=1, src_len=12,
    tgt_len=12, batch_size=32, backend=Backend.CUDNN,
)

WORD_LM = WordLmConfig(
    vocab_size=2000, embed_size=64, hidden_size=64, num_layers=2,
    seq_len=20, batch_size=16, backend=Backend.CUDNN,
)

WARMUP = 2
ITERS = 12
REPS = 3


def _nmt_feeds(cfg: NmtConfig) -> dict:
    rng = np.random.default_rng(0)
    return {
        name: rng.integers(1, cfg.src_vocab_size, (cfg.src_len, cfg.batch_size))
        for name in ("src_tokens", "tgt_tokens", "tgt_labels")
    }


def _lm_feeds(cfg: WordLmConfig) -> dict:
    rng = np.random.default_rng(0)
    shape = (cfg.seq_len, cfg.batch_size)
    return {
        "tokens": rng.integers(0, cfg.vocab_size, shape),
        "labels": rng.integers(-1, cfg.vocab_size, shape),
    }


def _best_seconds_per_iter(fn) -> float:
    for _ in range(WARMUP):
        fn()
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        for _ in range(ITERS):
            fn()
        best = min(best, (time.perf_counter() - start) / ITERS)
    return best


def _count_executor_opcodes(fn) -> int:
    """Bytecode dispatches in executor-attributable frames for one run."""
    counts = [0]

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not any(m in filename for m in _EXECUTOR_FRAMES):
            return None  # don't descend into kernels / numpy
        frame.f_trace_opcodes = True
        if event == "opcode":
            counts[0] += 1
        return tracer

    sys.settrace(tracer)
    try:
        fn()
    finally:
        sys.settrace(None)
    return counts[0]


def _measure(name: str, model, feeds: dict) -> dict:
    params = model.store.initialize(seed=0)
    ex = GraphExecutor(model.graph.outputs, plan_cache=PlanCache())

    # Correctness first: the compiled plan must be bitwise-identical to
    # the interpreted baseline on this exact graph before timing it.
    want = ex.run_interpreted(feeds, params).outputs
    got = ex.run(feeds, params).outputs
    assert all(np.array_equal(a, b) for a, b in zip(want, got))

    interp_s = _best_seconds_per_iter(lambda: ex.run_interpreted(feeds, params))
    compiled_s = _best_seconds_per_iter(lambda: ex.run(feeds, params))

    ops_interp = _count_executor_opcodes(lambda: ex.run_interpreted(feeds, params))
    ops_compiled = _count_executor_opcodes(lambda: ex.run(feeds, params))

    # Steady-state allocations. The interpreter allocates one fresh array
    # per intermediate per iteration (plus kernel temporaries — not
    # counted, which only flatters the baseline). The compiled plan
    # allocates only output arrays and generic-op results.
    interp_allocs = sum(
        len(node.out_specs)
        for node in ex.order
        if node.op.name not in ("placeholder", "variable", "constant")
    )
    steady = 10
    fresh0 = ex.arena.fresh_count
    generic0 = ex.plan.generic_alloc_count
    for _ in range(steady):
        ex.run(feeds, params)
    compiled_allocs = (
        (ex.arena.fresh_count - fresh0)
        + (ex.plan.generic_alloc_count - generic0)
    ) / steady

    return {
        "name": name,
        "nodes": ex.plan.num_nodes,
        "instructions": ex.plan.num_instructions,
        "fused_nodes": ex.plan.fused_node_count,
        "static_slots": ex.plan.static_slot_count,
        "interp_ms": interp_s * 1e3,
        "compiled_ms": compiled_s * 1e3,
        "speedup": interp_s / compiled_s,
        "opcodes_interp": ops_interp,
        "opcodes_compiled": ops_compiled,
        "opcode_ratio": ops_interp / max(ops_compiled, 1),
        "allocs_interp": interp_allocs,
        "allocs_compiled": compiled_allocs,
        "alloc_reduction": 1.0 - compiled_allocs / interp_allocs,
    }


def test_compiled_plan_vs_interpreter(benchmark, save_result):
    def compute():
        return [
            _measure("nmt dispatch-bound", build_nmt(DISPATCH_NMT),
                     _nmt_feeds(DISPATCH_NMT)),
            _measure("nmt kernel-bound", build_nmt(KERNEL_NMT),
                     _nmt_feeds(KERNEL_NMT)),
            _measure("word-lm", build_word_lm(WORD_LM), _lm_feeds(WORD_LM)),
        ]

    rows = run_once(benchmark, compute)
    save_result(
        "perf_executor",
        format_table(
            ["graph", "interp ms", "compiled ms", "speedup",
             "exec opcodes (i/c)", "allocs/iter (i/c)"],
            [
                (
                    r["name"],
                    round(r["interp_ms"], 2),
                    round(r["compiled_ms"], 2),
                    f"{r['speedup']:.2f}x",
                    f"{r['opcodes_interp']}/{r['opcodes_compiled']}"
                    f" = {r['opcode_ratio']:.2f}x",
                    f"{r['allocs_interp']}/{r['allocs_compiled']:.0f}"
                    f" = -{r['alloc_reduction'] * 100:.0f}%",
                )
                for r in rows
            ],
            "Interpreted vs compiled execution (kernel time is a shared "
            "floor on CPU numpy; a GPU overlaps it with async launches)",
        ),
    )
    (REPO_ROOT / "BENCH_executor.json").write_text(
        json.dumps({r["name"]: r for r in rows}, indent=2) + "\n"
    )

    by_name = {r["name"]: r for r in rows}
    dispatch = by_name["nmt dispatch-bound"]
    # Tentpole target: >= 3x fewer per-iteration bytecode dispatches on
    # the NMT training graph (measured ~3.7x).
    assert dispatch["opcode_ratio"] >= 3.0
    # Steady-state allocations down >= 90% (measured ~97%).
    for r in rows:
        assert r["alloc_reduction"] >= 0.90
        assert r["fused_nodes"] > 0
        assert r["static_slots"] > 0
    # Wall-clock: comfortably faster where dispatch dominates, and never
    # slower where kernels dominate.
    assert dispatch["speedup"] >= 1.25
    for r in rows:
        assert r["speedup"] >= 0.95


def _report_fields(report) -> dict:
    return {
        "baseline_peak_bytes": report.baseline_peak_bytes,
        "optimized_peak_bytes": report.optimized_peak_bytes,
        "candidates_found": report.candidates_found,
        # component ids embed globally-unique node uids; compare the
        # decisions structurally instead
        "num_accepted": len(report.accepted),
        "accepted_benefit": [c.benefit_bytes for c in report.accepted],
        "accepted_recompute": [c.recompute_seconds for c in report.accepted],
        "rejected_low_benefit": report.rejected_low_benefit,
        "rejected_budget": report.rejected_budget,
        "rolled_back": report.rolled_back,
        "recompute_seconds": report.recompute_seconds,
        "iteration_seconds": report.iteration_seconds,
    }


def test_fig13_echo_report_unchanged_by_plan_cache(benchmark, save_result):
    """Plan-cache memoization must not move any Fig. 13 number.

    The Echo pass re-plans the graph dozens of times (entry, per-rewrite,
    rollback loop). The cache may only change how fast that happens —
    accepted candidates, peak bytes, and overhead fractions on the
    paper's primary (ZHU) configuration must match the uncached seed
    behavior field for field.
    """

    def compute():
        cached = EchoPass(EchoConfig(), plan_cache=PlanCache()).run(
            build_nmt(ZHU).graph
        )
        uncached = EchoPass(EchoConfig(), plan_cache=NullPlanCache()).run(
            build_nmt(ZHU).graph
        )
        return cached, uncached

    cached, uncached = run_once(benchmark, compute)
    assert _report_fields(cached) == _report_fields(uncached)
    assert cached.candidates_found > 0
    assert cached.accepted
    overhead = cached.recompute_seconds / cached.iteration_seconds
    save_result(
        "perf_executor_echo_parity",
        format_table(
            ["field", "cached", "uncached"],
            [
                ("optimized peak MB",
                 round(cached.optimized_peak_bytes / 2**20, 1),
                 round(uncached.optimized_peak_bytes / 2**20, 1)),
                ("accepted", len(cached.accepted), len(uncached.accepted)),
                ("overhead frac", round(overhead, 4),
                 round(uncached.recompute_seconds
                       / uncached.iteration_seconds, 4)),
            ],
            "Echo pass on ZHU (Fig. 13): plan cache changes nothing",
        ),
    )


#: Wavefront matrix: thread counts x batched-GEMM pre-pass, all on the
#: kernel-bound NMT config (the regime PR 1 could not move — its time sits
#: in numpy kernels, exactly what parallel wavefronts and stacked GEMMs
#: attack). Parallel rows only beat serial when the host has cores to run
#: them on; single-core machines still record the rows (and the parity
#: checks still bite), but wall-clock speedup assertions are gated on
#: ``os.cpu_count()``.
THREAD_MATRIX = [(1, False), (1, True), (2, False), (2, True),
                 (4, False), (4, True)]


def _matrix_name(threads: int, batched: bool) -> str:
    return f"nmt kernel-bound t{threads}" + ("+bg" if batched else "")


def test_wavefront_parallel_kernel_bound(benchmark, save_result):
    """Wavefront + batched-GEMM rows for the cross-PR trajectory.

    Baseline is this PR's threads=1, batching-off plan — byte-for-byte the
    PR 1 compiled serial path (same closures, same inline clears), so
    "speedup" rows compare directly against the prior BENCH_executor.json
    kernel-bound row.
    """
    import os

    def compute():
        model = build_nmt(KERNEL_NMT)
        params = model.store.initialize(seed=0)
        feeds = _nmt_feeds(KERNEL_NMT)
        cache = PlanCache()
        serial = GraphExecutor(model.graph.outputs, plan_cache=cache,
                               threads=1, batch_gemms=False)
        want = serial.run(feeds, params).outputs
        base_s = _best_seconds_per_iter(lambda: serial.run(feeds, params))

        rows = []
        for threads, batched in THREAD_MATRIX:
            ex = GraphExecutor(model.graph.outputs, plan_cache=cache,
                               threads=threads, batch_gemms=batched)
            # Parallel and batched plans must be bitwise-identical to the
            # serial baseline before any of their timings count.
            got = ex.run(feeds, params).outputs
            assert all(np.array_equal(a, b) for a, b in zip(want, got))
            seconds = _best_seconds_per_iter(lambda: ex.run(feeds, params))
            rows.append({
                "name": _matrix_name(threads, batched),
                "threads": threads,
                "batch_gemms": batched,
                "compiled_ms": seconds * 1e3,
                "speedup_vs_serial": base_s / seconds,
                "instructions": ex.plan.num_instructions,
                "batched_groups": ex.plan.batched_gemm_groups,
                "batched_nodes": ex.plan.batched_gemm_nodes,
                "parallel_levels": ex.plan.parallel_level_count,
                "parallel_instructions": ex.plan.parallel_instruction_count,
                "max_width": ex.plan.max_wavefront_width,
                "host_cores": os.cpu_count() or 1,
            })
        return rows

    rows = run_once(benchmark, compute)
    save_result(
        "perf_executor_wavefront",
        format_table(
            ["config", "ms/iter", "vs serial", "instr", "batched (grp/node)",
             "parallel (lvl/instr)", "width"],
            [
                (
                    r["name"],
                    round(r["compiled_ms"], 2),
                    f"{r['speedup_vs_serial']:.2f}x",
                    r["instructions"],
                    f"{r['batched_groups']}/{r['batched_nodes']}",
                    f"{r['parallel_levels']}/{r['parallel_instructions']}",
                    r["max_width"],
                )
                for r in rows
            ],
            f"Wavefront execution on kernel-bound NMT "
            f"({os.cpu_count() or 1} host cores; parallel rows need cores "
            "to win wall-clock — structure columns are machine-independent)",
        ),
    )

    path = REPO_ROOT / "BENCH_executor.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data.update({r["name"]: r for r in rows})
    path.write_text(json.dumps(data, indent=2) + "\n")

    by = {r["name"]: r for r in rows}
    # Structure: batching must engage (the attention-scoring GEMMs) and the
    # thread configs must produce genuinely parallel plans.
    for name, r in by.items():
        if r["batch_gemms"]:
            assert r["batched_groups"] > 0
            assert r["instructions"] < by[_matrix_name(r["threads"], False)][
                "instructions"]
    for threads in (2, 4):
        assert by[_matrix_name(threads, True)]["parallel_levels"] > 0
        assert by[_matrix_name(threads, True)]["parallel_instructions"] > 0
    # Serial configurations must not regress against the PR 1 code path
    # (threads=1 executes the identical baked body; batching only removes
    # dispatches). 0.9 guards against timer noise, not a real budget.
    for name in (_matrix_name(1, False), _matrix_name(1, True)):
        assert by[name]["speedup_vs_serial"] >= 0.9
    # Wall-clock wins require physical cores: the GIL is released inside
    # numpy kernels, but one core can only run one kernel at a time.
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert by[_matrix_name(4, True)]["speedup_vs_serial"] >= 1.4
    elif cores >= 2:
        assert by[_matrix_name(2, True)]["speedup_vs_serial"] >= 1.1
    else:
        # Single-core host: parallelism cannot pay, but it must not
        # collapse either — the cost gate keeps handoff overhead bounded.
        assert by[_matrix_name(4, True)]["speedup_vs_serial"] >= 0.8
