"""Figure 18: GPU hardware sensitivity (Titan V / RTX 2080 Ti).

Newer GPUs have more compute relative to launch overhead, so they benefit
*more* from the larger batch size Echo unlocks: the paper's relative
throughput improvement grows from 1.3x (Titan Xp) to ~1.5x / 1.4x.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import (
    DEFAULT,
    ECHO,
    ZHU,
    format_table,
    gib,
    measure_nmt,
)
from repro.gpumodel import ALL_DEVICES, RTX_2080_TI, TITAN_V, TITAN_XP


def _gain(device_spec):
    base = measure_nmt(ZHU, DEFAULT, device_spec=device_spec)
    echo = measure_nmt(
        ZHU.with_batch_size(ZHU.batch_size * 2), ECHO, device_spec=device_spec
    )
    return base, echo


def test_fig18_all_devices(benchmark, save_result):
    def compute():
        return {spec.name: _gain(spec) for spec in ALL_DEVICES}

    points = run_once(benchmark, compute)
    rows = []
    for name, (base, echo) in points.items():
        rows.append(
            (name, round(gib(base.total_bytes), 2),
             round(gib(echo.total_bytes), 2),
             round(base.throughput, 1), round(echo.throughput, 1),
             round(echo.throughput / base.throughput, 2))
        )
    save_result(
        "fig18_hardware",
        format_table(
            ["device", "Default GiB", "Echo GiB", "Default s/s",
             "Echo(2B) s/s", "speedup"],
            rows,
            "Figure 18: Default(B=128) vs Echo(B=256) across GPUs",
        ),
    )
    # Echo helps on every generation.
    for name, (base, echo) in points.items():
        assert echo.throughput / base.throughput > 1.1, name
        assert base.total_bytes / measure_nmt(
            ZHU, ECHO, device_spec=[s for s in ALL_DEVICES
                                    if s.name == name][0]
        ).total_bytes > 2.0

    # Newer GPUs benefit at least as much as Pascal (paper: 1.3 -> 1.5x).
    xp = points["Titan Xp"]
    for newer in (TITAN_V, RTX_2080_TI):
        new = points[newer.name]
        assert (new[1].throughput / new[0].throughput
                >= 0.97 * xp[1].throughput / xp[0].throughput)


@pytest.mark.parametrize("spec", [TITAN_XP, TITAN_V, RTX_2080_TI],
                         ids=lambda s: s.name)
def test_fig18_per_device(benchmark, spec):
    base, echo = run_once(benchmark, lambda: _gain(spec))
    assert echo.fits_in_memory
    assert echo.throughput > base.throughput
