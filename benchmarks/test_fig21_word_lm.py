"""Figure 21: word-level language-modeling training throughput on PTB and
Wikitext-2 across hidden dimensions.

End-to-end LM training (embedding + LSTM + output projection): Echo has
the best or near-best throughput everywhere; where CuDNN wins the gap is
within ~20% — and the Section 5.4 autotuner would fall back to it anyway.
The paper's headline: up to 2x over Default and ~1.2x over cuDNN.
"""

import pytest

from benchmarks.conftest import run_once
from repro.data.corpora import PTB, WIKITEXT2
from repro.experiments import format_table, measure_training
from repro.models import WordLmConfig, build_word_lm
from repro.nn import Backend

HIDDENS = (200, 512, 1024)
_cache: dict[tuple, float] = {}


def _throughput(corpus, hidden: int, backend: Backend) -> float:
    key = (corpus.name, hidden, backend)
    if key not in _cache:
        cfg = WordLmConfig(
            vocab_size=corpus.vocab_size,
            embed_size=hidden,
            hidden_size=hidden,
            num_layers=2,
            seq_len=35,
            batch_size=32,
            backend=backend,
        )
        model = build_word_lm(cfg)
        m = measure_training(
            model.graph, cfg.batch_size, f"{corpus.name} H={hidden}",
            num_params=model.store.num_parameters(),
        )
        _cache[key] = m.throughput
    return _cache[key]


@pytest.mark.parametrize("corpus", [PTB, WIKITEXT2], ids=lambda c: c.name)
def test_fig21_corpus(benchmark, save_result, corpus):
    def compute():
        return {
            h: {b: _throughput(corpus, h, b) for b in Backend}
            for h in HIDDENS
        }

    grid = run_once(benchmark, compute)
    rows = []
    for h, by_backend in grid.items():
        d = by_backend[Backend.DEFAULT]
        c = by_backend[Backend.CUDNN]
        e = by_backend[Backend.ECHO]
        rows.append(
            (h, round(d, 1), round(c, 1), round(e, 1),
             round(e / d, 2), round(e / c, 2))
        )
    save_result(
        f"fig21_{corpus.name.lower().replace('-', '')}",
        format_table(
            ["hidden", "Default s/s", "CuDNN s/s", "Echo s/s",
             "Echo/Default", "Echo/CuDNN"],
            rows,
            f"Figure 21: word-LM training throughput on {corpus.name} "
            f"(vocab {corpus.vocab_size})",
        ),
    )
    for h, by_backend in grid.items():
        d = by_backend[Backend.DEFAULT]
        c = by_backend[Backend.CUDNN]
        e = by_backend[Backend.ECHO]
        # Echo always clearly beats Default on the LM task.
        assert e / d > 1.2, f"H={h}"
        # And is never worse than cuDNN by more than ~20%.
        assert e / c > 0.8, f"H={h}"
    # Somewhere in the sweep Echo reaches the strong-gain regime.
    assert max(
        by_backend[Backend.ECHO] / by_backend[Backend.DEFAULT]
        for by_backend in grid.values()
    ) > 1.5
