"""Figure 15: comparison with cuDNN on NMT.

The paper: cuDNN improves throughput ~8% over the Default baseline but
*increases* memory ~7% (its reserve space trades memory for speed, and it
does nothing about the attention layers); Echo with the doubled batch
outperforms cuDNN by ~1.27x in throughput.
"""

from benchmarks.conftest import run_once
from repro.experiments import (
    CUDNN,
    DEFAULT,
    ECHO,
    ZHU,
    format_table,
    gib,
    measure_nmt,
)


def test_fig15_vs_cudnn(benchmark, save_result):
    def compute():
        base = measure_nmt(ZHU, DEFAULT)
        cudnn = measure_nmt(ZHU, CUDNN)
        echo_2b = measure_nmt(ZHU.with_batch_size(ZHU.batch_size * 2), ECHO)
        return base, cudnn, echo_2b

    base, cudnn, echo_2b = run_once(benchmark, compute)
    rows = [
        (m.label, round(gib(m.total_bytes), 2), round(m.throughput, 1))
        for m in (base, cudnn, echo_2b)
    ]
    save_result(
        "fig15_vs_cudnn",
        format_table(
            ["configuration", "GiB", "samples/s"], rows,
            "Figure 15: Default vs CuDNN vs Echo (Echo at doubled batch)",
        )
        + f"\nCuDNN over Default: {cudnn.throughput / base.throughput:.3f}x "
        f"throughput, {cudnn.total_bytes / base.total_bytes:.3f}x memory"
        + f"\nEcho over CuDNN: {echo_2b.throughput / cudnn.throughput:.2f}x "
        "throughput",
    )
    # cuDNN speeds training up somewhat at equal batch...
    assert 1.0 < cudnn.throughput / base.throughput < 1.6
    # ...but does not reduce memory (paper: +7%).
    assert cudnn.total_bytes >= 0.98 * base.total_bytes
    # Echo at the doubled batch beats cuDNN (paper: 1.27x).
    assert echo_2b.throughput / cudnn.throughput > 1.05
