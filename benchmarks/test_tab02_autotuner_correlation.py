"""Table 2: correlation between the autotuning microbenchmark and real
training throughput.

The microbenchmark times a pure-LSTM iteration; end-to-end LM training
adds embedding and the vocabulary projection. The paper reports
corr(1/T_micro, throughput) = 0.971 (PTB) and 0.950 (Wikitext-2), which is
what justifies transparent backend selection.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.backends import Backend, benchmark_lstm
from repro.data.corpora import PTB, WIKITEXT2
from repro.experiments import format_table, measure_training
from repro.models import WordLmConfig, build_word_lm

#: hyperparameter points sampled for the correlation study
POINTS = [
    (32, 256, 1), (32, 512, 2), (32, 1024, 2),
    (64, 512, 1), (64, 512, 2), (64, 1024, 1),
]


def _series(corpus):
    inverse_micro = []
    throughput = []
    for batch, hidden, layers in POINTS:
        for backend in Backend:
            micro = benchmark_lstm(batch, hidden, layers, 35, backend)
            cfg = WordLmConfig(
                vocab_size=corpus.vocab_size,
                embed_size=hidden,
                hidden_size=hidden,
                num_layers=layers,
                seq_len=35,
                batch_size=batch,
                backend=backend,
            )
            model = build_word_lm(cfg)
            m = measure_training(
                model.graph, batch, "lm",
                num_params=model.store.num_parameters(),
            )
            inverse_micro.append(1.0 / micro.total_seconds)
            throughput.append(m.throughput)
    return np.asarray(inverse_micro), np.asarray(throughput)


@pytest.mark.parametrize("corpus", [PTB, WIKITEXT2], ids=lambda c: c.name)
def test_tab2_correlation(benchmark, save_result, corpus):
    inv_micro, thr = run_once(benchmark, lambda: _series(corpus))
    rho = float(np.corrcoef(inv_micro, thr)[0, 1])
    save_result(
        f"tab02_{corpus.name.lower().replace('-', '')}",
        format_table(
            ["dataset", "points", "corr(1/T_micro, throughput)"],
            [(corpus.name, len(thr), round(rho, 3))],
            "Table 2: autotuner microbenchmark correlation",
        ),
    )
    # Paper: 0.971 / 0.950. The microbenchmark must remain a reliable
    # predictor for backend selection.
    assert rho > 0.9, f"correlation too weak on {corpus.name}: {rho:.3f}"
