"""Graph-level memory optimizer benchmark: packing, elision, identity.

Three claims, on the NMT-with-attention and word-LM training workloads:

1. **Interference-coloring packs the static arena far below the greedy
   size-class replay.** The colored planner assigns every alias group a
   byte offset in one contiguous extent from exact live intervals; the
   greedy replay parks whole size-class buffers on free lists. The
   headline metric is the plan's static storage footprint in each mode
   (paper's Figure-8 axis: training memory footprint), with the
   acceptance bar at >= 15% reduction on NMT.

2. **Copy elision fires at least once per LSTM timestep.** Each
   unrolled step slices its token column and re-concatenates states;
   those copies become zero-cost alias bindings in color mode.

3. **The optimizer is a pure layout change.** Multi-iteration SGD
   training curves (losses every iteration, final gradients) are
   bitwise identical between modes — same floats, different addresses.

Iteration-time deltas are reported alongside (informational: the numpy
backend sees little arithmetic benefit, the claim is footprint).

Results persist to ``benchmarks/results/perf_memplan.txt`` and, machine
readable for cross-PR tracking, ``BENCH_memplan.json`` at the repo root.
"""

import contextlib
import json
import os
import pathlib
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import format_table
from repro.models import NmtConfig, WordLmConfig, build_nmt, build_word_lm
from repro.nn import Backend
from repro.runtime import PlanCache, TrainingExecutor

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Same small-but-complete NMT as the PGO benchmark: MLP attention,
#: unrolled encoder/decoder, hundreds of nodes.
NMT = NmtConfig(
    src_vocab_size=500, tgt_vocab_size=500, embed_size=32, hidden_size=32,
    encoder_layers=1, decoder_layers=1, src_len=10, tgt_len=10,
    batch_size=4, backend=Backend.CUDNN,
)
NMT_STEPS = NMT.src_len + NMT.tgt_len

WORD_LM = WordLmConfig(
    vocab_size=300, embed_size=32, hidden_size=32, num_layers=2,
    seq_len=12, batch_size=4, backend=Backend.DEFAULT,
)

ITERATIONS = 4
LEARNING_RATE = 0.05


@contextlib.contextmanager
def _memplan(mode):
    saved = os.environ.get("REPRO_MEMPLAN")
    os.environ["REPRO_MEMPLAN"] = mode
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_MEMPLAN", None)
        else:
            os.environ["REPRO_MEMPLAN"] = saved


def _nmt_workload():
    model = build_nmt(NMT)
    params = model.store.initialize(seed=0)
    rng = np.random.default_rng(0)
    feeds = {
        name: rng.integers(1, NMT.src_vocab_size,
                           (NMT.src_len, NMT.batch_size))
        for name in ("src_tokens", "tgt_tokens", "tgt_labels")
    }
    return model.graph, feeds, params


def _word_lm_workload():
    model = build_word_lm(WORD_LM)
    params = model.store.initialize(seed=0)
    rng = np.random.default_rng(1)
    shape = (WORD_LM.seq_len, WORD_LM.batch_size)
    feeds = {
        "tokens": rng.integers(1, WORD_LM.vocab_size, shape),
        "labels": rng.integers(0, WORD_LM.vocab_size, shape),
    }
    return model.graph, feeds, params


def _train(graph, feeds, params, mode):
    """ITERATIONS of SGD under ``mode``; returns the loss curve + stats."""
    with _memplan(mode):
        ex = TrainingExecutor(graph, plan_cache=PlanCache(store=None))
        current = {k: np.array(v) for k, v in params.items()}
        losses, grads = [], {}
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            loss, grads, _ = ex.run(feeds, current)
            losses.append(float(loss))
            for name, g in grads.items():
                current[name] = current[name] - LEARNING_RATE * g
        iter_seconds = (time.perf_counter() - start) / ITERATIONS
        plan = ex.executor.plan
    return {
        "losses": losses,
        "final_grads": grads,
        "iter_seconds": iter_seconds,
        "static_bytes": plan.static_storage_bytes,
        "elided": plan.elided_copy_count,
        "inplace": plan.inplace_write_count,
        "planned_peak": plan.planned_peak_bytes,
        "extent": plan.packed_extent_bytes,
    }


def _compare(workload):
    graph, feeds, params = workload()
    greedy = _train(graph, feeds, params, "greedy")
    color = _train(graph, feeds, params, "color")
    identical = greedy["losses"] == color["losses"] and set(
        greedy["final_grads"]
    ) == set(color["final_grads"]) and all(
        np.array_equal(greedy["final_grads"][k], color["final_grads"][k])
        for k in greedy["final_grads"]
    )
    return {
        "greedy_static_bytes": greedy["static_bytes"],
        "color_static_bytes": color["static_bytes"],
        "reduction": 1.0 - color["static_bytes"] / greedy["static_bytes"],
        "elided_copies": color["elided"],
        "inplace_writes": color["inplace"],
        "planned_peak_bytes": color["planned_peak"],
        "packed_extent_bytes": color["extent"],
        "greedy_iter_ms": greedy["iter_seconds"] * 1e3,
        "color_iter_ms": color["iter_seconds"] * 1e3,
        "iter_delta": color["iter_seconds"] / greedy["iter_seconds"] - 1.0,
        "bitwise_identical_curve": identical,
        "losses": color["losses"],
    }


def test_memplan_packing_and_identity(benchmark, save_result):
    def compute():
        return _compare(_nmt_workload), _compare(_word_lm_workload)

    nmt, lm = run_once(benchmark, compute)

    rows = []
    for name, r in (("nmt", nmt), ("word_lm", lm)):
        rows += [
            (f"{name}: greedy static KiB", round(r["greedy_static_bytes"] / 1024, 1)),
            (f"{name}: colored static KiB", round(r["color_static_bytes"] / 1024, 1)),
            (f"{name}: footprint reduction", f"{r['reduction'] * 100:.0f}%"),
            (f"{name}: elided copies", r["elided_copies"]),
            (f"{name}: in-place writes", r["inplace_writes"]),
            (f"{name}: iter time delta", f"{r['iter_delta'] * 100:+.0f}%"),
            (f"{name}: bitwise-identical curve", r["bitwise_identical_curve"]),
        ]
    save_result(
        "perf_memplan",
        format_table(
            ["metric", "value"], rows,
            "Graph-level memory optimizer: colored arena packing vs the "
            "greedy size-class replay",
        ),
    )
    (REPO_ROOT / "BENCH_memplan.json").write_text(
        json.dumps({"nmt": nmt, "word_lm": lm}, indent=2) + "\n"
    )

    # Claim 1: colored packing never loses, and wins big on NMT.
    assert nmt["color_static_bytes"] <= nmt["greedy_static_bytes"]
    assert lm["color_static_bytes"] <= lm["greedy_static_bytes"]
    assert nmt["reduction"] >= 0.15
    assert 0 < nmt["packed_extent_bytes"] <= nmt["greedy_static_bytes"]

    # Claim 2: at least one elided copy per unrolled LSTM timestep.
    assert nmt["elided_copies"] >= NMT_STEPS
    assert lm["elided_copies"] >= WORD_LM.seq_len
    assert nmt["inplace_writes"] > 0

    # Claim 3: training curves are bitwise identical across modes.
    assert nmt["bitwise_identical_curve"]
    assert lm["bitwise_identical_curve"]
