"""Ablations of the Echo pass's design choices (DESIGN.md E-abl).

* overhead-budget sweep: reduction grows with the budget and saturates —
  the attention regions deliver most of the value early;
* workspace sharing: disabling lazy scheduling (all mirrors hoisted to the
  start of the backward pass) forfeits much of the reduction — the
  Section 4.1.2 O(B x T^2 x H) spike argument;
* allowing GEMM recomputation adds little memory on this model while
  multiplying the overhead — justifying the GEMM-free default.
"""

import pytest

from benchmarks.conftest import run_once
from repro.echo import EchoConfig, EchoPass
from repro.experiments import TINY, ZHU_T50, format_table, gib
from repro.models import build_nmt
from repro.nn import Backend


def _fresh_graph(cfg=None):
    config = (cfg or ZHU_T50).with_backend(Backend.CUDNN)
    return build_nmt(config).graph


BUDGETS = (0.0, 0.01, 0.03, 0.06, 0.12, 0.25)


def test_ablation_budget_sweep(benchmark, save_result):
    def compute():
        out = {}
        for eps in BUDGETS:
            report = EchoPass(
                EchoConfig(overhead_budget_fraction=eps)
            ).run(_fresh_graph())
            out[eps] = report
        return out

    reports = run_once(benchmark, compute)
    rows = [
        (eps, round(gib(r.optimized_peak_bytes), 2),
         round(r.footprint_reduction, 2), len(r.accepted),
         round(100 * r.overhead_fraction, 2))
        for eps, r in reports.items()
    ]
    save_result(
        "echo_ablation_budget",
        format_table(
            ["budget", "peak GiB", "reduction", "accepted", "overhead %"],
            rows,
            "Ablation: overhead budget vs footprint reduction (NMT T=50)",
        ),
    )
    reductions = [reports[eps].footprint_reduction for eps in BUDGETS]
    # Monotone non-decreasing in the budget...
    assert all(b >= a - 1e-9 for a, b in zip(reductions, reductions[1:]))
    # ...with diminishing returns: the last doubling buys <15% extra.
    assert reductions[-1] / reductions[-2] < 1.15
    # Overhead always respects the budget.
    for eps, r in reports.items():
        assert r.overhead_fraction <= eps + 1e-9


def test_ablation_workspace_sharing(benchmark, save_result):
    def compute():
        shared = EchoPass(EchoConfig(workspace_sharing=True)).run(
            _fresh_graph()
        )
        eager = EchoPass(EchoConfig(workspace_sharing=False)).run(
            _fresh_graph()
        )
        return shared, eager

    shared, eager = run_once(benchmark, compute)
    rows = [
        ("lazy (shared workspace)", round(gib(shared.optimized_peak_bytes), 2),
         round(shared.footprint_reduction, 2), shared.rolled_back),
        ("eager (hoisted mirrors)", round(gib(eager.optimized_peak_bytes), 2),
         round(eager.footprint_reduction, 2), eager.rolled_back),
    ]
    save_result(
        "echo_ablation_workspace",
        format_table(
            ["scheduling", "peak GiB", "reduction", "rolled back"],
            rows,
            "Ablation: workspace sharing (Section 4.1.2)",
        ),
    )
    # Lazy scheduling strictly beats hoisting everything to the boundary.
    assert shared.optimized_peak_bytes < eager.optimized_peak_bytes
    # Even eager never ends up above the baseline (safety net).
    assert eager.optimized_peak_bytes <= eager.baseline_peak_bytes


def test_ablation_gemm_recompute(benchmark, save_result):
    """Why Echo's mining is GEMM-free.

    GEMMs are the connectivity hubs of the dataflow graph: admitting them
    to the recompute-cheap set fuses every timestep's region into a few
    near-whole-forward components. The lifetime-gain guard and free-region
    variants keep the pass from actively hurting itself there, but the
    resulting elimination is *smaller* than the GEMM-free default's, while
    every mirrored GEMM adds real compute. GEMM recomputation only pays
    off with *time segmentation*, i.e. Chen et al.'s scheme (the separate
    sublinear_checkpoint baseline), at its ~extra-forward-pass price.
    """
    from repro.echo.baselines import sublinear_checkpoint

    def compute():
        lean = EchoPass(EchoConfig()).run(_fresh_graph(TINY))
        naive = EchoPass(
            EchoConfig(allow_gemm_recompute=True,
                       overhead_budget_fraction=1.0,
                       min_benefit_bytes=1)
        ).run(_fresh_graph(TINY))
        chen = sublinear_checkpoint(_fresh_graph(TINY))
        return lean, naive, chen

    lean, naive, chen = run_once(benchmark, compute)
    rows = [
        ("GEMM-free (Echo default)", round(lean.footprint_reduction, 2),
         round(100 * lean.overhead_fraction, 2), lean.rolled_back),
        ("GEMMs in region mining", round(naive.footprint_reduction, 2),
         round(100 * naive.overhead_fraction, 2), naive.rolled_back),
        ("GEMMs via sqrt(N) segments", round(chen.footprint_reduction, 2),
         round(100 * chen.overhead_fraction, 2), chen.rolled_back),
    ]
    save_result(
        "echo_ablation_gemm",
        format_table(
            ["policy", "reduction", "overhead %", "rolled back"], rows,
            "Ablation: GEMM recomputation policies (TINY NMT)",
        ),
    )
    # The default pass delivers a real reduction at bounded overhead.
    assert lean.footprint_reduction > 1.2
    # GEMM-inclusive mining never beats the GEMM-free default here, and
    # the footprint-safety machinery keeps it from doing harm.
    assert naive.footprint_reduction <= lean.footprint_reduction + 1e-9
    assert naive.optimized_peak_bytes <= naive.baseline_peak_bytes
    # Chen-style segmentation does save memory with GEMM recomputation
    # (modestly on TINY, where weights dominate; see the ZHU_T50 frontier
    # benchmark for the at-scale numbers), but pays roughly an extra
    # forward pass — several times Echo's overhead.
    assert chen.footprint_reduction > 1.05
    assert chen.overhead_fraction > 2 * lean.overhead_fraction
    assert chen.overhead_fraction > 0.15  # ~an extra forward pass


@pytest.mark.parametrize("fanout", [2, 4, 16])
def test_ablation_fanout_limit(benchmark, fanout):
    """The checkpoint-fanout heuristic: a tiny limit fragments regions, a
    huge one glues timesteps together; both lose to the default."""
    report = run_once(
        benchmark,
        lambda: EchoPass(
            EchoConfig(checkpoint_fanout_limit=fanout)
        ).run(_fresh_graph(TINY)),
    )
    default = EchoPass(EchoConfig()).run(_fresh_graph(TINY))
    assert report.optimized_peak_bytes <= report.baseline_peak_bytes
    # The default limit is at least as good as the extremes.
    assert default.optimized_peak_bytes <= report.optimized_peak_bytes * 1.1
