"""Extension: bucketed training vs max-length padding (methodology check).

Sockeye trains with length bucketing; the paper's measurements inherit it.
This benchmark verifies the infrastructure reproduces bucketing's two
effects — padding work avoided (higher throughput on a realistic length
mix) while the footprint is pinned by the largest bucket — and that Echo's
reduction composes with bucketing (it rewrites every bucket graph).
"""


from benchmarks.conftest import run_once
from repro.data import default_buckets
from repro.experiments import format_table, gib
from repro.gpumodel import DeviceModel
from repro.models import NmtConfig
from repro.nn import Backend
from repro.train import Adam, BucketedTrainer

CFG = NmtConfig(
    src_vocab_size=4000,
    tgt_vocab_size=4000,
    embed_size=256,
    hidden_size=256,
    encoder_layers=1,
    decoder_layers=1,
    src_len=60,
    tgt_len=60,
    batch_size=64,
    backend=Backend.CUDNN,
)

#: realistic sentence-length mix (most sentences are short)
LENGTH_MIX = {20: 0.5, 40: 0.35, 60: 0.15}


def test_bucketing_throughput_and_footprint(benchmark, save_result):
    def compute():
        device = DeviceModel()
        buckets = default_buckets(60, step=20)
        trainer = BucketedTrainer(CFG, buckets, Adam(1e-3), echo=False,
                                  device=device)
        echo_trainer = BucketedTrainer(CFG, buckets, Adam(1e-3), echo=True,
                                       device=device)

        # Padded baseline: every sentence pays for T=60.
        padded_iteration = trainer.trainer_for(
            buckets[-1]
        ).iteration_seconds
        # Bucketed: weighted by the length mix.
        bucketed_iteration = sum(
            frac * trainer.trainer_for(
                next(b for b in buckets if b.src_len == length)
            ).iteration_seconds
            for length, frac in LENGTH_MIX.items()
        )
        return (
            trainer, echo_trainer, padded_iteration, bucketed_iteration,
            buckets,
        )

    trainer, echo_trainer, padded_s, bucketed_s, buckets = run_once(
        benchmark, compute
    )
    speedup = padded_s / bucketed_s
    rows = [
        ("pad everything to T=60", round(CFG.batch_size / padded_s, 1),
         round(gib(trainer.peak_bytes), 3)),
        ("bucketed (20/40/60 mix)", round(CFG.batch_size / bucketed_s, 1),
         round(gib(trainer.peak_bytes), 3)),
        ("bucketed + Echo", round(CFG.batch_size / bucketed_s, 1),
         round(gib(echo_trainer.peak_bytes), 3)),
    ]
    save_result(
        "ext_bucketing",
        format_table(
            ["configuration", "samples/s", "model GiB"],
            rows,
            "Extension: bucketing vs max-length padding "
            f"(bucketing speedup {speedup:.2f}x)",
        ),
    )

    # Bucketing buys real throughput on a realistic length mix.
    assert speedup > 1.3
    # Footprint is pinned by the largest bucket...
    per_bucket = [trainer.trainer_for(b).peak_bytes for b in buckets]
    assert trainer.peak_bytes == max(per_bucket)
    # ...and Echo composes with bucketing.
    assert echo_trainer.peak_bytes < 0.8 * trainer.peak_bytes
    for bucket, report in echo_trainer.echo_reports.items():
        if bucket.src_len >= 40:
            assert report.footprint_reduction > 1.3, bucket
