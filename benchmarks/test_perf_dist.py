"""Distributed data-parallel smoke benchmark: scaling + wire traffic.

Trains the word-level LM on a fixed global batch under 1, 2, and 4
thread-backend ranks and reports, per world size:

* wall-clock per step and strong-scaling efficiency vs the 1-rank run
  (``t1 / (N * tN)``; thread ranks share one interpreter, so this
  measures overhead, not true parallel speedup — the number that must
  not collapse is the *communication* share, reported separately);
* bytes moved per step per rank (the ring all-reduce's ~2.S plus the
  per-step loss reduction), straight from the ``DistStats`` counters;
* the overlap ratio — buckets reduced while backward was still running.

Correctness riding along: every world size must reproduce its
single-process :func:`data_parallel_reference` loss trajectory bitwise
(the acceptance property of the subsystem, here exercised at benchmark
scale), and all ranks must agree with each other.

Results print as a table, persist to ``benchmarks/results/dist.txt``
and, machine-readable for cross-PR tracking, ``BENCH_dist.json`` at the
repo root.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import time

import numpy as np

from repro.data import lm_batches, markov_corpus
from repro.dist import (
    DistributedTrainer,
    data_parallel_reference,
    run_distributed,
)
from repro.experiments import format_table
from repro.models import WordLmConfig, build_word_lm
from repro.train import SGD

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

VOCAB, HIDDEN, T = 60, 32, 8
GLOBAL_BATCH = 8
WARMUP_STEPS = 1
TIMED_STEPS = 4
WORLDS = (1, 2, 4)

CORPUS = markov_corpus(VOCAB, 6000, seed=7)


def _cfg(shard_batch: int) -> WordLmConfig:
    return WordLmConfig(
        vocab_size=VOCAB, embed_size=HIDDEN, hidden_size=HIDDEN,
        num_layers=1, seq_len=T, batch_size=shard_batch,
    )


def _batches(steps: int):
    return list(itertools.islice(lm_batches(CORPUS, GLOBAL_BATCH, T), steps))


def _bench_rank(group, cfg, warmup, timed):
    model = build_word_lm(cfg)
    params = model.store.initialize(seed=100 + group.rank)
    # threads=2 compiles a wavefront plan (a serial plan is one program
    # item, so no bucket could ever overlap with backward).
    with DistributedTrainer(
        group, model.graph, params, SGD(0.2), bucket_bytes=1 << 14,
        threads=2,
    ) as trainer:
        for feeds in warmup:
            trainer.step(feeds)
        base = group.stats.snapshot()
        start = time.perf_counter()
        records = [trainer.step(feeds) for feeds in timed]
        elapsed = time.perf_counter() - start
    snap = group.stats.snapshot()
    return {
        "losses": [r.loss for r in records],
        "elapsed_s": elapsed,
        "bytes": snap["bytes_sent"] - base["bytes_sent"],
        "overlap": snap["overlap_reduced_buckets"],
        "tail": snap["tail_reduced_buckets"],
    }


def test_dist_scaling_smoke(save_result):
    warmup, timed = _batches(WARMUP_STEPS), _batches(
        WARMUP_STEPS + TIMED_STEPS
    )[WARMUP_STEPS:]

    measured = {}
    for world in WORLDS:
        cfg = _cfg(GLOBAL_BATCH // world)
        results = run_distributed(
            _bench_rank, world, backend="thread", args=(cfg, warmup, timed),
        )
        # Cross-rank agreement, bitwise.
        for rank in range(1, world):
            assert results[rank]["losses"] == results[0]["losses"], (
                f"world={world}: rank {rank} diverged from rank 0"
            )
        # Bitwise match with the single-process reference fold.
        model = build_word_lm(cfg)
        ref_params = model.store.initialize(seed=100)
        ref = data_parallel_reference(
            model.graph, ref_params, SGD(0.2), warmup + timed, world,
        )
        assert results[0]["losses"] == [
            r["loss"] for r in ref[WARMUP_STEPS:]
        ], f"world={world}: diverged from data_parallel_reference"
        measured[world] = results

    t1 = measured[1][0]["elapsed_s"] / TIMED_STEPS
    rows, record = [], {}
    for world in WORLDS:
        results = measured[world]
        step_s = max(r["elapsed_s"] for r in results) / TIMED_STEPS
        efficiency = t1 / (world * step_s)
        bytes_step = sum(r["bytes"] for r in results) / world / TIMED_STEPS
        reduced = sum(r["overlap"] + r["tail"] for r in results)
        overlap = (
            sum(r["overlap"] for r in results) / reduced if reduced else 0.0
        )
        if world > 1:
            assert bytes_step > 0, "no collective traffic measured"
        rows.append((
            str(world), f"{1e3 * step_s:.1f}", f"{efficiency:.2f}",
            f"{bytes_step / 1024:.1f}", f"{100 * overlap:.0f}%",
        ))
        record[f"world_{world}"] = {
            "step_seconds": step_s,
            "scaling_efficiency": efficiency,
            "bytes_per_step_per_rank": bytes_step,
            "overlap_reduced_fraction": overlap,
            "bitwise_match_reference": True,
        }

    text = format_table(
        ["ranks", "ms/step", "efficiency", "KiB/step/rank", "overlapped"],
        rows,
        f"data-parallel scaling, global batch {GLOBAL_BATCH} "
        f"(thread backend, {TIMED_STEPS} timed steps)",
    )
    save_result("dist", text)
    record["global_batch"] = GLOBAL_BATCH
    record["timed_steps"] = TIMED_STEPS
    record["backend"] = "thread"
    (REPO_ROOT / "BENCH_dist.json").write_text(
        json.dumps({"dist_scaling": record}, indent=2) + "\n"
    )
    assert np.isfinite(measured[1][0]["losses"]).all()
