"""Extension: Echo on the DeepSpeech2-style ASR workload.

The Echo paper's evaluation includes an LSTM-based speech model alongside
NMT. Its stash profile differs instructively: there is no O(B x T^2 x H)
attention blow-up, only the bidirectional LSTM stack's per-frame states,
so the reduction is smaller than NMT's — but still well above 1x, at the
same bounded overhead, with the conv front-end correctly left alone.
"""

from benchmarks.conftest import run_once
from repro.echo import optimize
from repro.experiments import format_table, gib, measure_training
from repro.gpumodel import DeviceModel
from repro.models import DeepSpeechConfig, build_deepspeech
from repro.nn import Backend

CFG = DeepSpeechConfig(
    vocab_size=29,
    feat_dim=40,
    num_frames=100,
    conv_channels=32,
    hidden_size=256,
    num_layers=3,
    max_label_len=20,
    batch_size=32,
    backend=Backend.CUDNN,
)


def test_echo_on_deepspeech(benchmark, save_result):
    def compute():
        base_model = build_deepspeech(CFG)
        base = measure_training(
            base_model.graph, CFG.batch_size, "DS2 baseline",
            device=DeviceModel(),
            num_params=base_model.store.num_parameters(),
        )
        echo_model = build_deepspeech(CFG)
        report = optimize(echo_model.graph, device=DeviceModel())
        echo = measure_training(
            echo_model.graph, CFG.batch_size, "DS2 + Echo",
            device=DeviceModel(),
            num_params=echo_model.store.num_parameters(),
        )
        return base, echo, report

    base, echo, report = run_once(benchmark, compute)
    rows = [
        (m.label, round(gib(m.total_bytes), 3), round(m.throughput, 1))
        for m in (base, echo)
    ]
    save_result(
        "ext_deepspeech",
        format_table(
            ["configuration", "GiB", "utterances/s"], rows,
            "Extension: Echo on DeepSpeech2-style ASR "
            f"(reduction {base.total_bytes / echo.total_bytes:.2f}x, "
            f"overhead {100 * report.overhead_fraction:.1f}%)",
        ),
    )

    # A real model-memory reduction, smaller than NMT's attention-driven
    # one. (nvidia-smi totals are dominated by the constant CUDA context
    # at this model size, so the assertion is on the planner's peaks.)
    assert 1.15 < report.footprint_reduction < 3.0
    # Bounded overhead, throughput preserved.
    assert report.overhead_fraction <= 0.12 + 1e-9
    # ASR has no attention blow-up: the saving comes from replaying the
    # h/c chains, whose mirrors launch as separate kernels in this cost
    # model (the authors' fused backward does it for free), so a ~10%
    # throughput cost buys the reduction here. EXPERIMENTS.md discusses.
    assert echo.throughput >= 0.85 * base.throughput
    # The conv front-end is not recomputed.
    from repro.graph import Stage
    from repro.runtime import schedule

    echo_model = build_deepspeech(CFG)
    optimize(echo_model.graph, device=DeviceModel())
    assert all(
        not n.op.name.startswith("conv2d")
        for n in schedule(echo_model.graph.outputs)
        if n.stage is Stage.RECOMPUTE
    )
