"""E-echo: the automatic pass vs hand-annotated recomputation.

The Echo paper's central claim over its precursor: what EcoRNN achieved by
hand-modifying the attention operator ("stash the inputs, replay the
forward"), the compiler pass finds *automatically* from the graph — and a
bit more, because it also discovers the cheap LSTM state chains no one
bothered to annotate.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.echo import apply_manual_recompute, optimize
from repro.experiments import ZHU_T50, format_table, gib
from repro.models import build_nmt
from repro.nn import Backend
from repro.runtime import schedule
from repro.runtime.memory import plan_memory


def _attention_stash_bytes(graph) -> int:
    order = schedule(graph.outputs)
    plan = plan_memory(order, graph.outputs)
    return plan.scope_breakdown().get("attention", 0)


def test_manual_vs_automatic_parity(benchmark, save_result):
    cfg = ZHU_T50.with_backend(Backend.CUDNN)

    def compute():
        manual_model = build_nmt(replace(cfg, manual_recompute_attention=True))
        manual = apply_manual_recompute(manual_model.graph)
        manual_att = _attention_stash_bytes(manual_model.graph)

        auto_model = build_nmt(cfg)
        auto = optimize(auto_model.graph)
        auto_att = _attention_stash_bytes(auto_model.graph)
        return manual, manual_att, auto, auto_att

    manual, manual_att, auto, auto_att = run_once(benchmark, compute)

    rows = [
        ("manual annotation (EcoRNN)", round(gib(manual.optimized_peak_bytes), 3),
         round(manual.footprint_reduction, 2),
         round(manual_att / 2**20, 1),
         round(100 * manual.overhead_fraction, 2)),
        ("automatic pass (Echo)", round(gib(auto.optimized_peak_bytes), 3),
         round(auto.footprint_reduction, 2),
         round(auto_att / 2**20, 1),
         round(100 * auto.overhead_fraction, 2)),
    ]
    save_result(
        "echo_manual_parity",
        format_table(
            ["approach", "peak GiB", "reduction", "attention MiB at peak",
             "overhead %"],
            rows,
            "E-echo: hand-annotated vs automatic recomputation (NMT T=50)",
        ),
    )

    # The automatic pass matches the hand annotation on the attention...
    assert auto_att <= manual_att * 1.25
    # ...and does at least as well overall (it finds extra regions).
    assert auto.optimized_peak_bytes <= manual.optimized_peak_bytes * 1.02
    # Both reduce the footprint substantially.
    assert manual.footprint_reduction > 1.5
    assert auto.footprint_reduction > 1.5
