"""Figure 13: the headline result — Echo halves (or better) the NMT
footprint at equal batch size without losing throughput, and converts the
savings into throughput by doubling the batch size.
"""

from benchmarks.conftest import run_once
from repro.experiments import (
    DEFAULT,
    ECHO,
    ZHU,
    format_table,
    gib,
    measure_nmt,
)


def test_fig13_memory_and_throughput(benchmark, save_result):
    def compute():
        base = measure_nmt(ZHU, DEFAULT)
        echo_same_b = measure_nmt(ZHU, ECHO)
        echo_2b = measure_nmt(ZHU.with_batch_size(ZHU.batch_size * 2), ECHO)
        return base, echo_same_b, echo_2b

    base, echo_same_b, echo_2b = run_once(benchmark, compute)

    rows = [
        (m.label, round(gib(m.total_bytes), 2), round(m.throughput, 1),
         "yes" if m.fits_in_memory else "OOM")
        for m in (base, echo_same_b, echo_2b)
    ]
    save_result(
        "fig13_memory_throughput",
        format_table(
            ["configuration", "GiB", "samples/s", "fits"],
            rows,
            "Figure 13: GPU memory and throughput, Default vs Echo",
        )
        + "\nfootprint reduction at equal B: "
        f"{base.total_bytes / echo_same_b.total_bytes:.2f}x"
        + "\nthroughput at equal B: "
        f"{echo_same_b.throughput / base.throughput:.3f}x"
        + "\nthroughput with doubled B: "
        f"{echo_2b.throughput / base.throughput:.2f}x",
    )

    # Memory at least halves at equal batch (paper: ~2x; Echo's own
    # automatic pass reaches up to ~3.1x).
    assert base.total_bytes / echo_same_b.total_bytes > 2.0
    # No throughput loss at equal batch (paper: +4%).
    assert echo_same_b.throughput >= 0.97 * base.throughput
    # The doubled batch fits only with Echo, and throughput improves
    # (paper: 1.3x).
    assert not measure_nmt(
        ZHU.with_batch_size(ZHU.batch_size * 2), DEFAULT
    ).fits_in_memory
    assert echo_2b.fits_in_memory
    assert echo_2b.throughput / base.throughput > 1.15
