"""Serving throughput/latency benchmark: the end-to-end subsystem demo.

Drives 240 mixed-length translate/score requests from concurrent client
threads through the micro-batching server and checks the three claims the
subsystem makes:

(a) **determinism** — every served output bitwise-matches sequential
    single-request decode through the same compiled plans (micro-batching
    coalesces work; it never changes an answer);
(b) **coalescing** — mean batch occupancy > 1: the dynamic batcher really
    does merge concurrent requests into shared plan executions;
(c) **bounded first-request latency** — after ``warmup()`` the serving
    phase compiles nothing: plan-cache hit rate is 100%, so p99 latency
    excludes compilation by construction.

Also measured: requests/s against the occupancy-1 sequential baseline
(each request padded into its own batch — what serving without a batcher
would do). Since a compiled batch costs the same at occupancy 1 as at
occupancy k, batched throughput tracks mean occupancy.

Results print as a table, persist to ``benchmarks/results/serve.txt``
and, machine-readable for cross-PR tracking, ``BENCH_serve.json`` at the
repo root.
"""

import json
import pathlib
import threading
import time

import numpy as np

from repro.data import BucketSpec, TranslationTask
from repro.experiments import format_table
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend
from repro.serve import (
    BatchPolicy,
    InferenceServer,
    InferenceSession,
    Request,
    RequestKind,
)
from repro.train import Adam, Trainer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N_REQUESTS = 240
N_CLIENTS = 8
MAX_BATCH = 8

CONFIG = NmtConfig(
    src_vocab_size=80, tgt_vocab_size=80, embed_size=24, hidden_size=24,
    encoder_layers=1, decoder_layers=1, src_len=16, tgt_len=16,
    batch_size=8, backend=Backend.CUDNN,
)
BUCKETS = (BucketSpec(4, 6), BucketSpec(8, 10), BucketSpec(12, 14),
           BucketSpec(16, 16))


def _trained_session():
    model = build_nmt(CONFIG)
    params = model.store.initialize()
    task = TranslationTask(80, 80, 16, 16)
    trainer = Trainer(model.graph, params, Adam(5e-3))
    rng = np.random.default_rng(0)
    for _ in range(30):  # enough for non-degenerate argmax preferences
        trainer.step(task.sample_batch(CONFIG.batch_size, rng))
    return InferenceSession(
        CONFIG, model.store, params, BUCKETS, max_batch_size=MAX_BATCH,
    )


def _request_mix(n):
    rng = np.random.default_rng(42)
    requests = []
    for i in range(n):
        length = int(rng.integers(2, 17))
        tokens = [int(t) for t in rng.integers(3, 80, size=length)]
        if i % 4 == 3:  # 25% scoring traffic
            targets = [int(t) for t in rng.integers(3, 80, size=length)]
            requests.append((RequestKind.SCORE, tokens, targets))
        else:
            requests.append((RequestKind.TRANSLATE, tokens, None))
    return requests


def test_serve_throughput_and_latency(save_result):
    session = _trained_session()
    requests = _request_mix(N_REQUESTS)

    # -- sequential baseline: occupancy-1 decode through the same plans --
    warmup_report = session.warmup()
    as_requests = [
        Request(kind=kind, tokens=tokens, targets=targets,
                bucket=session.bucket_for_length(len(tokens)))
        for kind, tokens, targets in requests
    ]
    seq_start = time.perf_counter()
    expected = session.run_sequential(as_requests)
    seq_seconds = time.perf_counter() - seq_start

    # -- concurrent serving through the micro-batching server ------------
    server = InferenceServer(
        session,
        BatchPolicy(max_batch_size=MAX_BATCH, max_wait_ms=4.0,
                    max_queue_depth=N_REQUESTS),
    )
    futures = [None] * len(requests)

    def client(indices):
        for i in indices:
            kind, tokens, targets = requests[i]
            futures[i] = server.submit(
                tokens, kind=kind, targets=targets, timeout=60.0
            )

    threads = [
        threading.Thread(
            target=client, args=(range(s, len(requests), N_CLIENTS),)
        )
        for s in range(N_CLIENTS)
    ]
    serve_start = time.perf_counter()
    with server:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        served = [f.result(timeout=120.0) for f in futures]
    serve_seconds = time.perf_counter() - serve_start

    snap = server.snapshot()
    occupancy = snap["mean_batch_occupancy"]
    throughput = len(requests) / serve_seconds
    seq_throughput = len(requests) / seq_seconds
    speedup = seq_seconds / serve_seconds

    # -- the three subsystem claims --------------------------------------
    mismatches = sum(1 for a, b in zip(served, expected) if a != b)
    assert mismatches == 0, (
        f"{mismatches}/{len(requests)} served results diverge from "
        "sequential decode"
    )
    assert occupancy > 1.0, (
        f"micro-batching did not coalesce (occupancy {occupancy:.2f})"
    )
    assert snap["plan_cache_misses_post_warmup"] == 0, (
        "serving compiled plans after warmup — p99 includes compilation"
    )
    assert snap["plan_cache_hit_rate"] == 1.0
    assert snap["shed"] == 0 and snap["failed"] == 0
    assert snap["completed"] == len(requests)
    if occupancy >= 2.0:
        # Batch cost is occupancy-independent, so coalescing k requests
        # per plan execution must beat occupancy-1 serving clearly.
        assert speedup > 1.2, (
            f"occupancy {occupancy:.1f} but speedup only {speedup:.2f}x"
        )

    rows = [
        ("requests (translate/score mix)", str(len(requests))),
        ("client threads", str(N_CLIENTS)),
        ("buckets", str(len(BUCKETS))),
        ("max batch / max wait", f"{MAX_BATCH} / 4.0 ms"),
        ("warmup plans compiled", str(warmup_report["plans_compiled"])),
        ("mean batch occupancy", f"{occupancy:.2f}"),
        ("batches dispatched", str(snap["batches"])),
        ("throughput (req/s)", f"{throughput:.1f}"),
        ("sequential baseline (req/s)", f"{seq_throughput:.1f}"),
        ("speedup vs occupancy-1", f"{speedup:.2f}x"),
        ("latency p50 / p95 / p99 (ms)",
         f"{snap['latency_ms_p50']:.1f} / {snap['latency_ms_p95']:.1f} / "
         f"{snap['latency_ms_p99']:.1f}"),
        ("queue depth peak", str(snap["queue_depth_peak"])),
        ("plan-cache hit rate post-warmup",
         f"{100 * snap['plan_cache_hit_rate']:.0f}%"),
        ("bitwise match vs sequential", "yes"),
    ]
    text = format_table(
        ["metric", "value"], rows,
        "serving throughput (dynamic bucketed micro-batching)",
    )
    save_result("serve_throughput", text)

    record = {
        "n_requests": len(requests),
        "n_clients": N_CLIENTS,
        "max_batch_size": MAX_BATCH,
        "max_wait_ms": 4.0,
        "mean_batch_occupancy": occupancy,
        "batches": snap["batches"],
        "throughput_rps": throughput,
        "sequential_rps": seq_throughput,
        "speedup_vs_sequential": speedup,
        "latency_ms_p50": snap["latency_ms_p50"],
        "latency_ms_p95": snap["latency_ms_p95"],
        "latency_ms_p99": snap["latency_ms_p99"],
        "queue_depth_peak": snap["queue_depth_peak"],
        "shed": snap["shed"],
        "plan_cache_hit_rate_post_warmup": snap["plan_cache_hit_rate"],
        "plan_cache_misses_post_warmup":
            snap["plan_cache_misses_post_warmup"],
        "bitwise_match_sequential": mismatches == 0,
    }
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps({"serve_throughput": record}, indent=2) + "\n"
    )


def test_serve_smoke_tiny(save_result):
    """CI smoke: the smallest end-to-end pass (seconds, not minutes)."""
    cfg = NmtConfig(
        src_vocab_size=30, tgt_vocab_size=30, embed_size=8, hidden_size=8,
        encoder_layers=1, decoder_layers=1, src_len=6, tgt_len=6,
        batch_size=2, backend=Backend.CUDNN,
    )
    model = build_nmt(cfg)
    params = model.store.initialize()
    session = InferenceSession(
        cfg, model.store, params, (BucketSpec(6, 6),), max_batch_size=2,
    )
    with InferenceServer(
        session, BatchPolicy(max_batch_size=2, max_wait_ms=10.0)
    ) as server:
        futures = [server.submit([3, 4, 5], timeout=10.0) for _ in range(6)]
        results = [f.result(timeout=60.0) for f in futures]
    assert len(set(map(tuple, results))) == 1  # identical inputs, one answer
    snap = server.snapshot()
    assert snap["completed"] == 6
    assert snap["plan_cache_misses_post_warmup"] == 0
    save_result(
        "serve_smoke",
        format_table(
            ["metric", "value"],
            [("completed", "6"),
             ("occupancy", f"{snap['mean_batch_occupancy']:.2f}")],
            "serving smoke",
        ),
    )
