"""Figure 7: why the framework's own LSTM loses ~2x to cuDNN.

(a) On a 1-layer LSTM (B=64, H=512) the Default backend spends comparable
time in cudaLaunch calls and GPU kernels — the unfused "f" block becomes a
dozen kernels per timestep. The fused backend's time is dominated by
kernels instead.
(b) cuDNN's own kernel time is dominated by sgemm (the fully-connected
gates), which is what makes data layout optimization worthwhile.
"""

from benchmarks.conftest import run_once
from repro.backends import Backend, pure_lstm_graph
from repro.experiments import format_table
from repro.gpumodel import DeviceModel
from repro.profiler import profile_runtime
from repro.runtime import TrainingExecutor

B, H, L, T = 64, 512, 1, 50


def _profile(backend):
    graph, _ = pure_lstm_graph(B, H, L, T, backend)
    executor = TrainingExecutor(graph, device=DeviceModel())
    return profile_runtime(executor.simulate_cost().timings)


def test_fig7a_launch_overhead_comparison(benchmark, save_result):
    def compute():
        return _profile(Backend.DEFAULT), _profile(Backend.CUDNN)

    default, cudnn = run_once(benchmark, compute)
    rows = [
        ("Default", round(default.kernel_seconds * 1e3, 2),
         round(default.api_seconds * 1e3, 2), default.launches),
        ("CuDNN", round(cudnn.kernel_seconds * 1e3, 2),
         round(cudnn.api_seconds * 1e3, 2), cudnn.launches),
    ]
    save_result(
        "fig07a_default_vs_cudnn",
        format_table(
            ["backend", "GPU kernels (ms)", "CUDA APIs (ms)", "launches"],
            rows,
            "Figure 7a: 1-layer LSTM (B=64, H=512) runtime profile",
        ),
    )
    # Default: launch time comparable to kernel time (within 2.5x).
    ratio = default.api_seconds / default.kernel_seconds
    assert 0.4 < ratio < 2.5
    # The fused backend launches far fewer kernels.
    assert cudnn.launches < default.launches / 2.5
    # And is faster end to end (paper: up to 2x).
    assert default.iteration_seconds / cudnn.iteration_seconds > 1.4


def test_fig7b_cudnn_kernel_breakdown(benchmark, save_result):
    cudnn = run_once(benchmark, lambda: _profile(Backend.CUDNN))
    rows = [
        (fam, round(sec * 1e3, 2), round(100 * cudnn.kernel_fraction(fam), 1))
        for fam, sec in sorted(cudnn.by_kernel.items(), key=lambda kv: -kv[1])
    ]
    save_result(
        "fig07b_cudnn_kernels",
        format_table(["kernel", "ms", "%"], rows,
                     "Figure 7b: CuDNN-backend GPU kernel breakdown"),
    )
    # sgemm dominates cuDNN's kernel time (paper speculation, confirmed).
    assert cudnn.kernel_fraction("sgemm (fully-connected)") > 0.5
