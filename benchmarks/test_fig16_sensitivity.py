"""Figure 16: footprint-reduction sensitivity to model hyperparameters.

Sweeping (a) the number of LSTM layers and (b) the hidden dimension at the
primary setting (T=50 variant to keep the sweep tractable): Echo's
reduction persists across every point, and configurations that blow past
the 12 GiB card under Default fit under Echo — "the ability to run more
layers and increase the hidden dimension if needed".
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro.experiments import (
    DEFAULT,
    ECHO,
    ZHU,
    ZHU_T50,
    format_table,
    gib,
    measure_nmt,
)

LAYER_SWEEP = (1, 2, 3, 4)
HIDDEN_SWEEP = (256, 512, 768, 1024)


def test_fig16a_layers(benchmark, save_result):
    def compute():
        points = {}
        for layers in LAYER_SWEEP:
            cfg = replace(
                ZHU_T50, encoder_layers=layers, decoder_layers=layers
            )
            base = measure_nmt(cfg, DEFAULT)
            echo = measure_nmt(cfg, ECHO)
            points[layers] = (base.total_bytes, echo.total_bytes)
        return points

    points = run_once(benchmark, compute)
    rows = [
        (layers, round(gib(b), 2), round(gib(e), 2), round(b / e, 2))
        for layers, (b, e) in points.items()
    ]
    save_result(
        "fig16a_layers",
        format_table(
            ["layers", "Default GiB", "Echo GiB", "reduction"],
            rows,
            "Figure 16a: memory vs number of LSTM layers (B=128, T=50)",
        ),
    )
    for layers, (b, e) in points.items():
        assert b / e > 1.5, f"reduction collapsed at {layers} layers"
    # Memory grows with depth under both implementations.
    bases = [points[l][0] for l in LAYER_SWEEP]
    assert bases == sorted(bases)


def test_fig16b_hidden_dim(benchmark, save_result):
    # The hidden sweep runs at the full primary setting (T=100): that is
    # where the paper's dashed "no longer fits" region appears.
    def compute():
        points = {}
        for hidden in HIDDEN_SWEEP:
            cfg = replace(ZHU, hidden_size=hidden, embed_size=hidden)
            base = measure_nmt(cfg, DEFAULT)
            echo = measure_nmt(cfg, ECHO)
            points[hidden] = (base.total_bytes, echo.total_bytes)
        return points

    points = run_once(benchmark, compute)
    capacity = 12 * 2**30
    rows = [
        (h, round(gib(b), 2), round(gib(e), 2), round(b / e, 2),
         "-" if b <= capacity else "Default OOM")
        for h, (b, e) in points.items()
    ]
    save_result(
        "fig16b_hidden",
        format_table(
            ["hidden", "Default GiB", "Echo GiB", "reduction", "note"],
            rows,
            "Figure 16b: memory vs hidden dimension (B=128, T=100)",
        ),
    )
    for hidden, (b, e) in points.items():
        assert b / e > 1.5, f"reduction collapsed at H={hidden}"
    # At the top of the sweep, Echo fits where Default does not (the
    # paper's dashed out-of-memory region).
    b_top, e_top = points[HIDDEN_SWEEP[-1]]
    assert b_top > capacity
    assert e_top < capacity


@pytest.mark.parametrize("hidden", HIDDEN_SWEEP)
def test_fig16_reduction_each_hidden(benchmark, hidden):
    """Per-point variant so each hidden size appears in the bench table."""
    cfg = replace(ZHU, hidden_size=hidden, embed_size=hidden)

    def compute():
        return (
            measure_nmt(cfg, DEFAULT).total_bytes,
            measure_nmt(cfg, ECHO).total_bytes,
        )

    base, echo = run_once(benchmark, compute)
    assert base / echo > 1.5
