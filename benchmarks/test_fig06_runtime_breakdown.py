"""Figure 6: NMT runtime breakdown by GPU kernel and by CUDA API.

The paper's findings, all asserted here on the raw Default baseline:
* the sequential SequenceReverse implementation dominates GPU-kernel time
  (an engineering pathology — ~1 GB/s effective bandwidth);
* after parallelizing it (par_rev), fully-connected/sgemm kernels are the
  real runtime bottleneck;
* softmax is NOT the bottleneck (refuting Britz et al.: <1% of runtime);
* CUDA API (cudaLaunch) time is substantial because of hundreds of tiny
  kernels.
"""

from benchmarks.conftest import run_once
from repro.experiments import DEFAULT, DEFAULT_RAW, ZHU, format_table, measure_nmt


def test_fig6_runtime_breakdown(benchmark, save_result):
    def compute():
        return measure_nmt(ZHU, DEFAULT_RAW), measure_nmt(ZHU, DEFAULT)

    raw, par_rev = run_once(benchmark, compute)

    def rows(measurement):
        rt = measurement.runtime
        return [
            (fam, round(sec * 1e3, 2), round(100 * rt.kernel_fraction(fam), 1))
            for fam, sec in sorted(rt.by_kernel.items(), key=lambda kv: -kv[1])
        ]

    text = (
        format_table(
            ["GPU kernel", "ms", "% of kernel time"], rows(raw),
            "Figure 6: Default (sequential SequenceReverse)",
        )
        + "\n\n"
        + format_table(
            ["GPU kernel", "ms", "% of kernel time"], rows(par_rev),
            "Figure 6: Default^par_rev (after the Section 5.1 fix)",
        )
        + "\n\n"
        + format_table(
            ["CUDA API", "ms"],
            [(k, round(v * 1e3, 1))
             for k, v in par_rev.runtime.api_by_kind.items()],
            "Figure 6 (right): CUDA API time",
        )
    )
    save_result("fig06_runtime_breakdown", text)

    # SequenceReverse dominates before the fix (largest kernel family)...
    top_raw = max(raw.runtime.by_kernel, key=raw.runtime.by_kernel.get)
    assert top_raw == "SequenceReverse"
    assert raw.runtime.kernel_fraction("SequenceReverse") > 0.4
    # ...and becomes negligible after it.
    assert par_rev.runtime.kernel_fraction("SequenceReverse") < 0.02
    # Fully-connected (sgemm) kernels are then the real bottleneck: all
    # GEMM families together dominate, and no single other family beats
    # the fully-connected share.
    sgemm_total = (
        par_rev.runtime.kernel_fraction("sgemm (fully-connected)")
        + par_rev.runtime.kernel_fraction("sgemm (batched)")
    )
    assert sgemm_total > 0.45
    non_gemm = {
        fam: sec for fam, sec in par_rev.runtime.by_kernel.items()
        if not fam.startswith("sgemm")
    }
    assert all(
        sec / par_rev.runtime.kernel_seconds < sgemm_total
        for sec in non_gemm.values()
    )
    # Softmax is NOT the bottleneck (paper: 0.3% of total runtime).
    assert par_rev.runtime.kernel_fraction("softmax") < 0.10
    # Launch overhead is a significant fraction of the iteration.
    assert par_rev.runtime.api_seconds > 0.2 * par_rev.runtime.kernel_seconds
