"""Figure 5: NMT memory-consumption breakdown (baseline, before Echo).

Left bar: by layer type — the attention layers dominate (~60% in the
paper). Right bar: by data structure — feature maps dominate (~91% of
tracked model memory), weights are a small slice, workspace ~0. The
striped "untrackable" gap models the profiler-vs-nvidia-smi discrepancy.
"""

from benchmarks.conftest import run_once
from repro.experiments import DEFAULT, ZHU, format_table, measure_nmt


def test_fig5_breakdown(benchmark, save_result):
    m = run_once(benchmark, lambda: measure_nmt(ZHU, DEFAULT))
    report = m.memory

    ds_rows = [
        (name, round(nbytes / 2**20, 1),
         round(100 * nbytes / report.total_bytes, 1))
        for name, nbytes in report.by_data_structure().items()
    ]
    layer_rows = [
        (layer, round(nbytes / 2**20, 1),
         round(100 * nbytes / report.total_bytes, 1))
        for layer, nbytes in sorted(report.by_layer.items(),
                                    key=lambda kv: -kv[1])
    ]
    save_result(
        "fig05_memory_breakdown",
        format_table(["data structure", "MiB", "% of total"], ds_rows,
                     "Figure 5 (right): NMT memory by data structure")
        + "\n\n"
        + format_table(["layer type", "MiB", "% of total"], layer_rows,
                       "Figure 5 (left): NMT memory by layer type"),
    )

    # Attention layers are the memory bottleneck (paper: ~60%).
    attention = report.by_layer.get("attention", 0)
    assert attention / report.total_bytes > 0.45
    # Feature maps dominate the tracked model memory (paper: 91%).
    assert report.feature_maps / report.tracked_bytes > 0.70
    # Weights are a minor slice (paper: ~5% of total).
    assert report.weights / report.total_bytes < 0.20
    # Workspace is negligible before recomputation is applied.
    assert report.workspace / report.total_bytes < 0.02
