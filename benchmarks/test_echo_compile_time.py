"""Compile-time cost of the Echo pass itself.

Echo is a compiler pass that runs once before training starts (like the
autotuning microbenchmark, its cost amortizes over every subsequent
iteration). This benchmark measures the pass's wall-clock on growing NMT
graphs and asserts it stays both sub-quadratic-ish in graph size and
trivially amortized (<< one epoch).
"""

import time

from benchmarks.conftest import run_once
from repro.echo import EchoPass
from repro.experiments import format_table
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend

SEQ_LENS = (10, 20, 40)


def _pass_seconds(seq_len: int) -> tuple[int, float]:
    cfg = NmtConfig(
        src_vocab_size=1000, tgt_vocab_size=1000, embed_size=64,
        hidden_size=64, encoder_layers=1, decoder_layers=1,
        src_len=seq_len, tgt_len=seq_len, batch_size=16,
        backend=Backend.CUDNN,
    )
    model = build_nmt(cfg)
    num_nodes = len(model.graph.nodes())
    start = time.perf_counter()
    EchoPass().run(model.graph)
    return num_nodes, time.perf_counter() - start


def test_pass_compile_time_scales(benchmark, save_result):
    def compute():
        return {t: _pass_seconds(t) for t in SEQ_LENS}

    points = run_once(benchmark, compute)
    rows = [
        (t, nodes, round(seconds * 1e3, 1),
         round(seconds / nodes * 1e6, 1))
        for t, (nodes, seconds) in points.items()
    ]
    save_result(
        "echo_compile_time",
        format_table(
            ["seq len", "graph nodes", "pass ms", "us/node"],
            rows,
            "Echo pass compile time vs graph size",
        ),
    )
    nodes_small, time_small = points[SEQ_LENS[0]]
    nodes_big, time_big = points[SEQ_LENS[-1]]
    node_ratio = nodes_big / nodes_small
    time_ratio = time_big / max(time_small, 1e-9)
    # Sub-quadratic growth in graph size (mining + a few re-plans).
    assert time_ratio < node_ratio ** 2
    # And absolutely small: well under a second per compile here.
    assert time_big < 5.0
