"""REPRO_VERIFY overhead: static verification must stay a small tax.

The acceptance bar for the plan-verification guard is that arming
``REPRO_VERIFY=1`` costs < 20% additional wall-clock on a full test run.
Verification happens once per plan-cache *miss*, so its cost is bounded
by ``verify_seconds / (compile_seconds + run_seconds)`` for a workload
that compiles once and iterates — the shape of every real training or
serving session. This benchmark measures both sides on the NMT training
graph (Echo-rewritten, i.e. the largest schedule the analyzers see in
the suite) and asserts the per-plan ratio with margin: verification must
cost less than compilation itself plus a handful of training iterations,
which keeps the amortized full-suite overhead comfortably under the bar.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import verify_plan
from repro.models.nmt import NmtConfig, build_nmt
from repro.runtime import Arena, PlanCache

CONFIG = NmtConfig(
    src_vocab_size=120,
    tgt_vocab_size=120,
    embed_size=32,
    hidden_size=32,
    encoder_layers=1,
    decoder_layers=1,
    src_len=10,
    tgt_len=10,
    batch_size=8,
)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_verify_overhead_bound(save_result):
    from repro.echo.pass_ import EchoPass
    from repro.runtime import GraphExecutor

    model = build_nmt(CONFIG)
    graph = model.graph
    plan_cache = PlanCache()
    EchoPass(plan_cache=plan_cache).run(graph)
    outputs = graph.outputs
    order = plan_cache.schedule_for(outputs)

    compile_seconds = _best_of(
        lambda: PlanCache().compiled_for(outputs, Arena(), order=order)
    )

    executor = GraphExecutor(outputs, plan_cache=plan_cache, threads=1)
    sources = [*graph.placeholders.values(), *graph.params.values()]

    def verify():
        report = verify_plan(executor.plan, sources=sources)
        assert report.ok, report.format()

    verify_seconds = _best_of(verify)

    rng = np.random.default_rng(0)
    params = model.store.initialize(seed=0)
    feeds = {
        "src_tokens": rng.integers(
            0, CONFIG.src_vocab_size, (CONFIG.src_len, CONFIG.batch_size)
        ),
        "tgt_tokens": rng.integers(
            0, CONFIG.tgt_vocab_size, (CONFIG.tgt_len, CONFIG.batch_size)
        ),
        "tgt_labels": rng.integers(
            0, CONFIG.tgt_vocab_size, (CONFIG.tgt_len, CONFIG.batch_size)
        ),
    }
    iter_seconds = _best_of(lambda: executor.run(feeds, params))

    ratio_vs_compile = verify_seconds / compile_seconds
    lines = [
        "REPRO_VERIFY overhead (NMT + Echo, per plan-cache miss)",
        f"  compile plan      : {compile_seconds * 1e3:8.2f} ms",
        f"  verify plan       : {verify_seconds * 1e3:8.2f} ms "
        f"({100 * ratio_vs_compile:.1f}% of compile)",
        f"  training iteration: {iter_seconds * 1e3:8.2f} ms",
        f"  verify / iteration: {verify_seconds / iter_seconds:8.2f}x",
    ]
    save_result("verify_overhead", "\n".join(lines))

    # The guard bar: <20% full-suite overhead. Suites compile each plan
    # once and run it many times, so "verify costs at most compile + a
    # few iterations" is a strictly stronger per-plan statement (with
    # wide margin for CI timer noise).
    assert verify_seconds < compile_seconds + 5 * iter_seconds + 0.25, (
        f"verification too slow: {verify_seconds:.3f}s vs compile "
        f"{compile_seconds:.3f}s + iteration {iter_seconds:.3f}s"
    )


def test_equiv_certification_overhead(save_result):
    """The ``REPRO_VERIFY=full`` tier: certification <= 50% of compile.

    Symbolic equivalence certification hash-conses both sides of every
    rewrite once per expression, so it must stay linear in the stream —
    comfortably cheaper than the compile it certifies. Measured on the
    same Echo-rewritten NMT plan as the basic-tier bound.
    """
    from repro.analysis.equiv import check_equivalence
    from repro.echo.pass_ import EchoPass
    from repro.runtime import GraphExecutor

    model = build_nmt(CONFIG)
    graph = model.graph
    plan_cache = PlanCache()
    EchoPass(plan_cache=plan_cache).run(graph)
    outputs = graph.outputs
    order = plan_cache.schedule_for(outputs)

    compile_seconds = _best_of(
        lambda: PlanCache().compiled_for(outputs, Arena(), order=order)
    )

    executor = GraphExecutor(outputs, plan_cache=plan_cache, threads=1)

    def certify():
        assert check_equivalence(executor.plan) == []

    certify_seconds = _best_of(certify)
    ratio = certify_seconds / compile_seconds
    save_result(
        "equiv_certification_overhead",
        "\n".join(
            [
                "REPRO_VERIFY=full certification (NMT + Echo, per miss)",
                f"  compile plan : {compile_seconds * 1e3:8.2f} ms",
                f"  certify plan : {certify_seconds * 1e3:8.2f} ms "
                f"({100 * ratio:.1f}% of compile)",
            ]
        ),
    )
    # The tier's acceptance bar, with a small absolute cushion for CI
    # timer noise on sub-100ms compiles.
    assert certify_seconds < 0.5 * compile_seconds + 0.05, (
        f"certification too slow: {certify_seconds:.3f}s vs "
        f"{compile_seconds:.3f}s compile"
    )
