"""Figure 4: CNN vs RNN training-throughput scaling with batch size.

(a) ResNet-50 throughput saturates once the GPU's compute units fill;
(b) NMT throughput keeps growing with batch size until the model hits the
GPU memory-capacity wall — the observation motivating footprint reduction.
"""

from benchmarks.conftest import run_once
from repro.experiments import DEFAULT, ZHU, format_table, gib, measure_nmt
from repro.gpumodel import DeviceModel
from repro.models.resnet_manifest import resnet50_throughput

BATCHES = (4, 8, 16, 32, 64, 128, 256)


def test_fig4a_resnet50_saturates(benchmark, save_result):
    device = DeviceModel()

    def compute():
        return {b: resnet50_throughput(device, b) for b in BATCHES}

    curve = run_once(benchmark, compute)
    rows = [(b, round(thr, 1)) for b, thr in curve.items()]
    save_result(
        "fig04a_resnet50",
        format_table(["batch", "images/s"], rows,
                     "Figure 4a: ResNet-50 training throughput vs batch"),
    )
    # Strong growth at small batch, saturation at large batch.
    assert curve[32] / curve[4] > 2.0
    assert curve[256] / curve[32] < 1.35


def test_fig4b_nmt_hits_memory_wall(benchmark, save_result):
    def compute():
        points = {}
        for b in (16, 32, 64, 128, 256):
            m = measure_nmt(ZHU.with_batch_size(b), DEFAULT)
            points[b] = (m.throughput, m.total_bytes, m.fits_in_memory)
        return points

    points = run_once(benchmark, compute)
    rows = [
        (b, round(thr, 1), round(gib(mem), 2), "yes" if fits else "OOM")
        for b, (thr, mem, fits) in points.items()
    ]
    save_result(
        "fig04b_nmt",
        format_table(
            ["batch", "samples/s", "GiB", "fits 12GiB"],
            rows,
            "Figure 4b: NMT throughput & memory vs batch (Titan Xp)",
        ),
    )
    # Throughput keeps growing through B=128 (no saturation plateau)...
    assert points[128][0] / points[16][0] > 2.0
    assert points[128][0] > points[64][0] > points[32][0]
    # ...but B=128 is the last batch that fits: the memory wall.
    assert points[128][2], "B=128 must fit (paper: ~9 GB on 12 GB card)"
    assert not points[256][2], "B=256 must exceed the 12 GiB capacity"
