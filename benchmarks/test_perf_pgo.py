"""Profile-guided tuning benchmark: calibration accuracy + warm starts.

Two claims, both on the NMT training workload:

1. **Calibration beats the analytical model at ranking real op costs.**
   The analytical roofline model knows the simulated Titan Xp, not this
   host — its per-op estimates systematically mis-rank numpy kernels
   (e.g. it prices embedding gathers and softmax reductions off
   bandwidth assumptions that do not hold here). After one harvest pass,
   the calibrated model predicts per-op time *distributions* strictly
   closer to held-out measurements. The metric is scale-free: each
   model's per-node predictions are normalized to fractions of its own
   total, then scored as mean ``|log(predicted_frac / measured_frac)|``
   over calibrated-covered nodes, so neither absolute-time domain
   (model seconds vs. host seconds) gets an artificial edge.

2. **A warm tuning store removes most of the compile path.** With
   REPRO_TUNE_DIR populated, a fresh process (modeled by fresh PlanCache
   + TuneStore instances over the same directory) loads the schedule,
   the wavefront layout, and all closure bytecode from disk instead of
   recomputing them — bytecode ``compile()`` alone is ~60% of plan
   construction. The warm build must be faster, must mark its layout
   ``wavefront_from_cache``, must pass the full static verifier under
   REPRO_VERIFY=1, and must execute bitwise-identically to the cold
   plan.

Results persist to ``benchmarks/results/perf_pgo.txt`` and, machine
readable for cross-PR tracking, ``BENCH_pgo.json`` at the repo root.
"""

import json
import math
import pathlib
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import format_table
from repro.gpumodel import DeviceModel
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend
from repro.pgo import (
    CalibratedDeviceModel,
    CalibrationDB,
    TuneStore,
    shape_class,
)
from repro.profiler import measure_node_timings
from repro.runtime import PlanCache
from repro.runtime.executor import TrainingExecutor
from repro.runtime.scheduler import schedule

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Small NMT so one harvest pass stays cheap; unrolled seq2seq still has
#: hundreds of nodes across every op family the cost model prices.
NMT = NmtConfig(
    src_vocab_size=500, tgt_vocab_size=500, embed_size=32, hidden_size=32,
    encoder_layers=1, decoder_layers=1, src_len=10, tgt_len=10,
    batch_size=4, backend=Backend.CUDNN,
)

HARVEST_REPEATS = 5
HOLDOUT_REPEATS = 5
THREADS = 4


def _nmt_feeds(cfg: NmtConfig) -> dict:
    rng = np.random.default_rng(0)
    return {
        name: rng.integers(1, cfg.src_vocab_size, (cfg.src_len, cfg.batch_size))
        for name in ("src_tokens", "tgt_tokens", "tgt_labels")
    }


def _fraction_error(predictions: dict, measured: dict) -> float:
    """Mean |log(pred_frac / meas_frac)| over the common node set."""
    keys = [k for k in measured if predictions.get(k, 0.0) > 0.0
            and measured[k] > 0.0]
    pred_total = sum(predictions[k] for k in keys)
    meas_total = sum(measured[k] for k in keys)
    return sum(
        abs(math.log((predictions[k] / pred_total)
                     / (measured[k] / meas_total)))
        for k in keys
    ) / len(keys)


def _calibration_accuracy() -> dict:
    model = build_nmt(NMT)
    graph = model.graph
    params = model.store.initialize(seed=0)
    feeds = _nmt_feeds(NMT)
    order = schedule(graph.outputs)

    # Harvest pass -> calibration DB (exactly what calibrate_and_save does,
    # kept inline here so the held-out pass reuses the bound arrays).
    analytic = DeviceModel()
    db = CalibrationDB()
    for timing in measure_node_timings(order, feeds, params,
                                       repeats=HARVEST_REPEATS):
        cls = shape_class(timing.node)
        if cls is None:
            continue
        db.observe(cls, timing.seconds,
                   analytic.node_cost(timing.node).kernel_seconds)

    # Held-out measurement pass: fresh timings the DB never saw.
    holdout = measure_node_timings(order, feeds, params,
                                   repeats=HOLDOUT_REPEATS)
    calibrated = CalibratedDeviceModel(db)
    measured, analytic_pred, calibrated_pred = {}, {}, {}
    for timing in holdout:
        node = timing.node
        if shape_class(node) is None or timing.seconds <= 0.0:
            continue
        measured[node.uid] = timing.seconds
        analytic_pred[node.uid] = analytic.node_cost(node).kernel_seconds
        calibrated_pred[node.uid] = calibrated.predict_host_seconds(node)

    return {
        "nodes_scored": len(measured),
        "classes_covered": db.coverage(),
        "model_scale": db.model_scale(),
        "analytic_err": _fraction_error(analytic_pred, measured),
        "calibrated_err": _fraction_error(calibrated_pred, measured),
        "calibrated_hits": calibrated.calibrated_hits,
    }


def _warm_start(tmp_path, monkeypatch) -> dict:
    model = build_nmt(NMT)
    params = model.store.initialize(seed=0)
    feeds = _nmt_feeds(NMT)

    cold_store = TuneStore(tmp_path / "tune")
    start = time.perf_counter()
    cold_ex = TrainingExecutor(
        model.graph, plan_cache=PlanCache(store=cold_store), threads=THREADS
    )
    cold_seconds = time.perf_counter() - start
    cold_store.flush_code_cache()
    cold_loss, cold_grads, _ = cold_ex.run(feeds, params)
    cold_stats = cold_store.stats()

    # Fresh process, warm disk: rebuild the graph (new uids), fresh caches.
    model2 = build_nmt(NMT)
    params2 = model2.store.initialize(seed=0)
    warm_store = TuneStore(tmp_path / "tune")
    monkeypatch.setenv("REPRO_VERIFY", "1")
    try:
        start = time.perf_counter()
        warm_ex = TrainingExecutor(
            model2.graph, plan_cache=PlanCache(store=warm_store),
            threads=THREADS,
        )
        warm_seconds = time.perf_counter() - start
    finally:
        monkeypatch.delenv("REPRO_VERIFY")
    warm_loss, warm_grads, _ = warm_ex.run(feeds, params2)
    warm_stats = warm_store.stats()

    grads_equal = set(cold_grads) == set(warm_grads) and all(
        np.array_equal(cold_grads[k], warm_grads[k]) for k in cold_grads
    )
    return {
        "cold_build_s": cold_seconds,
        "warm_build_s": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "wavefront_from_cache": warm_ex.executor.plan.wavefront_from_cache,
        "verified_on_load": True,  # REPRO_VERIFY=1 raised otherwise
        "bitwise_identical": bool(cold_loss == warm_loss and grads_equal),
        "cold": {k: cold_stats[k] for k in
                 ("order_misses", "wavefront_misses", "bytecode_misses",
                  "saves")},
        "warm": {k: warm_stats[k] for k in
                 ("order_hits", "wavefront_hits", "bytecode_hits",
                  "bytecode_misses", "load_errors")},
    }


def test_pgo_calibration_and_warm_start(benchmark, save_result, tmp_path,
                                        monkeypatch):
    def compute():
        return _calibration_accuracy(), _warm_start(tmp_path, monkeypatch)

    accuracy, warm = run_once(benchmark, compute)

    save_result(
        "perf_pgo",
        format_table(
            ["metric", "value"],
            [
                ("nodes scored", accuracy["nodes_scored"]),
                ("shape classes covered", accuracy["classes_covered"]),
                ("analytic frac err (mean |log|)",
                 round(accuracy["analytic_err"], 3)),
                ("calibrated frac err (mean |log|)",
                 round(accuracy["calibrated_err"], 3)),
                ("error reduction",
                 f"{(1 - accuracy['calibrated_err'] / accuracy['analytic_err']) * 100:.0f}%"),
                ("cold build ms", round(warm["cold_build_s"] * 1e3, 1)),
                ("warm build ms", round(warm["warm_build_s"] * 1e3, 1)),
                ("warm speedup", f"{warm['speedup']:.2f}x"),
                ("wavefront from cache", warm["wavefront_from_cache"]),
                ("warm verified (REPRO_VERIFY=1)", warm["verified_on_load"]),
                ("bitwise identical", warm["bitwise_identical"]),
                ("warm bytecode hits", warm["warm"]["bytecode_hits"]),
            ],
            "Profile-guided tuning on NMT: calibration accuracy and "
            "warm-start compile path",
        ),
    )
    (REPO_ROOT / "BENCH_pgo.json").write_text(
        json.dumps({"calibration": accuracy, "warm_start": warm}, indent=2)
        + "\n"
    )

    # Claim 1: calibrated estimates strictly closer to measured op times.
    assert accuracy["calibrated_err"] < accuracy["analytic_err"]
    assert accuracy["calibrated_hits"] > 0
    assert accuracy["classes_covered"] > 10

    # Claim 2: warm start skips recompilation and changes nothing else.
    assert warm["speedup"] > 1.0
    assert warm["wavefront_from_cache"]
    assert warm["bitwise_identical"]
    assert warm["warm"]["order_hits"] == 1
    assert warm["warm"]["wavefront_hits"] == 1
    assert warm["warm"]["bytecode_hits"] > 0
    assert warm["warm"]["bytecode_misses"] == 0
    assert warm["warm"]["load_errors"] == 0
