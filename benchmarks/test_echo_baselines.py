"""Echo vs recomputation baselines: the footprint/overhead frontier.

The paper's related-work quantification, regenerated:
* Chen et al. sqrt(N) checkpointing recomputes GEMMs, so it pays a large
  runtime overhead (~an extra forward pass, tens of percent);
* Echo's GEMM-free selective recomputation gets the bulk of the footprint
  reduction at a small fraction of that overhead;
* RecomputeAll (no budget) bounds what GEMM-free recomputation can save.
"""

from benchmarks.conftest import run_once
from repro.echo import optimize
from repro.echo.baselines import recompute_all, sublinear_checkpoint
from repro.experiments import ZHU_T50, format_table, gib
from repro.models import build_nmt
from repro.nn import Backend


def _fresh_graph():
    return build_nmt(ZHU_T50.with_backend(Backend.CUDNN)).graph


def test_echo_vs_baselines_frontier(benchmark, save_result):
    def compute():
        echo = optimize(_fresh_graph())
        chen = sublinear_checkpoint(_fresh_graph())
        extreme = recompute_all(_fresh_graph())
        return echo, chen, extreme

    echo, chen, extreme = run_once(benchmark, compute)
    rows = [
        (name, round(gib(r.baseline_peak_bytes), 2),
         round(gib(r.optimized_peak_bytes), 2),
         round(r.footprint_reduction, 2),
         round(100 * r.overhead_fraction, 1))
        for name, r in (
            ("Echo (selective)", echo),
            ("Chen sqrt(N) checkpointing", chen),
            ("RecomputeAll (no budget)", extreme),
        )
    ]
    save_result(
        "echo_baselines_frontier",
        format_table(
            ["scheme", "base GiB", "opt GiB", "reduction", "overhead %"],
            rows,
            "Recomputation frontier on NMT (B=128, T=50, model memory)",
        ),
    )

    # Echo gets a substantial reduction at bounded overhead.
    assert echo.footprint_reduction > 2.0
    assert echo.overhead_fraction <= 0.12 + 1e-9
    # Chen pays several times Echo's overhead (paper: ~30% vs ~1%): it
    # re-executes GEMM segments.
    assert chen.overhead_fraction > 2 * echo.overhead_fraction
    assert chen.overhead_fraction > 0.15
    # The unbudgeted extreme saves at least as much as Echo but costs more.
    assert extreme.optimized_peak_bytes <= echo.optimized_peak_bytes * 1.02
    assert extreme.overhead_fraction >= echo.overhead_fraction
