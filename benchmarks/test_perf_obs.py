"""Observability overhead gate: tracing must be ~free when off, cheap when on.

The obs spine promises *zero-overhead-when-disabled*: every hot-path
instrumentation site is guarded by a module-global flag (or hands back a
shared no-op span), so a build that never enables tracing pays only a
boolean check per site. This benchmark enforces the two budgets from the
design:

* **disabled**: instrumentation cost <= 1% of the per-iteration wall.
  Measured structurally, not as a wall-clock A/B (a 1% delta is far
  below timer noise on a shared CI host): count the spans one traced
  iteration emits, measure the cost of the disabled fast path
  (``span()`` returning the no-op + the ``TRACING`` flag check) in a
  tight loop, and bound spans/iter x per-site cost against the measured
  iteration wall.
* **enabled**: traced iteration wall <= 1.10x untraced (min-of-repeats
  on warm plans, so plan compilation never pollutes either side).

Results persist to ``benchmarks/results/perf_obs.txt`` and machine
readable to ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import time

import pytest

from benchmarks.conftest import run_once
from repro.data import lm_batches, markov_corpus
from repro.echo import EchoPass
from repro.experiments import format_table
from repro.models import WordLmConfig, build_word_lm
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime import PlanCache
from repro.train import SGD, Trainer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Small-tensor LM so per-step host work (the regime where per-site
#: instrumentation cost would show) dominates over numpy kernels.
CONFIG = WordLmConfig(
    vocab_size=120, embed_size=24, hidden_size=24, num_layers=1,
    seq_len=10, batch_size=8, dropout=0.0,
)
STEPS = 6
REPEATS = 5

DISABLED_BUDGET = 0.01  # <= 1% of iteration wall, structural bound
ENABLED_BUDGET = 1.10   # traced wall <= 1.10x untraced


def _build_trainer():
    model = build_word_lm(CONFIG)
    cache = PlanCache()
    EchoPass(plan_cache=cache).run(model.graph)
    params = model.store.initialize(seed=0)
    trainer = Trainer(model.graph, params, SGD(0.1), plan_cache=cache)
    corpus = markov_corpus(CONFIG.vocab_size, 1200, seed=7)
    batches = list(itertools.islice(
        lm_batches(corpus, CONFIG.batch_size, CONFIG.seq_len), STEPS
    ))
    return trainer, batches


def _min_step_seconds(trainer, batches) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for feeds in batches:
            trainer.step(feeds)
        best = min(best, (time.perf_counter() - start) / len(batches))
    return best


def _noop_site_seconds(calls: int = 200_000) -> float:
    """Per-call cost of a disabled instrumentation site.

    A site in the hot path is either ``if obs_trace.TRACING`` (flag
    check) or a ``with obs_trace.span(...)`` on the shared no-op; the
    span form is the more expensive of the two, so it bounds both.
    """
    assert not obs_trace.TRACING
    span = obs_trace.span
    start = time.perf_counter()
    for _ in range(calls):
        with span("bench.site", "bench", None):
            pass
    return (time.perf_counter() - start) / calls


def _spans_per_iteration(trainer, batches) -> int:
    tracer = obs_trace.enable(fresh=True)
    try:
        obs_metrics.enable(fresh=True)
        for feeds in batches:
            trainer.step(feeds)
        return tracer.span_count() // len(batches) + 1
    finally:
        obs_trace.disable()
        obs_metrics.disable()


@pytest.fixture
def _obs_disabled():
    """Force-disable obs for the timed run (REPRO_TRACE may be armed
    in the environment); restore the ambient state afterwards."""
    saved = (obs_trace._tracer, obs_trace.TRACING, obs_metrics._registry)
    obs_trace.disable()
    obs_metrics.disable()
    try:
        yield
    finally:
        obs_trace._tracer, obs_trace.TRACING = saved[0], saved[1]
        obs_metrics._registry = saved[2]


def test_observability_overhead(benchmark, save_result, _obs_disabled):
    assert not obs_trace.TRACING and obs_metrics.registry() is None

    def experiment():
        trainer, batches = _build_trainer()
        # Warm every plan tier before any timed pass.
        trainer.step(batches[0])

        untraced_s = _min_step_seconds(trainer, batches)
        site_s = _noop_site_seconds()
        spans = _spans_per_iteration(trainer, batches)
        disabled_overhead = spans * site_s / untraced_s

        obs_trace.enable(fresh=True)
        obs_metrics.enable(fresh=True)
        try:
            traced_s = _min_step_seconds(trainer, batches)
        finally:
            obs_trace.disable()
            obs_metrics.disable()
        enabled_ratio = traced_s / untraced_s
        return {
            "untraced_step_s": untraced_s,
            "traced_step_s": traced_s,
            "noop_site_ns": site_s * 1e9,
            "spans_per_iteration": spans,
            "disabled_overhead_fraction": disabled_overhead,
            "enabled_ratio": enabled_ratio,
        }

    result = run_once(benchmark, experiment)

    rows = [(k, f"{v:.6g}") for k, v in result.items()]
    save_result(
        "perf_obs",
        format_table(["metric", "value"], rows, "observability overhead"),
    )
    payload = dict(result)
    payload["budgets"] = {
        "disabled_overhead_fraction": DISABLED_BUDGET,
        "enabled_ratio": ENABLED_BUDGET,
    }
    (REPO_ROOT / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert result["disabled_overhead_fraction"] <= DISABLED_BUDGET, result
    assert result["enabled_ratio"] <= ENABLED_BUDGET, result
