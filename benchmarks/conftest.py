"""Benchmark harness glue.

Every benchmark regenerates one of the paper's figures or tables: it
computes the figure's data series on the simulated device, prints the rows,
persists them under ``benchmarks/results/``, and asserts the qualitative
shape the paper reports (who wins, directions, rough factors).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a figure's regenerated rows and echo them to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
