"""Figure 20: pure-LSTM runtime grid over B x H x L (T=50).

Default / CuDNN / Echo forward+backward times across the paper's
hyperparameter cross product: B in {32,64,128}, H in {256,512,1024},
L in {1..4}. The paper's claims, asserted per point:

* Echo always beats Default significantly (up to ~3x);
* Echo beats CuDNN at most points; where CuDNN wins (deep multi-layer
  configs benefiting from wavefront overlap) the gap stays within ~20%.
"""

import pytest

from benchmarks.conftest import run_once
from repro.backends import Backend, benchmark_lstm
from repro.experiments import format_table

BATCHES = (32, 64, 128)
HIDDENS = (256, 512, 1024)
LAYERS = (1, 2, 3, 4)
SEQ_LEN = 50

_grid_results: dict[tuple, dict] = {}


def _point(batch, hidden, layers):
    key = (batch, hidden, layers)
    if key not in _grid_results:
        _grid_results[key] = {
            backend: benchmark_lstm(batch, hidden, layers, SEQ_LEN, backend)
            for backend in Backend
        }
    return _grid_results[key]


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize("hidden", HIDDENS)
@pytest.mark.parametrize("layers", LAYERS)
def test_fig20_point(benchmark, batch, hidden, layers):
    results = run_once(benchmark, lambda: _point(batch, hidden, layers))
    default = results[Backend.DEFAULT].total_seconds
    cudnn = results[Backend.CUDNN].total_seconds
    echo = results[Backend.ECHO].total_seconds

    # Echo decisively beats the unfused Default everywhere.
    assert default / echo > 1.2, f"{batch}x{hidden}x{layers}"
    # Echo vs CuDNN: Echo wins or loses by at most ~20% (paper Figure 20).
    assert cudnn / echo > 0.8, (
        f"CuDNN beats Echo by more than 20% at {batch}x{hidden}x{layers}"
    )


def test_fig20_summary(benchmark, save_result):
    def compute():
        rows = []
        wins = 0
        for batch in BATCHES:
            for hidden in HIDDENS:
                for layers in LAYERS:
                    res = _point(batch, hidden, layers)
                    d = res[Backend.DEFAULT]
                    c = res[Backend.CUDNN]
                    e = res[Backend.ECHO]
                    wins += e.total_seconds <= c.total_seconds
                    rows.append(
                        (batch, hidden, layers,
                         round(d.total_seconds * 1e3, 2),
                         round(c.total_seconds * 1e3, 2),
                         round(e.total_seconds * 1e3, 2),
                         round(d.total_seconds / e.total_seconds, 2),
                         round(c.total_seconds / e.total_seconds, 2))
                    )
        return rows, wins

    rows, wins = run_once(benchmark, compute)
    save_result(
        "fig20_pure_lstm_grid",
        format_table(
            ["B", "H", "L", "Default ms", "CuDNN ms", "Echo ms",
             "Def/Echo", "CuDNN/Echo"],
            rows,
            f"Figure 20: pure LSTM fwd+bwd runtime grid (T={SEQ_LEN}); "
            f"Echo wins vs CuDNN at {wins}/{len(rows)} points",
        ),
    )
    # Echo wins at most points (paper: "in most cases better than cuDNN").
    assert wins >= len(rows) * 0.5
    # The best Default/Echo ratio reaches the paper's "up to 3x" regime.
    best = max(r[6] for r in rows)
    assert best > 2.5
