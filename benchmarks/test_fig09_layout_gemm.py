"""Figure 9: the data-layout GEMM study.

Y = X.W^T versus Y^T = W.X^T do the same arithmetic but differ ~2x in
runtime at LSTM shapes (W [2048 x 512], X [64 x 512]) and ~1.3x at GRU
shapes (W [3072 x 1024], X [64 x 1024]); the faster form also shows the
higher cache utilization. The gap shrinks as the batch dimension grows.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import format_table
from repro.gpumodel import DeviceModel


def _compare(device, n_rows, n_cols, k):
    """(row-major est, col-major est) for X[n_rows x k] . W[n_cols x k]^T."""
    row = device.gemm_estimate(n_rows, n_cols, k)   # Y   = X . W^T
    col = device.gemm_estimate(n_cols, n_rows, k)   # Y^T = W . X^T
    return row, col


def test_fig9a_lstm_shape(benchmark, save_result):
    device = DeviceModel()
    row, col = run_once(benchmark, lambda: _compare(device, 64, 2048, 512))
    rows = [
        ("Y = X.W^T (row-major)", round(row.seconds * 1e6, 1),
         round(row.l2_hit_rate, 3)),
        ("Y^T = W.X^T (col-major)", round(col.seconds * 1e6, 1),
         round(col.l2_hit_rate, 3)),
    ]
    save_result(
        "fig09a_lstm_gemm",
        format_table(["form", "us", "L2 hit (proxy)"], rows,
                     "Figure 9a: LSTM-cell GEMM (B=64, H=512)"),
    )
    speedup = row.seconds / col.seconds
    assert 1.6 < speedup < 2.4, f"paper: ~2x, got {speedup:.2f}x"
    assert col.l2_hit_rate > row.l2_hit_rate


def test_fig9b_gru_shape(benchmark, save_result):
    device = DeviceModel()
    row, col = run_once(benchmark, lambda: _compare(device, 64, 3072, 1024))
    rows = [
        ("Y = X.W^T (row-major)", round(row.seconds * 1e6, 1),
         round(row.l2_hit_rate, 3)),
        ("Y^T = W.X^T (col-major)", round(col.seconds * 1e6, 1),
         round(col.l2_hit_rate, 3)),
    ]
    save_result(
        "fig09b_gru_gemm",
        format_table(["form", "us", "L2 hit (proxy)"], rows,
                     "Figure 9b: GRU-cell GEMM (B=64, H=1024)"),
    )
    speedup = row.seconds / col.seconds
    assert 1.15 < speedup < 1.7, f"paper: ~1.3x, got {speedup:.2f}x"


@pytest.mark.parametrize("batch", [32, 64, 128, 256, 512])
def test_fig9_gap_narrows_with_batch(benchmark, save_result, batch):
    """Both operands become less skewed as B grows, so the layout gap —
    and hence the whole optimization's value — shrinks (Section 4.2)."""
    device = DeviceModel()
    row, col = run_once(benchmark, lambda: _compare(device, batch, 2048, 512))
    speedup = row.seconds / col.seconds
    save_result(
        f"fig09_sweep_b{batch}",
        f"layout speedup at B={batch}: {speedup:.3f}x",
    )
    if batch >= 256:
        small_row, small_col = _compare(device, 32, 2048, 512)
        assert speedup < small_row.seconds / small_col.seconds
