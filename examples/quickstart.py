"""Quickstart: halve an NMT model's training footprint with one call.

Builds a (small) Sockeye-style NMT training graph, runs the Echo pass on
it, and shows what the paper promises: a large footprint reduction, a tiny
recompute overhead, and *bitwise identical* training numerics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.echo import optimize
from repro.gpumodel import DeviceModel
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend
from repro.profiler import profile_memory
from repro.runtime import TrainingExecutor


def main() -> None:
    config = NmtConfig(
        src_vocab_size=2000,
        tgt_vocab_size=2000,
        embed_size=128,
        hidden_size=128,
        encoder_layers=1,
        decoder_layers=1,
        src_len=24,
        tgt_len=24,
        batch_size=32,
        backend=Backend.CUDNN,
    )
    print("building the NMT training graph ...")
    model = build_nmt(config)
    print(f"  {len(model.graph.nodes())} graph nodes, "
          f"{model.store.num_parameters():,} parameters")

    # -- baseline footprint --------------------------------------------------
    baseline = TrainingExecutor(model.graph)
    print()
    print(profile_memory(baseline.memory_plan).format("before Echo"))

    # -- a reference training step (to prove losslessness later) -----------
    rng = np.random.default_rng(0)
    feeds = {
        "src_tokens": rng.integers(3, 2000, (24, 32)),
        "tgt_tokens": rng.integers(3, 2000, (24, 32)),
        "tgt_labels": rng.integers(3, 2000, (24, 32)),
    }
    params = model.store.initialize()
    loss_before, grads_before, _ = baseline.run(feeds, params)

    # -- the Echo pass: one call, no model changes --------------------------
    print()
    report = optimize(model.graph, device=DeviceModel())
    print(report.format())

    optimized = TrainingExecutor(model.graph)
    print()
    print(profile_memory(optimized.memory_plan).format("after Echo"))

    # -- losslessness --------------------------------------------------------
    loss_after, grads_after, _ = optimized.run(feeds, params)
    assert loss_after == loss_before
    for name in grads_before:
        np.testing.assert_array_equal(grads_before[name], grads_after[name])
    print()
    print(f"training loss before/after Echo: {loss_before:.6f} / "
          f"{loss_after:.6f}  (bitwise identical, as are all gradients)")
    print(f"peak model memory: {baseline.peak_bytes / 2**20:.1f} MiB -> "
          f"{optimized.peak_bytes / 2**20:.1f} MiB "
          f"({baseline.peak_bytes / optimized.peak_bytes:.2f}x)")


if __name__ == "__main__":
    main()
