"""Bucketed NMT training with Echo on every bucket graph.

Real Sockeye training groups sentences into length buckets and compiles
one executor per bucket — short sentences stop paying for long-sentence
padding, and the footprint is set by the largest bucket (which is where
Echo's reduction matters most). This example trains across three buckets
with shared parameters and shows the per-bucket Echo reports.

Run:  python examples/bucketed_training.py [--steps 120]
"""

import argparse

import numpy as np

from repro.data import (
    BucketedTranslationBatches,
    TranslationTask,
    default_buckets,
)
from repro.experiments import format_table
from repro.models import NmtConfig
from repro.nn import Backend
from repro.train import Adam, BucketedTrainer


def main(steps: int) -> None:
    config = NmtConfig(
        src_vocab_size=120,
        tgt_vocab_size=120,
        embed_size=48,
        hidden_size=48,
        encoder_layers=1,
        decoder_layers=1,
        src_len=18,
        tgt_len=18,
        batch_size=16,
        backend=Backend.CUDNN,
    )
    buckets = default_buckets(18, step=6)
    print(f"buckets: {[b.src_len for b in buckets]}")

    trainer = BucketedTrainer(config, buckets, Adam(3e-3), echo=True)
    rows = [
        (bucket.src_len,
         round(report.baseline_peak_bytes / 2**20, 2),
         round(report.optimized_peak_bytes / 2**20, 2),
         round(report.footprint_reduction, 2))
        for bucket, report in sorted(
            trainer.echo_reports.items(), key=lambda kv: kv[0].src_len
        )
    ]
    print(format_table(
        ["bucket T", "baseline MiB", "Echo MiB", "reduction"],
        rows,
        "Echo per bucket graph (shared parameters)",
    ))
    print(f"device footprint = largest bucket: "
          f"{trainer.peak_bytes / 2**20:.2f} MiB\n")

    task = TranslationTask(
        config.src_vocab_size, config.tgt_vocab_size,
        config.src_len, config.tgt_len,
    )
    data = BucketedTranslationBatches(task, buckets, config.batch_size,
                                      seed=0)
    counts = {b: 0 for b in buckets}
    for step in range(1, steps + 1):
        bucket, feeds = data.sample()
        counts[bucket] += 1
        record = trainer.step(bucket, feeds)
        if step % 30 == 0:
            print(f"step {step:4d}  bucket T={bucket.src_len:2d}  "
                  f"perplexity {record.perplexity:8.2f}")

    mix = ", ".join(
        f"T={b.src_len}: {c}" for b, c in sorted(
            counts.items(), key=lambda kv: kv[0].src_len)
    )
    print(f"\nbatches per bucket: {mix}")
    print(f"mean iteration (uniform mix): "
          f"{trainer.mean_iteration_seconds() * 1e3:.2f} ms vs "
          f"largest-bucket-only "
          f"{trainer.trainer_for(buckets[-1]).iteration_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=120)
    main(parser.parse_args().steps)
