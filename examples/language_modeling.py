"""Word-level language modeling with transparent backend selection.

The paper's second workload: an embedding + multi-layer LSTM + vocabulary
projection model. Before training starts, the autotuning microbenchmark
(Section 5.4 / Figure 11) compares the Default, CuDNN-style, and Echo
backends on the user's hyperparameters and silently picks the fastest —
the user never names a backend.

Run:  python examples/language_modeling.py [--steps 300]
"""

import argparse
import itertools

from repro.backends import autotune_backend
from repro.data import lm_batches, markov_corpus
from repro.models import WordLmConfig, build_word_lm
from repro.train import Adam, Trainer


def main(steps: int) -> None:
    vocab_size, hidden = 400, 96
    seq_len, batch_size, layers = 20, 16, 2

    # -- transparent backend selection (the user never picks one) ----------
    tune = autotune_backend(batch_size, hidden, layers, seq_len)
    print(tune.format())

    config = WordLmConfig(
        vocab_size=vocab_size,
        embed_size=hidden,
        hidden_size=hidden,
        num_layers=layers,
        seq_len=seq_len,
        batch_size=batch_size,
        backend=tune.choice,
    )
    model = build_word_lm(config)
    trainer = Trainer(model.graph, model.store.initialize(), Adam(5e-3))
    print(f"\nselected backend: {tune.choice.value}  "
          f"(simulated throughput {trainer.throughput():.0f} samples/s)\n")

    corpus = markov_corpus(vocab_size, 200_000, seed=3)
    batches = itertools.islice(
        lm_batches(corpus, batch_size, seq_len), steps
    )
    for step, feeds in enumerate(batches, start=1):
        record = trainer.step(feeds)
        if step % 50 == 0:
            print(f"step {step:4d}  loss {record.loss:6.3f}  "
                  f"perplexity {record.perplexity:8.2f}  "
                  f"speedometer {trainer.speedometer.throughput():.0f} "
                  f"samples/s (simulated)")

    final = trainer.history[-1]
    print(f"\nfinal perplexity after {final.step} steps: "
          f"{final.perplexity:.2f} "
          f"(corpus entropy floor is around 4-5 for this Markov source)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=300)
    main(parser.parse_args().steps)
