"""Generality: peephole LSTM, GRU, and hand-annotated recomputation.

The paper argues its optimizations are not vanilla-LSTM tricks:
* the data layout optimization applies to any cell with the gate-GEMM
  structure (peephole LSTM, GRU) — cells cuDNN's fused path cannot run;
* the automatic Echo pass matches what the authors originally achieved by
  hand-annotating the attention operator.

Run:  python examples/beyond_vanilla_lstm.py
"""

from dataclasses import replace

from repro.echo import apply_manual_recompute, optimize
from repro.experiments import format_table
from repro.gpumodel import DeviceModel
from repro.models import NmtConfig, WordLmConfig, build_nmt, build_word_lm
from repro.nn import Backend
from repro.profiler import profile_runtime
from repro.runtime import TrainingExecutor


def _lm_sgemm_ms(cell: str, backend: Backend) -> float:
    cfg = WordLmConfig(
        vocab_size=2000, embed_size=512, hidden_size=512, num_layers=1,
        seq_len=25, batch_size=32, cell=cell, backend=backend,
    )
    model = build_word_lm(cfg)
    executor = TrainingExecutor(model.graph, device=DeviceModel())
    report = profile_runtime(executor.simulate_cost().timings)
    return report.by_kernel.get("sgemm (fully-connected)", 0.0) * 1e3


def main() -> None:
    # -- layout optimization across cell types ------------------------------
    rows = []
    for cell in ("lstm", "lstm_peephole", "gru"):
        default = _lm_sgemm_ms(cell, Backend.DEFAULT)
        echo = _lm_sgemm_ms(cell, Backend.ECHO)
        rows.append((cell, round(default, 2), round(echo, 2),
                     round(default / echo, 2)))
    print(format_table(
        ["cell type", "row-major GEMM ms", "col-major GEMM ms", "speedup"],
        rows,
        "data layout optimization across recurrent cell types "
        "(word LM, B=32, H=512)",
    ))

    # -- manual annotation vs the automatic pass ----------------------------
    cfg = NmtConfig(
        src_vocab_size=2000, tgt_vocab_size=2000, embed_size=128,
        hidden_size=128, encoder_layers=1, decoder_layers=1,
        src_len=20, tgt_len=20, batch_size=32, backend=Backend.CUDNN,
    )
    manual_model = build_nmt(replace(cfg, manual_recompute_attention=True))
    manual = apply_manual_recompute(manual_model.graph)
    auto_model = build_nmt(cfg)
    auto = optimize(auto_model.graph)

    print()
    print(format_table(
        ["approach", "peak MiB", "reduction", "regions"],
        [
            ("hand annotation (EcoRNN)",
             round(manual.optimized_peak_bytes / 2**20, 1),
             round(manual.footprint_reduction, 2), len(manual.accepted)),
            ("automatic pass (Echo)",
             round(auto.optimized_peak_bytes / 2**20, 1),
             round(auto.footprint_reduction, 2), len(auto.accepted)),
        ],
        "manual vs automatic recomputation on NMT attention",
    ))
    print("\nThe compiler finds the hand-annotated regions on its own —")
    print("plus the LSTM state chains nobody bothered to annotate.")


if __name__ == "__main__":
    main()
