"""Explore how far Echo pushes the batch-size / model-size envelope.

Answers the capacity-planning questions of Section 6.2.2 on the simulated
12 GiB Titan Xp: for the paper's primary NMT setting, what is the largest
batch that fits with and without Echo, and how does the footprint move
across hidden dimensions? (This is the Figure 16 study as an interactive
tool rather than a benchmark.)

Run:  python examples/footprint_explorer.py
"""

from dataclasses import replace

from repro.experiments import (
    DEFAULT,
    ECHO,
    ZHU_T50,
    format_table,
    gib,
    max_fitting_batch,
    measure_nmt,
)
from repro.gpumodel import TITAN_XP


def main() -> None:
    setting = ZHU_T50
    print(f"device: {TITAN_XP.name} "
          f"({TITAN_XP.dram_capacity / 2**30:.0f} GiB)\n")

    # -- largest fitting batch, Default vs Echo -----------------------------
    rows = []
    for variant in (DEFAULT, ECHO):
        best = max_fitting_batch(setting, variant)
        m = measure_nmt(setting.with_batch_size(best), variant)
        rows.append(
            (variant.label, best, round(gib(m.total_bytes), 2),
             round(m.throughput, 1))
        )
    print(format_table(
        ["implementation", "max batch", "GiB at max", "samples/s"],
        rows,
        f"largest fitting batch (H={setting.hidden_size}, "
        f"T={setting.src_len})",
    ))

    # -- footprint across hidden dimensions ---------------------------------
    print()
    rows = []
    for hidden in (256, 512, 768, 1024):
        cfg = replace(setting, hidden_size=hidden, embed_size=hidden)
        base = measure_nmt(cfg, DEFAULT)
        echo = measure_nmt(cfg, ECHO)
        rows.append((
            hidden,
            round(gib(base.total_bytes), 2),
            round(gib(echo.total_bytes), 2),
            round(base.total_bytes / echo.total_bytes, 2),
            "Default OOM" if not base.fits_in_memory else "",
        ))
    print(format_table(
        ["hidden", "Default GiB", "Echo GiB", "reduction", "note"],
        rows,
        "footprint vs hidden dimension (B=128)",
    ))

    # -- where does the saved memory come from? -----------------------------
    base = measure_nmt(setting, DEFAULT)
    echo = measure_nmt(setting, ECHO)
    print()
    print(base.memory.format("breakdown, Default"))
    print()
    print(echo.memory.format("breakdown, Echo"))

    # -- the footprint sawtooth, before and after ---------------------------
    from repro.echo import optimize
    from repro.models import build_nmt
    from repro.nn import Backend
    from repro.profiler import compare_timelines
    from repro.runtime import TrainingExecutor

    small = replace(setting, src_len=30, tgt_len=30, batch_size=32,
                    backend=Backend.CUDNN)
    model = build_nmt(small)
    before = TrainingExecutor(model.graph).memory_plan
    optimize(model.graph)
    after = TrainingExecutor(model.graph).memory_plan
    print()
    print("footprint over one iteration (forward ramps the stash up, the")
    print("boundary is the peak, backward drains it; Echo flattens the ramp):")
    print(compare_timelines(before, after))

    # -- buffer planner: greedy size-class replay vs colored packing --------
    # Orthogonal to Echo: the same graph, lowered under each value of
    # REPRO_MEMPLAN. The colored planner elides copies into alias
    # bindings, rewrites last-use elementwise outputs in place, and packs
    # every surviving buffer's live interval into one contiguous extent.
    import os

    from repro.runtime import PlanCache

    print()
    rows = []
    fresh = build_nmt(small)
    saved = os.environ.get("REPRO_MEMPLAN")
    try:
        for mode in ("greedy", "color"):
            os.environ["REPRO_MEMPLAN"] = mode
            plan = TrainingExecutor(
                fresh.graph, plan_cache=PlanCache(store=None)
            ).executor.plan
            rows.append((
                mode,
                round(plan.static_storage_bytes / 2**20, 2),
                plan.elided_copy_count,
                plan.inplace_write_count,
            ))
    finally:
        if saved is None:
            os.environ.pop("REPRO_MEMPLAN", None)
        else:
            os.environ["REPRO_MEMPLAN"] = saved
    greedy_mib, color_mib = rows[0][1], rows[1][1]
    print(format_table(
        ["planner", "static MiB", "copies elided", "in-place writes"],
        rows,
        f"buffer planner comparison (T=30, B=32): colored packing is "
        f"{(1 - color_mib / greedy_mib) * 100:.0f}% smaller",
    ))


if __name__ == "__main__":
    main()
