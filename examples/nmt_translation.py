"""Train an attention NMT model end to end and watch BLEU climb.

This is the paper's primary workload in miniature: a bidirectional-encoder
/ attention-decoder model trained with teacher forcing on a synthetic
reversal-translation task, validated with greedy decoding and corpus BLEU.
The Echo pass runs on the training graph first, so the whole run uses the
reduced-footprint schedule — and learns exactly what the baseline would.

Run:  python examples/nmt_translation.py [--steps 400]
"""

import argparse

import numpy as np

from repro.data import TranslationTask
from repro.echo import optimize
from repro.models import NmtConfig, build_nmt
from repro.nn import Backend
from repro.train import Adam, GreedyDecoder, Trainer, corpus_bleu


def main(steps: int) -> None:
    config = NmtConfig(
        src_vocab_size=120,
        tgt_vocab_size=120,
        embed_size=48,
        hidden_size=48,
        encoder_layers=1,
        decoder_layers=1,
        src_len=10,
        tgt_len=10,
        batch_size=16,
        backend=Backend.CUDNN,
    )
    task = TranslationTask(
        config.src_vocab_size, config.tgt_vocab_size,
        config.src_len, config.tgt_len,
    )

    model = build_nmt(config)
    report = optimize(model.graph)
    print(report.format())

    params = model.store.initialize()
    trainer = Trainer(model.graph, params, Adam(3e-3))
    decoder = GreedyDecoder(config, model.store)

    validation = task.sample_batch(config.batch_size,
                                   np.random.default_rng(999))
    references = task.references(validation["src_tokens"])

    rng = np.random.default_rng(0)
    print(f"\ntraining for {steps} steps "
          f"(simulated Titan Xp iteration: "
          f"{trainer.iteration_seconds * 1e3:.2f} ms, "
          f"{trainer.throughput():.0f} samples/s)\n")
    for step in range(1, steps + 1):
        record = trainer.step(task.sample_batch(config.batch_size, rng))
        if step % 50 == 0:
            hypotheses = decoder.translate(validation["src_tokens"], params)
            bleu = corpus_bleu(hypotheses, references)
            print(f"step {step:4d}  perplexity {record.perplexity:8.2f}  "
                  f"validation BLEU {bleu:5.1f}")

    print("\nsample translations (greedy decode):")
    hypotheses = decoder.translate(validation["src_tokens"], params)
    for i in range(3):
        print(f"  ref: {references[i]}")
        print(f"  hyp: {hypotheses[i]}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=400)
    main(parser.parse_args().steps)
