"""ASCII footprint-timeline rendering.

Visualizes a memory plan's live-bytes curve over the schedule — the
characteristic training sawtooth: memory ramps through the forward pass
(stash accumulation), peaks at the forward/backward boundary, and drains
through the backward pass. After Echo, the ramp flattens and the peak
drops; seeing the two curves side by side is the fastest way to sanity-
check a rewrite.
"""

from __future__ import annotations

from repro.runtime.memory import MemoryPlan

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[int], width: int = 72) -> str:
    """Downsample ``values`` to ``width`` columns of unicode bars."""
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        sampled = [
            max(values[int(i * bucket):max(int((i + 1) * bucket),
                                           int(i * bucket) + 1)])
            for i in range(width)
        ]
    else:
        sampled = list(values)
    top = max(sampled) or 1
    return "".join(_BARS[round(v / top * (len(_BARS) - 1))] for v in sampled)


def format_timeline(plan: MemoryPlan, width: int = 72,
                    label: str = "footprint") -> str:
    """Render the plan's live-bytes curve with peak annotations."""
    line = sparkline(plan.timeline, width)
    peak_mib = plan.peak_bytes / 2**20
    frac = plan.peak_step / max(len(plan.timeline) - 1, 1)
    marker_pos = min(int(frac * len(line)), len(line) - 1) if line else 0
    marker = " " * marker_pos + "^peak"
    return (
        f"{label}: peak {peak_mib:.1f} MiB at step {plan.peak_step}"
        f"/{len(plan.timeline)}\n|{line}|\n {marker}"
    )


def compare_timelines(before: MemoryPlan, after: MemoryPlan,
                      width: int = 72) -> str:
    """Before/after curves on a shared byte scale."""
    top = max(before.peak_bytes, after.peak_bytes) or 1

    # Rendered manually (not via sparkline) so both lines share one
    # vertical scale.
    def render(plan: MemoryPlan, label: str) -> str:
        if len(plan.timeline) > width:
            bucket = len(plan.timeline) / width
            sampled = [
                max(plan.timeline[int(i * bucket):max(
                    int((i + 1) * bucket), int(i * bucket) + 1)])
                for i in range(width)
            ]
        else:
            sampled = list(plan.timeline)
        bars = "".join(
            _BARS[round(v / top * (len(_BARS) - 1))] for v in sampled
        )
        return f"|{bars}| {label}: {plan.peak_bytes / 2**20:.1f} MiB peak"

    return "\n".join([render(before, "before"), render(after, "after")])
