"""Memory profiler: the paper's Figure 5/14 breakdown reports.

Builds on the runtime memory plan and adds the pieces the plan cannot see:

* optimizer state (the paper's "Weights" bar includes parameter gradients
  and optimizer state — Adam keeps two extra copies per parameter);
* the *untrackable* gap between what the framework profiler accounts for
  and what nvidia-smi reports (CUDA context, cuDNN handles, allocator
  fragmentation) — the striped bar at the bottom of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.memory import Category, MemoryPlan

#: CUDA context + library handles resident on the device (bytes).
CUDA_CONTEXT_BYTES = 420 * 1024**2
#: Fraction of tracked memory lost to pool fragmentation.
FRAGMENTATION_FRACTION = 0.06

#: Extra copies of every parameter the optimizer keeps.
OPTIMIZER_STATE_COPIES = {"sgd": 0.0, "momentum": 1.0, "adam": 2.0}


@dataclass
class MemoryReport:
    """Peak-footprint breakdown of one training iteration."""

    #: the paper's data-structure categories, bytes at peak
    placeholders: int
    weights: int
    feature_maps: int
    workspace: int
    untrackable: int
    #: bytes at peak grouped by top-level scope (layer type)
    by_layer: dict[str, int] = field(default_factory=dict)

    @property
    def tracked_bytes(self) -> int:
        return (
            self.placeholders + self.weights + self.feature_maps + self.workspace
        )

    @property
    def total_bytes(self) -> int:
        """What nvidia-smi would report."""
        return self.tracked_bytes + self.untrackable

    def by_data_structure(self) -> dict[str, int]:
        return {
            "placeholders": self.placeholders,
            "weights": self.weights,
            "feature_maps": self.feature_maps,
            "workspace": self.workspace,
            "untrackable": self.untrackable,
        }

    def fraction(self, key: str) -> float:
        return self.by_data_structure()[key] / self.total_bytes

    def format(self, title: str = "memory breakdown") -> str:
        lines = [f"== {title} (peak) =="]
        total = self.total_bytes
        for name, nbytes in self.by_data_structure().items():
            lines.append(
                f"  {name:<14} {nbytes / 2**20:9.1f} MiB  "
                f"({100.0 * nbytes / total:5.1f}%)"
            )
        lines.append(f"  {'total':<14} {total / 2**20:9.1f} MiB")
        if self.by_layer:
            lines.append("  -- by layer type --")
            for layer, nbytes in sorted(
                self.by_layer.items(), key=lambda kv: -kv[1]
            ):
                lines.append(
                    f"  {layer:<14} {nbytes / 2**20:9.1f} MiB  "
                    f"({100.0 * nbytes / total:5.1f}%)"
                )
        return "\n".join(lines)


def profile_memory(
    plan: MemoryPlan,
    optimizer: str = "adam",
    include_untrackable: bool = True,
) -> MemoryReport:
    """Produce the paper-style breakdown from a memory plan."""
    peak = plan.peak_by_category
    weight_bytes = peak.get(Category.WEIGHT, 0)
    grad_bytes = peak.get(Category.GRADIENT, 0)
    try:
        opt_copies = OPTIMIZER_STATE_COPIES[optimizer]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; "
            f"expected one of {sorted(OPTIMIZER_STATE_COPIES)}"
        ) from None
    opt_bytes = int(weight_bytes * opt_copies)

    # Parameter gradients exist for the whole iteration in frameworks
    # (write-to gradient arrays), even if liveness says they appear late.
    if grad_bytes < weight_bytes:
        grad_bytes = weight_bytes

    weights_total = weight_bytes + grad_bytes + opt_bytes
    placeholders = peak.get(Category.PLACEHOLDER, 0)
    feature_maps = peak.get(Category.FEATURE_MAP, 0)
    # Workspace comes from a pooled arena that persists once grown (both
    # kernel scratch and Echo's recompute buffers), so the report carries
    # its high-water mark, not the boundary-instant snapshot.
    workspace = max(
        peak.get(Category.WORKSPACE, 0),
        plan.max_by_category.get(Category.WORKSPACE, 0),
    )

    tracked = placeholders + weights_total + feature_maps + workspace
    untrackable = 0
    if include_untrackable:
        untrackable = CUDA_CONTEXT_BYTES + int(tracked * FRAGMENTATION_FRACTION)

    by_layer = plan.scope_breakdown(depth=1)
    # Attribute optimizer state and the gradient floor to the layers'
    # weight owners proportionally; keep it simple: add under "(optimizer)".
    extra = (grad_bytes - peak.get(Category.GRADIENT, 0)) + opt_bytes
    if extra:
        by_layer["(optimizer)"] = by_layer.get("(optimizer)", 0) + extra

    return MemoryReport(
        placeholders=placeholders,
        weights=weights_total,
        feature_maps=feature_maps,
        workspace=workspace,
        untrackable=untrackable,
        by_layer=by_layer,
    )
