"""Memory & runtime profilers (DESIGN.md S6): MXNet-profiler/nvprof stand-ins."""

from repro.profiler.memory import (
    CUDA_CONTEXT_BYTES,
    MemoryReport,
    profile_memory,
)
from repro.profiler.timeline import compare_timelines, format_timeline, sparkline
from repro.profiler.runtime import (
    MeasuredNodeTiming,
    RuntimeReport,
    dram_transactions,
    kernel_family,
    measure_node_timings,
    profile_runtime,
)

__all__ = [
    "MemoryReport",
    "profile_memory",
    "CUDA_CONTEXT_BYTES",
    "RuntimeReport",
    "profile_runtime",
    "kernel_family",
    "dram_transactions",
    "MeasuredNodeTiming",
    "measure_node_timings",
    "format_timeline",
    "compare_timelines",
    "sparkline",
]
