"""Runtime profiler: the nvprof stand-in behind Figures 6 and 7.

Consumes the per-node simulated timings collected by the executor and
groups them two complementary ways, exactly as the paper does:

* **GPU kernels** — execution time grouped by kernel family (sgemm for
  GEMMs, fused LSTM pointwise, elementwise, softmax, ...), further
  divisible by model scope (rnn / attention / output / ...);
* **CUDA APIs** — CPU-side time in cudaLaunch-style calls, which dominates
  when the framework issues hundreds of tiny kernels per iteration.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.runtime.executor import GraphExecutor, NodeTiming

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph import Node

#: op name -> kernel family shown in reports (mirrors nvprof kernel names)
_KERNEL_FAMILY = {
    "fully_connected": "sgemm (fully-connected)",
    "matmul": "sgemm (fully-connected)",
    "batch_dot": "sgemm (batched)",
    "lstm_gates": "fused LSTM pointwise",
    "lstm_gates_grad": "fused LSTM pointwise",
    "softmax": "softmax",
    "softmax_grad": "softmax",
    "softmax_cross_entropy": "softmax",
    "softmax_cross_entropy_grad": "softmax",
    "sequence_reverse": "SequenceReverse",
    "embedding": "embedding",
    "embedding_grad": "embedding",
    "layer_norm": "layer norm",
    "layer_norm_grad": "layer norm",
}


def kernel_family(op_name: str) -> str:
    return _KERNEL_FAMILY.get(op_name, "elementwise / other")


@dataclass
class RuntimeReport:
    """Breakdown of one iteration's simulated GPU time."""

    kernel_seconds: float
    api_seconds: float
    launches: int
    dram_bytes: int
    by_kernel: dict[str, float] = field(default_factory=dict)
    by_scope: dict[str, float] = field(default_factory=dict)
    api_by_kind: dict[str, float] = field(default_factory=dict)

    @property
    def iteration_seconds(self) -> float:
        """Wall time: kernels overlap launch of the next kernel, so the
        iteration is bound by the larger of the two streams."""
        return max(self.kernel_seconds, self.api_seconds)

    @property
    def launch_bound(self) -> bool:
        return self.api_seconds > self.kernel_seconds

    def kernel_fraction(self, family: str) -> float:
        return self.by_kernel.get(family, 0.0) / max(self.kernel_seconds, 1e-30)

    def format(self, title: str = "runtime breakdown") -> str:
        lines = [f"== {title} =="]
        lines.append(
            f"  GPU kernels {self.kernel_seconds * 1e3:8.2f} ms   "
            f"CUDA APIs {self.api_seconds * 1e3:8.2f} ms   "
            f"({self.launches} launches, "
            f"{'launch-bound' if self.launch_bound else 'kernel-bound'})"
        )
        lines.append("  -- by GPU kernel --")
        for fam, sec in sorted(self.by_kernel.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  {fam:<28} {sec * 1e3:8.2f} ms "
                f"({100.0 * sec / max(self.kernel_seconds, 1e-30):5.1f}%)"
            )
        lines.append("  -- by model scope --")
        for sc, sec in sorted(self.by_scope.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  {sc:<28} {sec * 1e3:8.2f} ms "
                f"({100.0 * sec / max(self.kernel_seconds, 1e-30):5.1f}%)"
            )
        return "\n".join(lines)


def profile_runtime(
    timings: Iterable[NodeTiming], scope_depth: int = 1
) -> RuntimeReport:
    """Aggregate executor timings into the paper's two views."""
    by_kernel: dict[str, float] = defaultdict(float)
    by_scope: dict[str, float] = defaultdict(float)
    kernel_seconds = 0.0
    api_seconds = 0.0
    launches = 0
    dram = 0
    for t in timings:
        kernel_seconds += t.kernel_seconds
        api_seconds += t.api_seconds
        launches += t.launches
        dram += t.dram_bytes
        by_kernel[kernel_family(t.node.op.name)] += t.kernel_seconds
        prefix = "/".join(t.node.scope.split("/")[:scope_depth]) or "(root)"
        by_scope[prefix] += t.kernel_seconds
    api_by_kind = {
        "cudaLaunch": api_seconds * 0.75,
        "cudaSynchronize / other": api_seconds * 0.25,
    }
    return RuntimeReport(
        kernel_seconds=kernel_seconds,
        api_seconds=api_seconds,
        launches=launches,
        dram_bytes=dram,
        by_kernel=dict(by_kernel),
        by_scope=dict(by_scope),
        api_by_kind=api_by_kind,
    )


def dram_transactions(timings: Sequence[NodeTiming], width: int = 32) -> int:
    """Total DRAM transactions (nvprof-style, 32B segments)."""
    return sum(t.dram_bytes for t in timings) // width


# -- measured (host wall-clock) timings -------------------------------------


@dataclass(frozen=True)
class MeasuredNodeTiming:
    """Host wall-clock of one node's kernel, reduced over repeated passes.

    This is the *measured* counterpart of :class:`NodeTiming` (which holds
    simulated device cost): what the numpy kernel actually took on this
    host, robust-reduced so a single descheduled pass cannot poison the
    calibration records built from it.
    """

    node: "Node"
    seconds: float
    samples: tuple[float, ...]
    stable: bool


def measure_node_timings(
    order: Sequence["Node"],
    feeds: Mapping[str, np.ndarray],
    params: Mapping[str, np.ndarray],
    repeats: int = 5,
) -> list[MeasuredNodeTiming]:
    """Wall-clock every kernel in ``order``, best-of-``repeats`` per node.

    Walks the schedule interpreter-style (dict-keyed values, liveness
    frees) ``repeats`` times, timing each ``op.compute`` call with
    ``perf_counter`` and reducing per node with
    :func:`repro.pgo.records.robust_best`. The global step is pinned to 0
    every pass so stochastic ops (dropout) do identical work each time.
    """
    from repro.ops.dropout import set_global_step
    from repro.pgo.records import robust_best

    repeats = max(1, int(repeats))
    last_use: dict[tuple[int, int], int] = {}
    for step, node in enumerate(order):
        for t in node.inputs:
            last_use[t.key] = step
    free_after: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for key, step in last_use.items():
        free_after[step].append(key)

    samples: list[list[float]] = [[] for _ in order]
    for _ in range(repeats):
        set_global_step(0)
        values: dict[tuple[int, int], np.ndarray] = {}
        for step, node in enumerate(order):
            if node.op.name == "placeholder":
                values[(node.uid, 0)] = GraphExecutor._bind(
                    feeds, node, kind="placeholder"
                )
            elif node.op.name == "variable":
                values[(node.uid, 0)] = GraphExecutor._bind(
                    params, node, kind="variable"
                )
            else:
                inputs = [values[t.key] for t in node.inputs]
                start = time.perf_counter()
                results = node.op.compute(node, inputs)
                samples[step].append(time.perf_counter() - start)
                for i, arr in enumerate(results):
                    values[(node.uid, i)] = arr
            for key in free_after[step]:
                values.pop(key, None)

    out: list[MeasuredNodeTiming] = []
    for step, node in enumerate(order):
        if not samples[step]:
            continue  # placeholder / variable: nothing ran
        timing = robust_best(samples[step])
        out.append(
            MeasuredNodeTiming(
                node=node,
                seconds=timing.seconds,
                samples=timing.samples,
                stable=timing.stable,
            )
        )
    return out
