"""One-shot reproduction report: ``python -m repro.experiments.report``.

Runs the headline experiments (the fast subset — everything except the
actual training curves) and prints a paper-vs-measured summary table.
Useful as a smoke test of the whole stack and as the artifact a reviewer
would run first.
"""

from __future__ import annotations

import sys
import time

from repro.backends import Backend, benchmark_lstm
from repro.experiments.common import format_table, gib
from repro.experiments.nmt_suite import CUDNN, DEFAULT, ECHO, measure_nmt
from repro.experiments.settings import ZHU
from repro.gpumodel import DeviceModel


def run_report(out=sys.stdout) -> list[tuple[str, str, str]]:
    """Compute the headline rows; returns (claim, paper, measured)."""
    start = time.time()
    rows: list[tuple[str, str, str]] = []

    base = measure_nmt(ZHU, DEFAULT)
    echo = measure_nmt(ZHU, ECHO)
    echo_2b = measure_nmt(ZHU.with_batch_size(ZHU.batch_size * 2), ECHO)
    cudnn = measure_nmt(ZHU, CUDNN)

    att_frac = base.memory.by_layer.get("attention", 0) / base.total_bytes
    rows.append((
        "attention share of NMT memory", "~60%", f"{100 * att_frac:.0f}%"
    ))
    rows.append((
        "footprint reduction at equal batch", "2x (Echo: up to 3.13x)",
        f"{base.total_bytes / echo.total_bytes:.2f}x",
    ))
    att_after = echo.memory.by_layer.get("attention", 0) / echo.total_bytes
    rows.append((
        "attention share after Echo", "6%", f"{100 * att_after:.0f}%"
    ))
    rows.append((
        "throughput at equal batch", "+4%",
        f"{100 * (echo.throughput / base.throughput - 1):+.0f}%",
    ))
    rows.append((
        "throughput with doubled batch", "1.3x",
        f"{echo_2b.throughput / base.throughput:.2f}x",
    ))
    rows.append((
        "cuDNN throughput gain on NMT", "+8%",
        f"{100 * (cudnn.throughput / base.throughput - 1):+.0f}%",
    ))
    rows.append((
        "NMT footprint (B=128, T=100, H=512)", "~9 GB",
        f"{gib(base.total_bytes):.1f} GiB",
    ))

    device = DeviceModel()
    lstm_row = device.gemm_estimate(64, 2048, 512)
    lstm_col = device.gemm_estimate(2048, 64, 512)
    rows.append((
        "layout GEMM speedup (LSTM shape)", "~2x",
        f"{lstm_row.seconds / lstm_col.seconds:.2f}x",
    ))

    default_lstm = benchmark_lstm(32, 512, 1, 50, Backend.DEFAULT)
    echo_lstm = benchmark_lstm(32, 512, 1, 50, Backend.ECHO)
    rows.append((
        "pure LSTM: Echo over Default (B=32, H=512)", "up to 3x",
        f"{default_lstm.total_seconds / echo_lstm.total_seconds:.2f}x",
    ))

    print(format_table(
        ["claim", "paper", "this repo (simulated Titan Xp)"], rows,
        "Echo reproduction — headline results",
    ), file=out)
    print(f"\n(computed in {time.time() - start:.1f}s; "
          "full per-figure record in EXPERIMENTS.md, regenerate with "
          "`pytest benchmarks/ --benchmark-only`)", file=out)
    return rows


if __name__ == "__main__":
    run_report()
