"""NMT measurement suite shared by the Figure 4b/13/14/15/16/17/18/19
benchmarks: builds (config x backend x echo x device) points with caching,
since several figures reuse the same point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.echo import EchoConfig
from repro.experiments.common import Measurement, measure_training
from repro.gpumodel import DeviceModel, DeviceSpec, TITAN_XP
from repro.models.nmt import NmtConfig, build_nmt
from repro.nn import Backend

_CACHE: dict[tuple, Measurement] = {}


@dataclass(frozen=True)
class NmtVariant:
    """Named implementation variants from the paper's evaluation."""

    backend: Backend = Backend.DEFAULT
    echo: bool = False
    parallel_reverse: bool = True  # the "par_rev" superscript

    @property
    def label(self) -> str:
        name = "EcoRNN/Echo" if self.echo else (
            "CuDNN" if self.backend is Backend.CUDNN else "Default"
        )
        return name + ("^par_rev" if self.parallel_reverse else "")


DEFAULT_RAW = NmtVariant(parallel_reverse=False)
DEFAULT = NmtVariant()  # Default^par_rev, the paper's main baseline
CUDNN = NmtVariant(backend=Backend.CUDNN)
ECHO = NmtVariant(backend=Backend.ECHO, echo=True)


def measure_nmt(
    config: NmtConfig,
    variant: NmtVariant = DEFAULT,
    device_spec: DeviceSpec = TITAN_XP,
    echo_config: EchoConfig | None = None,
) -> Measurement:
    """Build + cost one NMT training configuration (cached)."""
    key = (config, variant, device_spec.name, echo_config)
    if key in _CACHE:
        return _CACHE[key]
    cfg = config.with_backend(variant.backend)
    if not variant.parallel_reverse:
        from dataclasses import replace

        cfg = replace(cfg, parallel_reverse=False)
    model = build_nmt(cfg)
    measurement = measure_training(
        model.graph,
        batch_size=cfg.batch_size,
        label=f"{variant.label} B={cfg.batch_size}",
        device=DeviceModel(device_spec),
        echo=variant.echo,
        echo_config=echo_config,
        num_params=model.store.num_parameters(),
    )
    _CACHE[key] = measurement
    return measurement


def max_fitting_batch(
    config: NmtConfig,
    variant: NmtVariant,
    device_spec: DeviceSpec = TITAN_XP,
    candidates: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2048),
) -> int:
    """Largest candidate batch size whose footprint fits the device."""
    best = 0
    for batch in candidates:
        m = measure_nmt(config.with_batch_size(batch), variant, device_spec)
        if m.fits_in_memory:
            best = batch
    return best
