"""The paper's hyperparameter settings, reconstructed.

* ``ZHU`` — the primary setting, from Zhu et al. [71] as quoted in the
  paper's Section 4.1.1: B=128, T=100, H=512 (2 encoder + 2 decoder
  layers, IWSLT'15 en-vi vocabularies). At this point the Default
  implementation sits at ~9 GB on a 12 GB Titan Xp and cannot double its
  batch size; Echo can.
* ``GROUNDHOG`` / ``BEST`` — the two alternative settings from Hieber et
  al. [23] used for the hyperparameter sensitivity study (Figure 17):
  Groundhog is the shallow-wide Bahdanau replica (1+1 layers, H=1000),
  Best is the deeper tuned configuration (4+4 layers, H=512). Exact
  Sockeye flags are approximated; what the experiment tests is that the
  footprint reduction survives very different shapes.
"""

from __future__ import annotations

from repro.data.corpora import IWSLT15_EN_VI
from repro.models.nmt import NmtConfig

ZHU = NmtConfig(
    src_vocab_size=IWSLT15_EN_VI.src_vocab_size,
    tgt_vocab_size=IWSLT15_EN_VI.tgt_vocab_size,
    embed_size=512,
    hidden_size=512,
    encoder_layers=2,
    decoder_layers=2,
    src_len=100,
    tgt_len=100,
    batch_size=128,
)

#: Faster variant of ZHU for the wide sensitivity sweeps (T=50); the
#: attention still dominates the footprint, just with a smaller constant.
ZHU_T50 = NmtConfig(
    src_vocab_size=IWSLT15_EN_VI.src_vocab_size,
    tgt_vocab_size=IWSLT15_EN_VI.tgt_vocab_size,
    embed_size=512,
    hidden_size=512,
    encoder_layers=2,
    decoder_layers=2,
    src_len=50,
    tgt_len=50,
    batch_size=128,
)

GROUNDHOG = NmtConfig(
    src_vocab_size=IWSLT15_EN_VI.src_vocab_size,
    tgt_vocab_size=IWSLT15_EN_VI.tgt_vocab_size,
    embed_size=620,
    hidden_size=1000,
    encoder_layers=1,
    decoder_layers=1,
    src_len=60,
    tgt_len=60,
    batch_size=80,
)

BEST = NmtConfig(
    src_vocab_size=IWSLT15_EN_VI.src_vocab_size,
    tgt_vocab_size=IWSLT15_EN_VI.tgt_vocab_size,
    embed_size=512,
    hidden_size=512,
    encoder_layers=4,
    decoder_layers=4,
    src_len=60,
    tgt_len=60,
    batch_size=64,
)

#: Tiny but structurally complete NMT used by convergence experiments and
#: the test suite (everything trains in seconds on numpy).
TINY = NmtConfig(
    src_vocab_size=120,
    tgt_vocab_size=120,
    embed_size=48,
    hidden_size=48,
    encoder_layers=1,
    decoder_layers=1,
    src_len=10,
    tgt_len=10,
    batch_size=16,
)
