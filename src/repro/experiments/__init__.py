"""Experiment drivers shared by benchmarks and examples (DESIGN.md S14)."""

from repro.experiments.common import Measurement, format_table, gib, measure_training
from repro.experiments.nmt_suite import (
    CUDNN,
    DEFAULT,
    DEFAULT_RAW,
    ECHO,
    NmtVariant,
    max_fitting_batch,
    measure_nmt,
)
from repro.experiments.settings import BEST, GROUNDHOG, TINY, ZHU, ZHU_T50

__all__ = [
    "Measurement", "measure_training", "format_table", "gib",
    "NmtVariant", "measure_nmt", "max_fitting_batch",
    "DEFAULT", "DEFAULT_RAW", "CUDNN", "ECHO",
    "ZHU", "ZHU_T50", "GROUNDHOG", "BEST", "TINY",
]
