"""Shared experiment plumbing: the measurement harness and table printing.

Every figure/table benchmark funnels through :func:`measure_training`,
which builds (or receives) a training graph, optionally runs the Echo
pass, and reports the three quantities the paper's evaluation revolves
around: peak GPU memory (nvidia-smi view), training throughput, and power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.autodiff.training import TrainingGraph
from repro.echo import EchoConfig, EchoPass, EchoReport
from repro.gpumodel import DeviceModel
from repro.profiler import MemoryReport, profile_memory, profile_runtime
from repro.profiler.runtime import RuntimeReport
from repro.runtime import TrainingExecutor

#: host-side optimizer update time per parameter element (see trainer)
_UPDATE_SECONDS_PER_PARAM = 2.0e-11


@dataclass
class Measurement:
    """One (model config, backend, device) evaluation point."""

    label: str
    batch_size: int
    memory: MemoryReport
    runtime: RuntimeReport
    iteration_seconds: float
    device: DeviceModel
    echo_report: EchoReport | None = None

    @property
    def total_bytes(self) -> int:
        return self.memory.total_bytes

    @property
    def throughput(self) -> float:
        """Training samples per second."""
        return self.batch_size / self.iteration_seconds

    @property
    def fits_in_memory(self) -> bool:
        return self.total_bytes <= self.device.spec.dram_capacity

    @property
    def power_watts(self) -> float:
        busy = self.runtime.kernel_seconds / max(
            self.runtime.iteration_seconds, 1e-30
        )
        return self.device.power_watts(busy)

    def energy_per_sample(self) -> float:
        """Joules per training sample."""
        return self.power_watts * self.iteration_seconds / self.batch_size


def measure_training(
    graph: TrainingGraph,
    batch_size: int,
    label: str,
    device: DeviceModel | None = None,
    echo: bool = False,
    echo_config: EchoConfig | None = None,
    optimizer: str = "adam",
    num_params: int | None = None,
) -> Measurement:
    """Cost one training configuration on the device model (no execution)."""
    device = device or DeviceModel()
    echo_report = None
    if echo:
        echo_report = EchoPass(echo_config, device).run(graph)
    executor = TrainingExecutor(graph, device=device)
    cost = executor.simulate_cost()
    runtime = profile_runtime(cost.timings)
    memory = profile_memory(executor.memory_plan, optimizer=optimizer)
    params = num_params if num_params is not None else 0
    iteration = runtime.iteration_seconds + params * _UPDATE_SECONDS_PER_PARAM
    return Measurement(
        label=label,
        batch_size=batch_size,
        memory=memory,
        runtime=runtime,
        iteration_seconds=iteration,
        device=device,
        echo_report=echo_report,
    )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table used by every benchmark's printed output."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(f"--- {title} ---")
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def gib(nbytes: int) -> float:
    return nbytes / 2**30
