"""Memplan packing sanitizer: alias, coloring, and in-place safety.

The color memory planner (:mod:`repro.memplan`) rewrites the lowered
stream — copies become alias bindings, last-use elementwise writes land
in a dying input's buffer — and then packs every alias group's live
interval into one contiguous extent. Each of those decisions has a
structural safety condition, and this analyzer re-derives every one of
them from the instruction descriptors and the
:class:`~repro.memplan.planner.MemplanRecord` alone (it deliberately
shares no code with the planner's own eligibility logic):

* **MP401** — an ``alias`` instruction whose output slot did not join
  its source's alias group (the baked view would read one buffer while
  liveness tracks another), whose index list is malformed, or whose
  output escapes the plan;
* **MP402** — two packed placements overlap both in time and in byte
  range, or a placement exceeds the extent (both are the
  silent-corruption class for the shared-extent layout);
* **MP403** — an in-place rewrite whose target group is still live
  after the instruction, whose target is not at an in-place-capable
  operand position (or is read more than once), whose storage spec
  disagrees with the output's, or whose group escapes the plan.

Greedy-mode plans carry no record; on them this analyzer only verifies
that no ``alias`` instruction exists with an inconsistent root table.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.compiled import PlanLowering

from repro.analysis.findings import Finding, finding

__all__ = ["check_packing"]

_ANALYZER = "packing"


def _lowering_of(plan: Any) -> PlanLowering:
    low = getattr(plan, "lowering", plan)
    if not isinstance(low, PlanLowering):
        raise TypeError(
            f"expected a CompiledPlan or PlanLowering, got {type(plan)!r}"
        )
    return low


def _check_aliases(low: PlanLowering) -> list[Finding]:
    findings: list[Finding] = []
    for idx, desc in enumerate(low.descs):
        if desc["kind"] != "alias":
            continue
        name = desc["node"].name
        indices = desc.get("alias_index")
        if not isinstance(indices, list) or len(indices) != len(
            desc["out_slots"]
        ):
            findings.append(
                finding(
                    "MP401",
                    f"alias instruction {idx} ({name}) has a malformed "
                    f"index list for {len(desc['out_slots'])} output(s)",
                    _ANALYZER,
                    instr=idx,
                )
            )
        if not desc["in_slots"]:
            findings.append(
                finding(
                    "MP401",
                    f"alias instruction {idx} ({name}) has no source slot",
                    _ANALYZER,
                    instr=idx,
                )
            )
            continue
        src_root = low.root[desc["in_slots"][0]]
        for o in desc["out_slots"]:
            if low.root[o] != src_root:
                findings.append(
                    finding(
                        "MP401",
                        f"alias instruction {idx} ({name}) binds slot {o} "
                        f"as a view of slot group {src_root}, but the root "
                        f"table places it in group {low.root[o]}",
                        _ANALYZER,
                        instr=idx,
                        slot=o,
                    )
                )
            if o in low.output_slots:
                findings.append(
                    finding(
                        "MP401",
                        f"alias instruction {idx} ({name}) aliases escaping "
                        f"output slot {o} onto plan storage",
                        _ANALYZER,
                        instr=idx,
                        slot=o,
                    )
                )
    return findings


def _check_placements(low: PlanLowering, record: Any) -> list[Finding]:
    findings: list[Finding] = []
    extent = record.extent_bytes
    placed = []
    for key, (lo, hi, off, nbytes) in record.placements.items():
        if off < 0 or off + nbytes > extent:
            findings.append(
                finding(
                    "MP402",
                    f"placement {key!r} spans bytes [{off}, {off + nbytes}) "
                    f"outside the {extent}-byte extent",
                    _ANALYZER,
                    instr=lo,
                )
            )
        placed.append((lo, hi, off, nbytes, key))
    placed.sort(key=lambda p: (p[0], p[2]))
    for i, (lo_a, hi_a, off_a, nb_a, key_a) in enumerate(placed):
        for lo_b, hi_b, off_b, nb_b, key_b in placed[i + 1:]:
            if lo_b > hi_a:
                break  # sorted by lo: nothing later overlaps a in time
            if off_a < off_b + nb_b and off_b < off_a + nb_a:
                findings.append(
                    finding(
                        "MP402",
                        f"placements {key_a!r} (live [{lo_a}, {hi_a}], "
                        f"bytes [{off_a}, {off_a + nb_a})) and {key_b!r} "
                        f"(live [{lo_b}, {hi_b}], bytes "
                        f"[{off_b}, {off_b + nb_b})) overlap in time and "
                        "memory",
                        _ANALYZER,
                        instr=lo_b,
                    )
                )
    return findings


def _producer_spec(low: PlanLowering, r: int) -> tuple | None:
    """(shape, dtype, nbytes) of the buffer backing group root ``r``."""
    for desc in low.descs:
        kind = desc["kind"]
        if kind in ("out", "fused"):
            for j, s in enumerate(desc["out_slots"]):
                if s == r:
                    spec = desc["node"].out_specs[j]
                    return (spec.shape, spec.dtype, spec.nbytes)
        elif kind == "batched" and desc["out_slots"][0] == r:
            spec = desc["node"].out_specs[0]
            group = len(desc["out_slots"])
            return ((group,) + spec.shape, spec.dtype, group * spec.nbytes)
    return None


def _inplace_reads(desc: dict[str, Any]) -> list[tuple[int, int]]:
    """(slot, occurrences) at in-place-capable positions, re-derived."""
    reads: list[tuple[int, int]] = []
    if desc["kind"] == "out":
        in_slots = desc["in_slots"]
        for pos in desc["node"].op.inplace_operands:
            if pos < len(in_slots):
                s = in_slots[pos]
                reads.append((s, sum(1 for x in in_slots if x == s)))
    elif desc["kind"] == "fused":
        chain = desc["chain"]
        counts: dict[int, int] = {}
        for _op, _member, pattern in chain:
            for s in pattern:
                if s >= 0:
                    counts[s] = counts.get(s, 0) + 1
        first_op, _m, first_pattern = chain[0]
        for pos in first_op.inplace_operands:
            if pos < len(first_pattern) and first_pattern[pos] >= 0:
                s = first_pattern[pos]
                reads.append((s, counts[s]))
    return reads


def _check_inplace(low: PlanLowering, record: Any) -> list[Finding]:
    findings: list[Finding] = []
    descs = low.descs
    never_freed = low.output_slots | low.source_slots | low.constant_slots

    last_use: dict[int, int] = {}
    for idx, desc in enumerate(descs):
        for s in desc["in_slots"]:
            last_use[s] = idx

    for rec in record.inplace:
        idx, out, target = rec["instr"], rec["out"], rec["target"]
        if not 0 <= idx < len(descs):
            findings.append(
                finding(
                    "MP403",
                    f"in-place record points at instruction {idx}, outside "
                    f"the {len(descs)}-instruction stream",
                    _ANALYZER,
                    instr=idx,
                )
            )
            continue
        desc = descs[idx]
        name = desc["node"].name
        if (
            desc["kind"] not in ("out", "fused")
            or tuple(desc["out_slots"]) != (out,)
        ):
            findings.append(
                finding(
                    "MP403",
                    f"in-place rewrite at instruction {idx} ({name}) does "
                    f"not match a single-output kernel producing slot {out}",
                    _ANALYZER,
                    instr=idx,
                    slot=out,
                )
            )
            continue
        reads = dict(_inplace_reads(desc))
        valid_target = 0 <= target < len(low.root)
        if target not in reads:
            findings.append(
                finding(
                    "MP403",
                    f"instruction {idx} ({name}) writes in-place over slot "
                    f"{target}, which is not at an in-place-capable operand "
                    "position",
                    _ANALYZER,
                    instr=idx,
                    slot=target,
                )
            )
        elif reads[target] != 1:
            findings.append(
                finding(
                    "MP403",
                    f"instruction {idx} ({name}) reads slot {target} "
                    f"{reads[target]} times but overwrites it in place",
                    _ANALYZER,
                    instr=idx,
                    slot=target,
                )
            )
        # The pre-merge group (recorded before the output joined it) must
        # be entirely dead after this instruction and must not escape.
        for m in rec["members"]:
            use = last_use.get(m, -1)
            if use > idx:
                findings.append(
                    finding(
                        "MP403",
                        f"instruction {idx} ({name}) overwrites slot "
                        f"{target}'s group in place, but member slot {m} "
                        f"is still read by instruction {use}",
                        _ANALYZER,
                        instr=idx,
                        slot=m,
                    )
                )
            if m in never_freed:
                findings.append(
                    finding(
                        "MP403",
                        f"instruction {idx} ({name}) overwrites slot "
                        f"{target}'s group in place, but member slot {m} "
                        "escapes the plan (output/source/constant)",
                        _ANALYZER,
                        instr=idx,
                        slot=m,
                    )
                )
        if valid_target and low.root[out] != low.root[target]:
            findings.append(
                finding(
                    "MP403",
                    f"in-place rewrite at instruction {idx} ({name}) left "
                    f"slots {out} and {target} in different alias groups",
                    _ANALYZER,
                    instr=idx,
                    slot=out,
                )
            )
        spec = desc["node"].out_specs[0]
        have = _producer_spec(low, rec["root"])
        want = (spec.shape, spec.dtype, spec.nbytes)
        if have is not None and have != want:
            findings.append(
                finding(
                    "MP403",
                    f"instruction {idx} ({name}) writes {want} in place "
                    f"into a buffer of spec {have}",
                    _ANALYZER,
                    instr=idx,
                    slot=target,
                )
            )
    return findings


def check_packing(plan: Any) -> list[Finding]:
    """Re-derive every memplan rewrite/packing safety condition.

    ``plan`` is a :class:`repro.runtime.compiled.CompiledPlan` or its
    :class:`~repro.runtime.compiled.PlanLowering` record.
    """
    low = _lowering_of(plan)
    findings = _check_aliases(low)
    record = getattr(low, "memplan", None)
    if record is not None:
        findings.extend(_check_placements(low, record))
        findings.extend(_check_inplace(low, record))
    return findings
