"""Lint CLI: run every analyzer over the benchmark model plans.

Usage::

    python -m repro.analysis.lint                        # all models
    python -m repro.analysis.lint --model nmt --json
    python -m repro.analysis.lint --model word-lm --no-echo --threads 4
    python -m repro.analysis.lint --strict --ignore IR006,EC306
    python -m repro.analysis.lint --memplan greedy       # force a mode
    python -m repro.analysis.lint --equiv --strict       # + certification
    python -m repro.analysis.lint --list-codes           # code catalog

For each selected model the tool builds the training graph (at a reduced
benchmark-scale configuration), optionally runs the Echo pass so the
recompute checker has mirrored regions to verify, compiles the plan, and
runs the analyzers (``--equiv`` adds the symbolic equivalence
certifier). Exit status is 1 when any *error*-severity
finding survives ``--ignore`` (``--strict`` also fails on warnings), so
CI can gate on it. ``--json`` emits one machine-readable report object
per model on stdout, deduplicated and stable-sorted so equal runs are
byte-identical and CI diffs are meaningful.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Any, Callable, Sequence

from repro.analysis.findings import CODES, AnalysisReport
from repro.analysis.verify import verify_plan

#: model name -> builder returning (TrainingGraph, description). Builders
#: are thunks so `--model nmt` does not import the other models' modules.
_MODELS: dict[str, Callable[[], tuple[Any, str]]] = {}


def _register(name: str):
    def deco(fn):
        _MODELS[name] = fn
        return fn

    return deco


@_register("nmt")
def _build_nmt():
    from repro.models.nmt import NmtConfig, build_nmt

    config = NmtConfig(
        src_vocab_size=80,
        tgt_vocab_size=80,
        embed_size=24,
        hidden_size=24,
        encoder_layers=1,
        decoder_layers=1,
        src_len=8,
        tgt_len=8,
        batch_size=4,
    )
    model = build_nmt(config)
    return model.graph, "NMT (1+1 layers, len 8, batch 4)"


@_register("word-lm")
def _build_word_lm():
    from repro.models.word_lm import WordLmConfig, build_word_lm

    # dropout > 0 puts RNG nodes in the graph, exercising the EC303
    # determinism check on the mirrored regions Echo creates.
    config = WordLmConfig(
        vocab_size=200,
        embed_size=32,
        hidden_size=32,
        num_layers=2,
        seq_len=12,
        batch_size=4,
        dropout=0.1,
    )
    model = build_word_lm(config)
    return model.graph, "word-LM (2 layers, len 12, dropout 0.1)"


@_register("deepspeech")
def _build_deepspeech():
    from repro.models.deepspeech import DeepSpeechConfig, build_deepspeech

    config = DeepSpeechConfig(
        feat_dim=20,
        num_frames=30,
        conv_channels=8,
        hidden_size=32,
        num_layers=1,
        max_label_len=6,
        batch_size=2,
    )
    model = build_deepspeech(config)
    return model.graph, "DeepSpeech (1 layer, 30 frames, batch 2)"


@contextlib.contextmanager
def _guard_suppressed():
    """Temporarily disarm the REPRO_VERIFY compile-time guard.

    The lint CLI *is* the verifier: it must compile even a broken plan
    and report findings through its own exit status, not die inside the
    plan cache's assert when the environment happens to arm the guard.
    """
    saved = os.environ.pop("REPRO_VERIFY", None)
    try:
        yield
    finally:
        if saved is not None:
            os.environ["REPRO_VERIFY"] = saved


def list_codes() -> str:
    """One table of every analyzer code, from the single CODES registry.

    The registry is the source of truth the analyzers themselves build
    findings from (:func:`repro.analysis.findings.finding` looks up the
    default severity there), so this listing cannot drift from behavior.
    """
    lines = [f"{'code':6s} {'severity':8s} meaning",
             f"{'-' * 6} {'-' * 8} {'-' * 7}"]
    for code in sorted(CODES):
        severity, meaning = CODES[code]
        lines.append(f"{code:6s} {severity.value:8s} {meaning}")
    return "\n".join(lines)


def lint_model(
    name: str,
    echo: bool = True,
    threads: int = 1,
    threads_probe: int = 4,
    memplan: str | None = None,
    equiv: bool = False,
) -> AnalysisReport:
    """Build one benchmark model, compile its plan, run all analyzers.

    ``memplan`` forces the buffer-planning mode for this compile (None =
    the ambient ``REPRO_MEMPLAN`` setting).
    """
    graph, _desc = _MODELS[name]()
    from repro.runtime.compiled import Arena
    from repro.runtime.plancache import PlanCache

    plan_cache = PlanCache()
    with _guard_suppressed():
        if echo:
            from repro.echo.pass_ import EchoPass

            EchoPass(plan_cache=plan_cache).run(graph)
        outputs = graph.outputs
        order = plan_cache.schedule_for(outputs)
        plan = plan_cache.compiled_for(
            outputs, Arena(), order=order, threads=threads, memplan=memplan
        )
    sources = [*graph.placeholders.values(), *graph.params.values()]
    return verify_plan(
        plan,
        outputs=outputs,
        order=order,
        threads_probe=threads_probe,
        sources=sources,
        equiv=equiv,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="statically verify benchmark model plans",
    )
    parser.add_argument(
        "--model",
        choices=(*sorted(_MODELS), "all"),
        default="all",
        help="which benchmark model to lint (default: all)",
    )
    parser.add_argument(
        "--echo",
        dest="echo",
        action="store_true",
        default=True,
        help="run the Echo pass before linting (default)",
    )
    parser.add_argument(
        "--no-echo",
        dest="echo",
        action="store_false",
        help="lint the un-rewritten graph",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="compile the plan for N wavefront threads (default 1)",
    )
    parser.add_argument(
        "--memplan",
        choices=("color", "greedy"),
        default=None,
        help="force the buffer-planning mode (default: REPRO_MEMPLAN)",
    )
    parser.add_argument(
        "--threads-probe",
        type=int,
        default=4,
        help="worker count of the race detector's maximal-parallelism "
        "probe on serial plans (default 4)",
    )
    parser.add_argument(
        "--equiv",
        action="store_true",
        help="additionally run the symbolic equivalence certifier (EQ6xx)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the finding-code catalog and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON reports",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not just errors",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="CODES",
        help="comma-separated finding codes to suppress (triaged-benign)",
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        print(list_codes())
        return 0

    ignore = tuple(c.strip() for c in args.ignore.split(",") if c.strip())
    names = sorted(_MODELS) if args.model == "all" else [args.model]

    failed = False
    json_out: list[dict] = []
    for name in names:
        report = lint_model(
            name,
            echo=args.echo,
            threads=args.threads,
            threads_probe=args.threads_probe,
            memplan=args.memplan,
            equiv=args.equiv,
        )
        if ignore:
            report = report.without(ignore)
        bad = bool(report.errors) or (args.strict and report.warnings)
        failed = failed or bool(bad)
        if args.json:
            json_out.append({"model": name, **report.to_dict()})
        else:
            verdict = "FAIL" if bad else "ok"
            print(
                f"[{verdict}] {name}: {len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
            if report.findings:
                print(report.format())
    if args.json:
        print(json.dumps(json_out, indent=2, sort_keys=True))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
