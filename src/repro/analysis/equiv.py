"""Translation validation: symbolic equivalence certification (EQ6xx).

Every other analyzer in this package verifies a *safety* property (races,
lifetimes, packing); this one verifies *functional equivalence* — that
the lowered instruction stream denotes exactly the function the source
graph denotes, per compiled plan, in the translation-validation tradition
(Pnueli et al.; Necula 2000): certify each compilation instead of
verifying the compiler once.

Both sides are hash-consed into one canonical symbolic expression DAG
(:class:`SymbolicTable`), under normalization rules that erase exactly
the rewrites the pipeline is allowed to make:

* **identity aliases** (full-range ``slice_axis``, single-input
  ``concat``, same-shape ``broadcast_to``/``reshape``) forward to their
  input's value;
* **commutative operands** of two-input ``add``/``mul`` are ordered by
  content digest (IEEE-exact: ``a+b`` and ``b+a`` are bitwise equal);
* **recompute mirrors** substitute their forward originals after a
  structural equality check (EQ607 on disagreement);
* **fused chains** expand member by member through the accumulator;
* **batched GEMMs** un-stack into per-member applications;
* **unstable RNG** nodes (a ``dropout`` whose seed is not a plain int is
  a function of the ambient RNG clock, not of its inputs) become opaque
  per-node leaves, so any duplication or reordering of them is visible.

The stream side then symbolically executes the lowered descriptors and
compares every produced register's canonical value against the graph's.
Findings:

* **EQ601** — a lowered instruction's value differs from the source
  graph's value for that register;
* **EQ602** — a rewrite with no justifying witness (fused/batched/alias
  instruction missing from the plan's :class:`~repro.analysis.witness.
  WitnessSet`, a RECOMPUTE node with no mirror, an alias-root merge no
  witness explains);
* **EQ603** — a witness failing shape/dtype/member/wiring checks
  (including a swapped batched-GEMM member);
* **EQ604** — an in-place redirect that changes an observable value
  (target group read after the overwrite, read at a non-in-place
  position, or pinned by a source/constant/output);
* **EQ605** — an alias view whose index disagrees with the witness or
  with an independent re-derivation from the node's attrs;
* **EQ606** — reordering across an RNG-clock boundary (unstable RNG
  mirrored, stream order inverting the schedule order of unstable RNG
  nodes, or two of them sharing one parallel wavefront level);
* **EQ607** — a recompute mirror structurally inequivalent to its
  original.

What is provable: value equality of every register up to the normalized
theory above (no associativity, no algebraic simplification — exactly
the identities the executor relies on for bitwise reproduction). What is
not: kernel implementations themselves (``compute_into`` ≡ ``compute``
is the op contract, tested dynamically), and scheduling/liveness safety,
which the other five analyzer families own. DESIGN.md §12 documents the
witness format and these rules.
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence

import numpy as np

from repro.graph import Node, Stage, Tensor
from repro.memplan.elision import (
    alias_view_indices,
    describe_index,
    inplace_positions,
)
from repro.runtime.compiled import PlanLowering

from repro.analysis.findings import Finding, finding
from repro.analysis.witness import WitnessSet

__all__ = [
    "SymbolicTable",
    "check_equivalence",
    "certify_outputs",
    "fingerprint_outputs",
]

_ANALYZER = "equiv"
_SOURCE_OPS = ("placeholder", "variable")
#: two-operand ops where IEEE arithmetic is exactly commutative
_COMMUTATIVE_OPS = frozenset({"add", "mul"})
#: ops reading the ambient RNG clock (pure iff their seed is a plain int)
_RNG_OPS = frozenset({"dropout"})
#: attrs that never change numerics: cost-model steering ("layout", the
#: ``gemm_batch_key`` precedent) and rewrite provenance marks
_IGNORED_ATTRS = frozenset({"layout", "echo_manual_recompute"})


class SymbolicTable:
    """Hash-consed symbolic expressions with stable content digests.

    Expressions are interned structurally: two calls with equal
    ``(kind, payload, children)`` return the same value number, so
    equivalence checks are integer comparisons. Each value number also
    carries a sha256 content digest — a pure function of the expression's
    structure, stable across processes — used for canonical commutative
    ordering and for cross-process graph fingerprints.
    """

    def __init__(self) -> None:
        self._intern: dict[tuple[Any, ...], int] = {}
        self._digests: list[str] = []

    def expr(self, kind: str, payload: tuple[Any, ...],
             children: tuple[int, ...] = ()) -> int:
        key = (kind, payload, children)
        vn = self._intern.get(key)
        if vn is not None:
            return vn
        h = hashlib.sha256()
        h.update(kind.encode("utf-8"))
        h.update(repr(payload).encode("utf-8"))
        for child in children:
            h.update(self._digests[child].encode("ascii"))
        vn = len(self._digests)
        self._digests.append(h.hexdigest())
        self._intern[key] = vn
        return vn

    def digest(self, vn: int) -> str:
        return self._digests[vn]

    def __len__(self) -> int:
        return len(self._digests)


def _array_digest(arr: np.ndarray) -> str:
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode("utf-8"))
    h.update(repr(tuple(a.shape)).encode("utf-8"))
    h.update(a.tobytes())
    return h.hexdigest()


def _canon_attrs(node: Node) -> tuple[Any, ...]:
    """Numerics-relevant attrs, sorted, with arrays content-digested."""
    items: list[tuple[Any, ...]] = []
    for key in sorted(node.attrs):
        if key in _IGNORED_ATTRS:
            continue
        value = node.attrs[key]
        if isinstance(value, np.ndarray):
            items.append((key, "ndarray", _array_digest(value)))
        else:
            items.append((key, repr(value)))
    return tuple(items)


def _stable_rng(node: Node) -> bool:
    """Whether ``node`` is a pure function of its inputs and attrs.

    Counter-based dropout with a plain-int seed is (the mask is a fixed
    function of ``(seed, step)``); any other seed makes the node depend
    on the ambient RNG clock and thus on *when* it executes.
    """
    if node.op.name not in _RNG_OPS:
        return True
    return type(node.attrs.get("seed")) is int


def _identity_passthrough(node: Node) -> bool:
    """Ops whose single output is definitionally input 0's exact value."""
    if not node.inputs or len(node.out_specs) != 1:
        return False
    in_spec = node.inputs[0].spec
    out_spec = node.out_specs[0]
    op = node.op.name
    if op == "concat":
        return len(node.inputs) == 1
    if op in ("slice_axis", "broadcast_to", "reshape"):
        # Same shape+dtype means the op is the identity: a slice of its
        # input's full extent, a no-op broadcast, a no-op reshape.
        return (
            out_spec.shape == in_spec.shape and out_spec.dtype == in_spec.dtype
        )
    return False


class _ExprBuilder:
    """Canonicalize graph values into a :class:`SymbolicTable`.

    Collects EQ602/EQ606/EQ607 findings discovered during graph-side
    canonicalization; ``flagged`` holds the uids of nodes already
    explained by such a finding, so the stream comparison can suppress
    cascading EQ601 noise for them.
    """

    def __init__(self, table: SymbolicTable) -> None:
        self.table = table
        self.findings: list[Finding] = []
        self.flagged: set[int] = set()
        self._memo: dict[tuple[int, int], int] = {}

    # -- graph side ----------------------------------------------------------

    def graph_expr(self, node: Node, index: int = 0) -> int:
        """Canonical value number of output ``index`` of ``node``."""
        key = (node.uid, index)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Iterative post-order: graphs routinely exceed the recursion
        # limit (an unrolled LSTM backward pass is thousands of nodes deep).
        stack: list[tuple[Node, bool]] = [(node, False)]
        while stack:
            n, ready = stack.pop()
            if (n.uid, 0) in self._memo:
                continue
            if ready:
                self._eval_node(n)
                continue
            stack.append((n, True))
            for t in n.inputs:
                if (t.node.uid, 0) not in self._memo:
                    stack.append((t.node, False))
            original = n.mirror_of
            if original is not None and (original.uid, 0) not in self._memo:
                stack.append((original, False))
        return self._memo[key]

    def _eval_node(self, n: Node) -> None:
        op = n.op.name
        if op in _SOURCE_OPS:
            for i, spec in enumerate(n.out_specs):
                self._memo[(n.uid, i)] = self.table.expr(
                    "source", (n.name, spec.shape, str(spec.dtype), i)
                )
            return
        if op == "constant":
            spec = n.out_specs[0]
            self._memo[(n.uid, 0)] = self.table.expr(
                "const",
                (_array_digest(np.asarray(n.attrs["value"])),
                 spec.shape, str(spec.dtype)),
            )
            return
        children = tuple(
            self._memo.get(t.key, self._opaque(t)) for t in n.inputs
        )
        original = n.mirror_of
        if original is not None:
            self._eval_mirror(n, original, children)
            return
        if n.stage is Stage.RECOMPUTE:
            self._flag(
                finding(
                    "EQ602",
                    f"recompute node {n.name!r} carries no mirror witness "
                    "(mirror_of is unset); its value cannot be certified "
                    "against a forward original",
                    _ANALYZER,
                    node=n.name,
                ),
                n.uid,
            )
        for i in range(len(n.out_specs)):
            self._memo[(n.uid, i)] = self.apply(n, children, i)

    def _eval_mirror(
        self, n: Node, original: Node, children: tuple[int, ...]
    ) -> None:
        """Check mirror ≡ original structurally, then substitute."""
        if not _stable_rng(n):
            # A clock-dependent RNG node mirrored into the backward pass
            # draws a *different* mask than its original: duplicating it
            # crosses the RNG-clock boundary no matter where it runs.
            self._flag(
                finding(
                    "EQ606",
                    f"recompute mirror {n.name!r} duplicates unstable RNG "
                    f"node {original.name!r}; replaying it advances the "
                    "RNG clock and changes the mask",
                    _ANALYZER,
                    node=n.name,
                ),
                n.uid,
            )
        else:
            mine = tuple(
                self.apply(n, children, i) for i in range(len(n.out_specs))
            )
            orig = tuple(
                self._memo.get((original.uid, i))
                for i in range(len(original.out_specs))
            )
            if mine != orig or n.out_specs != original.out_specs:
                self._flag(
                    finding(
                        "EQ607",
                        f"recompute mirror {n.name!r} is not equivalent to "
                        f"its original {original.name!r}: canonical values "
                        "disagree after normalization",
                        _ANALYZER,
                        node=n.name,
                    ),
                    n.uid,
                )
        # Substitute by the original regardless: downstream consumers are
        # then compared against the source program, and a broken mirror
        # surfaces exactly once (above) instead of cascading.
        for i in range(len(n.out_specs)):
            self._memo[(n.uid, i)] = self._memo.get(
                (original.uid, i), self._opaque(Tensor(n, i))
            )

    def _flag(self, f: Finding, uid: int) -> None:
        if uid not in self.flagged:
            self.findings.append(f)
            self.flagged.add(uid)

    def _opaque(self, t: Tensor) -> int:
        """Fallback leaf for an unresolvable reference (cyclic/corrupt)."""
        return self.table.expr("unresolved", (t.node.uid, t.index))

    # -- shared application (graph and stream sides) -------------------------

    def apply(self, n: Node, children: tuple[int, ...], index: int) -> int:
        """Canonical value of applying ``n``'s op to symbolic operands."""
        if not _stable_rng(n):
            # Clock-dependent: opaque leaf keyed by the node's identity
            # (the forward original's, for a mirror — though mirroring an
            # unstable node is itself an EQ606).
            base = n.mirror_of if n.mirror_of is not None else n
            return self.table.expr("rng", (base.uid, index))
        if index == 0 and children and _identity_passthrough(n):
            return children[0]
        if n.op.name in _COMMUTATIVE_OPS and len(children) == 2:
            a, b = children
            if self.table.digest(b) < self.table.digest(a):
                children = (b, a)
        spec = n.out_specs[index]
        return self.table.expr(
            "app",
            (n.op.name, _canon_attrs(n), spec.shape, str(spec.dtype), index),
            children,
        )


def _lowering_of(plan: Any) -> PlanLowering:
    low = getattr(plan, "lowering", plan)
    if not isinstance(low, PlanLowering):
        raise TypeError(
            f"expected a CompiledPlan or PlanLowering, got {type(plan)!r}"
        )
    return low


def _rng_members(desc: dict[str, Any]) -> list[Node]:
    """Unstable RNG nodes an instruction executes (incl. fused members)."""
    if desc["kind"] == "fused":
        nodes = [member for _op, member, _p in desc["chain"]]
    elif desc["kind"] == "batched":
        nodes = list(desc["nodes"])
    else:
        nodes = [desc["node"]]
    return [n for n in nodes if n.op.name in _RNG_OPS and not _stable_rng(n)]


def check_equivalence(
    plan: Any,
    outputs: Sequence[Tensor] | None = None,
    order: Sequence[Node] | None = None,
) -> list[Finding]:
    """Certify that a compiled plan denotes its source graph's function.

    Accepts a :class:`~repro.runtime.compiled.CompiledPlan` or a bare
    :class:`~repro.runtime.compiled.PlanLowering` (then ``order`` — the
    node schedule the plan was lowered from — is required). Returns EQ6xx
    findings; an empty list is the certificate.
    """
    low = _lowering_of(plan)
    if order is None:
        order = getattr(plan, "order", None)
    if order is None:
        raise TypeError("check_equivalence needs the plan's node order")
    order = list(order)

    table = SymbolicTable()
    builder = _ExprBuilder(table)
    witnesses = low.witnesses if low.witnesses is not None else WitnessSet()
    findings: list[Finding] = []

    # The graph's defining (node, output index) for every register slot —
    # the source-of-truth side of each per-instruction comparison. Taken
    # from ``slot_of`` (graph identities), never from the descriptors,
    # so a corrupted descriptor cannot corrupt its own expectation.
    by_uid = {n.uid: n for n in order}
    owner: dict[int, tuple[Node, int]] = {}
    for (uid, out_index), slot in low.slot_of.items():
        node = by_uid.get(uid)
        if node is not None:
            owner[slot] = (node, out_index)

    def expected_of(slot: int) -> int | None:
        own = owner.get(slot)
        if own is None:
            return None
        return builder.graph_expr(own[0], own[1])

    # Symbolic register file, seeded with the source/constant leaves.
    sym: dict[int, int] = {}
    for slot in (*low.source_slots, *low.constant_slots):
        expected = expected_of(slot)
        if expected is not None:
            sym[slot] = expected

    def child_of(slot: int) -> int:
        vn = sym.get(slot)
        if vn is not None:
            return vn
        # Slot read before any definition: LT101's finding, not ours —
        # fall back to the graph's value so tracking continues.
        expected = expected_of(slot)
        return expected if expected is not None else table.expr(
            "unresolved-slot", (slot,)
        )

    def compare(idx: int, desc: dict[str, Any], out_pos: int,
                computed: int | None, suppress: bool) -> None:
        """Compare one produced register against the graph, then assign."""
        oslot = desc["out_slots"][out_pos]
        expected = expected_of(oslot)
        if expected is None:
            if computed is not None:
                sym[oslot] = computed
            return
        node = desc["node"]
        if (
            computed is not None
            and computed != expected
            and not suppress
            and node.uid not in builder.flagged
            and owner[oslot][0].uid not in builder.flagged
        ):
            findings.append(
                finding(
                    "EQ601",
                    f"instruction {idx} ({node.name}) computes canonical "
                    f"value {table.digest(computed)[:12]} for slot {oslot}, "
                    f"but the source graph defines "
                    f"{table.digest(expected)[:12]} "
                    f"({owner[oslot][0].name})",
                    _ANALYZER,
                    node=node.name,
                    instr=idx,
                    slot=oslot,
                )
            )
        # Track the graph's value from here on: one defect, one finding.
        sym[oslot] = expected

    for idx, desc in enumerate(low.descs):
        kind = desc["kind"]
        if kind == "fused":
            findings.extend(
                _check_fused(idx, desc, witnesses, builder, child_of, compare)
            )
        elif kind == "batched":
            findings.extend(
                _check_batched(
                    idx, desc, witnesses, builder, child_of, compare
                )
            )
        elif kind == "alias":
            findings.extend(
                _check_alias(idx, desc, witnesses, builder, child_of, compare)
            )
        else:
            node = desc["node"]
            children = tuple(child_of(s) for s in desc["in_slots"])
            for i in range(len(desc["out_slots"])):
                compare(idx, desc, i, builder.apply(node, children, i), False)

    findings.extend(_check_inplace(low, witnesses))
    findings.extend(_check_roots(low, witnesses))
    findings.extend(_check_rng_clock(low, order))
    return builder.findings + findings


def _check_fused(
    idx: int,
    desc: dict[str, Any],
    witnesses: WitnessSet,
    builder: _ExprBuilder,
    child_of: Any,
    compare: Any,
) -> list[Finding]:
    """Expand one fused chain symbolically and verify its witness."""
    findings: list[Finding] = []
    chain = desc["chain"]
    tail = desc["node"]
    suppress = False
    w = witnesses.fusions.get(idx)
    if w is None:
        findings.append(
            finding(
                "EQ602",
                f"fused instruction {idx} (ending at {tail.name}) has no "
                "fusion witness",
                _ANALYZER,
                node=tail.name,
                instr=idx,
            )
        )
    else:
        members = tuple(member.uid for _op, member, _p in chain)
        tail_spec = tail.out_specs[0]
        if (
            w.members != members
            or w.tail_uid != tail.uid
            or w.shape != tail_spec.shape
            or w.dtype != str(tail_spec.dtype)
        ):
            findings.append(
                finding(
                    "EQ603",
                    f"fusion witness for instruction {idx} disagrees with "
                    f"the lowered chain (members/tail/shape/dtype)",
                    _ANALYZER,
                    node=tail.name,
                    instr=idx,
                )
            )
            suppress = True
    # Member consistency: one accumulator buffer serves the whole chain.
    tail_spec = tail.out_specs[0]
    for _op, member, _pattern in chain:
        if (
            len(member.out_specs) != 1
            or member.out_specs[0].shape != tail_spec.shape
            or member.out_specs[0].dtype != tail_spec.dtype
            or member.stage is not tail.stage
        ):
            findings.append(
                finding(
                    "EQ603",
                    f"fused instruction {idx}: member {member.name!r} "
                    "cannot share the chain accumulator "
                    "(shape/dtype/stage mismatch)",
                    _ANALYZER,
                    node=member.name,
                    instr=idx,
                )
            )
            suppress = True
    acc: int | None = None
    for _op, member, pattern in chain:
        children = tuple(
            (acc if acc is not None else builder.graph_expr(member))
            if s < 0
            else child_of(s)
            for s in pattern
        )
        acc = builder.apply(member, children, 0)
    compare(idx, desc, 0, acc, suppress)
    return findings


def _check_batched(
    idx: int,
    desc: dict[str, Any],
    witnesses: WitnessSet,
    builder: _ExprBuilder,
    child_of: Any,
    compare: Any,
) -> list[Finding]:
    """Un-stack one batched GEMM group and verify member wiring."""
    findings: list[Finding] = []
    nodes: list[Node] = list(desc["nodes"])
    head = nodes[0]
    group_suppress = False
    w = witnesses.batches.get(idx)
    if w is None:
        findings.append(
            finding(
                "EQ602",
                f"batched GEMM instruction {idx} ({head.name} group) has "
                "no batch witness",
                _ANALYZER,
                node=head.name,
                instr=idx,
            )
        )
    else:
        spec = head.out_specs[0]
        if (
            w.members != tuple(n.uid for n in nodes)
            or w.a_slots != tuple(desc["a_slots"])
            or w.b_slots != tuple(desc["b_slots"])
            or w.ta != desc["ta"]
            or w.tb != desc["tb"]
            or w.shape != spec.shape
            or w.dtype != str(spec.dtype)
        ):
            findings.append(
                finding(
                    "EQ603",
                    f"batch witness for instruction {idx} disagrees with "
                    "the lowered group (members/slots/transpose/shape)",
                    _ANALYZER,
                    node=head.name,
                    instr=idx,
                )
            )
            group_suppress = True
    # Isomorphism: every member must be the same GEMM configuration.
    for n in nodes:
        if (
            n.op.name != head.op.name
            or n.out_specs != head.out_specs
            or n.attrs.get("ta") != head.attrs.get("ta")
            or n.attrs.get("tb") != head.attrs.get("tb")
            or n.stage is not head.stage
        ):
            findings.append(
                finding(
                    "EQ603",
                    f"batched instruction {idx}: member {n.name!r} is not "
                    "isomorphic to the group head (op/shape/transpose/stage)",
                    _ANALYZER,
                    node=n.name,
                    instr=idx,
                )
            )
            group_suppress = True
    for k, member in enumerate(nodes):
        suppress = group_suppress
        a_vn = child_of(desc["a_slots"][k])
        b_vn = child_of(desc["b_slots"][k])
        if len(member.inputs) >= 2:
            exp_a = builder.graph_expr(
                member.inputs[0].node, member.inputs[0].index
            )
            exp_b = builder.graph_expr(
                member.inputs[1].node, member.inputs[1].index
            )
            if (a_vn, b_vn) != (exp_a, exp_b) and not suppress:
                findings.append(
                    finding(
                        "EQ603",
                        f"batched instruction {idx}: member {k} "
                        f"({member.name}) is wired to operand slots that "
                        "hold another member's values (swapped member)",
                        _ANALYZER,
                        node=member.name,
                        instr=idx,
                        slot=desc["out_slots"][k],
                    )
                )
                suppress = True
        compare(
            idx, desc, k, builder.apply(member, (a_vn, b_vn), 0), suppress
        )
    return findings


def _check_alias(
    idx: int,
    desc: dict[str, Any],
    witnesses: WitnessSet,
    builder: _ExprBuilder,
    child_of: Any,
    compare: Any,
) -> list[Finding]:
    """Verify one elided copy's view witness against a re-derivation."""
    findings: list[Finding] = []
    node = desc["node"]
    actual = desc.get("alias_index")
    serialized = (
        tuple(describe_index(ix) for ix in actual)
        if isinstance(actual, list)
        else None
    )
    w = witnesses.aliases.get(idx)
    if w is None:
        findings.append(
            finding(
                "EQ602",
                f"alias instruction {idx} ({node.name}) has no elision "
                "witness",
                _ANALYZER,
                node=node.name,
                instr=idx,
            )
        )
    elif (
        w.op != node.op.name
        or not desc["in_slots"]
        or w.src_slot != desc["in_slots"][0]
        or w.out_slots != tuple(desc["out_slots"])
    ):
        findings.append(
            finding(
                "EQ603",
                f"elision witness for instruction {idx} disagrees with the "
                "lowered alias (op/source/output slots)",
                _ANALYZER,
                node=node.name,
                instr=idx,
            )
        )
    # Range check: the baked index, the witness, and a fresh re-derivation
    # from the node's attrs must all agree — any disagreement means the
    # bound view does not hold the copy kernel's exact values.
    rederived = alias_view_indices(desc)
    expected_ser = (
        tuple(describe_index(ix) for ix in rederived)
        if rederived is not None
        else None
    )
    if expected_ser is None:
        findings.append(
            finding(
                "EQ605",
                f"alias instruction {idx} ({node.name}): op is not "
                "view-equivalent to a copy; the elision is unjustifiable",
                _ANALYZER,
                node=node.name,
                instr=idx,
            )
        )
    elif serialized != expected_ser:
        findings.append(
            finding(
                "EQ605",
                f"alias instruction {idx} ({node.name}): baked view index "
                f"{serialized!r} differs from the re-derived view "
                f"{expected_ser!r}",
                _ANALYZER,
                node=node.name,
                instr=idx,
            )
        )
    elif w is not None and w.indices != expected_ser:
        findings.append(
            finding(
                "EQ605",
                f"alias instruction {idx} ({node.name}): witness view "
                f"index {w.indices!r} fails its range check against "
                f"{expected_ser!r}",
                _ANALYZER,
                node=node.name,
                instr=idx,
            )
        )
    # Value side: a correct view binds exactly the op's value.
    children = tuple(child_of(s) for s in desc["in_slots"])
    for i in range(len(desc["out_slots"])):
        compare(idx, desc, i, builder.apply(node, children, i), False)
    return findings


def _check_inplace(low: PlanLowering, witnesses: WitnessSet) -> list[Finding]:
    """EQ604: every in-place redirect must be value-unobservable."""
    findings: list[Finding] = []
    if not witnesses.inplace:
        return findings
    pinned = set(low.source_slots) | set(low.constant_slots) | set(
        low.output_slots
    )
    reads_at: dict[int, list[int]] = {}
    for idx, desc in enumerate(low.descs):
        for s in desc["in_slots"]:
            reads_at.setdefault(s, []).append(idx)
    for w in witnesses.inplace:
        if not 0 <= w.instr < len(low.descs):
            findings.append(
                finding(
                    "EQ604",
                    f"in-place witness targets nonexistent instruction "
                    f"{w.instr}",
                    _ANALYZER,
                    instr=w.instr,
                )
            )
            continue
        desc = low.descs[w.instr]
        name = desc["node"].name
        if desc["kind"] not in ("out", "fused") or tuple(
            desc["out_slots"]
        ) != (w.out,):
            findings.append(
                finding(
                    "EQ604",
                    f"in-place witness at instruction {w.instr} ({name}) "
                    "does not describe that instruction's single output",
                    _ANALYZER,
                    node=name,
                    instr=w.instr,
                    slot=w.out,
                )
            )
            continue
        positions = dict(inplace_positions(desc))
        if positions.get(w.target) != 1:
            findings.append(
                finding(
                    "EQ604",
                    f"in-place redirect at instruction {w.instr} ({name}) "
                    f"overwrites slot {w.target}, which is not read exactly "
                    "once at an in-place-capable operand position — the "
                    "kernel observes its own output",
                    _ANALYZER,
                    node=name,
                    instr=w.instr,
                    slot=w.target,
                )
            )
            continue
        group = set(w.members)
        if group & pinned:
            findings.append(
                finding(
                    "EQ604",
                    f"in-place redirect at instruction {w.instr} ({name}) "
                    "overwrites a group pinned by a source/constant/output "
                    "slot — the caller observes the overwrite",
                    _ANALYZER,
                    node=name,
                    instr=w.instr,
                    slot=w.target,
                )
            )
            continue
        late = [
            (s, j)
            for s in group
            for j in reads_at.get(s, ())
            if j > w.instr
        ]
        if late:
            s, j = min(late, key=lambda p: p[1])
            findings.append(
                finding(
                    "EQ604",
                    f"in-place redirect at instruction {w.instr} ({name}) "
                    f"overwrites slot {w.target}, but group member {s} is "
                    f"read by instruction {j} afterwards — the reader "
                    "observes the new value",
                    _ANALYZER,
                    node=name,
                    instr=w.instr,
                    slot=s,
                )
            )
    return findings


def _check_roots(low: PlanLowering, witnesses: WitnessSet) -> list[Finding]:
    """EQ602: every alias-root merge must be explained by some rewrite.

    Reconstructs the expected alias partition from first principles —
    view instructions, alias (elision) instructions, batched groups, and
    witnessed in-place redirects — and compares it against the lowered
    root table. A merge nothing explains means storage is being shared
    by an unwitnessed rewrite.
    """
    nslots = len(low.root)
    parent = list(range(nslots))

    def find(s: int) -> int:
        while parent[s] != s:
            parent[s] = parent[parent[s]]
            s = parent[s]
        return s

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for desc in low.descs:
        kind = desc["kind"]
        if kind in ("view", "alias") and desc["in_slots"]:
            for o in desc["out_slots"]:
                union(desc["in_slots"][0], o)
        elif kind == "batched":
            outs = desc["out_slots"]
            for o in outs[1:]:
                union(outs[0], o)
    for w in witnesses.inplace:
        if 0 <= w.out < nslots and 0 <= w.target < nslots:
            union(w.out, w.target)

    expected_groups: dict[int, list[int]] = {}
    actual_groups: dict[int, list[int]] = {}
    for s in range(nslots):
        expected_groups.setdefault(find(s), []).append(s)
        actual_groups.setdefault(low.root[s], []).append(s)

    findings: list[Finding] = []
    expected_of = {s: tuple(g) for g in expected_groups.values() for s in g}
    actual_of = {s: tuple(g) for g in actual_groups.values() for s in g}
    reported: set[tuple[int, ...]] = set()
    for s in range(nslots):
        if expected_of[s] != actual_of[s] and actual_of[s] not in reported:
            reported.add(actual_of[s])
            findings.append(
                finding(
                    "EQ602",
                    f"alias-root table merges slots {list(actual_of[s])} "
                    "but no view/alias/batch/in-place witness explains "
                    f"that group (expected {list(expected_of[s])})",
                    _ANALYZER,
                    slot=s,
                )
            )
            if len(findings) >= 8:
                break
    return findings


def _check_rng_clock(
    low: PlanLowering, order: Sequence[Node]
) -> list[Finding]:
    """EQ606: unstable RNG nodes must keep their clock order, serially."""
    findings: list[Finding] = []
    stream: list[tuple[int, Node]] = []
    for idx, desc in enumerate(low.descs):
        for n in _rng_members(desc):
            stream.append((idx, n))
    if not stream:
        return findings
    clock = {n.uid: pos for pos, n in enumerate(order)}
    prev_pos = -1
    prev_name = ""
    for idx, n in stream:
        pos = clock.get(n.uid, n.uid + len(order))
        if pos < prev_pos:
            findings.append(
                finding(
                    "EQ606",
                    f"instruction {idx} executes unstable RNG node "
                    f"{n.name!r} after {prev_name!r}, inverting the "
                    "schedule's RNG-clock order",
                    _ANALYZER,
                    node=n.name,
                    instr=idx,
                )
            )
        prev_pos = max(prev_pos, pos)
        prev_name = n.name if pos >= prev_pos else prev_name
    if low.program_layout is not None:
        rng_instrs = {idx for idx, _n in stream}
        for kind, members in low.program_layout:
            if kind != "parallel":
                continue
            level = [i for chunk in members for i in chunk if i in rng_instrs]
            if len(level) > 1:
                findings.append(
                    finding(
                        "EQ606",
                        f"parallel wavefront level runs {len(level)} "
                        "unstable RNG instructions concurrently "
                        f"(instructions {sorted(level)}); their clock "
                        "order is nondeterministic",
                        _ANALYZER,
                        instr=min(level),
                    )
                )
    return findings


def certify_outputs(
    outputs: Sequence[Tensor],
) -> tuple[str, list[Finding]]:
    """Canonical fingerprint of a graph's outputs, plus graph-side findings.

    The fingerprint is a pure function of the graph's *normalized*
    denotation: recompute mirrors collapse onto their originals, so a
    faithful Echo rewrite leaves it unchanged — the pass's own
    translation-validation witness (see ``EchoPass``). Findings carry any
    EQ602/EQ606/EQ607 discovered while canonicalizing.
    """
    table = SymbolicTable()
    builder = _ExprBuilder(table)
    h = hashlib.sha256()
    for t in outputs:
        h.update(table.digest(builder.graph_expr(t.node, t.index)).encode())
    return h.hexdigest(), builder.findings


def fingerprint_outputs(outputs: Sequence[Tensor]) -> str:
    """Canonical output fingerprint only (see :func:`certify_outputs`)."""
    return certify_outputs(outputs)[0]
