"""Arena lifetime sanitizer over a compiled plan's lowering record.

The compiler assigns every intermediate a *static* arena buffer by
replaying the free lists at compile time (`runtime/compiled.py`): a slot's
storage is recycled to a later slot the moment its alias group's simulated
refcount drains. The correctness of that replay — frees strictly after
last use, reuse strictly after free — is exactly what end-to-end bitwise
tests can only probe indirectly. This sanitizer recomputes liveness from
the instruction descriptors alone and cross-checks every decision the
compiler recorded:

* **LT101** — an instruction reads a slot no earlier instruction (or
  source/constant binding) defines;
* **LT102** — ``frees_at`` releases a slot before its recomputed last
  use (use-after-free once the storage is recycled);
* **LT103** — two alias groups with overlapping live ranges occupy
  overlapping byte ranges of the same raw arena buffer (the
  silent-corruption class: a later write destroys a value still to be
  read; under the color memplan mode all groups share one extent, so
  the byte ranges are what keeps them apart);
* **LT104** — an escaping output (or source/constant) slot is backed by
  plan-static storage (outputs must survive later iterations, so they are
  acquired fresh every run by contract);
* **LT105** — a produced slot is never freed (warning: a leak keeps its
  size class out of the free lists but cannot corrupt results).

Scope: one plan at a time. Plans sharing an arena overlay each other's
static pages *by design* (they run one iteration to completion at a time);
cross-plan overlap is therefore not a defect and is not reported.
"""

from __future__ import annotations

from typing import Any

from numpy.lib.array_utils import byte_bounds

from repro.runtime.compiled import PlanLowering, storage_base

from repro.analysis.findings import Finding, finding

__all__ = ["check_lifetimes"]

_ANALYZER = "lifetime"


def _lowering_of(plan: Any) -> PlanLowering:
    low = getattr(plan, "lowering", plan)
    if not isinstance(low, PlanLowering):
        raise TypeError(
            f"expected a CompiledPlan or PlanLowering, got {type(plan)!r}"
        )
    return low


def check_lifetimes(plan: Any) -> list[Finding]:
    """Sanity-check a plan's slot liveness and static storage assignment.

    ``plan`` is a :class:`repro.runtime.compiled.CompiledPlan` or its
    :class:`~repro.runtime.compiled.PlanLowering` record.
    """
    low = _lowering_of(plan)
    descs = low.descs
    findings: list[Finding] = []

    # Recompute def / last-use per slot over the stream. Sources and
    # constants are defined before instruction 0.
    bound = set(low.source_slots) | set(low.constant_slots)
    def_at: dict[int, int] = {s: -1 for s in bound}
    last_use: dict[int, int] = {}
    for idx, desc in enumerate(descs):
        for s in desc["in_slots"]:
            if s not in def_at:
                findings.append(
                    finding(
                        "LT101",
                        f"instruction {idx} ({desc['node'].name}) reads "
                        f"slot {s} before any instruction defines it",
                        _ANALYZER,
                        instr=idx,
                        slot=s,
                    )
                )
            last_use[s] = idx
        for s in desc["out_slots"]:
            def_at.setdefault(s, idx)
    # A slot never consumed dies at its producer (mirrors the compiler).
    for s, d in def_at.items():
        if d >= 0:
            last_use.setdefault(s, d)

    # LT102: frees honoring last use (and each slot freed at most once).
    freed_at: dict[int, int] = {}
    for idx, fs in sorted(low.frees_at.items()):
        for s, _root, _rel in fs:
            prev = freed_at.get(s)
            if prev is not None:
                findings.append(
                    finding(
                        "LT102",
                        f"slot {s} freed twice (instructions {prev} "
                        f"and {idx})",
                        _ANALYZER,
                        instr=idx,
                        slot=s,
                    )
                )
                continue
            freed_at[s] = idx
            use = last_use.get(s, def_at.get(s, -1))
            if use > idx:
                findings.append(
                    finding(
                        "LT102",
                        f"slot {s} freed after instruction {idx} but "
                        f"still read by instruction {use}",
                        _ANALYZER,
                        instr=idx,
                        slot=s,
                    )
                )

    # LT104: pinned slots (outputs, sources, constants) must stay dynamic.
    pinned = low.output_slots | low.source_slots | low.constant_slots
    for s in sorted(pinned):
        r = low.root[s] if s < len(low.root) else s
        if r in low.static_views:
            kind = (
                "output" if s in low.output_slots
                else "constant" if s in low.constant_slots
                else "source"
            )
            findings.append(
                finding(
                    "LT104",
                    f"{kind} slot {s} is backed by plan-static storage "
                    f"(root {r}); its buffer would be recycled across "
                    "iterations",
                    _ANALYZER,
                    slot=s,
                )
            )

    # LT105: produced, unfrozen slots that are never freed.
    for s, d in sorted(def_at.items()):
        if d < 0 or s in pinned:
            continue
        if s not in freed_at:
            findings.append(
                finding(
                    "LT105",
                    f"slot {s} (defined by instruction {d}) is never "
                    "freed; its size class leaks from the arena replay",
                    _ANALYZER,
                    instr=d,
                    slot=s,
                )
            )

    # LT103: live ranges of alias groups sharing one raw buffer must be
    # disjoint. A group's range spans from its earliest member def to its
    # latest member use; batched-GEMM input scratch is acquired at its
    # instruction and deliberately never released, so it owns its pages
    # from that point to the end of the stream.
    group_def: dict[int, int] = {}
    group_use: dict[int, int] = {}
    for s, d in def_at.items():
        if d < 0 or s >= len(low.root):
            continue
        r = low.root[s]
        group_def[r] = min(group_def.get(r, d), d)
        use = last_use.get(s, d)
        group_use[r] = max(group_use.get(r, use), use)

    end = len(descs)
    # (lo, hi, byte_lo, byte_hi, label) intervals per raw buffer. The
    # byte bounds matter under the color memplan mode, where *every*
    # static view is a slice of one shared extent: two groups may share
    # the raw buffer freely as long as their byte ranges are disjoint or
    # their live ranges are.
    intervals: dict[int, list[tuple[int, int, int, int, str]]] = {}
    for r, view in low.static_views.items():
        if r not in group_def:
            continue
        base = id(storage_base(view))
        blo, bhi = byte_bounds(view)
        intervals.setdefault(base, []).append(
            (group_def[r], group_use[r], blo, bhi, f"slot group {r}")
        )
    for idx, desc in enumerate(descs):
        if desc["kind"] != "batched":
            continue
        for scratch_key in ("scratch_a", "scratch_b"):
            scratch = desc.get(scratch_key)
            if scratch is None:
                continue
            base = id(storage_base(scratch))
            blo, bhi = byte_bounds(scratch)
            intervals.setdefault(base, []).append(
                (idx, end, blo, bhi, f"{scratch_key} of instruction {idx}")
            )

    for ranges in intervals.values():
        ranges.sort()
        for i, (lo_a, hi_a, blo_a, bhi_a, label_a) in enumerate(ranges):
            for lo_b, hi_b, blo_b, bhi_b, label_b in ranges[i + 1:]:
                if lo_b > hi_a:
                    break  # sorted by lo: nothing later overlaps a in time
                if blo_a < bhi_b and blo_b < bhi_a:
                    findings.append(
                        finding(
                            "LT103",
                            f"{label_a} (live [{lo_a}, {hi_a}]) and "
                            f"{label_b} (live [{lo_b}, {hi_b}]) overlap in "
                            "one raw arena buffer",
                            _ANALYZER,
                            instr=lo_b,
                        )
                    )
    return findings
