"""IR linter: well-formedness of the dataflow graph itself.

Everything downstream — scheduling, memory planning, Echo rewrites, plan
compilation — assumes the graph is a DAG of nodes whose annotated
``TensorSpec``s are what their ops would actually infer. Those assumptions
can silently rot: Echo's ``_clone_as_mirror`` deliberately copies
``out_specs`` without re-running inference, rollbacks re-point inputs in
place, and source nodes are bound *by name* at run time. This linter
re-derives each property from scratch and reports divergence:

* **IR001** — cycle among the nodes reachable from the outputs (a rewrite
  that re-pointed an input upstream of itself);
* **IR002** — a ``Tensor`` referencing an output index its producer does
  not have;
* **IR003 / IR004** — annotated shape/dtype disagrees with re-running
  ``op.infer_specs`` (also raised when inference itself fails);
* **IR005** — a FORWARD node consuming a BACKWARD value (time runs
  backwards; forward-consuming-RECOMPUTE is the Echo barrier case and is
  reported as EC305 by :mod:`repro.analysis.recompute`);
* **IR006** — a placeholder/variable no node consumes (warning: dead
  bindings mask feed mistakes);
* **IR007** — two distinct source nodes sharing a binding name (the
  executor binds feeds/params by name, so one array would silently serve
  both).
"""

from __future__ import annotations

from typing import Sequence

from repro.graph import Node, Stage, Tensor
from repro.graph.traversal import topo_order

from repro.analysis.findings import Finding, finding

__all__ = ["lint_graph"]

_ANALYZER = "ir-lint"
_SOURCE_OPS = ("placeholder", "variable")


def _find_cycle(roots: Sequence[Node]) -> list[Node] | None:
    """One cycle among nodes reachable from ``roots``, or None.

    Iterative three-color DFS (the graphs are RNNs unrolled over time —
    recursion would overflow on long sequences).
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    for root in roots:
        if color.get(root.uid, WHITE) is not WHITE:
            continue
        stack: list[tuple[Node, int]] = [(root, 0)]
        color[root.uid] = GRAY
        path = [root]
        while stack:
            node, child_idx = stack.pop()
            if child_idx < len(node.inputs):
                stack.append((node, child_idx + 1))
                child = node.inputs[child_idx].node
                state = color.get(child.uid, WHITE)
                if state == GRAY:
                    # Cycle: path from child back to itself through node.
                    start = next(
                        i for i, n in enumerate(path) if n.uid == child.uid
                    )
                    return path[start:]
                if state == WHITE:
                    color[child.uid] = GRAY
                    path.append(child)
                    stack.append((child, 0))
            else:
                color[node.uid] = BLACK
                path.pop()
    return None


def lint_graph(
    outputs: Sequence[Tensor],
    sources: Sequence[Tensor] = (),
) -> list[Finding]:
    """Lint the graph reachable from ``outputs``; returns all findings.

    ``sources`` optionally names the placeholder/variable tensors the
    caller *intends* to bind (e.g. ``TrainingGraph.placeholders`` and
    ``params``); any of them not reachable from the outputs is reported
    as IR006 — the reachability walk alone cannot see them, precisely
    because nothing consumes them.
    """
    findings: list[Finding] = []

    cycle = _find_cycle([t.node for t in outputs])
    if cycle is not None:
        names = " -> ".join(n.name for n in cycle[:6])
        if len(cycle) > 6:
            names += " -> ..."
        findings.append(
            finding(
                "IR001",
                f"dataflow cycle of {len(cycle)} nodes: {names}",
                _ANALYZER,
                node=cycle[0].name,
            )
        )
        # Topological order does not exist; nothing below is meaningful.
        return findings

    nodes = topo_order(outputs)

    # IR002: dangling output references (from outputs and from inputs).
    def check_ref(t: Tensor, where: str) -> None:
        if not 0 <= t.index < len(t.node.out_specs):
            findings.append(
                finding(
                    "IR002",
                    f"{where} references output {t.index} of "
                    f"{t.node.name!r}, which has "
                    f"{len(t.node.out_specs)} output(s)",
                    _ANALYZER,
                    node=t.node.name,
                )
            )

    for i, t in enumerate(outputs):
        check_ref(t, f"graph output {i}")
    for node in nodes:
        for pos, t in enumerate(node.inputs):
            check_ref(t, f"input {pos} of {node.name!r}")

    # IR003/IR004: re-run shape/dtype inference and cross-check.
    for node in nodes:
        try:
            inferred = tuple(node.op.infer_specs(node))
        except Exception as exc:
            findings.append(
                finding(
                    "IR003",
                    f"shape re-inference failed for {node.name!r} "
                    f"({node.op.name}): {exc}",
                    _ANALYZER,
                    node=node.name,
                )
            )
            continue
        if len(inferred) != len(node.out_specs):
            findings.append(
                finding(
                    "IR003",
                    f"{node.name!r} annotates {len(node.out_specs)} "
                    f"outputs but inference yields {len(inferred)}",
                    _ANALYZER,
                    node=node.name,
                )
            )
            continue
        for i, (annotated, fresh) in enumerate(zip(node.out_specs, inferred)):
            if annotated.shape != fresh.shape:
                findings.append(
                    finding(
                        "IR003",
                        f"{node.name!r} output {i}: annotated shape "
                        f"{annotated.shape} but inference gives "
                        f"{fresh.shape}",
                        _ANALYZER,
                        node=node.name,
                    )
                )
            if annotated.dtype != fresh.dtype:
                findings.append(
                    finding(
                        "IR004",
                        f"{node.name!r} output {i}: annotated dtype "
                        f"{annotated.dtype} but inference gives "
                        f"{fresh.dtype}",
                        _ANALYZER,
                        node=node.name,
                    )
                )

    # IR005: forward nodes consuming backward values.
    for node in nodes:
        if node.stage is not Stage.FORWARD:
            continue
        for t in node.inputs:
            if t.node.stage is Stage.BACKWARD:
                findings.append(
                    finding(
                        "IR005",
                        f"forward node {node.name!r} consumes backward "
                        f"value {t.short_name!r}",
                        _ANALYZER,
                        node=node.name,
                    )
                )

    # IR006/IR007: source hygiene.
    consumed: set[tuple[int, int]] = set()
    for node in nodes:
        for t in node.inputs:
            consumed.add(t.key)
    output_keys = {t.key for t in outputs}
    reachable = {n.uid for n in nodes}
    declared = {t.node.uid: t.node for t in sources}
    seen_names: dict[str, Node] = {}
    for node in (*nodes, *(
        n for uid, n in sorted(declared.items()) if uid not in reachable
    )):
        if node.op.name not in _SOURCE_OPS:
            continue
        other = seen_names.get(node.name)
        if other is not None:
            findings.append(
                finding(
                    "IR007",
                    f"{node.op.name} name {node.name!r} is bound by two "
                    f"nodes (uids {other.uid} and {node.uid}); run-time "
                    "feeds bind by name and would serve both",
                    _ANALYZER,
                    node=node.name,
                )
            )
        else:
            seen_names[node.name] = node
        key = (node.uid, 0)
        if key not in consumed and key not in output_keys:
            findings.append(
                finding(
                    "IR006",
                    f"{node.op.name} {node.name!r} is never consumed",
                    _ANALYZER,
                    node=node.name,
                )
            )
    return findings
