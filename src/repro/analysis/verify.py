"""One-call plan verification: every analyzer family over one compiled plan.

:func:`verify_plan` is the aggregation point — graph IR lint, recompute
safety over the schedule, arena lifetime sanity over the lowering,
memplan packing/rewrite safety, race detection over the wavefront
schedule (stored or probed), and (``equiv=True``) symbolic equivalence
certification of the whole rewrite pipeline — returning a single
:class:`AnalysisReport`. :func:`assert_plan_safe` turns an unclean report
into a :class:`PlanVerificationError`.

The opt-in runtime guard has two tiers. With ``REPRO_VERIFY=1`` in the
environment, :class:`repro.runtime.plancache.PlanCache` calls
:func:`assert_plan_safe` on every plan it compiles (cache misses only —
verification is itself memoized by the cache's build-once contract), so a
full test run or a serving warmup statically verifies every plan it
touches before the first iteration executes. ``REPRO_VERIFY=full`` (or
``equiv``) additionally runs the translation-validation certifier
(:mod:`repro.analysis.equiv`) on each compile.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Sequence

from repro.graph import Node, Tensor

from repro.analysis.equiv import check_equivalence
from repro.analysis.findings import AnalysisReport
from repro.analysis.ir_lint import lint_graph
from repro.analysis.lifetime import check_lifetimes
from repro.analysis.packing import check_packing
from repro.analysis.races import check_plan_races
from repro.analysis.recompute import check_recompute_safety

__all__ = [
    "PlanVerificationError",
    "verification_enabled",
    "verification_tier",
    "verify_graph",
    "verify_plan",
    "assert_plan_safe",
]

#: env var gating the PlanCache compile-time guard
VERIFY_ENV = "REPRO_VERIFY"

_TRUTHY = ("1", "true", "yes", "on")


class PlanVerificationError(RuntimeError):
    """A compiled plan failed static verification.

    ``report`` carries the full :class:`AnalysisReport`, including the
    warnings that did not contribute to the failure.
    """

    def __init__(self, message: str, report: AnalysisReport) -> None:
        super().__init__(message)
        self.report = report


#: values of REPRO_VERIFY selecting the full (equivalence) tier
_FULL = ("full", "equiv")


def verification_tier() -> str | None:
    """The ``REPRO_VERIFY`` tier: None (off), ``"basic"``, or ``"full"``.

    ``full``/``equiv`` adds symbolic equivalence certification on top of
    the five safety analyzers; any other truthy value selects ``basic``.
    """
    raw = os.environ.get(VERIFY_ENV, "").strip().lower()
    if raw in _FULL:
        return "full"
    if raw in _TRUTHY:
        return "basic"
    return None


def verification_enabled() -> bool:
    """Whether the ``REPRO_VERIFY`` compile-time guard is switched on."""
    return verification_tier() is not None


def verify_graph(
    outputs: Sequence[Tensor],
    order: Sequence[Node] | None = None,
    sources: Sequence[Tensor] = (),
) -> AnalysisReport:
    """Graph-level verification only (no lowered plan required)."""
    report = AnalysisReport()
    report.extend(lint_graph(outputs, sources=sources))
    if order is not None:
        report.extend(
            check_recompute_safety(order, {t.key for t in outputs})
        )
    return report


def verify_plan(
    plan: Any,
    outputs: Sequence[Tensor] | None = None,
    order: Sequence[Node] | None = None,
    threads_probe: int = 4,
    sources: Sequence[Tensor] = (),
    equiv: bool = False,
) -> AnalysisReport:
    """Run the analyzer families against one compiled plan.

    ``outputs``/``order`` default to the plan's own; pass them explicitly
    when verifying a plan against a graph state other than the one it was
    compiled from. ``sources`` feeds the IR linter's unused-source check
    (bindings the plan never consumes are invisible to reachability).
    ``equiv=True`` adds the symbolic equivalence certifier (EQ6xx) — the
    translation-validation tier, proving the lowered stream denotes the
    source graph's function.
    """
    outputs = plan.outputs if outputs is None else list(outputs)
    order = plan.order if order is None else list(order)
    report = AnalysisReport()
    report.extend(lint_graph(outputs, sources=sources))
    report.extend(check_recompute_safety(order, {t.key for t in outputs}))
    report.extend(check_lifetimes(plan))
    report.extend(check_packing(plan))
    report.extend(check_plan_races(plan, threads_probe=threads_probe))
    if equiv:
        report.extend(
            check_equivalence(plan, outputs=outputs, order=order)
        )
    return report


def assert_plan_safe(
    plan: Any,
    outputs: Sequence[Tensor] | None = None,
    order: Sequence[Node] | None = None,
    threads_probe: int = 4,
    ignore: Iterable[str] = (),
    equiv: bool = False,
) -> AnalysisReport:
    """Verify ``plan`` and raise :class:`PlanVerificationError` on errors.

    ``ignore`` suppresses specific finding codes (triaged-benign ones);
    the returned report is the filtered one.
    """
    report = verify_plan(
        plan, outputs=outputs, order=order, threads_probe=threads_probe,
        equiv=equiv,
    )
    ignore = tuple(ignore)
    if ignore:
        report = report.without(ignore)
    if not report.ok:
        errors = report.errors
        detail = "\n".join(f.format() for f in errors[:8])
        if len(errors) > 8:
            detail += f"\n... and {len(errors) - 8} more"
        raise PlanVerificationError(
            f"plan verification failed with {len(errors)} error(s):\n"
            f"{detail}",
            report,
        )
    return report
