"""Static analysis of graphs, compiled plans, and wavefront schedules.

Seven analyzer families, each independently re-deriving an invariant the
compiler or a rewrite is supposed to maintain:

* :func:`lint_graph` — dataflow-graph well-formedness (IR0xx);
* :func:`check_lifetimes` — arena slot liveness vs. the compiled plan's
  static buffer replay (LT1xx);
* :func:`check_plan_races` / :func:`check_schedule` — happens-before
  verification of wavefront schedules (RC2xx);
* :func:`check_recompute_safety` — Echo recompute-region invariants over
  a schedule (EC3xx);
* :func:`check_packing` — memplan alias/coloring/in-place safety over
  the lowered stream and its packing record (MP4xx);
* :func:`check_bucket_plan` / :func:`check_rank_layouts` — distributed
  gradient-bucket coverage and cross-rank layout agreement (DS5xx);
* :func:`check_equivalence` — translation validation: symbolic
  equivalence certification of the whole rewrite pipeline against the
  source graph, driven by per-pass rewrite witnesses (EQ6xx).

:func:`verify_plan` aggregates the plan-level families over one
:class:`CompiledPlan` (``equiv=True`` adds the certifier);
``python -m repro.analysis.lint`` runs them over the benchmark models
(``--equiv`` for the full tier); ``REPRO_VERIFY=1`` wires
:func:`assert_plan_safe` into every
:class:`~repro.runtime.plancache.PlanCache` compile and
``REPRO_VERIFY=full`` adds equivalence certification. DESIGN.md §8
documents the finding-code catalog and how to add a check; §12 the
witness format and normalization rules.
"""

from repro.analysis.findings import (
    CODES,
    AnalysisReport,
    Finding,
    Severity,
)
from repro.analysis.distcheck import check_bucket_plan, check_rank_layouts
from repro.analysis.equiv import (
    check_equivalence,
    certify_outputs,
    fingerprint_outputs,
)
from repro.analysis.ir_lint import lint_graph
from repro.analysis.lifetime import check_lifetimes
from repro.analysis.packing import check_packing
from repro.analysis.races import check_plan_races, check_schedule, labeled_edges
from repro.analysis.recompute import check_recompute_safety
from repro.analysis.verify import (
    PlanVerificationError,
    assert_plan_safe,
    verification_enabled,
    verification_tier,
    verify_graph,
    verify_plan,
)
from repro.analysis.witness import (
    AliasWitness,
    BatchWitness,
    FusionWitness,
    InplaceWitness,
    MirrorWitness,
    WitnessSet,
)

__all__ = [
    "CODES",
    "AnalysisReport",
    "Finding",
    "Severity",
    "lint_graph",
    "check_bucket_plan",
    "check_rank_layouts",
    "check_lifetimes",
    "check_packing",
    "check_plan_races",
    "check_schedule",
    "labeled_edges",
    "check_recompute_safety",
    "check_equivalence",
    "certify_outputs",
    "fingerprint_outputs",
    "PlanVerificationError",
    "assert_plan_safe",
    "verification_enabled",
    "verification_tier",
    "verify_graph",
    "verify_plan",
    "AliasWitness",
    "BatchWitness",
    "FusionWitness",
    "InplaceWitness",
    "MirrorWitness",
    "WitnessSet",
]
