"""Distributed bucket-coverage checker (DS5xx).

Independently re-derives the invariants :func:`repro.dist.bucketing.\
plan_grad_buckets` is supposed to maintain, the same way the lifetime
and race analyzers re-derive the compiler's: a
:class:`~repro.dist.bucketing.GradBucketPlan` is only sound if

* every trainable parameter appears in exactly one bucket segment
  (DS501 missing / DS502 duplicated) — a missed parameter trains on
  *local* gradients and the ranks silently diverge;
* within each bucket, segments tile the flat buffer without overlap or
  overflow and match the bucket dtype (DS503);
* each segment's shape/dtype agrees with the model's parameter spec
  (DS504) — a transposed shape would scatter reduced values into the
  wrong elements;
* no bucket exceeds the configured cap, except a single oversized
  parameter that cannot be split (DS505, warning: correct but defeats
  overlap granularity);
* all ranks agree on the layout fingerprint (DS506) — the runtime
  all-gathers fingerprints at startup; :func:`check_rank_layouts` makes
  the same judgement statically, e.g. over fingerprints collected from
  logs of a crashed cohort.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.analysis.findings import Finding, finding

if TYPE_CHECKING:  # typing only: dist sits above the analysis layer
    from repro.dist.bucketing import GradBucketPlan

__all__ = ["check_bucket_plan", "check_rank_layouts"]

_ANALYZER = "distcheck"


def check_bucket_plan(
    plan: "GradBucketPlan",
    specs: Mapping[str, tuple[tuple[int, ...], str]],
) -> list[Finding]:
    """Check one rank's bucket plan against the model's parameter specs.

    ``specs`` maps every trainable parameter name to ``(shape, dtype)``
    — the same table the planner consumed, re-supplied here so the
    checker validates the *output* against the source of truth rather
    than trusting the plan's own copy.
    """
    findings: list[Finding] = []

    seen: dict[str, int] = {}
    for bucket in plan.buckets:
        for seg in bucket.segments:
            seen[seg.name] = seen.get(seg.name, 0) + 1
    for name in specs:
        if name not in seen:
            findings.append(
                finding(
                    "DS501",
                    f"parameter {name!r} is in no bucket — its gradient "
                    "would stay rank-local and the replicas would diverge",
                    _ANALYZER,
                    node=name,
                )
            )
    for name, count in seen.items():
        if count > 1:
            findings.append(
                finding(
                    "DS502",
                    f"parameter {name!r} appears in {count} segments — "
                    "it would be reduced (and divided) more than once",
                    _ANALYZER,
                    node=name,
                )
            )
        if name not in specs:
            findings.append(
                finding(
                    "DS504",
                    f"segment {name!r} does not name a trainable parameter",
                    _ANALYZER,
                    node=name,
                )
            )

    for bucket in plan.buckets:
        cursor = 0
        for seg in bucket.segments:
            if seg.dtype != bucket.dtype:
                findings.append(
                    finding(
                        "DS503",
                        f"bucket {bucket.index}: segment {seg.name!r} is "
                        f"{seg.dtype}, bucket buffer is {bucket.dtype}",
                        _ANALYZER,
                        node=seg.name,
                        instr=bucket.index,
                    )
                )
            if seg.offset != cursor:
                findings.append(
                    finding(
                        "DS503",
                        f"bucket {bucket.index}: segment {seg.name!r} at "
                        f"offset {seg.offset}, expected {cursor} — segments "
                        "overlap or leave a gap",
                        _ANALYZER,
                        node=seg.name,
                        instr=bucket.index,
                    )
                )
            cursor = max(cursor, seg.offset + seg.size)
            spec = specs.get(seg.name)
            if spec is not None:
                shape, dtype = spec
                if tuple(shape) != seg.shape or str(
                    np.dtype(dtype)
                ) != seg.dtype:
                    findings.append(
                        finding(
                            "DS504",
                            f"segment {seg.name!r} declares "
                            f"{seg.shape}/{seg.dtype}, model says "
                            f"{tuple(shape)}/{np.dtype(dtype)}",
                            _ANALYZER,
                            node=seg.name,
                            instr=bucket.index,
                        )
                    )
        if cursor != bucket.elements:
            findings.append(
                finding(
                    "DS503",
                    f"bucket {bucket.index}: segments cover {cursor} "
                    f"elements of a {bucket.elements}-element buffer",
                    _ANALYZER,
                    instr=bucket.index,
                )
            )
        if bucket.nbytes > plan.bucket_bytes and len(bucket.segments) > 1:
            findings.append(
                finding(
                    "DS505",
                    f"bucket {bucket.index}: {bucket.nbytes} bytes exceeds "
                    f"the {plan.bucket_bytes}-byte cap with "
                    f"{len(bucket.segments)} segments — overlap granularity "
                    "suffers",
                    _ANALYZER,
                    instr=bucket.index,
                )
            )
    return findings


def check_rank_layouts(
    fingerprints: Mapping[int, str] | Sequence[str],
) -> list[Finding]:
    """Compare per-rank layout fingerprints; divergence is DS506.

    Accepts ``{rank: fingerprint}`` or a list indexed by rank. The
    lowest rank's layout is taken as the reference (matching the
    runtime, where the leader's view wins).
    """
    if not isinstance(fingerprints, Mapping):
        fingerprints = dict(enumerate(fingerprints))
    if not fingerprints:
        return []
    ranks = sorted(fingerprints)
    reference = fingerprints[ranks[0]]
    return [
        finding(
            "DS506",
            f"rank {rank}: bucket layout {fingerprints[rank][:12]}… "
            f"diverges from rank {ranks[0]}'s {reference[:12]}…",
            _ANALYZER,
        )
        for rank in ranks[1:]
        if fingerprints[rank] != reference
    ]
