"""Recomputation safety checker for Echo's mirrored regions.

Echo's promise is that recomputing instead of stashing never changes
training results. That holds only if every mirrored region satisfies the
invariants the rewrite (`echo/rewrite.py`) is supposed to establish:
its stash borders are scheduled before it (dominance), replaying it is
deterministic, and the stage structure still forms valid barriers. This
checker takes a *schedule* (the node order a plan will execute) and
re-verifies each invariant from scratch:

* **EC301** — a RECOMPUTE node consumes a BACKWARD value: the region's
  borders are not all stashes, so it is not a pure replay of forward
  state;
* **EC302** — a mirror disagrees with its ``mirror_of`` original: wrong
  op, wrong output specs, or inputs that are neither the original's
  inputs nor their mirrors (``_clone_as_mirror`` copies specs without
  re-inference, so nothing else ever cross-checks this);
* **EC303** — a non-deterministic op (RNG: dropout) inside a recompute
  region whose seed is not a plain int from the stable crc32 scheme —
  replay would draw a different mask than the forward pass;
* **EC304** — a mirror's attrs differ from its original's (same mask
  seed, same dropout rate, same axis... attrs are the kernel's compile
  -time constants);
* **EC305** — a FORWARD node consumes a RECOMPUTE value (the Echo stage
  barrier the wavefront executor relies on would be violated);
* **EC306** — a recompute node none of whose outputs reach a BACKWARD or
  RECOMPUTE consumer (warning: a dead mirror, typically rollback debris —
  wasted replay work but no wrong numerics);
* **EC307** — the schedule orders a consumer before its producer;
* **EC308** — a scheduled node consumes a value whose producer is not in
  the schedule at all.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph import Node, Stage

from repro.analysis.findings import Finding, finding

__all__ = ["check_recompute_safety"]

_ANALYZER = "recompute"

#: op names whose kernels draw randomness; extend this set when adding a
#: stochastic op, and make its determinism contract checkable from attrs
_RNG_OPS = frozenset({"dropout"})

#: attrs that are scheduling provenance, not kernel inputs — kernels never
#: read them, so a mirror carrying one its original lacks is not a
#: numerics divergence. `echo_manual_recompute` is consumed (and popped
#: from originals) by `echo/manual.py`; mirrors keep the copied mark.
_PROVENANCE_ATTRS = frozenset({"echo_manual_recompute"})


def _attrs_equal(a: dict, b: dict) -> bool:
    a = {k: v for k, v in a.items() if k not in _PROVENANCE_ATTRS}
    b = {k: v for k, v in b.items() if k not in _PROVENANCE_ATTRS}
    if a.keys() != b.keys():
        return False
    for k, va in a.items():
        vb = b[k]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not (
                isinstance(va, np.ndarray)
                and isinstance(vb, np.ndarray)
                and va.shape == vb.shape
                and va.dtype == vb.dtype
                and np.array_equal(va, vb)
            ):
                return False
        elif va is not vb and va != vb:
            return False
    return True


def check_recompute_safety(
    order: Sequence[Node],
    output_keys: Iterable[tuple[int, int]] = (),
) -> list[Finding]:
    """Verify Echo's recompute invariants over a scheduled node order."""
    findings: list[Finding] = []
    position = {n.uid: i for i, n in enumerate(order)}
    output_keys = set(output_keys)

    # EC307 / EC308: schedule integrity (meaningful with or without Echo).
    for node in order:
        for t in node.inputs:
            producer_pos = position.get(t.node.uid)
            if producer_pos is None:
                findings.append(
                    finding(
                        "EC308",
                        f"{node.name!r} consumes {t.short_name!r}, whose "
                        "producer is not in the schedule",
                        _ANALYZER,
                        node=node.name,
                    )
                )
            elif producer_pos >= position[node.uid]:
                findings.append(
                    finding(
                        "EC307",
                        f"{node.name!r} (position {position[node.uid]}) "
                        f"consumes {t.short_name!r} scheduled at "
                        f"{producer_pos}",
                        _ANALYZER,
                        node=node.name,
                    )
                )

    recompute_nodes = [n for n in order if n.stage is Stage.RECOMPUTE]
    if not recompute_nodes:
        return findings
    recompute_uids = {n.uid for n in recompute_nodes}

    # EC305: the forward pass must be closed under the stage barrier.
    for node in order:
        if node.stage is not Stage.FORWARD:
            continue
        for t in node.inputs:
            if t.node.uid in recompute_uids:
                findings.append(
                    finding(
                        "EC305",
                        f"forward node {node.name!r} consumes recompute "
                        f"value {t.short_name!r}; stage runs are no "
                        "longer valid execution barriers",
                        _ANALYZER,
                        node=node.name,
                    )
                )

    # EC301: recompute borders must be stashes (forward), sources, or
    # other mirrors — never backward values.
    for node in recompute_nodes:
        for t in node.inputs:
            if t.node.stage is Stage.BACKWARD:
                findings.append(
                    finding(
                        "EC301",
                        f"recompute node {node.name!r} consumes backward "
                        f"value {t.short_name!r}; its region is not a "
                        "replay of forward state",
                        _ANALYZER,
                        node=node.name,
                    )
                )

    # EC302 / EC304: mirror fidelity against the forward original.
    for node in recompute_nodes:
        original = node.mirror_of
        if original is None:
            findings.append(
                finding(
                    "EC302",
                    f"recompute node {node.name!r} has no mirror_of "
                    "original to validate against",
                    _ANALYZER,
                    node=node.name,
                )
            )
            continue
        if node.op is not original.op:
            findings.append(
                finding(
                    "EC302",
                    f"mirror {node.name!r} runs op {node.op.name!r} but "
                    f"its original runs {original.op.name!r}",
                    _ANALYZER,
                    node=node.name,
                )
            )
        if tuple(node.out_specs) != tuple(original.out_specs):
            findings.append(
                finding(
                    "EC302",
                    f"mirror {node.name!r} annotates {node.out_specs} "
                    f"but its original annotates {original.out_specs}",
                    _ANALYZER,
                    node=node.name,
                )
            )
        if len(node.inputs) != len(original.inputs):
            findings.append(
                finding(
                    "EC302",
                    f"mirror {node.name!r} has {len(node.inputs)} inputs "
                    f"but its original has {len(original.inputs)}",
                    _ANALYZER,
                    node=node.name,
                )
            )
        else:
            for pos, (mt, ot) in enumerate(zip(node.inputs, original.inputs)):
                if mt.key == ot.key:
                    continue  # stash border: reads the original value
                if (
                    mt.node.mirror_of is ot.node
                    and mt.index == ot.index
                ):
                    continue  # interior edge re-pointed at a sibling mirror
                findings.append(
                    finding(
                        "EC302",
                        f"mirror {node.name!r} input {pos} reads "
                        f"{mt.short_name!r}, which is neither the "
                        f"original's input {ot.short_name!r} nor its "
                        "mirror",
                        _ANALYZER,
                        node=node.name,
                    )
                )
        if not _attrs_equal(node.attrs, original.attrs):
            findings.append(
                finding(
                    "EC304",
                    f"mirror {node.name!r} attrs {node.attrs!r} differ "
                    f"from the original's {original.attrs!r}",
                    _ANALYZER,
                    node=node.name,
                )
            )

    # EC303: determinism of replayed RNG ops. The dropout kernel redraws
    # its mask from (seed, global step); a replay is bit-identical only
    # when the seed is a plain int (the stable_seed crc32 scheme), not
    # None/float/absent — anything else re-seeds differently or crashes.
    for node in recompute_nodes:
        if node.op.name not in _RNG_OPS:
            continue
        seed = node.attrs.get("seed")
        if not isinstance(seed, int) or isinstance(seed, bool):
            findings.append(
                finding(
                    "EC303",
                    f"recomputed RNG node {node.name!r} has seed "
                    f"{seed!r}; replay cannot reproduce the forward "
                    "pass's draw without a stable integer seed",
                    _ANALYZER,
                    node=node.name,
                )
            )

    # EC306: mirrors that never drain into the backward pass.
    drained: set[int] = set()
    for node in order:
        if node.stage is Stage.FORWARD:
            continue
        for t in node.inputs:
            if t.node.uid in recompute_uids and t.node.uid != node.uid:
                drained.add(t.node.uid)
    for node in recompute_nodes:
        if node.uid in drained:
            continue
        if any((node.uid, i) in output_keys for i in range(len(node.out_specs))):
            continue
        findings.append(
            finding(
                "EC306",
                f"recompute node {node.name!r} has no backward or "
                "recompute consumer; it replays for nothing",
                _ANALYZER,
                node=node.name,
            )
        )
    return findings
