"""Wavefront race detector: happens-before verification of schedules.

The wavefront planner (`runtime/wavefront.py`) promises that two
instructions sharing a parallel level have no value or storage hazard
between them and that levels never span an Echo stage barrier. This module
*re-derives* the hazard edges from the instruction facts — independently
of ``_dependency_edges``, with each edge labeled by kind — and checks a
given :class:`WavefrontSchedule` against them:

* **RC201 / RC202 / RC204** — a write-write storage, read-write storage,
  or read-after-write value edge joins two instructions placed in the
  same *parallel* level (they may run concurrently on worker threads);
* **RC203** — one level mixes instructions from different Echo stages
  (stage transitions must be barriers, or recompute regions lose their
  checkpoint semantics);
* **RC205** — the schedule drops or duplicates an instruction (coverage);
* **RC206** — an edge's predecessor is placed in a *later* level than its
  successor (happens-before inversion: levels execute in order, so the
  consumer would run first).

For serial plans — which never ran the wavefront planner —
:func:`check_plan_races` probes a hypothetical maximally-parallel
schedule (``threads_probe`` workers, cost gates zeroed): if even that
admits no race, the hazard structure itself is sound and any cost-gated
real schedule, which only *merges* levels into serial runs, is too.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.runtime.wavefront import (
    InstrInfo,
    WavefrontSchedule,
    analyze_wavefronts,
)

from repro.analysis.findings import Finding, finding

__all__ = ["labeled_edges", "check_schedule", "check_plan_races"]

_ANALYZER = "races"

#: edge kind -> finding code for a same-parallel-level conflict
_LEVEL_CODE = {"waw": "RC201", "war": "RC202", "raw": "RC204"}


def labeled_edges(
    infos: Sequence[InstrInfo],
) -> list[tuple[int, int, str, int]]:
    """Hazard edges ``(pred, succ, kind, subject)`` over the stream.

    ``kind`` is ``raw`` (value: succ reads a slot pred wrote), ``war``
    (storage: succ overwrites a raw buffer pred read), or ``waw``
    (storage: both write one raw buffer). ``subject`` is the slot (raw)
    or the storage base id (war/waw). Deliberately a fresh derivation,
    not a call into ``wavefront._dependency_edges`` — the detector must
    not inherit a bug from the code it checks.
    """
    edges: list[tuple[int, int, str, int]] = []

    writer_of_slot: dict[int, int] = {}
    for info in infos:
        for s in info.reads:
            producer = writer_of_slot.get(s)
            if producer is not None:
                edges.append((producer, info.index, "raw", s))
        for s in info.writes:
            writer_of_slot[s] = info.index

    last_writer: dict[int, int] = {}
    readers_since: dict[int, list[int]] = {}
    for info in infos:
        for b in info.write_bases:
            prev = last_writer.get(b)
            if prev is not None and prev != info.index:
                edges.append((prev, info.index, "waw", b))
            for r in readers_since.get(b, ()):
                if r != info.index:
                    edges.append((r, info.index, "war", b))
            readers_since[b] = []
            last_writer[b] = info.index
        for b in info.read_bases:
            readers_since.setdefault(b, []).append(info.index)
    return edges


def check_schedule(
    infos: Sequence[InstrInfo], schedule: WavefrontSchedule
) -> list[Finding]:
    """Verify ``schedule`` respects every hazard among ``infos``."""
    findings: list[Finding] = []

    # RC205: exact coverage of the stream.
    level_of: dict[int, int] = {}
    parallel_level: dict[int, bool] = {}
    duplicated: set[int] = set()
    for level_idx, wf in enumerate(schedule.levels):
        for i in wf.instructions:
            if i in level_of:
                duplicated.add(i)
            level_of[i] = level_idx
            parallel_level[i] = wf.parallel
    expected = set(range(len(infos)))
    scheduled = set(level_of)
    for i in sorted(duplicated):
        findings.append(
            finding(
                "RC205",
                f"instruction {i} appears in more than one level",
                _ANALYZER,
                instr=i,
            )
        )
    for i in sorted(expected - scheduled):
        findings.append(
            finding(
                "RC205",
                f"instruction {i} is missing from the schedule",
                _ANALYZER,
                instr=i,
            )
        )
    for i in sorted(scheduled - expected):
        findings.append(
            finding(
                "RC205",
                f"schedule names instruction {i}, which is outside the "
                f"stream of {len(infos)}",
                _ANALYZER,
                instr=i,
            )
        )
    if expected != scheduled:
        return findings  # edge checks below would mis-index

    # RC203: stage uniformity per level.
    for level_idx, wf in enumerate(schedule.levels):
        stages = {id(infos[i].stage): infos[i].stage for i in wf.instructions}
        if len(stages) > 1:
            names = sorted(
                getattr(s, "value", str(s)) for s in stages.values()
            )
            findings.append(
                finding(
                    "RC203",
                    f"level {level_idx} mixes stages {names}; stage "
                    "transitions must be barriers",
                    _ANALYZER,
                    instr=wf.instructions[0],
                )
            )

    # Edge placement: predecessor strictly before, or same serial level.
    for pred, succ, kind, subject in labeled_edges(infos):
        lp, ls = level_of[pred], level_of[succ]
        if lp < ls:
            continue
        what = (
            f"slot {subject}" if kind == "raw" else f"storage base {subject}"
        )
        if lp > ls:
            findings.append(
                finding(
                    "RC206",
                    f"instruction {succ} depends on {pred} ({kind} on "
                    f"{what}) but runs in level {ls}, before its "
                    f"dependency's level {lp}",
                    _ANALYZER,
                    instr=succ,
                    slot=subject if kind == "raw" else None,
                )
            )
        elif parallel_level[pred]:
            findings.append(
                finding(
                    _LEVEL_CODE[kind],
                    f"instructions {pred} and {succ} share parallel level "
                    f"{lp} but conflict ({kind} on {what})",
                    _ANALYZER,
                    instr=succ,
                    slot=subject if kind == "raw" else None,
                )
            )
        # Same serial level: members execute in stream order; edges always
        # point forward in the stream, so the hazard is honored.
    return findings


def check_plan_races(plan: Any, threads_probe: int = 4) -> list[Finding]:
    """Race-check a compiled plan's schedule (stored or probed).

    A plan compiled with ``threads > 1`` carries the schedule it actually
    executes; that is checked as-is. A serial plan is checked against a
    maximally-parallel probe (``threads_probe`` workers, cost gates
    zeroed) — the strictest schedule its hazard edges admit.
    """
    low = getattr(plan, "lowering", None)
    infos = (
        plan.instr_infos()
        if hasattr(plan, "instr_infos")
        else low.infos if low is not None else None
    )
    if infos is None:
        raise TypeError(f"cannot derive InstrInfos from {type(plan)!r}")
    findings: list[Finding] = []
    stored = low.schedule if low is not None else None
    if stored is not None:
        findings.extend(check_schedule(infos, stored))
    else:
        probe = analyze_wavefronts(
            infos,
            threads_probe,
            min_chunk_seconds=0.0,
            min_level_seconds=0.0,
        )
        findings.extend(check_schedule(infos, probe))
    return findings
