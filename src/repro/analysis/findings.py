"""Finding data model shared by every analyzer in :mod:`repro.analysis`.

Each analyzer returns a flat list of :class:`Finding`s; callers aggregate
them into an :class:`AnalysisReport`. Findings carry a stable *code* (the
catalog below — DESIGN.md §8 documents the semantics) so tests can assert
"this seeded defect is caught as LT103" and CI can suppress a triaged
code without silencing the analyzer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator

__all__ = ["Severity", "Finding", "AnalysisReport", "CODES"]


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the plan/graph must not execute (silent
    corruption or wrong numerics are possible); ``WARNING`` findings are
    suspicious but provably cannot change results; ``INFO`` is advisory.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


#: Catalog of finding codes: code -> (default severity, short description).
CODES: dict[str, tuple[Severity, str]] = {
    # -- IR linter (graph well-formedness) ---------------------------------
    "IR001": (Severity.ERROR, "cycle in the dataflow graph"),
    "IR002": (Severity.ERROR, "input references a non-existent node output"),
    "IR003": (Severity.ERROR, "annotated shape disagrees with re-inference"),
    "IR004": (Severity.ERROR, "annotated dtype disagrees with re-inference"),
    "IR005": (Severity.ERROR, "forward node consumes a backward value"),
    "IR006": (Severity.WARNING, "source node is never consumed"),
    "IR007": (Severity.ERROR, "duplicate placeholder/variable binding name"),
    # -- arena lifetime sanitizer (lowered plans) --------------------------
    "LT101": (Severity.ERROR, "slot read before any instruction defines it"),
    "LT102": (Severity.ERROR, "slot freed before its last use"),
    "LT103": (Severity.ERROR, "overlapping live ranges share arena storage"),
    "LT104": (Severity.ERROR, "pinned slot backed by recycled static storage"),
    "LT105": (Severity.WARNING, "dead slot is never freed (leak)"),
    # -- wavefront race detector -------------------------------------------
    "RC201": (Severity.ERROR, "write-write storage conflict in one level"),
    "RC202": (Severity.ERROR, "read-write storage conflict in one level"),
    "RC203": (Severity.ERROR, "parallel level crosses an Echo stage barrier"),
    "RC204": (Severity.ERROR, "value dependency inside one parallel level"),
    "RC205": (Severity.ERROR, "schedule drops or duplicates an instruction"),
    "RC206": (Severity.ERROR, "dependency ordered after its consumer"),
    # -- recomputation safety checker --------------------------------------
    "EC301": (Severity.ERROR, "recompute node consumes a backward value"),
    "EC302": (Severity.ERROR, "mirror disagrees with its forward original"),
    "EC303": (Severity.ERROR, "non-deterministic op inside recompute region"),
    "EC304": (Severity.ERROR, "mirror attrs differ from the original's"),
    "EC305": (Severity.ERROR, "forward node consumes a recompute value"),
    "EC306": (Severity.WARNING, "recompute mirror never drains to backward"),
    "EC307": (Severity.ERROR, "schedule orders a consumer before its producer"),
    "EC308": (Severity.ERROR, "node consumes a value outside the schedule"),
    # -- memplan packing sanitizer (color-mode rewrites) -------------------
    "MP401": (Severity.ERROR, "alias instruction disagrees with root table"),
    "MP402": (Severity.ERROR, "packed placements overlap in time and bytes"),
    "MP403": (Severity.ERROR, "unsafe in-place rewrite over a live group"),
    # -- distributed bucket-coverage checker -------------------------------
    "DS501": (Severity.ERROR, "trainable parameter is never reduced"),
    "DS502": (Severity.ERROR, "parameter reduced more than once"),
    "DS503": (Severity.ERROR, "bucket segments overlap or overflow"),
    "DS504": (Severity.ERROR, "segment shape/dtype disagrees with the model"),
    "DS505": (Severity.WARNING, "bucket exceeds the configured byte cap"),
    "DS506": (Severity.ERROR, "bucket layout fingerprint diverges across ranks"),
    # -- symbolic equivalence certifier (translation validation) -----------
    "EQ601": (Severity.ERROR, "lowered value disagrees with the source graph"),
    "EQ602": (Severity.ERROR, "rewrite carries no justifying witness"),
    "EQ603": (Severity.ERROR, "witness fails shape/dtype/member checks"),
    "EQ604": (Severity.ERROR, "in-place redirect changes an observable value"),
    "EQ605": (Severity.ERROR, "alias view witness fails its range check"),
    "EQ606": (Severity.ERROR, "reordering crosses an RNG-clock boundary"),
    "EQ607": (Severity.ERROR, "recompute mirror is not equivalent to original"),
}


@dataclass(frozen=True)
class Finding:
    """One defect (or suspicion) located in a graph or lowered plan."""

    code: str
    message: str
    analyzer: str
    severity: Severity = field(default=Severity.ERROR)
    #: node name (graph-level analyzers) when attributable
    node: str | None = None
    #: lowered instruction index (plan-level analyzers)
    instr: int | None = None
    #: register slot (plan-level analyzers)
    slot: int | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "analyzer": self.analyzer,
            "message": self.message,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.instr is not None:
            out["instr"] = self.instr
        if self.slot is not None:
            out["slot"] = self.slot
        return out

    def format(self) -> str:
        where = []
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.instr is not None:
            where.append(f"instr={self.instr}")
        if self.slot is not None:
            where.append(f"slot={self.slot}")
        loc = f" [{', '.join(where)}]" if where else ""
        return (
            f"{self.severity.value.upper():7s} {self.code} "
            f"({self.analyzer}){loc}: {self.message}"
        )


def finding(
    code: str,
    message: str,
    analyzer: str,
    node: str | None = None,
    instr: int | None = None,
    slot: int | None = None,
) -> Finding:
    """Build a Finding with the catalog's default severity for ``code``."""
    severity = CODES[code][0]
    return Finding(
        code=code,
        message=message,
        analyzer=analyzer,
        severity=severity,
        node=node,
        instr=instr,
        slot=slot,
    )


@dataclass
class AnalysisReport:
    """Aggregated findings of one verification run."""

    findings: list[Finding] = field(default_factory=list)

    def extend(self, more: Iterable[Finding]) -> "AnalysisReport":
        self.findings.extend(more)
        return self

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing execution-blocking was found."""
        return not self.errors

    def codes(self) -> set[str]:
        return {f.code for f in self.findings}

    def without(self, codes: Iterable[str]) -> "AnalysisReport":
        """A copy with the given codes suppressed (triage mechanism)."""
        drop = set(codes)
        return AnalysisReport(
            [f for f in self.findings if f.code not in drop]
        )

    def canonical(self) -> list[Finding]:
        """Deduplicated findings in a byte-deterministic order.

        Sorted by (code, node, instr, slot, message) so two runs over the
        same inputs serialize identically and CI diffs of ``lint --json``
        output are meaningful. Exact duplicates (same analyzer reached
        the same conclusion twice, e.g. once per bucket) collapse.
        """
        def key(f: Finding) -> tuple[Any, ...]:
            return (
                f.code,
                f.node if f.node is not None else "",
                f.instr if f.instr is not None else -1,
                f.slot if f.slot is not None else -1,
                f.message,
            )

        unique: dict[tuple[Any, ...], Finding] = {}
        for f in self.findings:
            unique.setdefault((*key(f), f.analyzer, f.severity.value), f)
        return sorted(unique.values(), key=key)

    def to_dict(self) -> dict[str, Any]:
        ordered = self.canonical()
        return {
            "errors": sum(
                1 for f in ordered if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in ordered if f.severity is Severity.WARNING
            ),
            "findings": [f.to_dict() for f in ordered],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format(self) -> str:
        if not self.findings:
            return "no findings"
        ordered = sorted(
            self.findings,
            key=lambda f: (-f.severity.rank, f.code, f.instr or 0),
        )
        return "\n".join(f.format() for f in ordered)
