"""Rewrite witnesses: machine-checkable claims attached to a compiled plan.

Every semantics-preserving rewrite in the pipeline leaves a small record
of *why* it is legal, in terms the equivalence certifier
(:mod:`repro.analysis.equiv`) can re-check without re-running the pass:

* :class:`FusionWitness` — "instruction ``i`` computes the composition of
  these chain members, accumulated in one buffer of this shape/dtype";
* :class:`BatchWitness` — "instruction ``i`` is the stack of these
  isomorphic GEMM members, member ``k`` wired to operand slots
  ``(a_slots[k], b_slots[k])``";
* :class:`AliasWitness` — "instruction ``i``'s copy kernel was elided:
  each output is exactly this view of the source register";
* :class:`InplaceWitness` — "instruction ``i`` overwrites its dying
  ``target`` operand's storage; the target's whole alias group is dead";
* :class:`MirrorWitness` — "recompute node ``mirror_uid`` denotes the
  same value as forward node ``original_uid``" (the Echo rewrite; the
  mirror additionally carries ``mirror_of`` on the node itself).

A :class:`WitnessSet` aggregates the plan-level witnesses and travels on
:class:`repro.runtime.compiled.PlanLowering`. The certifier treats a
rewrite *without* a witness as a finding (EQ602) and a witness that fails
its own checks as EQ603/EQ604/EQ605 — the witnesses are claims to be
verified, never trusted. This module is dependency-free so every layer
of the pipeline can emit witnesses without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "FusionWitness",
    "BatchWitness",
    "AliasWitness",
    "InplaceWitness",
    "MirrorWitness",
    "WitnessSet",
]


@dataclass(frozen=True)
class FusionWitness:
    """One fused elementwise chain: instruction = compose(members)."""

    instr: int
    tail_uid: int
    #: member node uids, chain (execution) order; the tail is last
    members: tuple[int, ...]
    #: shape/dtype of the single accumulator buffer (= every member's)
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class BatchWitness:
    """One stacked GEMM group: instruction = stack(member matmuls)."""

    instr: int
    #: member node uids, group (stack) order
    members: tuple[int, ...]
    #: per-member operand slots, aligned with ``members``
    a_slots: tuple[int, ...]
    b_slots: tuple[int, ...]
    ta: bool
    tb: bool
    #: per-member output shape/dtype (each stacked slice)
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class AliasWitness:
    """One elided copy: each output is a dense view of the source slot.

    ``indices`` holds one serialized index descriptor per output (see
    :func:`repro.memplan.elision.describe_index`): ``("rebind",)`` for a
    whole-register rebind, else the normalized slice expression applied
    to the source register.
    """

    instr: int
    op: str
    src_slot: int
    out_slots: tuple[int, ...]
    indices: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class InplaceWitness:
    """One in-place redirect: the output takes over ``target``'s storage.

    ``members`` is the target's whole alias group at rewrite time — the
    certifier re-derives that no member is read after ``instr`` and that
    the group escapes through no source/constant/output slot.
    """

    instr: int
    out: int
    target: int
    root: int
    members: tuple[int, ...]


@dataclass(frozen=True)
class MirrorWitness:
    """One Echo recompute mirror: ``mirror_uid`` ≡ ``original_uid``."""

    mirror_uid: int
    original_uid: int
    op: str


@dataclass
class WitnessSet:
    """All plan-level witnesses of one lowering, keyed by instruction."""

    fusions: dict[int, FusionWitness] = field(default_factory=dict)
    batches: dict[int, BatchWitness] = field(default_factory=dict)
    aliases: dict[int, AliasWitness] = field(default_factory=dict)
    inplace: tuple[InplaceWitness, ...] = ()

    def __len__(self) -> int:
        return (
            len(self.fusions)
            + len(self.batches)
            + len(self.aliases)
            + len(self.inplace)
        )
