"""Pooled GPU storage-manager simulation (MXNet's allocator).

The runtime's liveness plan gives the *ideal* footprint: bytes live at the
worst instant. Real frameworks allocate through a caching pool: freed
buffers go to per-size-class free lists and are only reused by requests
that fit the same class, so the device-visible footprint exceeds the ideal
by rounding waste and pool fragmentation — the bulk of the paper's
"untrackable" gap between the memory profiler and nvidia-smi (Figure 5's
striped bar, attributed to "memory fragmentation or allocations by CUDA
libraries").

``simulate_pool`` replays a memory plan's allocation trace through such a
pool and reports what nvidia-smi would see. ``profile_memory`` uses the
fixed-fraction approximation by default; benchmarks that care (and the
fragmentation test suite) call this directly.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass

from repro.runtime.memory import MemoryPlan

#: Allocation granularity: pools round requests up to a multiple of this
#: (cudaMalloc alignment and the pool's page size).
PAGE_BYTES = 4096


def round_up(nbytes: int, page: int = PAGE_BYTES) -> int:
    """Size class of a request: next multiple of the page size.

    Zero-byte requests (empty tensors: a zero-length bucket, an all-padding
    batch) map to class 0, which the pool never reserves or free-lists —
    real allocators hand back a distinguished empty pointer. Negative sizes
    are always a caller bug.
    """
    if nbytes < 0:
        raise ValueError(f"negative allocation request: {nbytes}")
    if nbytes == 0:
        return 0
    return ((nbytes + page - 1) // page) * page


@dataclass
class PoolStats:
    """Device-visible memory of one simulated iteration."""

    ideal_peak_bytes: int  # liveness lower bound
    reserved_bytes: int  # what the pool cudaMalloc'ed (nvidia-smi view)
    rounding_waste_bytes: int  # size-class rounding at the live peak
    reuse_hits: int
    reuse_misses: int
    #: zero-byte allocations (empty tensors) — never pooled, never reserved
    zero_byte_requests: int = 0
    #: bytes of end-of-iteration survivors (outputs, weights, pinned grads)
    #: handed to the user instead of returning to the free lists
    pinned_bytes: int = 0

    @property
    def fragmentation_fraction(self) -> float:
        """Fraction of reserved memory the model never actually needed."""
        if self.reserved_bytes == 0:
            return 0.0
        return 1.0 - self.ideal_peak_bytes / self.reserved_bytes

    @property
    def hit_rate(self) -> float:
        total = self.reuse_hits + self.reuse_misses
        return self.reuse_hits / total if total else 0.0


class _ExactFitPool:
    """MXNet GPU pool semantics: free buffers keyed by rounded size; a
    request reuses the smallest free buffer whose class is >= the request
    and <= 2x the request (bounded internal waste), else cudaMallocs."""

    def __init__(self) -> None:
        self._free: dict[int, int] = defaultdict(int)  # class -> count
        self._classes: list[int] = []  # sorted distinct free classes
        self.reserved = 0
        self.hits = 0
        self.misses = 0
        self.zero_byte = 0

    def allocate(self, nbytes: int) -> int:
        """Returns the size class actually handed out."""
        wanted = round_up(nbytes)
        if wanted == 0:
            # Empty tensor: no reservation, no hit/miss — the pool returns
            # a distinguished empty pointer without touching free lists.
            self.zero_byte += 1
            return 0
        # Smallest free class in [wanted, 2*wanted].
        from bisect import bisect_left

        idx = bisect_left(self._classes, wanted)
        if idx < len(self._classes) and self._classes[idx] <= 2 * wanted:
            cls = self._classes[idx]
            self._free[cls] -= 1
            if self._free[cls] == 0:
                self._classes.pop(idx)
            self.hits += 1
            return cls
        self.reserved += wanted
        self.misses += 1
        return wanted

    def release(self, size_class: int) -> None:
        if size_class == 0:
            return
        if self._free[size_class] == 0:
            insort(self._classes, size_class)
        self._free[size_class] += 1


def simulate_pool(plan: MemoryPlan) -> PoolStats:
    """Replay the plan's allocation/free trace through the caching pool."""
    alloc_at: dict[int, list] = defaultdict(list)
    free_after: dict[int, list] = defaultdict(list)
    for life in plan.lifetimes.values():
        alloc_at[life.alloc_step].append(life)
        free_after[life.free_step].append(life)

    pool = _ExactFitPool()
    held: dict[tuple[int, int], int] = {}  # tensor key -> size class
    live_rounded = 0
    live_exact = 0
    peak_rounding_waste = 0
    pinned_bytes = 0

    num_steps = len(plan.order)
    last_step = num_steps - 1
    for step in range(num_steps):
        for life in alloc_at[step]:
            cls = pool.allocate(life.nbytes)
            held[life.key] = cls
            live_rounded += cls
            live_exact += life.nbytes
        waste = live_rounded - live_exact
        if waste > peak_rounding_waste:
            peak_rounding_waste = waste
        for life in free_after[step]:
            cls = held.pop(life.key, 0)
            if life.free_step >= last_step:
                # End-of-iteration survivor (graph output, weight, pinned
                # gradient): ownership passes to the user/optimizer, so the
                # buffer never rejoins the free lists.
                pinned_bytes += cls
            else:
                pool.release(cls)
            live_rounded -= cls
            live_exact -= life.nbytes

    # The workspace arena is cudaMalloc'ed once at its high-water mark.
    reserved = pool.reserved + round_up(plan.workspace_pool_hwm)
    return PoolStats(
        ideal_peak_bytes=plan.peak_bytes,
        reserved_bytes=max(reserved, plan.peak_bytes),
        rounding_waste_bytes=peak_rounding_waste,
        reuse_hits=pool.hits,
        reuse_misses=pool.misses,
        zero_byte_requests=pool.zero_byte,
        pinned_bytes=pinned_bytes,
    )
