"""Persistent worker pool executing compiled-plan chunks in parallel.

The compiled executor's kernels are numpy/BLAS calls that release the GIL,
so dataflow-independent instruction chunks genuinely overlap on multicore
hosts — the host-side analogue of a GPU executing independent kernels on
parallel streams. Workers are long-lived daemon threads fed through one
C-implemented :class:`queue.SimpleQueue`; a dispatch is one queue put plus
one lock-protected counter decrement, keeping the handoff cost far below
the kernel times the wavefront cost gate admits (see
:mod:`repro.runtime.wavefront`).

The calling thread always executes the first chunk itself, so a pool built
for ``threads`` execution lanes owns ``threads - 1`` workers and a
one-chunk level degenerates to a plain call with no synchronization at
all. Pools are shared process-wide by lane count (executors share worker
threads the way they share arenas), and chunk exceptions propagate to the
caller after the level barrier — the plan's serial replay fallback then
attributes the failure to a node.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Callable, Sequence

from repro.obs import trace as obs_trace

__all__ = [
    "WorkerPool",
    "shared_pool",
    "default_thread_count",
    "max_execution_lanes",
]


def default_thread_count() -> int:
    """Execution-lane default: the ``REPRO_THREADS`` env var, else 1.

    Parallel execution is opt-in (serial plans are the PR-1 baseline and
    bitwise-identical by construction), so the default stays 1 unless the
    environment — e.g. the CI matrix leg — asks for more.
    """
    try:
        return max(1, int(os.environ.get("REPRO_THREADS", "1")))
    except ValueError:
        return 1


def max_execution_lanes() -> int:
    """Process-wide lane budget that :func:`shared_pool` enforces.

    ``REPRO_THREADS`` when set (the operator's explicit budget), else the
    host's core count — the point past which more worker threads only
    contend. Every consumer of worker threads (wavefront execution,
    serving) routes through :func:`shared_pool`, so the budget holds even
    when several subsystems each ask for their own parallelism.
    """
    try:
        env = int(os.environ.get("REPRO_THREADS", "0"))
    except ValueError:
        env = 0
    if env >= 1:
        return env
    return max(1, os.cpu_count() or 1)


class _LevelBarrier:
    """Completion tracking for one dispatched wavefront level."""

    __slots__ = ("lock", "remaining", "done", "error")

    def __init__(self, remaining: int) -> None:
        self.lock = threading.Lock()
        self.remaining = remaining
        self.done = threading.Event()
        self.error: BaseException | None = None


class WorkerPool:
    """Fixed set of daemon threads running ``chunk(regs)`` callables."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-wavefront-{i}",
                daemon=True,
            )
            for i in range(num_workers)
        ]
        for t in self._threads:
            t.start()

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            chunk, regs, barrier = task
            try:
                chunk(regs)
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                with barrier.lock:
                    if barrier.error is None:
                        barrier.error = exc
            finally:
                with barrier.lock:
                    barrier.remaining -= 1
                    if barrier.remaining == 0:
                        barrier.done.set()

    def run_level(
        self, chunks: Sequence[Callable[[list], None]], regs: list
    ) -> None:
        """Execute one wavefront level: all chunks, then barrier.

        The caller runs ``chunks[0]`` inline while workers drain the rest,
        so every execution lane (including this thread) does kernel work.
        Raises the first chunk exception after all chunks finish — chunks
        write disjoint slots, so a failed level leaves no torn state a
        serial replay could not reproduce.
        """
        if obs_trace.TRACING:
            # Spans are emitted on the thread that executes the chunk, so
            # worker-run chunks land on their worker's timeline row.
            chunks = [self._traced_chunk(c, i) for i, c in enumerate(chunks)]
        if len(chunks) == 1:
            chunks[0](regs)
            return
        barrier = _LevelBarrier(remaining=len(chunks) - 1)
        for chunk in chunks[1:]:
            self._tasks.put((chunk, regs, barrier))
        try:
            chunks[0](regs)
        except BaseException as exc:  # noqa: BLE001 - re-raised after barrier
            barrier.done.wait()
            raise exc
        barrier.done.wait()
        if barrier.error is not None:
            raise barrier.error

    @staticmethod
    def _traced_chunk(
        chunk: Callable[[list], None], index: int
    ) -> Callable[[list], None]:
        def run(regs: list) -> None:
            with obs_trace.span(
                "wavefront.chunk", "exec", {"chunk": index}
            ):
                chunk(regs)

        return run

    def close(self) -> None:
        """Stop the workers (used by tests; shared pools live forever)."""
        for _ in self._threads:
            self._tasks.put(None)
        for t in self._threads:
            t.join(timeout=5.0)


_SHARED_POOLS: dict[int, WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(num_workers: int) -> WorkerPool:
    """The process-wide pool with ``num_workers`` workers (created once).

    Compiled plans with the same thread config share workers just as they
    share the default plan cache; daemon threads idle on the task queue
    between iterations.

    The request is clamped to ``max_execution_lanes() - 1`` workers (the
    caller's own thread is a lane) so a plan compiled for more threads
    than the process budget cannot oversubscribe the host: ``run_level``
    queues excess chunks and the smaller pool simply drains them. At
    least one worker always exists — a pool, once requested, must be able
    to make progress.
    """
    num_workers = max(1, min(num_workers, max_execution_lanes() - 1))
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get(num_workers)
        if pool is None:
            pool = WorkerPool(num_workers)
            _SHARED_POOLS[num_workers] = pool
        return pool
