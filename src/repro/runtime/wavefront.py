"""Wavefront analysis over a lowered instruction stream.

The compiled plan executes one instruction at a time even though the
training graph is wide: bidirectional encoder directions, the four LSTM
gate branches, independent weight-gradient GEMMs. This module partitions
the instruction stream into *wavefronts* — dependency levels whose
instructions are mutually independent — and decides, with the
:mod:`repro.gpumodel` cost model, which levels are worth executing on
parallel worker threads and which must stay serial because thread handoff
would swamp the kernels.

Dependencies are computed at two granularities:

* **values** (RAW): an instruction reading a slot depends on the
  instruction that wrote it;
* **storage** (WAR/WAW): the plan's static buffer assignment reuses raw
  arena pages across slots, so an instruction overwriting a page must wait
  for the readers of the page's previous tenant, and writers of one page
  are totally ordered. Without these edges two "independent" instructions
  could race on shared storage.

Echo stage boundaries are hard barriers: levels never span a change of
:class:`repro.graph.Stage` in the stream, so mirrored recompute regions
replay exactly as the serial plan (and the memory/footprint accounting,
which is node-based, is untouched). Checkpoint stash points sit on those
boundaries by construction — a stash is the last forward-stage value a
backward/recompute run consumes.

Cost gating uses *simulated* device seconds as a relative measure: the
host's numpy kernels scale with the same bytes/flops the device model
prices, so a level whose simulated time is tiny (a handful of
bandwidth-bound elementwise ops) is exactly the level whose host kernels
are too small to amortize a thread handoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "InstrInfo",
    "Wavefront",
    "WavefrontSchedule",
    "analyze_wavefronts",
    "partition_chunks",
    "MIN_CHUNK_SECONDS",
    "MIN_LEVEL_SECONDS",
]

#: Minimum simulated seconds of kernel work one chunk must carry before a
#: thread handoff (queue put + wake + barrier share, ~10-20us of host time)
#: pays for itself. Simulated device seconds under-report host numpy time
#: by roughly two orders of magnitude, so this admits chunks of ~100us+ of
#: real kernel work.
MIN_CHUNK_SECONDS = 1.5e-6

#: Minimum simulated seconds for a level to be considered at all; below
#: this even a perfect split cannot beat the barrier cost.
MIN_LEVEL_SECONDS = 2 * MIN_CHUNK_SECONDS


@dataclass
class InstrInfo:
    """Dependence-relevant facts about one lowered instruction."""

    index: int
    reads: tuple[int, ...]  # slots read
    writes: tuple[int, ...]  # slots written
    read_bases: tuple[int, ...]  # storage ids read (static buffers)
    write_bases: tuple[int, ...]  # storage ids written (static + scratch)
    stage: object  # repro.graph.Stage of the instruction's node(s)
    cost_seconds: float  # simulated kernel seconds (cost-model)


@dataclass
class Wavefront:
    """One dependency level inside a stage region."""

    instructions: list[int]  # instruction indices, stream order
    cost_seconds: float
    parallel: bool  # cost gate verdict


@dataclass
class WavefrontSchedule:
    """Level structure of one instruction stream."""

    levels: list[Wavefront] = field(default_factory=list)
    region_count: int = 0  # stage regions (barrier-separated)

    @property
    def parallel_levels(self) -> list[Wavefront]:
        return [w for w in self.levels if w.parallel]

    @property
    def parallel_instruction_count(self) -> int:
        return sum(len(w.instructions) for w in self.parallel_levels)

    @property
    def max_width(self) -> int:
        return max((len(w.instructions) for w in self.levels), default=0)


def _dependency_edges(infos: Sequence[InstrInfo]) -> list[list[int]]:
    """Predecessor lists from value (RAW) and storage (WAR/WAW) hazards."""
    preds: list[list[int]] = [[] for _ in infos]

    writer_of_slot: dict[int, int] = {}
    for info in infos:
        for s in info.reads:
            producer = writer_of_slot.get(s)
            if producer is not None:
                preds[info.index].append(producer)
        for s in info.writes:
            writer_of_slot[s] = info.index

    # Storage hazards per raw base, stream order: readers must precede the
    # next writer (WAR); writers are totally ordered (WAW). RAW through
    # storage coincides with slot RAW and needs no extra edge.
    last_writer: dict[int, int] = {}
    readers_since: dict[int, list[int]] = {}
    for info in infos:
        for b in info.read_bases:
            readers_since.setdefault(b, []).append(info.index)
        for b in info.write_bases:
            prev_writer = last_writer.get(b)
            if prev_writer is not None and prev_writer != info.index:
                preds[info.index].append(prev_writer)
            for r in readers_since.get(b, ()):
                if r != info.index:
                    preds[info.index].append(r)
            readers_since[b] = []
            last_writer[b] = info.index
    return preds


def analyze_wavefronts(
    infos: Sequence[InstrInfo],
    threads: int,
    min_chunk_seconds: float = MIN_CHUNK_SECONDS,
    min_level_seconds: float = MIN_LEVEL_SECONDS,
) -> WavefrontSchedule:
    """Partition the stream into cost-gated dependency levels.

    ``infos`` must be in stream (schedule) order with ``index`` equal to
    the list position. Levels are computed independently inside each
    maximal run of equal ``stage`` — stage transitions are barriers.
    """
    if any(info.index != i for i, info in enumerate(infos)):
        raise ValueError("InstrInfo.index must match stream position")
    schedule = WavefrontSchedule()
    if not infos:
        return schedule
    preds = _dependency_edges(infos)

    # Stage regions: maximal runs of equal stage.
    regions: list[tuple[int, int]] = []
    start = 0
    for i in range(1, len(infos)):
        if infos[i].stage is not infos[start].stage:
            regions.append((start, i))
            start = i
    regions.append((start, len(infos)))
    schedule.region_count = len(regions)

    level_of: dict[int, int] = {}
    for lo, hi in regions:
        by_level: dict[int, list[int]] = {}
        for i in range(lo, hi):
            # Predecessors outside the region executed behind the barrier.
            level = 0
            for p in preds[i]:
                if p >= lo:
                    lp = level_of[p]
                    if lp >= level:
                        level = lp + 1
            level_of[i] = level
            by_level.setdefault(level, []).append(i)
        for level in sorted(by_level):
            members = by_level[level]
            cost = sum(infos[i].cost_seconds for i in members)
            parallel = (
                threads > 1
                and len(members) > 1
                and cost >= min_level_seconds
                and _splits_into_chunks(
                    [infos[i].cost_seconds for i in members],
                    threads,
                    min_chunk_seconds,
                )
            )
            schedule.levels.append(Wavefront(members, cost, parallel))
    return schedule


def _splits_into_chunks(
    costs: list[float], threads: int, min_chunk_seconds: float
) -> bool:
    """Whether the level yields >= 2 chunks each worth a thread handoff."""
    chunks = partition_chunks(list(range(len(costs))), costs, threads,
                              min_chunk_seconds)
    return len(chunks) >= 2


def partition_chunks(
    items: list[int],
    costs: list[float],
    threads: int,
    min_chunk_seconds: float = MIN_CHUNK_SECONDS,
) -> list[list[int]]:
    """Split a level's items into at most ``threads`` cost-balanced chunks.

    The chunk count is capped so every chunk carries at least
    ``min_chunk_seconds`` of simulated work; items are dealt
    largest-first onto the lightest chunk (LPT), then each chunk is
    restored to stream order for cache-friendly execution. Deterministic:
    ties broken by position.
    """
    total = sum(costs)
    num_chunks = min(threads, len(items))
    if min_chunk_seconds > 0:
        num_chunks = min(num_chunks, max(1, int(total / min_chunk_seconds)))
    if num_chunks <= 1:
        return [list(items)]
    order = sorted(range(len(items)), key=lambda i: (-costs[i], i))
    loads = [0.0] * num_chunks
    chunks: list[list[int]] = [[] for _ in range(num_chunks)]
    for i in order:
        lightest = min(range(num_chunks), key=lambda c: (loads[c], c))
        chunks[lightest].append(items[i])
        loads[lightest] += costs[i]
    chunks = [sorted(c) for c in chunks if c]
    chunks.sort(key=lambda c: c[0])
    return chunks
