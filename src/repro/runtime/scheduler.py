"""List scheduler for training graphs.

Produces a total order of nodes honoring dataflow dependencies, choosing
among ready nodes by ``node.priority`` (creation order by default). The
Echo rewrite lowers mirrored recompute nodes' priority to just below their
first backward consumer, so they execute as late as possible and their
outputs stay live for the minimum interval — the property that makes
recomputation save memory instead of merely moving it.

With the color memory planner (``REPRO_MEMPLAN``, the default) the
scheduler additionally applies a **footprint-aware tie-break**: among
ready default-priority nodes, one whose execution frees at least as many
bytes as it allocates (its inputs' last remaining consumer, minus its
outputs) is hoisted ahead of the priority order. Net-freeing nodes can
only shrink instantaneous live bytes, so running them first lowers the
waterline the interval-coloring packer has to cover without perturbing
any deliberately-priced node: mirrored recompute nodes and anything else
Echo re-prioritized keep their exact priority semantics and are never
hoisted.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Iterable, Sequence

from repro.graph import Node, Tensor, topo_order
from repro.memplan.modes import memory_aware_default


class SchedulingError(RuntimeError):
    """Raised when the schedule is not a valid total order (cycle,
    duplicate, missing producer, or producer-after-consumer)."""


def schedule(
    outputs: Iterable[Tensor], memory_aware: bool | None = None
) -> list[Node]:
    """Priority-driven Kahn's algorithm over all nodes reachable from
    ``outputs``. Deterministic: ties broken by node uid.

    ``memory_aware`` turns the footprint tie-break on/off explicitly;
    None resolves it from the ambient memplan mode (on iff ``color``).
    """
    if memory_aware is None:
        memory_aware = memory_aware_default()
    nodes = topo_order(outputs)
    by_uid = {n.uid: n for n in nodes}

    indegree: dict[int, int] = {n.uid: 0 for n in nodes}
    dependents: dict[int, list[int]] = defaultdict(list)
    for node in nodes:
        producer_uids = {t.node.uid for t in node.inputs}
        indegree[node.uid] = len(producer_uids)
        for uid in producer_uids:
            dependents[uid].append(node.uid)

    # Footprint bookkeeping: how many distinct unscheduled consumers each
    # tensor still has, and which consumers to re-examine when that count
    # hits one (the next consumer to run frees the tensor).
    remaining: dict[tuple[int, int], int] = {}
    consumers_of: dict[tuple[int, int], list[int]] = {}
    in_keys: dict[int, list[tuple[int, int]]] = {}
    key_bytes: dict[tuple[int, int], int] = {}
    out_bytes: dict[int, int] = {}
    if memory_aware:
        seen: dict[tuple[int, int], set[int]] = defaultdict(set)
        for node in nodes:
            keys = []
            for t in node.inputs:
                key = t.key
                if key not in key_bytes:
                    key_bytes[key] = t.nbytes
                if node.uid not in seen[key]:
                    seen[key].add(node.uid)
                    consumers_of.setdefault(key, []).append(node.uid)
                if key not in keys:
                    keys.append(key)
            in_keys[node.uid] = keys
            out_bytes[node.uid] = sum(s.nbytes for s in node.out_specs)
        for key, uids in consumers_of.items():
            remaining[key] = len(uids)

    def net_frees(uid: int) -> bool:
        """Whether running ``uid`` now frees at least what it allocates."""
        freed = sum(
            key_bytes[k] for k in in_keys[uid] if remaining[k] == 1
        )
        return freed >= out_bytes[uid] and freed > 0

    def hoistable(node: Node) -> bool:
        # Only default-priority nodes: Echo's mirrored nodes (and any
        # other deliberate re-prioritization) keep their exact order.
        return node.priority == float(node.uid)

    ready = [
        (n.priority, n.uid) for n in nodes if indegree[n.uid] == 0
    ]
    heapq.heapify(ready)
    # Net-freeing ready nodes, served before the main heap. A node's
    # freed-bytes estimate only grows while it waits (consumers of its
    # inputs retire), so eligibility is monotone — entries never go stale
    # in the unsafe direction.
    freeing: list[tuple[float, int]] = []
    scheduled: set[int] = set()
    in_freeing: set[int] = set()

    def consider(node: Node) -> None:
        if (
            node.uid not in in_freeing
            and hoistable(node)
            and net_frees(node.uid)
        ):
            in_freeing.add(node.uid)
            heapq.heappush(freeing, (node.priority, node.uid))

    if memory_aware:
        for _p, uid in ready:
            consider(by_uid[uid])

    order: list[Node] = []
    while ready or freeing:
        uid = None
        while freeing:
            _, cand = heapq.heappop(freeing)
            if cand not in scheduled:
                uid = cand
                break
        if uid is None:
            _, uid = heapq.heappop(ready)
            if uid in scheduled:
                continue
        node = by_uid[uid]
        scheduled.add(uid)
        order.append(node)
        if memory_aware:
            for key in in_keys[uid]:
                remaining[key] -= 1
                if remaining[key] == 1:
                    for cuid in consumers_of[key]:
                        if cuid not in scheduled and indegree[cuid] == 0:
                            consider(by_uid[cuid])
        for dep_uid in dependents[uid]:
            indegree[dep_uid] -= 1
            if indegree[dep_uid] == 0:
                dep = by_uid[dep_uid]
                heapq.heappush(ready, (dep.priority, dep.uid))
                if memory_aware:
                    consider(dep)

    if len(order) != len(nodes):
        raise SchedulingError(
            f"cycle detected: scheduled {len(order)} of {len(nodes)} nodes"
        )
    if memory_aware:
        # The hoist must never bend dataflow or drop coverage; guard the
        # reordered schedule with the full validator.
        validate_schedule(order)
    return order


def validate_schedule(order: Sequence[Node]) -> None:
    """Assert ``order`` is a valid total order of a closed node set.

    Rejects duplicate nodes, consumers whose producer is missing from the
    schedule entirely, and producers scheduled after a consumer. Used by
    tests, Echo checks, the tuning-store order loader, and as the guard
    on memory-aware schedules.
    """
    position: dict[int, int] = {}
    for i, node in enumerate(order):
        if node.uid in position:
            raise SchedulingError(
                f"duplicate node in schedule: {node.name}"
            )
        position[node.uid] = i
    for node in order:
        for t in node.inputs:
            pos = position.get(t.node.uid)
            if pos is None:
                raise SchedulingError(
                    f"{node.name} consumes {t.node.name}, which is missing "
                    f"from the schedule"
                )
            if pos >= position[node.uid]:
                raise SchedulingError(
                    f"{t.node.name} scheduled after its consumer {node.name}"
                )
