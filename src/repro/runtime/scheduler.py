"""List scheduler for training graphs.

Produces a total order of nodes honoring dataflow dependencies, choosing
among ready nodes by ``node.priority`` (creation order by default). The
Echo rewrite lowers mirrored recompute nodes' priority to just below their
first backward consumer, so they execute as late as possible and their
outputs stay live for the minimum interval — the property that makes
recomputation save memory instead of merely moving it.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Iterable, Sequence

from repro.graph import Node, Tensor, topo_order


class SchedulingError(RuntimeError):
    """Raised when the graph cannot be totally ordered (cycle)."""


def schedule(outputs: Iterable[Tensor]) -> list[Node]:
    """Priority-driven Kahn's algorithm over all nodes reachable from
    ``outputs``. Deterministic: ties broken by node uid."""
    nodes = topo_order(outputs)
    by_uid = {n.uid: n for n in nodes}

    indegree: dict[int, int] = {n.uid: 0 for n in nodes}
    dependents: dict[int, list[int]] = defaultdict(list)
    for node in nodes:
        producer_uids = {t.node.uid for t in node.inputs}
        indegree[node.uid] = len(producer_uids)
        for uid in producer_uids:
            dependents[uid].append(node.uid)

    ready = [
        (n.priority, n.uid) for n in nodes if indegree[n.uid] == 0
    ]
    heapq.heapify(ready)

    order: list[Node] = []
    while ready:
        _, uid = heapq.heappop(ready)
        node = by_uid[uid]
        order.append(node)
        for dep_uid in dependents[uid]:
            indegree[dep_uid] -= 1
            if indegree[dep_uid] == 0:
                dep = by_uid[dep_uid]
                heapq.heappush(ready, (dep.priority, dep.uid))

    if len(order) != len(nodes):
        raise SchedulingError(
            f"cycle detected: scheduled {len(order)} of {len(nodes)} nodes"
        )
    return order


def validate_schedule(order: Sequence[Node]) -> None:
    """Assert producers precede consumers (used by tests and Echo checks)."""
    position = {n.uid: i for i, n in enumerate(order)}
    for node in order:
        for t in node.inputs:
            if position[t.node.uid] >= position[node.uid]:
                raise SchedulingError(
                    f"{t.node.name} scheduled after its consumer {node.name}"
                )
