"""Shape-keyed plan cache: share schedules, memory plans, and compiled plans.

``BucketedTrainer`` builds one training graph per sequence-length bucket and
the Echo pass re-plans the same graph many times while searching (and again
per rollback victim). Both end up re-running ``schedule`` + ``plan_memory``
on structurally identical graphs. The cache keys every planning artifact by
a *graph signature* — a structural fingerprint over the topological order —
so repeated plans are O(signature) instead of O(plan).

Node uids are globally unique per process, so two different graphs can never
collide; and Echo's rewrites change node priorities/inputs in place, which
changes the signature, so a stale entry is never served. When Echo rolls a
rewrite *back*, the signature returns to its previous value and the cached
plan for it is — correctly — reused.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Mapping, Sequence

import os

from repro.graph import Tensor
from repro.graph.traversal import topo_order
from repro.memplan.modes import memory_aware_default, memplan_mode
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.compiled import Arena, CompiledPlan
from repro.runtime.memory import Category, MemoryPlan, TensorKey, plan_memory
from repro.runtime.scheduler import schedule


def _maybe_verify(plan: CompiledPlan) -> None:
    """Statically verify a freshly compiled plan when ``REPRO_VERIFY`` is on.

    The env check is inline so the disabled path costs one dict lookup and
    never imports :mod:`repro.analysis`. Runs on cache misses only (the
    builder path), so a cached plan is verified exactly once.
    ``REPRO_VERIFY=full`` (or ``equiv``) selects the translation-validation
    tier: symbolic equivalence certification on top of the safety checks.
    """
    raw = os.environ.get("REPRO_VERIFY", "").strip().lower()
    if raw not in ("1", "true", "yes", "on", "full", "equiv"):
        return
    from repro.analysis.verify import assert_plan_safe

    start = time.perf_counter()
    with obs_trace.span("plan.verify", "plan",
                        {"tier": "equiv" if raw in ("full", "equiv")
                         else "safety"}):
        assert_plan_safe(plan, equiv=raw in ("full", "equiv"))
    reg = obs_metrics.registry()
    if reg is not None:
        reg.histogram("plan.verify_s").observe(time.perf_counter() - start)


def graph_signature(outputs: Sequence[Tensor]) -> Hashable:
    """Structural fingerprint of the graph reachable from ``outputs``.

    Covers everything the scheduler and memory planner read: node identity,
    scheduling priority, stage, and the dataflow edges, plus the requested
    output keys. Attrs and shapes are pinned by uid (nodes are immutable
    apart from the priority/input rewrites Echo applies, both captured
    here).
    """
    nodes = tuple(
        (
            n.uid,
            n.priority,
            n.stage,
            tuple(t.key for t in n.inputs),
        )
        for n in topo_order(outputs)
    )
    return (nodes, tuple(t.key for t in outputs))


#: sentinel distinguishing "no store given" (attach the REPRO_TUNE_DIR
#: default) from an explicit ``store=None`` (persistence off)
_UNSET: Any = object()


class PlanCache:
    """LRU cache of planning artifacts keyed by graph signature.

    One instance can be shared by many executors (the ``BucketedTrainer``
    shares one across buckets, like executors sharing a device memory
    pool). ``hits``/``misses`` count builder invocations saved/paid.

    The cache is thread-safe: lookup, insertion, and LRU eviction run
    under one reentrant lock, so the wavefront worker pool and the
    serving layer's concurrent sessions can share an instance. The lock
    is held *across the builder call* — concurrent requests for the same
    key build exactly once — and is reentrant because builders legally
    nest (compiling a serving decoder memoizes its schedule, memory
    plan, and compiled plan through the same cache).

    When a persistent tuning store is attached (by default: the
    ``REPRO_TUNE_DIR`` store, when that env var is set), in-process misses
    consult it before building — schedule orders, wavefront layouts, and
    closure bytecode load from disk, keyed by cross-process graph
    fingerprints and device cache tokens — and fresh builds persist their
    artifacts back. Pass ``store=None`` to opt out.
    """

    def __init__(self, capacity: int = 64, store: Any = _UNSET) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self._store = store

    @property
    def store(self) -> Any:
        """The attached tuning store (or None when persistence is off).

        The default re-resolves on each access until a store exists, so
        setting ``REPRO_TUNE_DIR`` after this cache was constructed (the
        common test pattern — and the process-wide default cache is built
        at import time) still takes effect. Accessed only on memo misses.
        """
        if self._store is _UNSET:
            from repro.pgo.store import default_store

            resolved = default_store()
            if resolved is not None:
                self._store = resolved
            return resolved
        return self._store

    # -- generic memoization -------------------------------------------------

    def memo(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        traced = obs_trace.TRACING
        reg = obs_metrics.registry()
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                if reg is not None:
                    reg.counter("plancache.misses").inc()
                if traced:
                    kind = key[0] if isinstance(key, tuple) and key else key
                    with obs_trace.span(
                        "cache.lookup", "cache",
                        {"hit": False, "kind": str(kind)},
                    ):
                        value = builder()
                else:
                    value = builder()
                self._entries[key] = value
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                return value
            self.hits += 1
            if reg is not None:
                reg.counter("plancache.hits").inc()
            if traced:
                kind = key[0] if isinstance(key, tuple) and key else key
                with obs_trace.span(
                    "cache.lookup", "cache", {"hit": True, "kind": str(kind)}
                ):
                    pass
            self._entries.move_to_end(key)
            return value

    # -- planning artifacts --------------------------------------------------

    def schedule_for(
        self,
        outputs: Sequence[Tensor],
        memory_aware: bool | None = None,
    ) -> list:
        """Cached ``schedule(outputs)``; returns a fresh list each call.

        ``memory_aware`` (None = ambient memplan mode) is part of the memo
        key and of the persisted-order flavor: the footprint tie-break and
        the plain priority order are different permutations of the same
        graph and must never be served for each other.
        """
        if memory_aware is None:
            memory_aware = memory_aware_default()
        sig = graph_signature(outputs)
        flavor = "memaware" if memory_aware else ""

        def build() -> list:
            with obs_trace.span(
                "plan.schedule", "plan", {"memaware": bool(memory_aware)}
            ):
                store = self.store
                if store is not None:
                    cached = store.load_order(outputs, sig, flavor)
                    if cached is not None:
                        return cached
                order = schedule(outputs, memory_aware=memory_aware)
                if store is not None:
                    store.save_order(outputs, order, sig, flavor)
                return order

        order = self.memo(("schedule", sig, memory_aware), build)
        return list(order)

    def plan_for(
        self,
        outputs: Sequence[Tensor],
        pinned_categories: Mapping[TensorKey, Category] | None = None,
        order: Sequence | None = None,
    ) -> MemoryPlan:
        """Cached ``plan_memory`` for the graph (+ pinned categories)."""
        sig = graph_signature(outputs)
        pinned_key = (
            tuple(sorted(pinned_categories.items()))
            if pinned_categories
            else ()
        )
        # When no order is supplied, one is derived from the ambient
        # memory-aware setting — which therefore keys the plan.
        ambient = memory_aware_default() if order is None else None
        return self.memo(
            ("memory", sig, pinned_key, ambient),
            lambda: plan_memory(
                order if order is not None else schedule(outputs),
                outputs,
                pinned_categories,
            ),
        )

    def compiled_for(
        self,
        outputs: Sequence[Tensor],
        arena: Arena,
        fuse: bool = True,
        order: Sequence | None = None,
        threads: int = 1,
        batch_gemms: bool | None = None,
        device: Any | None = None,
        memplan: str | None = None,
    ) -> CompiledPlan:
        """Cached :class:`CompiledPlan` for (graph, arena, thread config).

        Keyed by ``id(arena)``/``id(device)`` — safe because the cached
        plan holds references to both, so the ids cannot be recycled while
        the entry lives. Thread count, batching, and the memplan mode are
        part of the key: a serial and a wavefront-parallel plan for the
        same graph are different lowered programs and coexist in the
        cache, as do a greedy-planned and a color-planned one.
        """
        sig = graph_signature(outputs)
        mode = memplan_mode(memplan)
        key = (
            "compiled", sig, id(arena), fuse, threads, batch_gemms,
            id(device) if device is not None else None, mode,
        )
        def build() -> CompiledPlan:
            start = time.perf_counter()
            store = self.store
            resolved_device = device
            code_cache = None
            artifact = None
            fp = token = None
            bg = threads > 1 if batch_gemms is None else bool(batch_gemms)
            if store is not None:
                code_cache = store.code_cache()
                if threads > 1:
                    # Wavefront artifacts are keyed by the device's cache
                    # token, so resolve the ambient device here (the same
                    # resolution the plan itself would perform).
                    if resolved_device is None:
                        from repro.pgo.calibrated import default_device

                        resolved_device = default_device()
                    token = getattr(resolved_device, "cache_token", None)
                    if token is None:
                        spec = getattr(resolved_device, "spec", None)
                        token = (getattr(spec, "name", "custom"), "analytic")
                    fp = store.fingerprint_for(outputs, sig)
                    artifact = store.load_wavefront(
                        fp, token, threads, fuse, bg, mode
                    )
            plan = CompiledPlan(
                order if order is not None else schedule(outputs),
                outputs,
                arena=arena,
                fuse=fuse,
                threads=threads,
                batch_gemms=batch_gemms,
                device=resolved_device,
                code_cache=code_cache,
                wavefront_artifact=artifact,
                memplan=mode,
            )
            if store is not None:
                if fp is not None:
                    fresh = plan.wavefront_artifact()
                    if fresh is not None:
                        store.save_wavefront(
                            fp, token, threads, fuse, bg, fresh, mode
                        )
                store.flush_code_cache()
            _maybe_verify(plan)
            reg = obs_metrics.registry()
            if reg is not None:
                reg.histogram("plan.compile_s").observe(
                    time.perf_counter() - start
                )
            return plan

        def traced_build() -> CompiledPlan:
            with obs_trace.span(
                "plan.compile", "plan",
                {"threads": threads, "memplan": mode, "fuse": fuse},
            ):
                return build()

        return self.memo(key, traced_build if obs_trace.TRACING else build)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> tuple[int, int]:
        """Consistent ``(hits, misses)`` snapshot (for serving metrics)."""
        with self._lock:
            return self.hits, self.misses

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class NullPlanCache(PlanCache):
    """A cache that never retains anything (every call rebuilds).

    Used by parity tests to prove cached planning changes no results, and
    available to callers who want the old always-rebuild behavior. Never
    attaches a tuning store — the rebuild must be a real rebuild.
    """

    def __init__(self, capacity: int = 64, store: Any = None) -> None:
        super().__init__(capacity, store=None)

    def memo(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        with self._lock:
            self.misses += 1
            return builder()


_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide shared plan cache."""
    return _DEFAULT_CACHE
