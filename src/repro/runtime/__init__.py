"""Execution substrate: scheduler, memory planner, executor (DESIGN.md S4)."""

from repro.runtime.executor import (
    ExecutionError,
    GraphExecutor,
    NodeTiming,
    RunResult,
    TrainingExecutor,
)
from repro.runtime.memory import (
    Category,
    MemoryPlan,
    TensorLifetime,
    plan_memory,
)
from repro.runtime.pool import PoolStats, round_up, simulate_pool
from repro.runtime.scheduler import SchedulingError, schedule, validate_schedule

__all__ = [
    "schedule",
    "validate_schedule",
    "SchedulingError",
    "Category",
    "MemoryPlan",
    "TensorLifetime",
    "plan_memory",
    "GraphExecutor",
    "TrainingExecutor",
    "RunResult",
    "NodeTiming",
    "ExecutionError",
    "simulate_pool",
    "PoolStats",
    "round_up",
]
