"""Execution substrate: scheduler, memory planner, executor (DESIGN.md S4)."""

from repro.memplan.modes import memory_aware_default, memplan_mode
from repro.runtime.compiled import Arena, CompiledPlan
from repro.runtime.executor import (
    ExecutionError,
    GraphExecutor,
    NodeTiming,
    RunResult,
    TrainingExecutor,
)
from repro.runtime.memory import (
    Category,
    MemoryPlan,
    TensorLifetime,
    plan_memory,
)
from repro.runtime.plancache import (
    NullPlanCache,
    PlanCache,
    default_plan_cache,
    graph_signature,
)
from repro.runtime.pool import PoolStats, round_up, simulate_pool
from repro.runtime.scheduler import SchedulingError, schedule, validate_schedule
from repro.runtime.wavefront import (
    InstrInfo,
    Wavefront,
    WavefrontSchedule,
    analyze_wavefronts,
    partition_chunks,
)
from repro.runtime.workers import WorkerPool, default_thread_count, shared_pool

__all__ = [
    "memory_aware_default",
    "memplan_mode",
    "schedule",
    "validate_schedule",
    "SchedulingError",
    "Category",
    "MemoryPlan",
    "TensorLifetime",
    "plan_memory",
    "GraphExecutor",
    "TrainingExecutor",
    "RunResult",
    "NodeTiming",
    "ExecutionError",
    "simulate_pool",
    "PoolStats",
    "round_up",
    "Arena",
    "CompiledPlan",
    "PlanCache",
    "NullPlanCache",
    "default_plan_cache",
    "graph_signature",
    "InstrInfo",
    "Wavefront",
    "WavefrontSchedule",
    "analyze_wavefronts",
    "partition_chunks",
    "WorkerPool",
    "default_thread_count",
    "shared_pool",
]
