"""Graph executor: runs a scheduled graph on numpy with liveness-driven
memory management, and (optionally) accumulates simulated GPU cost.

Real numerics run on the CPU via the ops' numpy kernels — this is what the
training loops, gradient checks, and "training curves overlap" experiments
use. GPU-side *performance* (kernel time, CUDA API time, DRAM traffic) is
accumulated per node from a :class:`repro.gpumodel.DeviceModel`, replacing
the paper's nvprof measurements on real silicon.

Since the compiled-plan rework, ``run`` executes a
:class:`repro.runtime.compiled.CompiledPlan` — a slot-indexed instruction
stream with elementwise fusion and arena buffer reuse — instead of walking
the schedule through a dict-keyed interpreter. The original interpreted
loop survives as :meth:`GraphExecutor.run_interpreted` (the parity baseline
for tests and benchmarks). Simulated cost stays node-based either way, so
figure reproductions are unaffected by how the host executes kernels.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.autodiff.training import TrainingGraph
from repro.graph import Node, Tensor
from repro.ops.dropout import set_global_step
from repro.runtime.compiled import Arena, CompiledPlan, ExecutionError
from repro.runtime.memory import Category, MemoryPlan, TensorKey
from repro.runtime.plancache import PlanCache, default_plan_cache
from repro.runtime.workers import default_thread_count

__all__ = [
    "ExecutionError",
    "NodeTiming",
    "RunResult",
    "GraphExecutor",
    "TrainingExecutor",
]


@dataclass
class NodeTiming:
    """Simulated GPU cost of one executed node."""

    node: Node
    kernel_seconds: float
    api_seconds: float
    dram_bytes: int
    launches: int


@dataclass
class RunResult:
    """Outputs and metering of one executed iteration."""

    outputs: list[np.ndarray]
    timings: list[NodeTiming] = field(default_factory=list)

    @property
    def sim_kernel_seconds(self) -> float:
        return sum(t.kernel_seconds for t in self.timings)

    @property
    def sim_api_seconds(self) -> float:
        return sum(t.api_seconds for t in self.timings)

    @property
    def sim_seconds(self) -> float:
        """End-to-end simulated iteration time.

        Kernel execution overlaps with launching the *next* kernel, so the
        iteration is bound by whichever dominates — the behavior behind the
        paper's Figure 7a, where the Default backend's many tiny kernels
        leave the GPU waiting on cudaLaunch.
        """
        return max(self.sim_kernel_seconds, self.sim_api_seconds)

    @property
    def dram_bytes(self) -> int:
        return sum(t.dram_bytes for t in self.timings)


class GraphExecutor:
    """Executes a fixed set of output tensors over and over.

    The schedule, memory plan, and compiled plan are computed once at
    construction (or fetched from a shared :class:`PlanCache`); ``run``
    then dispatches the plan's flat instruction stream. The arena recycles
    intermediate buffers, so the process's real memory usage follows the
    simulated footprint and steady-state iterations allocate almost no new
    arrays.
    """

    def __init__(
        self,
        outputs: Sequence[Tensor],
        device: Any | None = None,
        pinned_categories: Mapping[TensorKey, Category] | None = None,
        arena: Arena | None = None,
        plan_cache: PlanCache | None = None,
        fuse: bool = True,
        threads: int | None = None,
        batch_gemms: bool | None = None,
    ) -> None:
        self.outputs = list(outputs)
        self.device = device
        self.arena = arena if arena is not None else Arena()
        self.plan_cache = (
            plan_cache if plan_cache is not None else default_plan_cache()
        )
        # None defers to the REPRO_THREADS environment default, so the CI
        # matrix (and users) can flip the whole process to wavefront
        # execution without touching call sites.
        self.threads = default_thread_count() if threads is None else max(
            1, int(threads)
        )
        self.order = self.plan_cache.schedule_for(self.outputs)
        self.memory_plan: MemoryPlan = self.plan_cache.plan_for(
            self.outputs, pinned_categories, order=self.order
        )
        self.plan: CompiledPlan = self.plan_cache.compiled_for(
            self.outputs,
            self.arena,
            fuse=fuse,
            order=self.order,
            threads=self.threads,
            batch_gemms=batch_gemms,
            device=device,
        )
        self._free_after: dict[int, list[TensorKey]] = defaultdict(list)
        output_keys = {t.key for t in self.outputs}
        for life in self.memory_plan.lifetimes.values():
            if life.key not in output_keys:
                self._free_after[life.free_step].append(life.key)
        self._iteration = 0
        self._run_timings: list[NodeTiming] | None = None
        self._sim_timings: list[NodeTiming] | None = None

    # -- public API ---------------------------------------------------------

    @property
    def peak_bytes(self) -> int:
        """Simulated peak GPU footprint of one iteration (model memory only;
        the profiler adds optimizer state and framework overheads)."""
        return self.memory_plan.peak_bytes

    def verify(self, threads_probe: int = 4, equiv: bool = False):
        """Statically verify this executor's compiled plan.

        Runs the :mod:`repro.analysis` analyzers — IR lint, recompute
        safety, arena lifetimes, packing, wavefront races, and
        (``equiv=True``) symbolic equivalence certification — against the
        plan and returns the
        :class:`~repro.analysis.findings.AnalysisReport` (``report.ok``
        is the pass/fail bit). Independent of the ``REPRO_VERIFY``
        compile-time guard.
        """
        from repro.analysis.verify import verify_plan

        return verify_plan(
            self.plan,
            outputs=self.outputs,
            order=self.order,
            threads_probe=threads_probe,
            equiv=equiv,
        )

    def run(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        params: Mapping[str, np.ndarray] | None = None,
        collect_timings: bool = False,
        on_item: Any | None = None,
    ) -> RunResult:
        """Execute one iteration through the compiled plan.

        ``feeds`` maps placeholder node names to arrays; ``params`` maps
        variable node names to arrays. Missing bindings raise.
        ``on_item`` is the plan's level-completion hook (see
        :meth:`CompiledPlan.run`), used to overlap work — distributed
        gradient reduction — with the tail of execution.
        """
        set_global_step(self._iteration)
        self._iteration += 1
        out_arrays = self.plan.run(feeds, params, on_item=on_item)
        timings: list[NodeTiming] = []
        if collect_timings and self.device is not None:
            if self._run_timings is None:
                self._run_timings = self._time_nodes(self.order)
            timings = list(self._run_timings)
        return RunResult(outputs=out_arrays, timings=timings)

    def run_interpreted(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        params: Mapping[str, np.ndarray] | None = None,
        collect_timings: bool = False,
    ) -> RunResult:
        """Execute one iteration by interpreting the schedule node by node.

        This is the original dict-keyed execution loop, kept as the parity
        baseline: ``run`` must produce bitwise-identical outputs. It is
        also what the executor microbenchmark measures the compiled plan
        against.
        """
        feeds = dict(feeds or {})
        params = dict(params or {})
        set_global_step(self._iteration)
        self._iteration += 1

        values: dict[TensorKey, np.ndarray] = {}
        timings: list[NodeTiming] = []

        for step, node in enumerate(self.order):
            if node.op.name == "placeholder":
                values[(node.uid, 0)] = self._bind(
                    feeds, node, kind="placeholder"
                )
            elif node.op.name == "variable":
                values[(node.uid, 0)] = self._bind(params, node, kind="variable")
            else:
                inputs = [values[t.key] for t in node.inputs]
                try:
                    results = node.op.compute(node, inputs)
                except Exception as exc:  # augment with node context
                    raise ExecutionError(
                        f"kernel failure in {node!r}: {exc}"
                    ) from exc
                for i, arr in enumerate(results):
                    expected = node.out_specs[i]
                    if tuple(arr.shape) != expected.shape:
                        raise ExecutionError(
                            f"{node.name} output {i}: kernel produced shape "
                            f"{arr.shape}, spec says {expected.shape}"
                        )
                    values[(node.uid, i)] = arr
            if collect_timings and self.device is not None:
                cost = self.device.node_cost(node)
                timings.append(
                    NodeTiming(
                        node=node,
                        kernel_seconds=cost.kernel_seconds,
                        api_seconds=cost.api_seconds,
                        dram_bytes=cost.dram_bytes,
                        launches=cost.launches,
                    )
                )
            for key in self._free_after[step]:
                values.pop(key, None)

        out_arrays = [values[t.key] for t in self.outputs]
        return RunResult(outputs=out_arrays, timings=timings)

    def simulate_cost(self) -> RunResult:
        """Cost the schedule on the device model without running kernels."""
        if self.device is None:
            raise ExecutionError("simulate_cost requires a device model")
        if self._sim_timings is None:
            self._sim_timings = self._time_nodes(
                [
                    n
                    for n in self.order
                    if n.op.name not in ("placeholder", "variable")
                ]
            )
        return RunResult(outputs=[], timings=list(self._sim_timings))

    # -- helpers -------------------------------------------------------------

    def _time_nodes(self, nodes: Sequence[Node]) -> list[NodeTiming]:
        timings = []
        for node in nodes:
            cost = self.device.node_cost(node)
            timings.append(
                NodeTiming(
                    node=node,
                    kernel_seconds=cost.kernel_seconds,
                    api_seconds=cost.api_seconds,
                    dram_bytes=cost.dram_bytes,
                    launches=cost.launches,
                )
            )
        return timings

    @staticmethod
    def _bind(
        table: Mapping[str, np.ndarray], node: Node, kind: str
    ) -> np.ndarray:
        if node.name not in table:
            raise ExecutionError(f"{kind} {node.name!r} was not bound")
        arr = np.asarray(table[node.name])
        spec = node.out_specs[0]
        if tuple(arr.shape) != spec.shape:
            raise ExecutionError(
                f"{kind} {node.name!r}: bound shape {arr.shape} != "
                f"declared {spec.shape}"
            )
        if arr.dtype != spec.dtype:
            arr = arr.astype(spec.dtype)
        return arr


class TrainingExecutor:
    """Convenience wrapper binding a :class:`TrainingGraph` to an executor.

    Pins final parameter gradients into the ``GRADIENT`` category so the
    memory breakdowns match the paper's "Weights" accounting.
    """

    def __init__(
        self,
        graph: TrainingGraph,
        device: Any | None = None,
        arena: Arena | None = None,
        plan_cache: PlanCache | None = None,
        threads: int | None = None,
        batch_gemms: bool | None = None,
    ) -> None:
        self.graph = graph
        pinned = {g.key: Category.GRADIENT for g in graph.grads.values()}
        self.executor = GraphExecutor(
            graph.outputs,
            device=device,
            pinned_categories=pinned,
            arena=arena,
            plan_cache=plan_cache,
            threads=threads,
            batch_gemms=batch_gemms,
        )

    @property
    def memory_plan(self) -> MemoryPlan:
        return self.executor.memory_plan

    @property
    def peak_bytes(self) -> int:
        return self.executor.peak_bytes

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        params: Mapping[str, np.ndarray],
        collect_timings: bool = False,
        on_item: Any | None = None,
    ) -> tuple[float, dict[str, np.ndarray], RunResult]:
        """Execute one iteration; returns (loss, grads-by-name, raw result)."""
        result = self.executor.run(feeds, params, collect_timings, on_item)
        loss = float(result.outputs[0])
        grads = {
            name: result.outputs[1 + i]
            for i, name in enumerate(self.graph.grads)
        }
        return loss, grads, result

    def simulate_cost(self) -> RunResult:
        return self.executor.simulate_cost()
