"""Liveness analysis and the simulated GPU memory allocator.

This is the reproduction's stand-in for the MXNet memory planner plus the
MXNet GPU memory profiler the paper uses for its breakdown figures. Given a
schedule it computes, without executing anything:

* per-tensor lifetime (allocation step, last-use step),
* per-tensor category (the paper's four data-structure classes),
* the footprint timeline and its peak, overall and per category,
* the workspace pool high-water mark (workspace is acquired per node and
  returned to a pool, so sequential consumers — e.g. the recompute
  subgraphs of successive attention timesteps — share one arena; this is
  the Section 4.1 workspace-sharing argument, and it falls out of the pool
  model naturally).

Categories follow the paper's Section 3.2 taxonomy:

* ``PLACEHOLDER`` — per-iteration inputs, plus short-lived layer in/out
  buffers that never cross the forward/backward boundary;
* ``WEIGHT`` / ``GRADIENT`` — parameters and their gradients (the paper's
  "Weights" bar also folds in optimizer state, which the profiler adds);
* ``FEATURE_MAP`` — forward tensors kept alive for the backward pass;
* ``WORKSPACE`` — kernel scratch plus outputs of mirrored recompute nodes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Sequence

from repro.graph import Node, Stage, Tensor

TensorKey = tuple[int, int]


class Category(Enum):
    PLACEHOLDER = "placeholder"
    WEIGHT = "weight"
    GRADIENT = "gradient"
    FEATURE_MAP = "feature_map"
    WORKSPACE = "workspace"

    def __lt__(self, other: "Category") -> bool:  # stable report ordering
        order = list(Category)
        return order.index(self) < order.index(other)


@dataclass(frozen=True)
class TensorLifetime:
    """Where a tensor lives in the schedule and what it is."""

    key: TensorKey
    nbytes: int
    category: Category
    alloc_step: int
    free_step: int  # exclusive: freed after this step completes
    scope: str


@dataclass
class MemoryPlan:
    """Full footprint analysis of one scheduled training iteration."""

    order: list[Node]
    lifetimes: dict[TensorKey, TensorLifetime]
    #: bytes live after each step (including pool high-water so far)
    timeline: list[int]
    peak_bytes: int
    peak_step: int
    #: live bytes per category at the peak step
    peak_by_category: dict[Category, int]
    workspace_pool_hwm: int
    #: maximum concurrent bytes per category anywhere in the timeline
    max_by_category: dict[Category, int] = field(default_factory=dict)

    def category_bytes(self, category: Category) -> int:
        return self.peak_by_category.get(category, 0)

    def scope_breakdown(self, depth: int = 1) -> dict[str, int]:
        """Bytes live at the peak step grouped by scope prefix.

        Mirrors the paper's by-layer-type breakdown (Figure 5 left bar).
        """
        result: dict[str, int] = defaultdict(int)
        for life in self.lifetimes.values():
            if life.alloc_step <= self.peak_step <= life.free_step:
                prefix = "/".join(life.scope.split("/")[:depth]) or "(root)"
                result[prefix] += life.nbytes
        return dict(result)


def _category_of(
    node: Node,
    out_index: int,
    last_consumer_stage: Stage | None,
    pinned: Mapping[TensorKey, Category],
) -> Category:
    key = (node.uid, out_index)
    if key in pinned:
        return pinned[key]
    if node.op.name == "placeholder":
        return Category.PLACEHOLDER
    if node.op.name == "variable":
        return Category.WEIGHT
    if node.stage is Stage.RECOMPUTE:
        return Category.WORKSPACE
    if node.stage is Stage.FORWARD:
        if last_consumer_stage in (Stage.BACKWARD, Stage.RECOMPUTE):
            return Category.FEATURE_MAP
        return Category.PLACEHOLDER  # short-lived layer in/out buffer
    return Category.PLACEHOLDER  # backward temporaries


def plan_memory(
    order: Sequence[Node],
    outputs: Iterable[Tensor],
    pinned_categories: Mapping[TensorKey, Category] | None = None,
) -> MemoryPlan:
    """Compute liveness, categories, and the footprint timeline.

    ``outputs`` are kept alive to the end of the iteration. ``pinned_categories``
    overrides the category of specific tensors (the training executor pins
    final parameter gradients as ``GRADIENT``).
    """
    pinned = dict(pinned_categories or {})
    position = {n.uid: i for i, n in enumerate(order)}
    num_steps = len(order)
    output_keys = {t.key for t in outputs}

    last_use: dict[TensorKey, int] = {}
    last_stage: dict[TensorKey, Stage] = {}
    for node in order:
        for t in node.inputs:
            step = position[node.uid]
            if last_use.get(t.key, -1) < step:
                last_use[t.key] = step
                last_stage[t.key] = node.stage

    lifetimes: dict[TensorKey, TensorLifetime] = {}
    for node in order:
        for i, spec in enumerate(node.out_specs):
            key = (node.uid, i)
            alloc = position[node.uid]
            if key in output_keys or node.op.name in ("placeholder", "variable"):
                free = num_steps - 1
            else:
                free = last_use.get(key, alloc)
            category = _category_of(node, i, last_stage.get(key), pinned)
            lifetimes[key] = TensorLifetime(
                key=key,
                nbytes=spec.nbytes,
                category=category,
                alloc_step=alloc,
                free_step=free,
                scope=node.scope,
            )

    # Sweep the timeline.
    alloc_at: dict[int, list[TensorLifetime]] = defaultdict(list)
    free_after: dict[int, list[TensorLifetime]] = defaultdict(list)
    for life in lifetimes.values():
        alloc_at[life.alloc_step].append(life)
        free_after[life.free_step].append(life)

    live_by_cat: dict[Category, int] = defaultdict(int)
    pool_hwm = 0
    max_ws_live = 0
    timeline: list[int] = []
    peak_bytes = -1
    peak_step = 0
    peak_by_category: dict[Category, int] = {}
    max_by_category: dict[Category, int] = defaultdict(int)

    for step, node in enumerate(order):
        for life in alloc_at[step]:
            live_by_cat[life.category] += life.nbytes
        ws = node.op.workspace_bytes(node)
        pool_hwm = max(pool_hwm, ws)

        # The timeline charges each step its *own* workspace request, not
        # the pool's running high-water mark: the pool holds the largest
        # buffer ever requested, but those bytes only coincide with live
        # tensors at the step that actually requests them. (The HWM itself
        # is still reported, as ``workspace_pool_hwm``.)
        live = sum(live_by_cat.values()) + ws
        timeline.append(live)
        for cat, nbytes in live_by_cat.items():
            if nbytes > max_by_category[cat]:
                max_by_category[cat] = nbytes
        ws_live = live_by_cat.get(Category.WORKSPACE, 0) + ws
        if ws_live > max_ws_live:
            max_ws_live = ws_live
        if live > peak_bytes:
            peak_bytes = live
            peak_step = step
            peak_by_category = dict(live_by_cat)
            peak_by_category[Category.WORKSPACE] = (
                peak_by_category.get(Category.WORKSPACE, 0) + ws
            )

        for life in free_after[step]:
            live_by_cat[life.category] -= life.nbytes

    leftover = {c: b for c, b in live_by_cat.items() if b}
    expected = {
        life.category
        for life in lifetimes.values()
        if life.free_step == num_steps - 1
    }
    # Everything still live at the end must be a pinned/output category.
    for cat in leftover:
        if cat not in expected:
            raise AssertionError(f"allocator leak in category {cat}")

    max_by_category[Category.WORKSPACE] = max(
        max_by_category.get(Category.WORKSPACE, 0), max_ws_live
    )
    return MemoryPlan(
        order=list(order),
        lifetimes=lifetimes,
        timeline=timeline,
        peak_bytes=peak_bytes,
        peak_step=peak_step,
        peak_by_category=peak_by_category,
        workspace_pool_hwm=pool_hwm,
        max_by_category=dict(max_by_category),
    )
