"""Compiled execution plans: the training hot loop without an interpreter.

The seed executor walked the schedule as a dict-keyed interpreter: per-step
``TensorKey`` lookups, a ``placeholder/variable`` branch, per-node
try/except plumbing, per-output shape checks, and a fresh numpy allocation
for every intermediate on every iteration. This module lowers a schedule
*once* into a flat :class:`CompiledPlan`:

* tensors get dense integer **slots** into a list register file — no dict
  lookups in the loop;
* each node becomes one precompiled **instruction closure** with its input
  and output slots and its error context bound at compile time — the run
  loop is ``for step in steps: step(regs)``;
* chains of single-consumer elementwise/activation nodes are **fused** into
  one instruction that streams a single accumulator buffer through the
  chain with ``out=`` kernels (the cuDNN-style pointwise fusion the paper's
  Figure 7a launch-bound story rests on);
* isomorphic single-consumer ``matmul`` nodes are **batched** into one
  stacked GEMM instruction (``batch_gemms``): same-shape groups — the per
  decoder-step attention scoring GEMMs are the signature case — execute as
  one ``np.matmul`` over a leading group axis, cutting kernel dispatches
  where thread parallelism cannot help;
* an **arena** recycles buffers by size class (the ``pool.py`` rounding
  rules), and — because a plan's instruction stream repeats identically
  every iteration — the arena's free-list replay runs *at compile time*:
  each intermediate gets a **static buffer** reused across slots exactly as
  the runtime free lists would have, and ``out=`` kernels write straight
  into those closure-bound arrays. Steady-state iterations allocate only
  the run's escaping outputs;
* with ``threads > 1`` the instruction stream is partitioned into
  **wavefronts** (:mod:`repro.runtime.wavefront`): dependency levels whose
  instructions execute as cost-balanced chunks on a persistent worker pool
  (:mod:`repro.runtime.workers`). The numpy kernels release the GIL, so
  independent chunks overlap on multicore hosts. Levels too small to
  amortize a thread handoff stay serial (the ``repro.gpumodel`` cost model
  gates them), Echo stage boundaries remain barriers, and storage-hazard
  edges (the arena reuses raw pages across slots) serialize any two
  instructions that touch the same page — so parallel execution is
  bitwise-identical to serial execution by construction.

Plans compiled against a shared arena (the bucketed trainer) draw their
static buffers from the same free lists, so different bucket plans overlay
the same storage — footprint follows the largest bucket, not the sum, the
host-side analogue of the paper's executors sharing one memory pool. This
is safe because executors run one iteration to completion at a time and
outputs never alias plan storage. The arena itself is thread-safe (striped
free lists), so parallel chunks may allocate escaping outputs concurrently.

Numerics are bitwise-identical to the interpreted loop: every
``compute_into`` implementation reproduces its ``compute`` expression tree
exactly; fusion only reorders *where* a kernel runs in the schedule (legal
because the chain's interior values have exactly one consumer); batching
issues the same per-slice BLAS call through a stacked view; and wavefront
execution only overlaps instructions with no value or storage hazard
between them. Fusion, batching, and wavefronts never cross a stage
boundary, so Echo's mirrored recompute regions keep their checkpoint
semantics and the pass's stash/footprint accounting — which reads the
node-based memory plan, not the lowered stream — is field-for-field
unchanged.

The simulated *cost* and *memory* models stay node-based: plans report the
same per-node timings and the memory planner sees the original schedule, so
every figure reproduction is unchanged — only the host-side execution gets
faster.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.graph import Node, Tensor
from repro.memplan.modes import memplan_mode
from repro.memplan.planner import plan_buffers
from repro.obs import trace as obs_trace
from repro.ops.matmul import gemm_batch_key, stacked_operand
from repro.runtime.memory import TensorKey
from repro.runtime.pool import round_up
from repro.runtime.wavefront import (
    InstrInfo,
    Wavefront,
    WavefrontSchedule,
    analyze_wavefronts,
    partition_chunks,
)
from repro.runtime.workers import WorkerPool, shared_pool

_SOURCE_OPS = ("placeholder", "variable")

#: free-list stripes of the thread-safe arena; size classes hash across
#: stripes so concurrent acquire/release rarely contend on one lock
_ARENA_STRIPES = 8


class ExecutionError(RuntimeError):
    """Raised on bad feeds or kernel failures."""


def _raw_kernel(node: Node):
    """Bare ``k(*inputs, out)`` callable bypassing ``compute_into``, or None.

    Only bound when the specialization is provably bit-identical to the
    op's ``compute_into``: a single output whose dtype exactly matches
    every input (so the wrapper's cast-fallback path cannot trigger) and a
    kernel that is a plain ufunc application. This removes one Python call
    plus argument packing from the hottest instructions.
    """
    if len(node.out_specs) != 1:
        return None
    out_dtype = node.out_specs[0].dtype
    if any(t.dtype != out_dtype for t in node.inputs):
        return None
    op = node.op
    fn = getattr(op, "_fn", None)
    if isinstance(fn, np.ufunc) and fn.nin == len(node.inputs):
        return fn  # ufuncs take ``out`` positionally
    into_fn = getattr(op, "_into_fn", None)
    if into_fn is not None and np.issubdtype(out_dtype, np.floating):
        scalar = node.attrs["scalar"]

        def k(x, out, _f=into_fn, _c=scalar):
            _f(x, _c, out)

        return k
    if op.name == "tanh":
        return np.tanh
    if op.name == "sigmoid":
        from repro.ops.activation import _sigmoid_into

        return _sigmoid_into
    return None


def bind_source(
    table: Mapping[str, np.ndarray], node: Node, kind: str
) -> np.ndarray:
    """Validate and normalize one feed/param binding (shared error contract)."""
    if node.name not in table:
        raise ExecutionError(f"{kind} {node.name!r} was not bound")
    arr = np.asarray(table[node.name])
    spec = node.out_specs[0]
    if tuple(arr.shape) != spec.shape:
        raise ExecutionError(
            f"{kind} {node.name!r}: bound shape {arr.shape} != "
            f"declared {spec.shape}"
        )
    if arr.dtype != spec.dtype:
        arr = arr.astype(spec.dtype)
    return arr


class Arena:
    """Size-class buffer recycler backing a plan's ``out=`` kernels.

    Freed buffers go to per-size-class free lists (page-rounded like the
    ``pool.py`` device pool) and are handed back to later requests of the
    same class. Buffers are raw byte arrays; ``acquire`` returns a
    shaped/typed view, ``release`` walks ``.base`` back to the raw buffer.
    Zero-byte requests are never pooled (a class-0 free list would alias
    every empty tensor onto one entry).

    The free lists are **striped**: size classes hash onto
    ``_ARENA_STRIPES`` independently-locked shards, so wavefront chunks
    (and plans compiling concurrently against a shared arena) can
    acquire/release without funneling through one lock. Counters share a
    single stats lock — they are off the acquire fast path's hot fields
    only in the sense that the critical section is a couple of integer
    adds.

    :class:`CompiledPlan` drives acquire/release during *compilation* to
    assign static buffers; at runtime only :meth:`acquire_fresh` is called,
    for outputs that escape the plan.
    """

    def __init__(self) -> None:
        self._stripes: list[dict[int, list[np.ndarray]]] = [
            {} for _ in range(_ARENA_STRIPES)
        ]
        self._locks = [threading.Lock() for _ in range(_ARENA_STRIPES)]
        self._stats_lock = threading.Lock()
        #: parked contiguous extents for interval-colored plans; separate
        #: from the size-class lists so a colored plan never tears a
        #: greedy plan's page and vice versa
        self._extents: list[np.ndarray] = []
        self._extent_lock = threading.Lock()
        #: buffers created outside the free lists (pool misses and escaping
        #: outputs); steady-state iterations add only the run's outputs
        self.fresh_count = 0
        #: acquisitions served from a free list
        self.reuse_count = 0
        #: zero-byte acquisitions (served fresh, never pooled)
        self.zero_byte_count = 0
        #: cumulative bytes of fresh buffers
        self.fresh_bytes = 0

    @staticmethod
    def _stripe_of(size_class: int) -> int:
        from repro.runtime.pool import PAGE_BYTES

        return (size_class // PAGE_BYTES) % _ARENA_STRIPES

    def acquire(
        self, shape: tuple[int, ...], dtype: np.dtype, nbytes: int
    ) -> np.ndarray:
        if nbytes <= 0:
            with self._stats_lock:
                self.zero_byte_count += 1
            return np.empty(shape, dtype=dtype)
        cls = round_up(nbytes)
        stripe = self._stripe_of(cls)
        arr = None
        with self._locks[stripe]:
            bucket = self._stripes[stripe].get(cls)
            if bucket:
                arr = bucket.pop()
        if arr is not None:
            with self._stats_lock:
                self.reuse_count += 1
            # Fast path: repeated compilations against a shared arena ask
            # for the same shapes, so the free list usually hands back a
            # view already shaped for this request.
            if arr.shape == shape and arr.dtype == dtype:
                return arr
            raw = arr
            while raw.base is not None:
                raw = raw.base
        else:
            raw = np.empty(cls, dtype=np.uint8)
            with self._stats_lock:
                self.fresh_count += 1
                self.fresh_bytes += cls
        return raw[:nbytes].view(dtype).reshape(shape)

    def acquire_fresh(
        self, shape: tuple[int, ...], dtype: np.dtype, nbytes: int
    ) -> np.ndarray:
        """A buffer that escapes the plan (a graph output).

        Never served from the free lists: a pooled raw buffer may be some
        plan's static storage, and an output must survive later iterations.
        """
        with self._stats_lock:
            if nbytes <= 0:
                self.zero_byte_count += 1
            else:
                self.fresh_count += 1
                self.fresh_bytes += nbytes
        return np.empty(shape, dtype=dtype)

    def release(self, arr: np.ndarray) -> None:
        base = arr
        while base.base is not None:
            base = base.base
        if base.dtype != np.uint8 or base.ndim != 1 or base.nbytes == 0:
            return  # not an arena buffer (zero-byte or foreign array)
        # Park the shaped view itself (its .base pins the raw buffer);
        # acquire re-derives the raw page only on a shape mismatch.
        stripe = self._stripe_of(base.nbytes)
        with self._locks[stripe]:
            self._stripes[stripe].setdefault(base.nbytes, []).append(arr)

    def acquire_extent(self, nbytes: int) -> np.ndarray:
        """One contiguous raw extent for an interval-colored plan.

        Served from the parked-extent list when a large-enough extent is
        available (smallest fit first — bucketed sibling plans overlay the
        same extent, so footprint follows the largest plan, exactly like
        the greedy free lists), else allocated fresh, page-rounded.
        """
        best = None
        with self._extent_lock:
            for i, raw in enumerate(self._extents):
                if raw.nbytes >= nbytes and (
                    best is None or raw.nbytes < self._extents[best].nbytes
                ):
                    best = i
            if best is not None:
                found = self._extents.pop(best)
        if best is not None:
            with self._stats_lock:
                self.reuse_count += 1
            return found
        size = round_up(max(nbytes, 1))
        raw = np.empty(size, dtype=np.uint8)
        with self._stats_lock:
            self.fresh_count += 1
            self.fresh_bytes += size
        return raw

    def release_extent(self, raw: np.ndarray) -> None:
        """Park an extent for reuse by later plans sharing this arena."""
        with self._extent_lock:
            self._extents.append(raw)

    @property
    def held_bytes(self) -> int:
        """Bytes currently parked on the free lists and extent list."""
        total = 0
        for stripe, lock in zip(self._stripes, self._locks):
            with lock:
                total += sum(cls * len(b) for cls, b in stripe.items())
        with self._extent_lock:
            total += sum(raw.nbytes for raw in self._extents)
        return total


def storage_base(arr: np.ndarray) -> np.ndarray:
    """The raw buffer ultimately backing ``arr`` (walks ``.base``)."""
    raw = arr
    while raw.base is not None:
        raw = raw.base
    return raw


@dataclass
class PlanLowering:
    """Compile-time artifacts of one :class:`CompiledPlan`, for analysis.

    This is the contract the static analyzers in :mod:`repro.analysis`
    consume: everything the compiler decided — instruction descriptors,
    slot identities, alias roots, the simulated free replay, and the
    static buffer assignment — captured *before* the closures are baked,
    so a verifier can recompute liveness and storage reuse independently
    and cross-check the plan without executing it.

    ``descs`` entries are dicts with at least ``kind`` (``out`` /
    ``generic`` / ``view`` / ``fused`` / ``batched`` / ``alias``),
    ``node``, ``in_slots`` and ``out_slots``; batched entries
    additionally carry ``nodes``, ``a_slots``/``b_slots`` and
    ``scratch_a``/``scratch_b`` arrays; alias entries (copy elision,
    color mode) carry ``alias_index``. They are the compiler's own
    working records (shared, not copied) — treat them as read-only
    unless deliberately corrupting a fixture.
    """

    #: instruction descriptors, stream order
    descs: list[dict[str, Any]]
    #: tensor key -> register slot
    slot_of: dict[TensorKey, int]
    #: alias-group root of each slot (views/batched members share storage)
    root: list[int]
    source_slots: frozenset[int]
    constant_slots: frozenset[int]
    output_slots: frozenset[int]
    #: whether each *root* slot's storage participates in the arena replay
    releasable: list[bool]
    #: instruction index -> [(slot, root, releasable)] freed after it
    frees_at: dict[int, list[tuple[int, int, bool]]]
    #: root slot -> permanently-assigned static buffer view
    static_views: dict[int, np.ndarray]
    #: wavefront program layout (serial runs / parallel chunk lists) when
    #: the plan compiled a parallel program, else None
    program_layout: list[tuple[str, Any]] | None = None
    #: the InstrInfos the wavefront analysis ran on (threads > 1 only)
    infos: list[InstrInfo] | None = None
    #: the wavefront schedule the program was baked from (threads > 1)
    schedule: WavefrontSchedule | None = None
    #: id(raw buffer) -> nbytes for every distinct static storage base
    static_bases: dict[int, int] = field(default_factory=dict)
    #: color-mode planning record (placements, elisions, in-place
    #: rewrites); None for greedy plans
    memplan: Any = None
    #: placement byte-range hazard tokens keyed like ``memplan.placements``
    #: (color mode); None means "fall back to id(storage base)"
    storage_tokens: dict[Any, tuple[int, ...]] | None = None
    #: :class:`repro.analysis.witness.WitnessSet` of every rewrite the
    #: lowering performed (fusion/batching/elision/in-place), consumed by
    #: the equivalence certifier; None only for hand-built fixtures
    witnesses: Any = None


def build_instr_infos(
    descs: Sequence[dict[str, Any]],
    root: Sequence[int],
    static_views: Mapping[int, np.ndarray],
    device: Any | None = None,
    storage_tokens: Mapping[Any, tuple[int, ...]] | None = None,
) -> list[InstrInfo]:
    """Dependence-relevant facts for each instruction descriptor.

    Shared by the wavefront planner (``device`` set: real simulated costs
    gate parallelism) and the static race analyzer (``device`` None: zero
    costs — hazard structure only, no cost model construction).

    Storage hazards are labeled by ``id(raw base)`` for greedy plans
    (distinct buffers, distinct bases) and by placement byte-range tokens
    for colored plans (every static buffer shares one extent, so the base
    rule would serialize everything; the tokens record exact byte-range
    intersection instead — see :func:`repro.memplan.coloring.atomic_tokens`).
    """

    def bases_of_slot(slot: int) -> tuple[int, ...]:
        r = root[slot]
        if storage_tokens is not None:
            return storage_tokens.get(r, ())
        view = static_views.get(r)
        if view is None:
            return ()
        return (id(storage_base(view)),)

    infos: list[InstrInfo] = []
    for idx, desc in enumerate(descs):
        kind = desc["kind"]
        read_bases: set[int] = set()
        write_bases: set[int] = set()
        for s in desc["in_slots"]:
            read_bases.update(bases_of_slot(s))
        if kind not in ("view", "alias"):  # views touch no storage themselves
            for s in desc["out_slots"]:
                write_bases.update(bases_of_slot(s))
        for scratch_key in ("scratch_a", "scratch_b"):
            scratch = desc.get(scratch_key)
            if scratch is None:
                continue
            if storage_tokens is not None:
                write_bases.update(
                    storage_tokens.get(
                        ("scratch", idx, scratch_key[-1]),
                        (id(storage_base(scratch)),),
                    )
                )
            else:
                write_bases.add(id(storage_base(scratch)))
        if kind == "fused":
            cost_nodes = [member for _op, member, _p in desc["chain"]]
        elif kind == "batched":
            cost_nodes = desc["nodes"]
        else:
            cost_nodes = [desc["node"]]
        cost = 0.0
        if device is not None:
            cost = sum(
                device.node_cost(n).kernel_seconds for n in cost_nodes
            )
        infos.append(
            InstrInfo(
                index=idx,
                reads=tuple(desc["in_slots"]),
                writes=tuple(desc["out_slots"]),
                read_bases=tuple(sorted(read_bases)),
                write_bases=tuple(sorted(write_bases)),
                stage=desc["node"].stage,
                cost_seconds=cost,
            )
        )
    return infos


class CompiledPlan:
    """A schedule lowered to slot-indexed instruction closures.

    Built once per (graph, arena, thread config); :meth:`run` executes one
    iteration. The plan's static buffers are reused across iterations, so
    a plan (and any plan sharing its arena) must not run re-entrantly; the
    training loop runs one iteration to completion at a time, matching the
    seed. With ``threads > 1`` a single iteration's independent
    instructions overlap internally, but the iteration still runs to
    completion before the next begins.
    """

    def __init__(
        self,
        order: Sequence[Node],
        outputs: Sequence[Tensor],
        arena: Arena | None = None,
        fuse: bool = True,
        threads: int = 1,
        batch_gemms: bool | None = None,
        device: Any | None = None,
        code_cache: Any | None = None,
        wavefront_artifact: dict[str, Any] | None = None,
        memplan: str | None = None,
    ) -> None:
        self.order = list(order)
        self.outputs = list(outputs)
        self.arena = arena if arena is not None else Arena()
        self.fuse = fuse
        self.threads = max(1, int(threads))
        #: buffer-planning mode: "color" (copy elision + in-place rewriting
        #: + interval coloring, the default) or "greedy" (the PR-2
        #: size-class replay); ambient REPRO_MEMPLAN unless passed
        self.memplan_mode = memplan_mode(memplan)
        #: batching defaults on exactly when wavefront execution is on —
        #: the serial default path stays byte-for-byte the PR-1 plan
        self.batch_gemms = (
            self.threads > 1 if batch_gemms is None else bool(batch_gemms)
        )
        self._device = device
        #: optional :class:`repro.pgo.BytecodeCache` routing every
        #: ``compile`` of generated closure source through a persistent map
        self._code_cache = code_cache
        #: optional serialized wavefront layout (see
        #: :meth:`wavefront_artifact`); validated, then trusted in place of
        #: re-running the wavefront analysis
        self._wavefront_artifact = wavefront_artifact
        #: whether this plan's wavefront layout came from the artifact
        self.wavefront_from_cache = False
        #: result arrays allocated by generic (non-``out=``) instructions,
        #: cumulative across runs (benchmarks read deltas)
        self.generic_alloc_count = 0
        self._alloc_lock = threading.Lock() if self.threads > 1 else None
        self._pool: WorkerPool | None = None
        #: program item finalizing each slot's value (wavefront plans);
        #: drives the level-completion hook consumers key overlap off of
        self._item_of_slot: dict[int, int] = {}
        self._wavefront_infos: list[InstrInfo] | None = None
        self._wavefront_schedule: WavefrontSchedule | None = None
        self._storage_tokens: dict[Any, tuple[int, ...]] | None = None
        #: copy kernels rewritten to register-view aliases (color mode)
        self.elided_copy_count = 0
        #: instructions writing ``out=`` into a dying input's storage
        self.inplace_write_count = 0
        #: interval waterline of the colored packing (lower bound)
        self.planned_peak_bytes = 0
        #: achieved extent size of the colored packing
        self.packed_extent_bytes = 0
        with obs_trace.span(
            "plan.lower", "plan",
            {"nodes": len(self.order), "threads": self.threads,
             "memplan": self.memplan_mode},
        ):
            self._compile()

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> None:
        order = self.order
        output_keys = {t.key for t in self.outputs}

        source_nodes = [n for n in order if n.op.name in _SOURCE_OPS]
        constant_nodes = [n for n in order if n.op.name == "constant"]
        body = [
            n
            for n in order
            if n.op.name not in _SOURCE_OPS and n.op.name != "constant"
        ]

        chains = self._fuse_chains(body, output_keys) if self.fuse else [
            [n] for n in body
        ]

        # Slot assignment: sources, constants, and every materialized
        # instruction output. Fused-chain interiors never materialize.
        slot_of: dict[TensorKey, int] = {}

        def new_slot(key: TensorKey) -> int:
            slot_of[key] = len(slot_of)
            return slot_of[key]

        for node in source_nodes:
            new_slot((node.uid, 0))
        for node in constant_nodes:
            new_slot((node.uid, 0))
        for chain in chains:
            tail = chain[-1]
            for i in range(len(tail.out_specs)):
                new_slot((tail.uid, i))

        nslots = len(slot_of)
        template: list[np.ndarray | None] = [None] * nslots
        for node in constant_nodes:
            template[slot_of[(node.uid, 0)]] = node.attrs["value"]
        self._template = template
        self._bindings: list[tuple[int, Node, str]] = [
            (
                slot_of[(n.uid, 0)],
                n,
                "placeholder" if n.op.name == "placeholder" else "variable",
            )
            for n in source_nodes
        ]

        # Alias roots: a view output shares its input's storage; the whole
        # group's storage is reusable only when every member is dead.
        root = list(range(nslots))
        arena_produced = [False] * nslots
        source_slots = {slot_of[(n.uid, 0)] for n in source_nodes}
        constant_slots = {slot_of[(n.uid, 0)] for n in constant_nodes}
        output_slots = {slot_of[t.key] for t in self.outputs}

        # First pass: instruction descriptors (kind, slots) + root/arena
        # marking, so releasability is known before buffers are assigned.
        descs: list[dict[str, Any]] = []
        for chain in chains:
            tail = chain[-1]
            out_slots = tuple(
                slot_of[(tail.uid, i)] for i in range(len(tail.out_specs))
            )
            if len(chain) > 1:
                interior = {(n.uid, 0) for n in chain[:-1]}
                patterns = []
                in_slots: list[int] = []
                for member in chain:
                    pattern = tuple(
                        -1 if t.key in interior else slot_of[t.key]
                        for t in member.inputs
                    )
                    patterns.append((member.op, member, pattern))
                    in_slots.extend(s for s in pattern if s >= 0)
                descs.append(
                    {
                        "kind": "fused",
                        "chain": patterns,
                        "node": tail,
                        "in_slots": tuple(in_slots),
                        "out_slots": out_slots,
                        # Rewrite witness, stamped where the decision is
                        # made (position-independent: final instruction
                        # indices are assigned after batching).
                        "witness": {
                            "members": tuple(m.uid for m in chain),
                            "tail": tail.uid,
                            "shape": tail.out_specs[0].shape,
                            "dtype": str(tail.out_specs[0].dtype),
                        },
                    }
                )
                arena_produced[out_slots[0]] = True
                continue
            node = tail
            in_slots = tuple(slot_of[t.key] for t in node.inputs)
            if node.op.may_alias and node.inputs:
                kind = "view"
                root[out_slots[0]] = root[in_slots[0]]
            elif node.op.supports_out:
                kind = "out"
                for s in out_slots:
                    arena_produced[s] = True
            else:
                kind = "generic"
            descs.append(
                {
                    "kind": kind,
                    "node": node,
                    "in_slots": in_slots,
                    "out_slots": out_slots,
                }
            )

        # Isomorphic-GEMM batching pre-pass: rewrite groups of independent
        # same-shape matmul instructions into stacked batched instructions.
        self.batched_gemm_groups = 0
        self.batched_gemm_nodes = 0
        if self.batch_gemms:
            with obs_trace.span("gemm.batch", "plan") as sp:
                descs = self._batch_isomorphic_gemms(
                    descs, output_slots, root, arena_produced
                )
                sp["groups"] = self.batched_gemm_groups
                sp["nodes"] = self.batched_gemm_nodes

        # Buffer planning (repro.memplan): releasability, liveness, and
        # static storage assignment. Greedy mode replays the arena's
        # size-class free lists exactly as the runtime would (the PR-2
        # behavior, byte for byte); color mode first rewrites the stream —
        # view-equivalent copies become ``alias`` instructions, last-use
        # in-place-capable writes take over their dying input's storage —
        # then packs every group's exact live interval into one contiguous
        # arena extent by first-fit-decreasing coloring. Outputs and groups
        # that escape through an output stay dynamic in both modes — they
        # are handed to the caller every run and must never be overwritten.
        assignment = plan_buffers(
            self.memplan_mode,
            descs,
            root,
            nslots,
            arena_produced,
            source_slots,
            constant_slots,
            output_slots,
            self.arena,
        )
        releasable = assignment.releasable
        frees_at = assignment.frees_at
        static_views = assignment.static_views
        self._storage_tokens = assignment.storage_tokens
        self.elided_copy_count = assignment.elided_copy_count
        self.inplace_write_count = assignment.inplace_write_count
        if assignment.record is not None:
            self.planned_peak_bytes = assignment.record.planned_peak_bytes
            self.packed_extent_bytes = assignment.record.extent_bytes

        # Per-instruction register clears: drop references to per-run
        # arrays (outputs of generic/dynamic instructions, view objects)
        # when dead. Static slots need no clearing — their buffers persist
        # by design — so they are filtered out of the hot loop entirely.
        clears_at: dict[int, tuple[int, ...]] = {
            idx: tuple(s for s, _r, _rel in fs if s not in static_views)
            for idx, fs in frees_at.items()
        }

        # Wavefront schedule (threads > 1): dependency levels over the
        # instruction stream, cost-gated. In program mode register clears
        # move to segment/level boundaries — level order may execute a
        # slot's stream-last consumer before another consumer in a deeper
        # level, so inline clears keyed by stream position would be unsafe.
        self.wavefront_region_count = 0
        self.wavefront_level_count = 0
        self.parallel_level_count = 0
        self.parallel_instruction_count = 0
        self.max_wavefront_width = 0
        program_layout = None
        if self.threads > 1 and descs:
            if self._wavefront_artifact is not None:
                ok, program_layout = self._layout_from_artifact(
                    self._wavefront_artifact, descs
                )
                self.wavefront_from_cache = ok
            if not self.wavefront_from_cache:
                program_layout = self._plan_program(descs, root, static_views)

        inline_clears = clears_at if program_layout is None else {}

        # Second pass: bake closures. Static buffers are looked up by
        # alias-group *root*: greedy-produced slots are their own roots, so
        # this is the historical behavior there, and in-place-rewritten
        # slots (color mode) resolve to the dying input's buffer.
        steps: list[Callable[[list], None]] = []
        stats = {
            "out": 0, "generic": 0, "view": 0, "fused": 0, "batched": 0,
            "alias": 0,
        }
        for idx, desc in enumerate(descs):
            clear = inline_clears.get(idx, ())
            kind = desc["kind"]
            stats[kind] += 1
            if kind == "fused":
                steps.append(
                    self._make_fused_step(
                        desc["chain"],
                        desc["out_slots"][0],
                        clear,
                        static_views.get(root[desc["out_slots"][0]]),
                    )
                )
            elif kind == "batched":
                steps.append(
                    self._make_batched_step(
                        desc, clear,
                        static_views.get(root[desc["out_slots"][0]]),
                    )
                )
            elif kind == "out":
                steps.append(
                    self._make_out_step(
                        desc["node"],
                        desc["in_slots"],
                        desc["out_slots"],
                        clear,
                        tuple(
                            static_views.get(root[s])
                            for s in desc["out_slots"]
                        ),
                    )
                )
            elif kind == "alias":
                steps.append(
                    self._make_alias_step(
                        desc["node"],
                        desc["in_slots"],
                        desc["out_slots"],
                        desc["alias_index"],
                        clear,
                    )
                )
            elif kind == "view":
                steps.append(
                    self._make_view_step(
                        desc["node"], desc["in_slots"], desc["out_slots"], clear
                    )
                )
            else:
                guard = tuple(
                    s
                    for s in dict.fromkeys(desc["in_slots"])
                    if root[s] in static_views
                )
                steps.append(
                    self._make_generic_step(
                        desc["node"], desc["in_slots"], desc["out_slots"],
                        clear, guard,
                    )
                )
        self._steps = steps
        self._slot_of = slot_of
        self._output_slots = [slot_of[t.key] for t in self.outputs]

        # The dispatch loop itself is baked as one generated function —
        # a straight-line sequence of step calls with no iterator
        # machinery. Error context is recovered by the step-by-step
        # fallback in :meth:`run`.
        self._body = self._bake_body(list(range(len(steps))), ())
        self._program = None
        if program_layout is not None:
            self._program = self._bake_program(
                program_layout, descs, clears_at, static_views
            )

        self.num_nodes = len(order)
        self.num_instructions = len(self._bindings) + len(steps)
        self.fused_chain_count = stats["fused"]
        self.fused_node_count = sum(
            len(c) for c in chains if len(c) > 1
        )
        self.instruction_kinds = stats
        self.static_slot_count = len(static_views)
        raws: dict[int, int] = {}
        for view in static_views.values():
            base = storage_base(view)
            raws[id(base)] = base.nbytes
        self.static_storage_bytes = sum(raws.values())

        # Collect every rewrite witness into one plan-level set for the
        # equivalence certifier. Imported lazily: repro.analysis imports
        # this module at package level, and the witness dataclasses are
        # deliberately dependency-free.
        from repro.analysis.witness import (
            AliasWitness,
            BatchWitness,
            FusionWitness,
            InplaceWitness,
            WitnessSet,
        )

        witness_set = WitnessSet()
        for idx, desc in enumerate(descs):
            payload = desc.get("witness")
            if payload is None:
                continue
            if desc["kind"] == "fused":
                witness_set.fusions[idx] = FusionWitness(
                    instr=idx,
                    tail_uid=payload["tail"],
                    members=payload["members"],
                    shape=payload["shape"],
                    dtype=payload["dtype"],
                )
            elif desc["kind"] == "batched":
                witness_set.batches[idx] = BatchWitness(instr=idx, **payload)
        if assignment.record is not None:
            for rec in assignment.record.elided:
                witness_set.aliases[rec["instr"]] = AliasWitness(
                    instr=rec["instr"],
                    op=rec["op"],
                    src_slot=rec["src_slot"],
                    out_slots=tuple(rec["out_slots"]),
                    indices=tuple(rec.get("indices", ())),
                )
            witness_set.inplace = tuple(
                InplaceWitness(
                    instr=rec["instr"],
                    out=rec["out"],
                    target=rec["target"],
                    root=rec["root"],
                    members=tuple(rec["members"]),
                )
                for rec in assignment.record.inplace
            )

        #: compile-time record for the static analyzers (repro.analysis)
        self.lowering = PlanLowering(
            descs=descs,
            slot_of=dict(slot_of),
            root=list(root),
            source_slots=frozenset(source_slots),
            constant_slots=frozenset(constant_slots),
            output_slots=frozenset(output_slots),
            releasable=list(releasable),
            frees_at={idx: list(fs) for idx, fs in frees_at.items()},
            static_views=dict(static_views),
            program_layout=program_layout,
            infos=self._wavefront_infos,
            schedule=self._wavefront_schedule,
            static_bases=dict(raws),
            memplan=assignment.record,
            storage_tokens=assignment.storage_tokens,
            witnesses=witness_set,
        )

    def instr_infos(self) -> list[InstrInfo]:
        """InstrInfos over the lowered stream, costs zeroed.

        Rebuilt on demand from the lowering record so serial plans (which
        never ran the wavefront planner) can still be race-analyzed
        against a hypothetical schedule.
        """
        low = self.lowering
        if low.infos is not None:
            return low.infos
        return build_instr_infos(
            low.descs, low.root, low.static_views,
            storage_tokens=low.storage_tokens,
        )

    # -- batched-GEMM pre-pass ----------------------------------------------

    def _batch_isomorphic_gemms(
        self,
        descs: list[dict[str, Any]],
        output_slots: set[int],
        root: list[int],
        arena_produced: list[bool],
    ) -> list[dict[str, Any]]:
        """Group independent isomorphic matmul instructions into stacks.

        Eligible members are single-output ``out``-kind matmuls whose
        result has exactly one consumer and does not escape as a graph
        output. A group closes when the stream consumes any member's
        output (so members are dataflow-independent: any dependency path
        between two matmuls passes through a consumer of the earlier one,
        which would sit between them in the topological stream) or when
        the stream crosses a stage boundary (batching never spans an Echo
        barrier). The merged instruction executes at the *last* member's
        position — every member input is produced before it, every
        consumer after — and each member slot receives a view of the
        stacked result, so downstream instructions are untouched.
        """
        consumer_count: dict[int, int] = {}
        for desc in descs:
            for s in desc["in_slots"]:
                consumer_count[s] = consumer_count.get(s, 0) + 1

        def eligible(desc: dict[str, Any]):
            if desc["kind"] != "out":
                return None
            node = desc["node"]
            key = gemm_batch_key(node)
            if key is None:
                return None
            out_slot = desc["out_slots"][0]
            if out_slot in output_slots:
                return None
            if consumer_count.get(out_slot, 0) != 1:
                return None
            return (node.stage, *key)

        groups: list[list[int]] = []
        open_groups: dict[Any, list[int]] = {}
        member_out: dict[Any, set[int]] = {}

        def close(key: Any) -> None:
            grp = open_groups.pop(key, None)
            member_out.pop(key, None)
            if grp and len(grp) >= 2:
                groups.append(grp)

        prev_stage = None
        for idx, desc in enumerate(descs):
            stage = desc["node"].stage
            if stage is not prev_stage:
                for key in list(open_groups):
                    close(key)
                prev_stage = stage
            reads = set(desc["in_slots"])
            for key in list(open_groups):
                if reads & member_out[key]:
                    close(key)
            key = eligible(desc)
            if key is not None:
                open_groups.setdefault(key, []).append(idx)
                member_out.setdefault(key, set()).add(desc["out_slots"][0])
        for key in list(open_groups):
            close(key)

        if not groups:
            return descs

        drop: set[int] = set()
        merged_at: dict[int, dict[str, Any]] = {}
        for grp in groups:
            nodes = [descs[i]["node"] for i in grp]
            a_slots = tuple(descs[i]["in_slots"][0] for i in grp)
            b_slots = tuple(descs[i]["in_slots"][1] for i in grp)
            out_slots = tuple(descs[i]["out_slots"][0] for i in grp)
            # A shared operand (one slot feeds every member — the fixed key
            # matrix in attention scoring) skips stacking entirely:
            # np.matmul broadcasts it across the group. At most one side
            # stays 2-D so the stacked kernel always emits [G x M x N].
            shared_a = len(set(a_slots)) == 1
            shared_b = not shared_a and len(set(b_slots)) == 1
            merged = {
                "kind": "batched",
                "node": nodes[0],
                "nodes": nodes,
                "a_slots": a_slots,
                "b_slots": b_slots,
                "shared_a": shared_a,
                "shared_b": shared_b,
                "ta": nodes[0].attrs["ta"],
                "tb": nodes[0].attrs["tb"],
                "in_slots": tuple(dict.fromkeys(a_slots + b_slots)),
                "out_slots": out_slots,
                "scratch_a": None,
                "scratch_b": None,
                # Rewrite witness for the equivalence certifier: the
                # exact member/operand wiring this stack claims.
                "witness": {
                    "members": tuple(n.uid for n in nodes),
                    "a_slots": a_slots,
                    "b_slots": b_slots,
                    "ta": nodes[0].attrs["ta"],
                    "tb": nodes[0].attrs["tb"],
                    "shape": nodes[0].out_specs[0].shape,
                    "dtype": str(nodes[0].out_specs[0].dtype),
                },
            }
            merged_at[grp[-1]] = merged
            drop.update(grp[:-1])
            # Member slots form one alias group rooted at the first slot:
            # they are views of one stacked buffer, released together.
            group_root = out_slots[0]
            remap = {s: group_root for s in out_slots}
            for i, r in enumerate(root):
                root[i] = remap.get(r, r)
            arena_produced[group_root] = True
            self.batched_gemm_groups += 1
            self.batched_gemm_nodes += len(grp)

        rewritten: list[dict[str, Any]] = []
        for idx, desc in enumerate(descs):
            if idx in drop:
                continue
            rewritten.append(merged_at.get(idx, desc))
        return rewritten

    # -- wavefront program ---------------------------------------------------

    def _plan_program(
        self,
        descs: list[dict[str, Any]],
        root: list[int],
        static_views: dict[int, np.ndarray],
    ) -> list[tuple[str, Any]]:
        """Partition the stream into serial segments and parallel levels.

        Returns a layout: ``("serial", [desc idx...])`` and
        ``("parallel", [[desc idx chunk]...])`` items, in execution order.
        """
        device = self._device
        if device is None:
            # The ambient default: calibrated when a tuning store has
            # coverage (REPRO_TUNE_DIR), plain analytical otherwise.
            from repro.pgo.calibrated import default_device

            device = default_device()
            self._device = device

        infos = build_instr_infos(
            descs, root, static_views, device,
            storage_tokens=self._storage_tokens,
        )
        self._wavefront_infos = infos

        schedule = analyze_wavefronts(infos, self.threads)
        self._wavefront_schedule = schedule
        self.wavefront_region_count = schedule.region_count
        self.wavefront_level_count = len(schedule.levels)
        self.parallel_level_count = len(schedule.parallel_levels)
        self.parallel_instruction_count = schedule.parallel_instruction_count
        self.max_wavefront_width = schedule.max_width

        layout: list[tuple[str, Any]] = []
        serial_run: list[int] = []
        for wf in schedule.levels:
            if not wf.parallel:
                serial_run.extend(wf.instructions)
                continue
            if serial_run:
                layout.append(("serial", serial_run))
                serial_run = []
            chunks = partition_chunks(
                wf.instructions,
                [infos[i].cost_seconds for i in wf.instructions],
                self.threads,
            )
            layout.append(("parallel", chunks))
        if serial_run:
            layout.append(("serial", serial_run))

        if not any(kind == "parallel" for kind, _ in layout):
            # Cost gate kept everything serial: fall back to the plain
            # baked body (identical to threads=1 execution).
            self.parallel_level_count = 0
            return None
        return layout

    def _layout_from_artifact(
        self, artifact: Any, descs: list[dict[str, Any]]
    ) -> tuple[bool, list[tuple[str, Any]] | None]:
        """Rebuild the wavefront layout from a serialized artifact.

        Returns ``(ok, layout)``. Validation is structural — instruction
        count, every index present exactly once, chunks covering their
        level — so a torn or stale file degrades to a fresh analysis, not
        a broken plan. The reconstructed :class:`WavefrontSchedule` is
        stored on the lowering, which means ``REPRO_VERIFY=1`` re-checks
        the *deserialized* level structure against independently re-derived
        hazard edges before the plan is trusted (see
        :func:`repro.analysis.races.check_plan_races`).
        """
        n = len(descs)
        if not isinstance(artifact, dict) or artifact.get("instructions") != n:
            return False, None
        if artifact.get("serial"):
            # The analysis previously kept everything serial; skip it and
            # run the plain baked body, exactly as a fresh compile would.
            return True, None
        raw_levels = artifact.get("levels")
        regions = artifact.get("regions")
        if not isinstance(raw_levels, list) or not isinstance(regions, int):
            return False, None
        seen: list[int] = []
        levels: list[Wavefront] = []
        layout: list[tuple[str, Any]] = []
        serial_run: list[int] = []
        saw_parallel = False
        for entry in raw_levels:
            if not isinstance(entry, dict):
                return False, None
            idxs = entry.get("i")
            if not isinstance(idxs, list) or not all(
                isinstance(i, int) and 0 <= i < n for i in idxs
            ):
                return False, None
            seen.extend(idxs)
            parallel = bool(entry.get("p"))
            try:
                cost = float(entry.get("c", 0.0))
            except (TypeError, ValueError):
                return False, None
            if parallel:
                chunks = entry.get("chunks")
                if not isinstance(chunks, list) or len(chunks) < 2:
                    return False, None
                flat: list[int] = []
                for chunk in chunks:
                    if not isinstance(chunk, list) or not chunk:
                        return False, None
                    flat.extend(chunk)
                if sorted(flat) != sorted(idxs):
                    return False, None
                if serial_run:
                    layout.append(("serial", serial_run))
                    serial_run = []
                layout.append(
                    ("parallel", [[int(i) for i in c] for c in chunks])
                )
                saw_parallel = True
            else:
                serial_run.extend(idxs)
            levels.append(Wavefront([int(i) for i in idxs], cost, parallel))
        if serial_run:
            layout.append(("serial", serial_run))
        if sorted(seen) != list(range(n)) or not saw_parallel:
            return False, None
        schedule = WavefrontSchedule(levels, regions)
        self._wavefront_schedule = schedule
        self.wavefront_region_count = schedule.region_count
        self.wavefront_level_count = len(schedule.levels)
        self.parallel_level_count = len(schedule.parallel_levels)
        self.parallel_instruction_count = schedule.parallel_instruction_count
        self.max_wavefront_width = schedule.max_width
        return True, layout

    def wavefront_artifact(self) -> dict[str, Any] | None:
        """Serialize this plan's wavefront decision for a tuning store.

        Freshly analyzed plans only (cached layouts return None — nothing
        new to persist). A plan whose cost gate kept everything serial
        persists an explicit serial marker so warm processes skip the
        analysis too.
        """
        if self.threads <= 1 or self.wavefront_from_cache:
            return None
        low = self.lowering
        if not low.descs:
            return None
        if low.program_layout is None or low.schedule is None:
            return {"instructions": len(low.descs), "serial": True}
        par_chunks = [
            members for kind, members in low.program_layout
            if kind == "parallel"
        ]
        levels_payload: list[dict[str, Any]] = []
        pi = 0
        for wf in low.schedule.levels:
            entry: dict[str, Any] = {
                "i": list(wf.instructions),
                "c": wf.cost_seconds,
                "p": bool(wf.parallel),
            }
            if wf.parallel:
                if pi >= len(par_chunks):
                    return None  # layout/schedule mismatch; don't persist
                entry["chunks"] = [list(c) for c in par_chunks[pi]]
                pi += 1
            levels_payload.append(entry)
        return {
            "instructions": len(low.descs),
            "regions": low.schedule.region_count,
            "levels": levels_payload,
        }

    def _bake_program(
        self,
        layout: list[tuple[str, Any]],
        descs: list[dict[str, Any]],
        clears_at: dict[int, tuple[int, ...]],
        static_views: dict[int, np.ndarray],
    ) -> list[tuple[Any, ...]]:
        """Bake the wavefront layout into executable program items.

        Clears are re-homed from stream positions to program items: a slot
        is dropped after the *last program item* that consumes it (levels
        may execute a stream-later consumer before a stream-earlier one,
        so the serial clear placement would be unsafe). Each item becomes
        ``(runner, chunks_or_None, clear_slots)``.
        """
        item_of: dict[int, int] = {}
        for item_idx, (_kind, members) in enumerate(layout):
            idxs = (
                [i for chunk in members for i in chunk]
                if _kind == "parallel"
                else members
            )
            for i in idxs:
                item_of[i] = item_idx

        # Which program item finalizes each written slot: consumers of the
        # level-completion hook (distributed gradient overlap) use this to
        # know when an output register may be read mid-run.
        self._item_of_slot = {}
        for idx, desc in enumerate(descs):
            for s in desc["out_slots"]:
                self._item_of_slot[s] = max(
                    self._item_of_slot.get(s, -1), item_of[idx]
                )

        clear_slots: set[int] = set()
        for slots in clears_at.values():
            clear_slots.update(slots)
        last_item: dict[int, int] = {}
        for idx, desc in enumerate(descs):
            item = item_of[idx]
            for s in desc["in_slots"]:
                if s in clear_slots:
                    last_item[s] = max(last_item.get(s, -1), item)
            for s in desc["out_slots"]:
                if s in clear_slots:
                    last_item.setdefault(s, item)
        item_clears: dict[int, list[int]] = {}
        for s, item in last_item.items():
            item_clears.setdefault(item, []).append(s)

        program: list[tuple[Any, ...]] = []
        for item_idx, (kind, members) in enumerate(layout):
            clears = tuple(sorted(item_clears.get(item_idx, ())))
            if kind == "serial":
                program.append(
                    ("serial", self._bake_body(members, clears), None)
                )
            else:
                chunk_fns = [self._bake_body(chunk, ()) for chunk in members]
                program.append(("parallel", chunk_fns, clears))
        self._pool = shared_pool(self.threads - 1)
        return program

    def _bake_body(
        self, step_indices: list[int], clears: tuple[int, ...]
    ) -> Callable[[list], None]:
        """One straight-line function calling the given steps in order.

        Used for the full serial body, for serial program segments, and
        for parallel chunks (no iterator machinery anywhere in the hot
        loop). ``clears`` appends register drops after the last step.
        """
        if not step_indices and not clears:
            return lambda regs: None
        env = {"S": self._steps} if step_indices else {}
        defaults = ", ".join(
            f"_s{i}=S[{idx}]" for i, idx in enumerate(step_indices)
        )
        lines = [f"    _s{i}(regs)" for i in range(len(step_indices))]
        lines.extend(f"    regs[{s}] = None" for s in clears)
        head = f"def body(regs{', ' + defaults if defaults else ''}):\n"
        src = head + "\n".join(lines) + "\n"
        ns: dict = {}
        exec(self._compile_source(src), env, ns)  # noqa: S102
        return ns["body"]

    def _compile_source(self, src: str):
        """``compile`` the generated source, via the bytecode cache if any.

        ``builtins.compile`` over the thousands of per-instruction sources
        is the dominant cost of plan construction; the persistent cache
        turns every repeat into a dict lookup.
        """
        if self._code_cache is not None:
            return self._code_cache.compile(src)
        return compile(src, "<compiled-plan>", "exec")

    @staticmethod
    def _fuse_chains(
        body: list[Node], output_keys: set[TensorKey]
    ) -> list[list[Node]]:
        """Group the body into maximal single-consumer elementwise chains.

        An edge producer->consumer fuses when both ops are single-output
        and ``fusion_eligible``, the producer's only consumer is this node
        (once, at an in-place-capable operand position), shapes and dtypes
        match (so one accumulator buffer serves the whole chain), the
        value does not escape as a graph output, and both nodes belong to
        the same stage — fusion never crosses a checkpoint boundary, so
        Echo's mirrored recompute regions stay intact.
        """
        consumers: dict[TensorKey, list[tuple[Node, int]]] = {}
        for n in body:
            for pos, t in enumerate(n.inputs):
                consumers.setdefault(t.key, []).append((n, pos))

        next_of: dict[int, Node] = {}
        prev_of: dict[int, Node] = {}
        for a in body:
            if not a.op.fusion_eligible or len(a.out_specs) != 1:
                continue
            key = (a.uid, 0)
            if key in output_keys:
                continue
            cons = consumers.get(key, [])
            if len(cons) != 1:
                continue
            b, pos = cons[0]
            if not b.op.fusion_eligible or len(b.out_specs) != 1:
                continue
            if pos not in b.op.inplace_operands:
                continue
            if b.uid in prev_of:
                continue
            if a.out_specs[0].shape != b.out_specs[0].shape:
                continue
            if a.out_specs[0].dtype != b.out_specs[0].dtype:
                continue
            if a.stage is not b.stage:
                continue
            next_of[a.uid] = b
            prev_of[b.uid] = a

        chains: list[list[Node]] = []
        for n in body:
            if n.uid in next_of:
                continue  # absorbed into its consumer's instruction
            chain = [n]
            cur = n
            while cur.uid in prev_of:
                cur = prev_of[cur.uid]
                chain.append(cur)
            chain.reverse()
            chains.append(chain)
        return chains

    # -- closure factories ---------------------------------------------------

    def _bake(self, body: str, env: dict, node: Node, defaults: str):
        """Compile one instruction closure from source.

        ``defaults`` binds compile-time constants (the node, kernels,
        static buffers) as default arguments — local loads at run time,
        with no cell or global lookups — and ``body`` is exact minimal
        bytecode for this instruction (register clears fully unrolled).
        """
        src = f"def step(regs, {defaults}):\n{body}\n"
        ns: dict = {}
        exec(self._compile_source(src), env, ns)  # noqa: S102
        step = ns["step"]
        step._node = node
        return step

    def _make_out_step(self, node, in_slots, out_slots, clear, statics):
        acquire_fresh = self.arena.acquire_fresh
        compute_into = node.op.compute_into
        specs = [
            (s.shape, s.dtype, s.nbytes) for s in node.out_specs
        ]
        clear_src = "".join(f"\n    regs[{s}] = None" for s in clear)
        args = ", ".join(f"regs[{i}]" for i in in_slots)
        if len(out_slots) == 1:
            out_slot = out_slots[0]
            static = statics[0]
            shape, dtype, nbytes = specs[0]
            kernel = _raw_kernel(node)
            env = {
                "node": node,
                "compute_into": compute_into,
                "acquire_fresh": acquire_fresh,
                "kernel": kernel,
                "static": static,
                "dtype": dtype,
            }
            operands = f"({args},)" if len(in_slots) == 1 else f"({args})"
            # With a static buffer the step has no allocator at all — the
            # output array is a default-argument constant.
            if static is not None and kernel is not None:
                body = (
                    f"    _k({args}, _s)\n"
                    f"    regs[{out_slot}] = _s{clear_src}"
                )
                defaults = "_k=kernel, _s=static"
            elif static is not None:
                body = (
                    f"    _f(_n, {operands}, (_s,))\n"
                    f"    regs[{out_slot}] = _s{clear_src}"
                )
                defaults = "_n=node, _f=compute_into, _s=static"
            elif kernel is not None:
                body = (
                    f"    out = _a({shape!r}, _d, {nbytes})\n"
                    f"    _k({args}, out)\n"
                    f"    regs[{out_slot}] = out{clear_src}"
                )
                defaults = "_a=acquire_fresh, _d=dtype, _k=kernel"
            else:
                body = (
                    f"    out = _a({shape!r}, _d, {nbytes})\n"
                    f"    _f(_n, {operands}, (out,))\n"
                    f"    regs[{out_slot}] = out{clear_src}"
                )
                defaults = "_a=acquire_fresh, _d=dtype, _n=node, _f=compute_into"
            return self._bake(body, env, node, defaults)

        if all(st is not None for st in statics):

            def step(regs):
                compute_into(node, [regs[s] for s in in_slots], statics)
                for s, arr in zip(out_slots, statics):
                    regs[s] = arr
                for s in clear:
                    regs[s] = None

        else:

            def step(regs):
                outs = [
                    st if st is not None else acquire_fresh(sh, dt, nb)
                    for st, (sh, dt, nb) in zip(statics, specs)
                ]
                compute_into(node, [regs[s] for s in in_slots], outs)
                for s, arr in zip(out_slots, outs):
                    regs[s] = arr
                for s in clear:
                    regs[s] = None

        step._node = node
        return step

    def _make_batched_step(self, desc, clear, static):
        """One stacked GEMM instruction covering a batched group.

        Member inputs are copied into permanent scratch stacks (skipped
        when the operand is shared by every member — the attention-scoring
        case, where one key matrix serves all decoder steps), the stacked
        kernel runs once, and each member's register receives its slice of
        the stacked result.
        """
        node = desc["node"]
        group = len(desc["out_slots"])
        spec = node.out_specs[0]
        env: dict = {
            "node": node,
            "mm": np.matmul,
            "cp": np.copyto,
            "ExecutionError": ExecutionError,
        }
        defaults = ["_mm=mm", "_cp=cp", "_EE=ExecutionError", "_t=node"]
        lines: list[str] = []

        # Operand A.
        if desc["shared_a"]:
            a_expr = f"regs[{desc['a_slots'][0]}]" + (".T" if desc["ta"] else "")
        else:
            scratch_a = desc["scratch_a"]
            env["sav"] = tuple(scratch_a[i] for i in range(group))
            env["A"] = stacked_operand(scratch_a, desc["ta"])
            defaults.extend(["_sav=sav", "_A=A"])
            lines.extend(
                f"        _cp(_sav[{i}], regs[{s}])"
                for i, s in enumerate(desc["a_slots"])
            )
            a_expr = "_A"
        # Operand B.
        if desc["shared_b"]:
            b_expr = f"regs[{desc['b_slots'][0]}]" + (".T" if desc["tb"] else "")
        else:
            scratch_b = desc["scratch_b"]
            env["sbv"] = tuple(scratch_b[i] for i in range(group))
            env["B"] = stacked_operand(scratch_b, desc["tb"])
            defaults.extend(["_sbv=sbv", "_B=B"])
            lines.extend(
                f"        _cp(_sbv[{i}], regs[{s}])"
                for i, s in enumerate(desc["b_slots"])
            )
            b_expr = "_B"

        clear_src = "".join(f"\n    regs[{s}] = None" for s in clear)
        if static is not None:
            env["ov"] = tuple(static[i] for i in range(group))
            env["S"] = static
            defaults.extend(["_ov=ov", "_S=S"])
            lines.append(f"        _mm({a_expr}, {b_expr}, out=_S)")
            assigns = "".join(
                f"\n    regs[{s}] = _ov[{i}]"
                for i, s in enumerate(desc["out_slots"])
            )
        else:
            env["acquire_fresh"] = self.arena.acquire_fresh
            env["dtype"] = spec.dtype
            defaults.append("_a=acquire_fresh, _d=dtype")
            shape = (group,) + spec.shape
            lines.insert(
                0, f"        buf = _a({shape!r}, _d, {group * spec.nbytes})"
            )
            lines.append(f"        _mm({a_expr}, {b_expr}, out=buf)")
            assigns = "".join(
                f"\n    regs[{s}] = buf[{i}]"
                for i, s in enumerate(desc["out_slots"])
            )
        body = (
            "    try:\n"
            + "\n".join(lines) + "\n"
            "    except Exception as exc:\n"
            "        raise _EE(\n"
            "            f'kernel failure in batched GEMM group at "
            "{_t!r}: {exc}'\n"
            "        ) from exc"
            f"{assigns}{clear_src}"
        )
        step = self._bake(body, env, node, ", ".join(defaults))
        step._batched = True
        return step

    def _make_fused_step(self, chain, out_slot, clear, static):
        tail = chain[-1][1]
        spec = tail.out_specs[0]
        shape, dtype, nbytes = spec.shape, spec.dtype, spec.nbytes
        # The chain body is fully unrolled: one source line per member,
        # streaming the accumulator ``buf`` through the kernels. Members
        # with a bindable raw kernel (see :func:`_raw_kernel`) skip the
        # ``compute_into`` wrapper entirely.
        env: dict = {"chain_members": [node for _op, node, _p in chain]}
        defaults = []
        lines = []
        for j, (op, node, pattern) in enumerate(chain):
            kernel = _raw_kernel(node)
            if kernel is not None:
                env[f"k{j}"] = kernel
                defaults.append(f"_k{j}=k{j}")
                args = ", ".join(
                    "buf" if s < 0 else f"regs[{s}]" for s in pattern
                )
                lines.append(f"        _k{j}({args}, buf)")
            else:
                env[f"f{j}"] = op.compute_into
                env[f"n{j}"] = node
                defaults.append(f"_f{j}=f{j}, _n{j}=n{j}")
                args = ", ".join(
                    "buf" if s < 0 else f"regs[{s}]" for s in pattern
                )
                comma = "," if len(pattern) == 1 else ""
                lines.append(f"        _f{j}(_n{j}, ({args}{comma}), (buf,))")
        if static is not None:
            env["static"] = static
            defaults.append("_s=static")
            alloc = "    buf = _s"
        else:
            env["acquire_fresh"] = self.arena.acquire_fresh
            env["dtype"] = dtype
            defaults.append("_a=acquire_fresh, _d=dtype")
            alloc = f"    buf = _a({shape!r}, _d, {nbytes})"
        env["ExecutionError"] = ExecutionError
        env["tail"] = tail
        defaults.append("_EE=ExecutionError, _t=tail")
        clear_src = "".join(f"\n    regs[{s}] = None" for s in clear)
        body = (
            f"{alloc}\n"
            "    try:\n"
            + "\n".join(lines) + "\n"
            "    except Exception as exc:\n"
            "        raise _EE(\n"
            "            f'kernel failure in fused chain ending at "
            "{_t!r}: {exc}'\n"
            "        ) from exc\n"
            f"    regs[{out_slot}] = buf{clear_src}"
        )
        step = self._bake(body, env, tail, ", ".join(defaults))
        step._fused = True
        return step

    def _make_alias_step(self, node, in_slots, out_slots, indices, clear):
        """An elided copy: bind a view of the input register, run nothing.

        ``indices`` has one entry per output slot — an index object
        applied to the input (``slice_axis``, leading-axis ``split``) or
        None for a pure rebind (identity ``concat``/``broadcast_to``,
        full-range slice). The bound view holds exactly the values the
        copy kernel would have produced, so downstream kernels are
        bitwise-unchanged; only the copy's launch and its buffer are gone.
        """
        src = in_slots[0]
        clear_src = "".join(f"\n    regs[{s}] = None" for s in clear)
        env: dict = {"node": node}
        defaults = ["_n=node"]
        lines = []
        for j, (o, index) in enumerate(zip(out_slots, indices)):
            if index is None:
                lines.append(f"    regs[{o}] = regs[{src}]")
            else:
                env[f"ix{j}"] = index
                defaults.append(f"_ix{j}=ix{j}")
                lines.append(f"    regs[{o}] = regs[{src}][_ix{j}]")
        body = "\n".join(lines) + clear_src
        return self._bake(body, env, node, ", ".join(defaults))

    def _make_view_step(self, node, in_slots, out_slots, clear):
        out_slot = out_slots[0]
        clear_src = "".join(f"\n    regs[{s}] = None" for s in clear)
        env = {"node": node, "compute": node.op.compute}
        if node.op.name == "reshape" and len(in_slots) == 1:
            # The dominant view op; the target shape is static, so the
            # step is a bare ndarray.reshape (same view ``compute`` makes).
            shape = node.out_specs[0].shape
            body = (
                f"    regs[{out_slot}] = "
                f"regs[{in_slots[0]}].reshape({shape!r}){clear_src}"
            )
            return self._bake(body, env, node, "_n=node")
        args = ", ".join(f"regs[{i}]" for i in in_slots)
        body = (
            f"    regs[{out_slot}] = _c(_n, [{args}])[0]{clear_src}"
        )
        return self._bake(body, env, node, "_n=node, _c=compute")

    def _make_generic_step(self, node, in_slots, out_slots, clear, guard):
        compute = node.op.compute
        specs = list(node.out_specs)
        plan = self
        lock = self._alloc_lock

        def step(regs):
            results = compute(node, [regs[s] for s in in_slots])
            if lock is None:
                plan.generic_alloc_count += len(results)
            else:
                with lock:
                    plan.generic_alloc_count += len(results)
            for j, (s, arr) in enumerate(zip(out_slots, results)):
                expected = specs[j]
                if tuple(arr.shape) != expected.shape:
                    raise ExecutionError(
                        f"{node.name} output {j}: kernel produced shape "
                        f"{arr.shape}, spec says {expected.shape}"
                    )
                for g in guard:
                    src = regs[g]
                    if arr is src or (
                        arr.base is not None and np.may_share_memory(arr, src)
                    ):
                        # The kernel returned (a view of) an input whose
                        # static buffer later instructions overwrite;
                        # detach it.
                        arr = arr.copy()
                        break
                regs[s] = arr
            for s in clear:
                regs[s] = None

        step._node = node
        return step

    # -- execution -----------------------------------------------------------

    @property
    def program_item_count(self) -> int:
        """Number of level-completion hook firings per run (>= 1)."""
        return len(self._program) if self._program is not None else 1

    def output_ready_items(self) -> list[int]:
        """For each plan output, the program item after which its register
        holds the final value.

        Serial plans (no wavefront program) run as one body, so every
        output is item ``0`` — the hook fires once, at the end. Consumers
        overlapping work with execution (distributed gradient reduction)
        compare these indices against the hook's item argument; output
        registers are pinned, never recycled (LT104), so reading one
        after its item completes is safe while later items execute.
        """
        if self._program is None:
            return [0] * len(self._output_slots)
        return [
            self._item_of_slot.get(s, 0) for s in self._output_slots
        ]

    def output_value(self, regs: list, index: int) -> np.ndarray:
        """Read plan output ``index`` from a live register file.

        For hook consumers: valid once ``output_ready_items()[index]``
        has retired (the register is pinned thereafter).
        """
        return regs[self._output_slots[index]]

    def run(
        self,
        feeds: Mapping[str, np.ndarray] | None = None,
        params: Mapping[str, np.ndarray] | None = None,
        on_item: Any | None = None,
    ) -> list[np.ndarray]:
        """Execute one iteration; returns the output arrays.

        ``on_item(item_index, regs)`` — the level-completion hook — is
        invoked after each program item (serial segment or parallel
        level) retires, with the live register file. Hook consumers may
        *read* registers whose finalizing item has passed (see
        :meth:`output_ready_items`) but must never write any; exceptions
        propagate and abort the run.
        """
        feeds = feeds or {}
        params = params or {}
        regs = self._template[:]
        for slot, node, kind in self._bindings:
            regs[slot] = bind_source(
                feeds if kind == "placeholder" else params, node, kind
            )
        hook_error: list[BaseException] = []

        def fire(item_idx: int) -> None:
            try:
                on_item(item_idx, regs)
            except BaseException as exc:
                # Remember it: hook failures must reach the caller as-is
                # (the distributed trainer dispatches on them), not be
                # re-attributed to a kernel by the replay below.
                hook_error.append(exc)
                raise

        traced = obs_trace.TRACING
        try:
            if self._program is None:
                if traced:
                    with obs_trace.span("exec.body", "exec"):
                        self._body(regs)
                else:
                    self._body(regs)
                if on_item is not None:
                    fire(0)
            else:
                pool = self._pool
                for item_idx, (kind, payload, clears) in enumerate(
                    self._program
                ):
                    if kind == "serial":
                        if traced:
                            with obs_trace.span(
                                "wavefront.item", "exec",
                                {"item": item_idx, "kind": "serial"},
                            ):
                                payload(regs)
                        else:
                            payload(regs)
                    else:
                        if traced:
                            with obs_trace.span(
                                "wavefront.item", "exec",
                                {"item": item_idx, "kind": "level",
                                 "chunks": len(payload)},
                            ):
                                pool.run_level(payload, regs)
                        else:
                            pool.run_level(payload, regs)
                        for s in clears:
                            regs[s] = None
                    if on_item is not None:
                        fire(item_idx)
        except ExecutionError:
            raise
        except Exception as first:
            if hook_error:
                raise
            # Slow path, failures only: re-execute step by step from fresh
            # registers to attribute the failure to a node. Kernels are
            # deterministic (dropout is counter-based on the already-set
            # global step), so the replay reproduces the same failure.
            regs = self._template[:]
            for slot, node, kind in self._bindings:
                regs[slot] = bind_source(
                    feeds if kind == "placeholder" else params, node, kind
                )
            step = None
            try:
                for step in self._steps:
                    step(regs)
            except ExecutionError:
                raise
            except Exception as exc:
                node = step._node if step is not None else None
                raise ExecutionError(
                    f"kernel failure in {node!r}: {exc}"
                ) from exc
            raise ExecutionError(f"kernel failure: {first}") from first
        return [regs[s] for s in self._output_slots]
