"""Length bucketing for sequence training (MXNet BucketingModule style).

Real NMT training does not pad every sentence to the corpus maximum: it
groups sentences into length *buckets* and compiles one executor per
bucket shape. Footprint is set by the largest bucket; throughput improves
because short sentences stop paying for long-bucket padding. This module
provides the data side; :class:`repro.train.BucketedTrainer` owns the
per-bucket graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.synthetic import TranslationTask


@dataclass(frozen=True)
class BucketSpec:
    """One (source length, target length) bucket."""

    src_len: int
    tgt_len: int

    def __post_init__(self) -> None:
        if self.src_len < 2 or self.tgt_len < self.src_len:
            raise ValueError(f"degenerate bucket {self}")


def default_buckets(max_len: int, step: int = 10) -> tuple[BucketSpec, ...]:
    """Evenly spaced buckets up to ``max_len`` (Sockeye's default scheme)."""
    lengths = list(range(step, max_len + 1, step))
    if not lengths or lengths[-1] != max_len:
        lengths.append(max_len)
    return tuple(BucketSpec(n, n) for n in lengths)


def bucket_for(length: int, buckets: tuple[BucketSpec, ...]) -> BucketSpec:
    """Smallest bucket that fits a source sentence of ``length``."""
    for bucket in buckets:
        if length <= bucket.src_len:
            return bucket
    raise ValueError(
        f"sentence length {length} exceeds the largest bucket "
        f"({buckets[-1].src_len})"
    )


def pad_to_bucket(
    rows: Sequence[Sequence[int]],
    bucket: BucketSpec,
    batch_size: int,
    pad_token: int = 0,
) -> np.ndarray:
    """Pack token rows into one [T_src x B] int64 feed for ``bucket``.

    Each row is right-padded with ``pad_token`` to the bucket's source
    length; rows beyond ``len(rows)`` (the under-occupancy filler the
    serving micro-batcher needs when fewer requests than ``batch_size``
    coalesce) repeat row 0. Repeating a real row — rather than feeding
    all-pad rows — makes filler rows finish decoding exactly when their
    source row does, so partially full batches never decode longer than
    their real requests require. Filler content cannot change any real
    row's output: every inference kernel is row-independent.
    """
    if not rows:
        raise ValueError("cannot pad an empty batch")
    if len(rows) > batch_size:
        raise ValueError(f"{len(rows)} rows exceed batch size {batch_size}")
    out = np.full((bucket.src_len, batch_size), pad_token, np.int64)
    for b in range(batch_size):
        row = rows[b] if b < len(rows) else rows[0]
        if len(row) > bucket.src_len:
            raise ValueError(
                f"row of length {len(row)} does not fit bucket {bucket}"
            )
        out[: len(row), b] = np.asarray(list(row), np.int64)
    return out


class BucketedTranslationBatches:
    """Generates fixed-batch-size batches, each padded to one bucket.

    Sentence lengths are drawn between ``min_len`` and the largest
    bucket's source length; each batch is homogeneous in bucket (as real
    bucketing iterators arrange), so one graph per bucket suffices.
    """

    def __init__(
        self,
        task: TranslationTask,
        buckets: tuple[BucketSpec, ...],
        batch_size: int,
        seed: int = 0,
    ) -> None:
        if task.src_len < buckets[-1].src_len:
            raise ValueError(
                "task.src_len must cover the largest bucket "
                f"({task.src_len} < {buckets[-1].src_len})"
            )
        self.task = task
        self.buckets = buckets
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)

    def sample(self) -> tuple[BucketSpec, dict[str, np.ndarray]]:
        """One batch: pick a bucket, generate sentences that fit it."""
        bucket = self.buckets[int(self._rng.integers(len(self.buckets)))]
        sub_task = TranslationTask(
            src_vocab_size=self.task.src_vocab_size,
            tgt_vocab_size=self.task.tgt_vocab_size,
            src_len=bucket.src_len,
            tgt_len=bucket.tgt_len,
            seed=self.task.seed,
        )
        feeds = sub_task.sample_batch(self.batch_size, self._rng)
        return bucket, feeds

    def __iter__(self) -> Iterator[tuple[BucketSpec, dict[str, np.ndarray]]]:
        while True:
            yield self.sample()
