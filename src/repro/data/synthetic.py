"""Synthetic corpora standing in for PTB / Wikitext-2 / IWSLT15 en-vi.

Footprint and throughput experiments depend only on tensor shapes, but the
convergence experiments (training curves, BLEU-vs-wall-clock) need tasks a
model can genuinely learn. Two generators provide that:

* :func:`markov_corpus` — token streams from a sparse random first-order
  Markov chain: low conditional entropy, so an LSTM LM's perplexity drops
  steeply below the unigram floor as it trains.
* :class:`TranslationTask` — source sentences from a Markov chain; targets
  are a deterministic per-token relabeling of the *reversed* source. The
  reversal makes attention genuinely useful (alignments are anti-diagonal),
  and the determinism means BLEU approaches 100 as the model converges —
  preserving the paper's "larger batch reaches the target score faster in
  wall clock" comparison.

Token id conventions: 0 = PAD, 1 = BOS, 2 = EOS; real tokens start at 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

PAD, BOS, EOS = 0, 1, 2
NUM_SPECIAL = 3


def markov_transitions(
    vocab_size: int, branching: int = 4, seed: int = 0
) -> np.ndarray:
    """Row-stochastic transition matrix with ``branching`` likely successors
    per token plus uniform smoothing (entropy ~ log2(branching) bits)."""
    if vocab_size <= NUM_SPECIAL + branching:
        raise ValueError(f"vocab_size {vocab_size} too small")
    rng = np.random.default_rng(seed)
    real = vocab_size - NUM_SPECIAL
    probs = np.full((real, real), 0.02 / real, np.float64)
    for row in range(real):
        successors = rng.choice(real, size=branching, replace=False)
        probs[row, successors] += 0.98 / branching
    probs /= probs.sum(axis=1, keepdims=True)
    return probs


def markov_corpus(
    vocab_size: int, num_tokens: int, seed: int = 0, branching: int = 4
) -> np.ndarray:
    """Sample a token stream (ids in [NUM_SPECIAL, vocab_size))."""
    rng = np.random.default_rng(seed + 1)
    probs = markov_transitions(vocab_size, branching, seed)
    real = vocab_size - NUM_SPECIAL
    tokens = np.empty(num_tokens, np.int64)
    state = int(rng.integers(real))
    cumulative = np.cumsum(probs, axis=1)
    draws = rng.random(num_tokens)
    for i in range(num_tokens):
        state = int(np.searchsorted(cumulative[state], draws[i]))
        tokens[i] = state + NUM_SPECIAL
    return tokens


def lm_batches(
    corpus: np.ndarray, batch_size: int, seq_len: int
) -> Iterator[dict[str, np.ndarray]]:
    """Contiguous language-modeling batches: tokens [T x B], labels = next
    token. The standard truncated-BPTT data layout."""
    usable = (len(corpus) - 1) // batch_size * batch_size
    if usable < batch_size * seq_len:
        raise ValueError("corpus too small for one batch")
    inputs = corpus[:usable].reshape(batch_size, -1).T  # [steps x B]
    labels = corpus[1:usable + 1].reshape(batch_size, -1).T
    steps = inputs.shape[0] // seq_len
    for s in range(steps):
        sl = slice(s * seq_len, (s + 1) * seq_len)
        yield {"tokens": inputs[sl], "labels": labels[sl]}


@dataclass(frozen=True)
class TranslationTask:
    """Deterministic toy translation: target = relabel(reverse(source))."""

    src_vocab_size: int
    tgt_vocab_size: int
    src_len: int
    tgt_len: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tgt_len < self.src_len:
            raise ValueError("tgt_len must cover reversed source + EOS")

    def _relabel_table(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 7)
        real_src = self.src_vocab_size - NUM_SPECIAL
        real_tgt = self.tgt_vocab_size - NUM_SPECIAL
        return rng.integers(0, real_tgt, real_src) + NUM_SPECIAL

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Training feeds: src_tokens, tgt_tokens (BOS + gold prefix),
        tgt_labels (gold + EOS, PAD positions labeled -1)."""
        table = self._relabel_table()
        probs = markov_transitions(self.src_vocab_size, seed=self.seed)
        cumulative = np.cumsum(probs, axis=1)
        real_src = self.src_vocab_size - NUM_SPECIAL

        src = np.full((self.src_len, batch_size), PAD, np.int64)
        tgt_in = np.full((self.tgt_len, batch_size), PAD, np.int64)
        labels = np.full((self.tgt_len, batch_size), -1, np.int64)

        min_len = max(3, self.src_len // 2)
        for b in range(batch_size):
            length = int(rng.integers(min_len, self.src_len + 1))
            state = int(rng.integers(real_src))
            sentence = np.empty(length, np.int64)
            for i in range(length):
                state = int(
                    np.searchsorted(cumulative[state], rng.random())
                )
                sentence[i] = state + NUM_SPECIAL
            target = table[sentence[::-1] - NUM_SPECIAL]

            src[:length, b] = sentence
            tgt_in[0, b] = BOS
            tgt_in[1:length + 1, b] = target[: self.tgt_len - 1]
            labels[:length, b] = target
            if length < self.tgt_len:
                labels[length, b] = EOS
        return {"src_tokens": src, "tgt_tokens": tgt_in, "tgt_labels": labels}

    def references(self, src: np.ndarray) -> list[list[int]]:
        """Gold target sentences for BLEU, from a [T_src x B] batch."""
        table = self._relabel_table()
        refs = []
        for b in range(src.shape[1]):
            sentence = src[:, b]
            sentence = sentence[sentence != PAD]
            refs.append([int(t) for t in table[sentence[::-1] - NUM_SPECIAL]])
        return refs


def batches(
    task: TranslationTask, batch_size: int, num_batches: int, seed: int = 0
) -> Iterator[dict[str, np.ndarray]]:
    rng = np.random.default_rng(seed)
    for _ in range(num_batches):
        yield task.sample_batch(batch_size, rng)
