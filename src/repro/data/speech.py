"""Synthetic speech-recognition task (LibriSpeech stand-in for DS2).

Each vocabulary token owns a fixed spectral template; an "utterance" is
the concatenation of its transcript's templates (2-4 frames each, random
duration) plus noise. A CTC model must learn to segment and classify the
frames — exact-match accuracy climbs well above chance within a few
hundred steps, which is what the convergence tests need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SpeechTask:
    """Generator of (spectrogram, transcript) batches."""

    vocab_size: int  # including blank id 0
    feat_dim: int
    num_frames: int
    max_label_len: int
    seed: int = 0
    noise: float = 0.3

    def __post_init__(self) -> None:
        if self.vocab_size < 3:
            raise ValueError("need blank + at least two labels")
        if self.num_frames < 2 * self.max_label_len:
            raise ValueError("not enough frames to fit the longest label")

    def _templates(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 17)
        templates = rng.standard_normal((self.vocab_size, self.feat_dim))
        return templates / np.linalg.norm(templates, axis=1, keepdims=True)

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Feeds for the DS2 training graph: features [T x B x F],
        ctc_labels [B x L] (-1 padded)."""
        templates = self._templates()
        features = np.zeros(
            (self.num_frames, batch_size, self.feat_dim), np.float32
        )
        labels = np.full((batch_size, self.max_label_len), -1, np.int64)
        for b in range(batch_size):
            length = int(rng.integers(2, self.max_label_len + 1))
            transcript = rng.integers(1, self.vocab_size, length)
            labels[b, :length] = transcript
            frame = 0
            for token in transcript:
                duration = int(rng.integers(2, 5))
                duration = min(duration, self.num_frames - frame)
                if duration <= 0:
                    break
                features[frame:frame + duration, b] = templates[token] * 3.0
                frame += duration
        features += rng.standard_normal(features.shape).astype(
            np.float32) * self.noise
        return {"features": features, "ctc_labels": labels}

    def transcripts(self, labels: np.ndarray) -> list[list[int]]:
        """Token lists from a [B x L] padded label matrix."""
        return [
            [int(t) for t in row if t >= 0] for row in labels
        ]


def exact_match_rate(
    hypotheses: list[list[int]], references: list[list[int]]
) -> float:
    """Fraction of utterances transcribed exactly."""
    if len(hypotheses) != len(references):
        raise ValueError("length mismatch")
    if not hypotheses:
        return 0.0
    return sum(h == r for h, r in zip(hypotheses, references)) / len(
        hypotheses
    )
