"""Metadata of the paper's datasets, with synthetic stand-ins.

The real corpora are unavailable offline; experiments use
:mod:`repro.data.synthetic` generators sized by these specs (vocabulary
sizes set the output-projection GEMM dimensions, which dominate both
runtime and the weights' footprint, so matching them matters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import markov_corpus


@dataclass(frozen=True)
class CorpusSpec:
    """A language-modeling corpus."""

    name: str
    vocab_size: int
    train_tokens: int

    def synthetic(self, num_tokens: int | None = None, seed: int = 0
                  ) -> np.ndarray:
        """A Markov stand-in stream with this corpus's vocabulary."""
        n = num_tokens or min(self.train_tokens, 200_000)
        return markov_corpus(self.vocab_size, n, seed=seed)


@dataclass(frozen=True)
class TranslationSpec:
    """A machine-translation corpus."""

    name: str
    src_vocab_size: int
    tgt_vocab_size: int
    sentences: int
    mean_src_len: int


#: Penn TreeBank word-level LM (Zaremba et al. setup)
PTB = CorpusSpec(name="PTB", vocab_size=10000, train_tokens=929_589)

#: Wikitext-2 word-level LM (Merity et al.)
WIKITEXT2 = CorpusSpec(name="Wikitext-2", vocab_size=33278,
                       train_tokens=2_088_628)

#: IWSLT'15 English-Vietnamese (the paper's Sockeye training set)
IWSLT15_EN_VI = TranslationSpec(
    name="IWSLT15 en-vi",
    src_vocab_size=17191,
    tgt_vocab_size=7709,
    sentences=133_317,
    mean_src_len=20,
)
