"""Synthetic datasets, corpus metadata, and data-parallel sharding."""

from repro.data.bucketing import (
    BucketedTranslationBatches,
    BucketSpec,
    bucket_for,
    default_buckets,
    pad_to_bucket,
)
from repro.data.sharding import ShardedBatches, shard_feeds
from repro.data.speech import SpeechTask, exact_match_rate
from repro.data.corpora import IWSLT15_EN_VI, PTB, WIKITEXT2, CorpusSpec, TranslationSpec
from repro.data.synthetic import (
    BOS,
    EOS,
    PAD,
    TranslationTask,
    batches,
    lm_batches,
    markov_corpus,
    markov_transitions,
)

__all__ = [
    "PAD", "BOS", "EOS",
    "markov_corpus", "markov_transitions", "lm_batches",
    "TranslationTask", "batches",
    "BucketSpec", "default_buckets", "bucket_for", "pad_to_bucket",
    "BucketedTranslationBatches",
    "shard_feeds", "ShardedBatches",
    "SpeechTask", "exact_match_rate",
    "CorpusSpec", "TranslationSpec", "PTB", "WIKITEXT2", "IWSLT15_EN_VI",
]
