"""Deterministic shard-by-rank splitting of batch feeds.

Data parallelism needs every rank to see a *disjoint, agreed* slice of
each global batch. This module does that as pure indexing: rank ``r``
of ``world`` takes the ``r``-th contiguous block along the batch axis.
No RNG, no hashing — the shard a rank receives is a pure function of
``(feeds, world, rank)``, so re-running a step (the degrade path's
retry) or replaying in a single process (the bitwise reference in
:func:`repro.dist.trainer.data_parallel_reference`) sees exactly the
same bytes.

Axis convention follows the repo's feeds: sequence feeds are
``[T x B]`` (batch is axis 1), per-sample vectors are ``[B]`` (axis 0).
``batch_axes`` overrides per feed name when a model deviates.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["shard_feeds", "ShardedBatches"]


def _batch_axis(name: str, arr: np.ndarray,
                batch_axes: Mapping[str, int] | None) -> int:
    if batch_axes and name in batch_axes:
        return batch_axes[name]
    return 1 if arr.ndim >= 2 else 0


def shard_feeds(
    feeds: Mapping[str, np.ndarray],
    world: int,
    rank: int,
    batch_axes: Mapping[str, int] | None = None,
) -> dict[str, np.ndarray]:
    """Rank ``rank``'s contiguous block of every feed's batch axis.

    The global batch must divide evenly by ``world`` — silent remainder
    dropping would make "N-rank equals 1-rank on the same global batch"
    quietly false, so uneven batches raise instead.
    """
    if world < 1:
        raise ValueError("world must be >= 1")
    if rank not in range(world):
        raise ValueError(f"rank {rank} outside world of {world}")
    out: dict[str, np.ndarray] = {}
    for name, value in feeds.items():
        arr = np.asarray(value)
        axis = _batch_axis(name, arr, batch_axes)
        size = arr.shape[axis]
        if size % world:
            raise ValueError(
                f"feed {name!r}: batch axis {axis} has {size} samples, "
                f"not divisible by world size {world}"
            )
        shard = size // world
        index = [slice(None)] * arr.ndim
        index[axis] = slice(rank * shard, (rank + 1) * shard)
        # Contiguous copy: the executor binds feeds by value and the
        # channels would otherwise pickle a strided view's whole base.
        out[name] = np.ascontiguousarray(arr[tuple(index)])
    return out


class ShardedBatches:
    """Iterate a global batch stream as one rank's shard stream.

    Wraps any iterable of feed dicts (the synthetic corpora, the
    bucketed iterators from :mod:`repro.data.bucketing`) so every rank
    walks the *same* global batches in the same order, each keeping its
    own slice — the standard "sharded sampler" shape.
    """

    def __init__(
        self,
        batches: Iterable[Mapping[str, np.ndarray]],
        world: int,
        rank: int,
        batch_axes: Mapping[str, int] | None = None,
    ) -> None:
        self.batches = batches
        self.world = world
        self.rank = rank
        self.batch_axes = dict(batch_axes) if batch_axes else None

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        for feeds in self.batches:
            yield shard_feeds(feeds, self.world, self.rank, self.batch_axes)
