"""GPU device & cost model (DESIGN.md S5): the silicon substitute."""

from repro.gpumodel.devices import (
    ALL_DEVICES,
    RTX_2080_TI,
    TITAN_V,
    TITAN_XP,
    DeviceModel,
    DeviceSpec,
    KernelCost,
)
from repro.gpumodel.gemm import GemmEstimate, estimate_gemm, gemm_efficiency

__all__ = [
    "DeviceSpec",
    "DeviceModel",
    "KernelCost",
    "TITAN_XP",
    "TITAN_V",
    "RTX_2080_TI",
    "ALL_DEVICES",
    "estimate_gemm",
    "gemm_efficiency",
    "GemmEstimate",
]
