"""Analytic GEMM kernel model (cuBLAS stand-in).

The model is a roofline (max of compute-bound and bandwidth-bound time)
scaled by an *achieved-efficiency* term calibrated against the paper's
Figure 9 measurements and standard cuBLAS behavior on skewed matrices:

``eff = f_M * f_N`` with

* ``f_M = M / (M + 96 * 512 / K)`` — the M (tile-row / vectorized) dimension
  underfills tall 128-wide tiles when small; the penalty shrinks as the K
  loop grows because per-tile setup cost is amortized over K iterations;
* ``f_N = N / (N + 16)`` — a milder penalty for narrow outputs.

This reproduces the paper's observations: ``Y^T = W . X^T`` (tall-M) beats
``Y = X . W^T`` (short-M) by ~2x at LSTM shapes (M or N = 64, K = 512) and
by ~1.3x at GRU shapes (K = 1024), and the gap closes as batch size grows.
The L2 hit-rate readout is a proxy derived from the same efficiency term —
the paper attributes the layout gap to cache utilization, and the proxy
keeps that correlation without claiming to simulate cuBLAS's internal
tiling.
"""

from __future__ import annotations

from dataclasses import dataclass

#: GPU-side fixed overhead per GEMM kernel (scheduling, prologue), seconds.
_GEMM_FIXED_SECONDS = 1.5e-6

#: Base fraction of peak FLOPS a well-shaped SGEMM achieves.
_BASE_EFFICIENCY = 0.90


@dataclass(frozen=True)
class GemmEstimate:
    """Modeled execution of one (possibly batched) GEMM."""

    seconds: float
    dram_bytes: int
    flops: int
    achieved_fraction: float  # of peak FLOPS
    l2_hit_rate: float


def gemm_efficiency(m: int, n: int, k: int) -> float:
    """Fraction of peak FLOPS achieved for a [M,K]x[K,N] GEMM."""
    f_m = m / (m + 96.0 * 512.0 / max(k, 1))
    f_n = n / (n + 16.0)
    return _BASE_EFFICIENCY * f_m * f_n


def estimate_gemm(
    peak_flops: float,
    dram_bandwidth: float,
    l2_bytes: int,
    m: int,
    n: int,
    k: int,
    batch: int = 1,
    itemsize: int = 4,
) -> GemmEstimate:
    """Model one GEMM (or a batch of identical GEMMs) on a device."""
    flops = 2 * m * n * k * batch
    a_bytes = m * k * itemsize * batch
    b_bytes = k * n * itemsize * batch
    c_bytes = m * n * itemsize * batch

    # DRAM traffic: each operand streams once; an operand larger than L2
    # spills and is partially re-read across CTA waves.
    def spill_factor(nbytes: int) -> float:
        if nbytes <= l2_bytes:
            return 1.0
        return 1.0 + 0.25 * min(nbytes / l2_bytes - 1.0, 3.0)

    traffic = int(
        a_bytes * spill_factor(a_bytes)
        + b_bytes * spill_factor(b_bytes)
        + c_bytes
    )

    if min(m, n, k) == 1:
        # Degenerate GEMV/outer-product shapes: cuBLAS dispatches
        # bandwidth-oriented kernels, so tile-waste penalties don't apply.
        eff = 0.8
        seconds = traffic / (dram_bandwidth * eff) + _GEMM_FIXED_SECONDS
        return GemmEstimate(
            seconds=seconds,
            dram_bytes=traffic,
            flops=flops,
            achieved_fraction=eff,
            l2_hit_rate=0.5,
        )

    eff = gemm_efficiency(m, n, k)
    t_compute = flops / (peak_flops * eff)
    t_memory = traffic / dram_bandwidth
    seconds = max(t_compute, t_memory) + _GEMM_FIXED_SECONDS

    # L2 hit proxy: per-CTA tile re-reads that did NOT go to DRAM. Scales
    # with the achieved-efficiency term so the faster layout also shows the
    # higher cache utilization, as measured in the paper.
    naive = a_bytes * max(1, n // 128) + b_bytes * max(1, m // 128) + c_bytes
    hit = 1.0 - traffic / max(naive, traffic)
    hit = min(0.98, hit * (0.5 + 0.5 * eff / _BASE_EFFICIENCY))

    return GemmEstimate(
        seconds=seconds,
        dram_bytes=traffic,
        flops=flops,
        achieved_fraction=eff,
        l2_hit_rate=hit,
    )
