"""GPU device specifications and the per-node cost model.

Stands in for the paper's hardware fleet (Titan Xp / Titan V / RTX 2080 Ti)
plus its measurement tools (nvprof kernel times and DRAM counters, CUDA API
tracing). Absolute times are calibrated to the published ballpark; the
experiments compare *ratios*, which derive from arithmetic intensity, bytes
moved, and kernel-launch counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph import Node
from repro.gpumodel.gemm import estimate_gemm

#: CPU-side cost of one cudaLaunch (driver + framework dispatch), seconds.
#: The paper-era MXNet spends ~5-10us per launch; Figure 6/7 hinge on this.
_LAUNCH_OVERHEAD_SECONDS = 5.5e-6

#: GPU-side fixed cost of a non-GEMM kernel (scheduling, tail), seconds.
_KERNEL_FIXED_SECONDS = 1.2e-6

#: DRAM-latency "wave" per bandwidth-bound kernel: a kernel must have this
#: many bytes in flight before the memory system reaches peak bandwidth,
#: so small kernels run at a fraction of peak. This is what makes training
#: throughput keep growing with batch size (Figure 4b) — bigger batches
#: amortize the wave, bigger kernels saturate DRAM.
_BANDWIDTH_WAVE_BYTES = 512 * 1024


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware parameters of one GPU."""

    name: str
    architecture: str
    peak_flops: float  # FP32, FLOP/s
    dram_bandwidth: float  # B/s
    dram_capacity: int  # bytes
    l2_bytes: int
    num_sms: int
    idle_power_watts: float
    max_power_watts: float


TITAN_XP = DeviceSpec(
    name="Titan Xp",
    architecture="Pascal",
    peak_flops=12.15e12,
    dram_bandwidth=547.6e9,
    dram_capacity=12 * 1024**3,
    l2_bytes=3 * 1024**2,
    num_sms=30,
    idle_power_watts=55.0,
    max_power_watts=250.0,
)

TITAN_V = DeviceSpec(
    name="Titan V",
    architecture="Volta",
    peak_flops=14.90e12,
    dram_bandwidth=652.8e9,
    dram_capacity=12 * 1024**3,
    l2_bytes=4608 * 1024,
    num_sms=80,
    idle_power_watts=60.0,
    max_power_watts=250.0,
)

RTX_2080_TI = DeviceSpec(
    name="RTX 2080 Ti",
    architecture="Turing",
    peak_flops=13.45e12,
    dram_bandwidth=616.0e9,
    dram_capacity=11 * 1024**3,
    l2_bytes=5632 * 1024,
    num_sms=68,
    idle_power_watts=55.0,
    max_power_watts=260.0,
)

ALL_DEVICES = (TITAN_XP, TITAN_V, RTX_2080_TI)


@dataclass(frozen=True)
class KernelCost:
    """Simulated cost of executing one node."""

    kernel_seconds: float
    api_seconds: float
    dram_bytes: int
    launches: int


class DeviceModel:
    """Costs graph nodes on a :class:`DeviceSpec` (roofline + launch model)."""

    def __init__(self, spec: DeviceSpec = TITAN_XP) -> None:
        self.spec = spec

    def __repr__(self) -> str:
        return f"DeviceModel({self.spec.name})"

    @property
    def cache_token(self) -> tuple:
        """Hashable identity of this model's *answers*.

        Two devices with equal tokens price every node identically, so the
        token can key caches of cost-derived artifacts (Echo analyses,
        wavefront layouts). Calibrated models extend it with their
        calibration epoch — see :mod:`repro.pgo.calibrated`.
        """
        return (self.spec.name, "analytic")

    # -- node costing --------------------------------------------------------

    def node_cost(self, node: Node) -> KernelCost:
        op = node.op
        launches = op.launch_count(node)
        api_seconds = launches * _LAUNCH_OVERHEAD_SECONDS

        if op.name in ("placeholder", "variable", "constant"):
            return KernelCost(0.0, 0.0, 0, 0)

        gemm_dims = getattr(op, "gemm_dims", None)
        if gemm_dims is not None:
            m, n, k = gemm_dims(node)
            batch = node.inputs[0].shape[0] if op.name == "batch_dot" else 1
            est = estimate_gemm(
                self.spec.peak_flops,
                self.spec.dram_bandwidth,
                self.spec.l2_bytes,
                m,
                n,
                k,
                batch=batch,
            )
            return KernelCost(est.seconds, api_seconds, est.dram_bytes, launches)

        nbytes = op.bytes_accessed(node)
        if nbytes == 0 and launches == 0:
            return KernelCost(0.0, 0.0, 0, 0)  # views (reshape/expand_dims)

        efficiency = getattr(op, "memory_efficiency", lambda _n: 1.0)(node)
        t_memory = (nbytes + _BANDWIDTH_WAVE_BYTES) / (
            self.spec.dram_bandwidth * efficiency
        )
        t_compute = op.flops(node) / (self.spec.peak_flops * 0.5)
        kernel_seconds = max(t_memory, t_compute) + launches * _KERNEL_FIXED_SECONDS
        return KernelCost(kernel_seconds, api_seconds, nbytes, launches)

    def gemm_estimate(self, m: int, n: int, k: int, batch: int = 1):
        """Direct GEMM query (used by the Figure 9 layout microbenchmark)."""
        return estimate_gemm(
            self.spec.peak_flops,
            self.spec.dram_bandwidth,
            self.spec.l2_bytes,
            m,
            n,
            k,
            batch=batch,
        )

    # -- power / energy -------------------------------------------------------

    def power_watts(self, busy_fraction: float) -> float:
        """Average board power at the given kernel-busy duty cycle."""
        busy = min(max(busy_fraction, 0.0), 1.0)
        # Training keeps clocks boosted; dynamic power scales mildly with
        # duty cycle, which is why the paper measures near-flat power
        # across configurations (Figure 19a).
        return (
            self.spec.idle_power_watts
            + (self.spec.max_power_watts - self.spec.idle_power_watts)
            * (0.55 + 0.45 * busy)
        )

    def energy_joules(self, busy_fraction: float, seconds: float) -> float:
        return self.power_watts(busy_fraction) * seconds
