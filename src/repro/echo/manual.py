"""Manual recomputation annotations — the precursor (EcoRNN) workflow.

Before Echo automated the decision, the authors hand-modified the
attention operator: "declare that inputs need to be stashed, replay the
forward pass in backward" (the paper's Figure 10b). This module provides
that workflow as a user-facing API so the two can be compared:

>>> with recompute_region():
...     combined = O.add(O.expand_dims(q_proj, 1), keys)
...     activated = O.tanh(combined)

``apply_manual_recompute(graph)`` then mirrors exactly the annotated
nodes, with the same safety verification the automatic pass uses. The
E-echo experiment (benchmarks/test_echo_manual_parity.py) shows the
automatic pass matches hand annotation on the NMT attention — the paper's
central "compiler does it for you" claim.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from repro.autodiff.training import TrainingGraph
from repro.echo.analysis import Candidate, estimate_iteration_cost
from repro.echo.pass_ import EchoReport
from repro.echo.rewrite import apply_candidate
from repro.graph import Node, Stage
from repro.gpumodel import DeviceModel
from repro.runtime.memory import plan_memory
from repro.runtime.scheduler import schedule

_MARK_ATTR = "echo_manual_recompute"


class _MarkState(threading.local):
    def __init__(self) -> None:
        self.depth = 0
        self.marked: set[int] = set()


_STATE = _MarkState()


@contextlib.contextmanager
def recompute_region() -> Iterator[None]:
    """Mark every node built inside the block for manual recomputation.

    Marks survive on the nodes (``node.attrs['echo_manual_recompute']``)
    until :func:`apply_manual_recompute` consumes them. Nestable.
    """
    _STATE.depth += 1
    try:
        yield
    finally:
        _STATE.depth -= 1


def _mark_if_active(node: Node) -> None:
    if _STATE.depth > 0:
        node.attrs[_MARK_ATTR] = True


# Node construction is the single funnel point for annotations.
from repro.graph.node import register_node_hook  # noqa: E402

register_node_hook(_mark_if_active)


def marked_nodes(graph: TrainingGraph) -> list[Node]:
    """All forward nodes of ``graph`` carrying the manual mark."""
    return [
        n
        for n in graph.nodes()
        if n.stage is Stage.FORWARD and n.attrs.get(_MARK_ATTR)
    ]


def apply_manual_recompute(
    graph: TrainingGraph, device: DeviceModel | None = None
) -> EchoReport:
    """Recompute exactly the user-annotated regions.

    Unlike the automatic pass there is no candidate mining and no
    cost/benefit filter — the user said so — but the footprint-safety
    re-plan still runs: annotations that fail to reduce the measured peak
    raise, because a silent no-op would defeat the annotation's purpose.
    """
    device = device or DeviceModel()
    outputs = graph.outputs
    output_keys = {t.key for t in outputs}
    order = schedule(outputs)
    baseline_plan = plan_memory(order, outputs)
    iteration = estimate_iteration_cost(order, device)

    marked = [n for n in order if n.attrs.get(_MARK_ATTR)
              and n.stage is Stage.FORWARD]
    if not marked:
        raise ValueError(
            "no nodes are marked; build the model inside recompute_region()"
        )

    # Group the marked nodes into connected regions (shared machinery
    # expects topologically sorted node lists).
    from repro.echo.analysis import _connected_components, stashed_tensors

    stashes = stashed_tensors(order, output_keys)
    report = EchoReport(
        baseline_peak_bytes=baseline_plan.peak_bytes,
        optimized_peak_bytes=baseline_plan.peak_bytes,
        candidates_found=0,
        iteration_seconds=iteration.seconds,
        baseline_plan=baseline_plan,
    )
    extra_kernel = extra_api = 0.0
    for component in _connected_components(marked):
        component_uids = {n.uid for n in component}
        eliminated = [
            t for key, t in stashes.items() if key[0] in component_uids
        ]
        if not eliminated:
            continue  # region has nothing stashed; recompute is pointless
        border = {}
        for node in component:
            for t in node.inputs:
                if (t.node.uid not in component_uids
                        and t.key not in stashes
                        and t.node.op.name not in
                        ("placeholder", "variable", "constant")):
                    border[t.key] = t
        kernel = api = 0.0
        for node in component:
            cost = device.node_cost(node)
            kernel += cost.kernel_seconds
            api += cost.api_seconds
        candidate = Candidate(
            nodes=component,
            eliminated=eliminated,
            new_stashes=list(border.values()),
            kernel_seconds=kernel,
            api_seconds=api,
        )
        apply_candidate(candidate, order, output_keys)
        extra_kernel += kernel
        extra_api += api
        report.candidates_found += 1
        report.accepted.append(candidate)

    new_plan = plan_memory(schedule(outputs), outputs)
    if new_plan.peak_bytes > baseline_plan.peak_bytes:
        raise RuntimeError(
            "manual recomputation increased the footprint "
            f"({baseline_plan.peak_bytes} -> {new_plan.peak_bytes} bytes); "
            "the annotated region's border is larger than its interior"
        )
    report.recompute_seconds = iteration.marginal(extra_kernel, extra_api)
    report.optimized_peak_bytes = new_plan.peak_bytes
    report.optimized_plan = new_plan
    # Consume the marks so a second application cannot double-mirror.
    for node in marked:
        node.attrs.pop(_MARK_ATTR, None)
    return report
