"""Graph analyses feeding the Echo pass: stash detection and O-shape
candidate mining.

A *stashed* tensor is a forward-pass value with at least one backward-pass
consumer — the framework must keep it alive across the forward/backward
boundary (a feature map). Echo's candidates are connected regions of
recompute-cheap forward nodes; eliminating a region's stashed outputs
costs re-executing the region during backward and stashing its border
inputs instead. A region is *O-shaped* exactly when the border is much
smaller than the stashed interior.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graph import Node, Stage, Tensor

TensorKey = tuple[int, int]

_SOURCE_OPS = ("placeholder", "variable", "constant")


def stashed_tensors(
    order: Sequence[Node], output_keys: set[TensorKey]
) -> dict[TensorKey, Tensor]:
    """Forward tensors with backward/recompute consumers (feature maps).

    Graph outputs are excluded: they are pinned for the caller regardless,
    so eliminating their stash saves nothing.
    """
    result: dict[TensorKey, Tensor] = {}
    for node in order:
        if node.stage is Stage.FORWARD:
            continue
        for t in node.inputs:
            if (
                t.node.stage is Stage.FORWARD
                and t.node.op.name not in _SOURCE_OPS
                and t.key not in output_keys
            ):
                result[t.key] = t
    return result


def is_recompute_cheap(node: Node, allow_gemm: bool) -> bool:
    """Whether Echo may mirror this node into the backward pass."""
    if node.stage is not Stage.FORWARD:
        return False
    if node.op.name in _SOURCE_OPS:
        return False
    if node.op.recompute_cheap:
        return True
    if allow_gemm and node.op.name in ("matmul", "fully_connected", "batch_dot"):
        return True
    return False


@dataclass
class Candidate:
    """One connected recompute region and its static cost/benefit."""

    nodes: list[Node]  # mirrorable nodes, topological order
    #: stashed tensors this region can stop stashing
    eliminated: list[Tensor]
    #: border tensors that must newly stay alive into the backward pass
    new_stashes: list[Tensor]
    #: per-backward-pass recompute GPU kernel time, seconds
    kernel_seconds: float = 0.0
    #: per-backward-pass CPU launch (CUDA API) time, seconds
    api_seconds: float = 0.0
    #: identifies the connected component this cone was cut from; the
    #: full and free variants of one component are mutually exclusive
    component_id: int = -1

    @property
    def recompute_seconds(self) -> float:
        return self.kernel_seconds + self.api_seconds

    @property
    def eliminated_bytes(self) -> int:
        return sum(t.nbytes for t in self.eliminated)

    @property
    def new_stash_bytes(self) -> int:
        return sum(t.nbytes for t in self.new_stashes)

    @property
    def benefit_bytes(self) -> int:
        return self.eliminated_bytes - self.new_stash_bytes

    #: stashed tensors produced inside the region that must NOT be
    #: eliminated (their first backward use is at the boundary, so a
    #: mirror would live just as long as the stash); the rewrite keeps
    #: their consumers on the originals.
    preserved: frozenset[TensorKey] = frozenset()

    @property
    def is_o_shape(self) -> bool:
        """Small border, large interior — the paper's defining property."""
        return self.eliminated_bytes >= 4 * max(self.new_stash_bytes, 1)

    def __repr__(self) -> str:
        return (
            f"Candidate({len(self.nodes)} nodes, "
            f"-{self.eliminated_bytes / 2**20:.2f} MiB "
            f"+{self.new_stash_bytes / 2**20:.2f} MiB, "
            f"{self.recompute_seconds * 1e6:.1f} us)"
        )


def _connected_components(nodes: Iterable[Node]) -> list[list[Node]]:
    """Components of the cheap-node set under producer/consumer edges."""
    node_list = list(nodes)
    in_set = {n.uid for n in node_list}
    parent: dict[int, int] = {n.uid: n.uid for n in node_list}

    def find(u: int) -> int:
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = parent[u]
        return u

    def union(u: int, v: int) -> None:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv

    for node in node_list:
        for t in node.inputs:
            if t.node.uid in in_set:
                union(node.uid, t.node.uid)

    groups: dict[int, list[Node]] = defaultdict(list)
    for node in node_list:
        groups[find(node.uid)].append(node)
    components = [sorted(g, key=lambda n: n.uid) for g in groups.values()]
    components.sort(key=lambda g: g[0].uid)
    return components


def mine_candidates(
    order: Sequence[Node],
    output_keys: set[TensorKey],
    allow_gemm: bool = False,
    device=None,
    fanout_limit: int = 4,
) -> list[Candidate]:
    """Find every connected recompute region with its static cost/benefit.

    Within a component, only nodes actually needed to rebuild the stashed
    outputs are counted (and later mirrored): a cheap node whose value no
    backward consumer transitively needs is pruned from the region.

    Cheap nodes whose output fans out to more than ``fanout_limit`` forward
    consumers are demoted to checkpoints: they stay stashed, and the
    regions of their many consumers (e.g. the 30 decoder timesteps all
    reading the shared attention key projection) remain independent
    candidates instead of fusing into one all-or-nothing component.
    """
    stashes = stashed_tensors(order, output_keys)

    fanout: dict[int, int] = {}
    for node in order:
        if node.stage is not Stage.FORWARD:
            continue
        for t in node.inputs:
            fanout[t.node.uid] = fanout.get(t.node.uid, 0) + 1
    cheap_nodes = [
        n
        for n in order
        if is_recompute_cheap(n, allow_gemm)
        and fanout.get(n.uid, 0) <= fanout_limit
    ]

    # Lifetime-gain guard: eliminating a stash replaces its lifetime
    # [forward, last backward use] with the mirror's [first backward use,
    # last backward use]. If the first backward use sits at the boundary
    # (e.g. the stacked decoder output feeding the loss projection), the
    # mirror lives exactly as long as the stash did — and drags its whole
    # recompute cone live with it. Such roots stay stashed.
    position = {n.uid: i for i, n in enumerate(order)}
    boundary = len(order)
    for i, n in enumerate(order):
        if n.stage is not Stage.FORWARD:
            boundary = i
            break
    backward_len = max(len(order) - boundary, 1)
    min_gain_steps = max(3, int(0.02 * backward_len))
    first_bwd_use: dict[TensorKey, int] = {}
    for node in order:
        if node.stage is Stage.FORWARD:
            continue
        p = position[node.uid]
        for t in node.inputs:
            if t.key in stashes and p < first_bwd_use.get(t.key, 1 << 60):
                first_bwd_use[t.key] = p
    eliminable = {
        key: t
        for key, t in stashes.items()
        if first_bwd_use.get(key, boundary) - boundary >= min_gain_steps
    }

    candidates: list[Candidate] = []
    for component in _connected_components(cheap_nodes):
        component_uids = {n.uid for n in component}
        roots = [
            t for key, t in eliminable.items()
            if key[0] in component_uids
        ]
        if not roots:
            continue
        cid = component[0].uid
        full = _cone_candidate(
            component, component_uids, roots, stashes, output_keys, device,
            stop_at_stashed=False,
        )
        if full is not None:
            full.component_id = cid
            candidates.append(full)
        # Free-recompute variant: the maximal sub-region whose every
        # external input is stashed anyway (or a source), so recomputing
        # it stashes NOTHING new — e.g. rebuilding the LSTM h/c chain from
        # the stashed gate pre-activations. When the full cone's border
        # outweighs its interior (the DS2 recurrent chains), this variant
        # still pays off.
        free = _free_region_candidate(
            component, roots, stashes, output_keys, device
        )
        if free is not None and (
            full is None
            or {n.uid for n in free.nodes} != {n.uid for n in full.nodes}
        ):
            free.component_id = cid
            candidates.append(free)
    return candidates


def _free_region_candidate(
    component: list[Node],
    roots: list[Tensor],
    stashes: dict[TensorKey, Tensor],
    output_keys: set[TensorKey],
    device,
) -> Candidate | None:
    """Largest sub-region with an empty new-stash set (fixpoint growth).

    A node joins the region when every input is (a) produced inside the
    region, (b) stashed for other reasons (a free checkpoint), or (c) a
    source (placeholder/variable/constant, resident anyway).
    """
    region_uids: set[int] = set()
    changed = True
    while changed:
        changed = False
        for node in component:
            if node.uid in region_uids:
                continue
            if all(
                t.node.uid in region_uids
                or t.key in stashes
                or t.node.op.name in _SOURCE_OPS
                for t in node.inputs
            ):
                region_uids.add(node.uid)
                changed = True
    if not region_uids:
        return None
    # Keep only nodes needed to rebuild eliminable roots. A root can be
    # eliminated only if it is produced inside the region AND no region
    # node relies on it as a free checkpoint from outside... it cannot:
    # region-internal producers shadow the stash, so internal edges are
    # served by mirrors. Prune to the ancestor cone of internal roots.
    internal_roots = [t for t in roots if t.node.uid in region_uids]
    if not internal_roots:
        return None
    needed: set[int] = set()
    stack = [t.node for t in internal_roots]
    while stack:
        node = stack.pop()
        if node.uid in needed or node.uid not in region_uids:
            continue
        needed.add(node.uid)
        stack.extend(t.node for t in node.inputs)
    region = [n for n in component if n.uid in needed]
    eliminated = [t for t in internal_roots if t.node.uid in needed]
    if not eliminated:
        return None
    kernel = api = 0.0
    if device is not None:
        for node in region:
            cost = device.node_cost(node)
            kernel += cost.kernel_seconds
            api += cost.api_seconds
    eliminated_keys = {t.key for t in eliminated}
    needed_uids = {n.uid for n in region}
    preserved = frozenset(
        key for key in stashes
        if key[0] in needed_uids and key not in eliminated_keys
    )
    return Candidate(
        nodes=region,
        eliminated=eliminated,
        new_stashes=[],
        kernel_seconds=kernel,
        api_seconds=api,
        preserved=preserved,
    )


def _cone_candidate(
    component: list[Node],
    component_uids: set[int],
    roots: list[Tensor],
    stashes: dict[TensorKey, Tensor],
    output_keys: set[TensorKey],
    device,
    stop_at_stashed: bool,
) -> Candidate | None:
    """Build one candidate from a component's recompute cone.

    ``stop_at_stashed=False`` walks the whole cheap ancestor cone (largest
    elimination, largest border). ``stop_at_stashed=True`` stops the walk
    at inputs that are stashed for *other* reasons: those act as free
    checkpoints, shrinking both the mirror set and the new-stash set.
    """
    needed: set[int] = set()
    stack = [t.node for t in roots]
    while stack:
        node = stack.pop()
        if node.uid in needed or node.uid not in component_uids:
            continue
        needed.add(node.uid)
        for t in node.inputs:
            if stop_at_stashed and t.key in stashes:
                continue
            stack.append(t.node)
    region = [n for n in component if n.uid in needed]
    if not region:
        return None
    region_uids = {n.uid for n in region}

    eliminated = [t for t in roots if t.node.uid in region_uids]
    if not eliminated:
        return None
    border: dict[TensorKey, Tensor] = {}
    for node in region:
        for t in node.inputs:
            if t.node.uid in region_uids:
                continue
            already_free = (
                t.node.op.name in _SOURCE_OPS
                or t.key in stashes
                or t.key in output_keys
            )
            if not already_free:
                border[t.key] = t
    kernel = api = 0.0
    if device is not None:
        for node in region:
            cost = device.node_cost(node)
            kernel += cost.kernel_seconds
            api += cost.api_seconds
    eliminated_keys = {t.key for t in eliminated}
    preserved = frozenset(
        key for key in stashes
        if key[0] in region_uids and key not in eliminated_keys
    )
    return Candidate(
        nodes=region,
        eliminated=eliminated,
        new_stashes=list(border.values()),
        kernel_seconds=kernel,
        api_seconds=api,
        preserved=preserved,
    )


@dataclass(frozen=True)
class IterationCost:
    """Baseline iteration cost split into its two overlapping streams.

    The GPU executes kernels while the CPU launches the next ones, so the
    iteration is bound by the larger stream; recomputation that fits into
    the slack of the non-binding stream is effectively free — which is how
    the paper's launch-bound configurations recompute at ~zero cost.
    """

    kernel_seconds: float
    api_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.kernel_seconds, self.api_seconds)

    def marginal(self, extra_kernel: float, extra_api: float) -> float:
        """Iteration-time increase from adding work to both streams."""
        new = max(
            self.kernel_seconds + extra_kernel, self.api_seconds + extra_api
        )
        return new - self.seconds


def estimate_iteration_cost(order: Sequence[Node], device) -> IterationCost:
    """Baseline per-stream iteration cost for the overhead budget."""
    kernel = api = 0.0
    for node in order:
        if node.op.name in _SOURCE_OPS:
            continue
        cost = device.node_cost(node)
        kernel += cost.kernel_seconds
        api += cost.api_seconds
    return IterationCost(kernel_seconds=kernel, api_seconds=api)
