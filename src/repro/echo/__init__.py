"""Echo: automatic selective recomputation (DESIGN.md S7, the paper's core)."""

from repro.echo.analysis import (
    Candidate,
    is_recompute_cheap,
    mine_candidates,
    stashed_tensors,
)
from repro.echo.config import EchoConfig
from repro.echo.pass_ import (
    EchoPass,
    EchoReport,
    check_barrier_legality,
    optimize,
)
from repro.echo.rewrite import AppliedCandidate, apply_candidate

__all__ = [
    "EchoConfig",
    "EchoPass",
    "EchoReport",
    "optimize",
    "check_barrier_legality",
    "Candidate",
    "mine_candidates",
    "stashed_tensors",
    "is_recompute_cheap",
    "apply_candidate",
    "AppliedCandidate",
]

from repro.echo.manual import apply_manual_recompute, recompute_region

__all__ += ["apply_manual_recompute", "recompute_region"]
