"""The Echo pass driver: mine -> select -> rewrite -> verify.

Selection is a greedy knapsack over candidate regions ordered by
bytes-saved per recompute-second, under the configured overhead budget.
After rewriting, the pass re-plans the memory timeline and rolls back the
weakest candidates if the *measured* peak failed to improve — recomputation
must never increase the footprint (the paper's safety property; naive
checkpointing can violate it through stash-set growth or eager workspace
spikes).

Planning artifacts (schedule, memory plan, iteration cost) are memoized in
a :class:`repro.runtime.plancache.PlanCache` keyed by graph signature: the
rollback loop repeatedly re-plans the same intermediate graph states, and
rolling a rewrite back restores a previously-seen signature, so the replay
becomes cache hits instead of full re-simulations. Results are identical
by construction — the cache only skips rebuilding what the same signature
already built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autodiff.training import TrainingGraph
from repro.echo.analysis import (
    Candidate,
    estimate_iteration_cost,
    mine_candidates,
)
from repro.echo.config import EchoConfig
from repro.echo.rewrite import AppliedCandidate, apply_candidate
from repro.gpumodel import DeviceModel
from repro.graph import Node, Stage
from repro.memplan.estimate import packed_peak_bytes
from repro.memplan.modes import memplan_mode
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.memory import MemoryPlan
from repro.runtime.plancache import PlanCache, default_plan_cache, graph_signature


@dataclass
class EchoReport:
    """What the pass did and what it bought."""

    baseline_peak_bytes: int
    optimized_peak_bytes: int
    candidates_found: int
    accepted: list[Candidate] = field(default_factory=list)
    rejected_low_benefit: int = 0
    rejected_budget: int = 0
    rolled_back: int = 0
    recompute_seconds: float = 0.0
    iteration_seconds: float = 0.0
    baseline_plan: MemoryPlan | None = None
    optimized_plan: MemoryPlan | None = None
    #: interval-packed arena footprints (what the color planner actually
    #: allocates); 0 when the pass ran under the greedy memplan mode
    baseline_packed_bytes: int = 0
    optimized_packed_bytes: int = 0
    #: canonical output fingerprint of the *source* graph, captured before
    #: any rewrite when REPRO_VERIFY is armed (else ""); mirror-normalized,
    #: so a faithful rewrite leaves it unchanged
    source_fingerprint: str = ""
    #: :class:`repro.analysis.witness.MirrorWitness` per surviving mirror
    mirror_witnesses: list = field(default_factory=list)

    @property
    def footprint_reduction(self) -> float:
        return self.baseline_peak_bytes / max(self.optimized_peak_bytes, 1)

    @property
    def overhead_fraction(self) -> float:
        return self.recompute_seconds / max(self.iteration_seconds, 1e-30)

    @property
    def bytes_saved(self) -> int:
        return self.baseline_peak_bytes - self.optimized_peak_bytes

    def format(self) -> str:
        return (
            f"Echo: {self.candidates_found} candidates, "
            f"{len(self.accepted)} accepted "
            f"({self.rejected_low_benefit} low-benefit, "
            f"{self.rejected_budget} over-budget, "
            f"{self.rolled_back} rolled back); "
            f"peak {self.baseline_peak_bytes / 2**20:.1f} -> "
            f"{self.optimized_peak_bytes / 2**20:.1f} MiB "
            f"({self.footprint_reduction:.2f}x), recompute overhead "
            f"{100 * self.overhead_fraction:.2f}% of iteration"
        )


class EchoPass:
    """Automatic selective recomputation over a training graph.

    Mutates the graph in place (backward consumers are re-pointed at
    mirrored recompute nodes); build a fresh graph to get the baseline
    back.
    """

    def __init__(
        self,
        config: EchoConfig | None = None,
        device: DeviceModel | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.config = config or EchoConfig()
        if device is None:
            # Calibrated when REPRO_TUNE_DIR has measured coverage: the
            # accept/reject analysis then prices recompute chains from the
            # host's own kernel timings instead of pure roofline constants.
            from repro.pgo.calibrated import default_device

            device = default_device()
        self.device = device
        self.plan_cache = (
            plan_cache if plan_cache is not None else default_plan_cache()
        )

    def _replan(self, outputs) -> tuple[list, MemoryPlan]:
        """Schedule + memory-plan the current graph state, memoized."""
        order = self.plan_cache.schedule_for(outputs)
        plan = self.plan_cache.plan_for(outputs, order=order)
        return order, plan

    def _footprint(self, outputs, plan: MemoryPlan) -> int:
        """The footprint the accept/reject loop scores a graph state by.

        Under the greedy memplan mode this is the waterline peak
        (``plan.peak_bytes``), matching what the size-class replay
        allocates. Under ``color`` the executor packs buffers by exact
        lifetime intervals, so candidates are judged by the *packed*
        footprint — a rewrite that only shuffles bytes the packer would
        have overlapped anyway is rolled back instead of accepted.
        Memoized per graph signature: the rollback loop revisits states.
        """
        if memplan_mode() != "color":
            return plan.peak_bytes
        return self.plan_cache.memo(
            ("packedpeak", graph_signature(outputs)),
            lambda: packed_peak_bytes(plan),
        )

    def run(self, graph: TrainingGraph) -> EchoReport:
        """Run the pass; one ``echo.pass`` span covers the whole search."""
        with obs_trace.span("echo.pass", "echo") as sp:
            report = self._run(graph)
            sp["accepted"] = len(report.accepted)
            sp["rejected_low_benefit"] = report.rejected_low_benefit
            sp["rejected_budget"] = report.rejected_budget
            sp["rolled_back"] = report.rolled_back
            sp["saved_bytes"] = (
                report.baseline_peak_bytes - report.optimized_peak_bytes
            )
        reg = obs_metrics.registry()
        if reg is not None:
            reg.counter("echo.accepted").inc(len(report.accepted))
            reg.counter("echo.rejected_low_benefit").inc(
                report.rejected_low_benefit
            )
            reg.counter("echo.rejected_budget").inc(report.rejected_budget)
            reg.counter("echo.rolled_back").inc(report.rolled_back)
        return report

    def _run(self, graph: TrainingGraph) -> EchoReport:
        cfg = self.config
        outputs = graph.outputs
        output_keys = {t.key for t in outputs}

        # Translation-validation anchor (REPRO_VERIFY armed): the source
        # graph's canonical output fingerprint, captured before any
        # rewrite. Mirror substitution normalizes recompute nodes onto
        # their originals, so a faithful rewrite reproduces it exactly;
        # a mis-pointed consumer or broken mirror changes it.
        source_fp = ""
        from repro.analysis.verify import verification_enabled

        if verification_enabled():
            from repro.analysis.equiv import fingerprint_outputs

            source_fp = fingerprint_outputs(outputs)

        order, baseline_plan = self._replan(outputs)
        # Scored before any rewrite mutates the graph: the memoized packed
        # footprint is keyed by graph signature, which the rewrites change.
        baseline_foot = self._footprint(outputs, baseline_plan)
        # Keyed by the device's cache token (not just the spec): a
        # calibrated device embeds its calibration epoch, so recalibration
        # invalidates memoized iteration costs automatically.
        device_key = getattr(self.device, "cache_token", self.device.spec)
        iteration = self.plan_cache.memo(
            ("itercost", graph_signature(outputs), device_key),
            lambda: estimate_iteration_cost(order, self.device),
        )
        budget = cfg.overhead_budget_fraction * iteration.seconds

        candidates = mine_candidates(
            order,
            output_keys,
            cfg.allow_gemm_recompute,
            self.device,
            fanout_limit=cfg.checkpoint_fanout_limit,
        )
        report = EchoReport(
            baseline_peak_bytes=baseline_plan.peak_bytes,
            optimized_peak_bytes=baseline_plan.peak_bytes,
            candidates_found=len(candidates),
            iteration_seconds=iteration.seconds,
            baseline_plan=baseline_plan,
            source_fingerprint=source_fp,
        )

        viable = sorted(
            candidates,
            key=lambda c: c.benefit_bytes / max(c.recompute_seconds, 1e-9),
            reverse=True,
        )

        # Checkpoints shared by several candidates (e.g. the attention key
        # projection read by every decoder step) are paid for once: after a
        # candidate is accepted, its new stashes are free for the rest.
        # Cost accounting is per-stream: kernels and launches overlap, so a
        # candidate's cost is the *marginal* increase in
        # max(kernel stream, API stream) — recomputation hiding in the
        # non-binding stream's slack is free, the paper's launch-bound case.
        # The full and free cones of one component are mutually exclusive:
        # when a component comes up, apply its highest-benefit variant that
        # fits the budget (a free variant must not shadow a bigger full
        # elimination just because its byte/second ratio looks better).
        promised: set[tuple[int, int]] = set()
        applied: list[AppliedCandidate] = []
        decided_components: set[int] = set()
        by_component: dict[int, list[Candidate]] = {}
        for cand in viable:
            by_component.setdefault(cand.component_id, []).append(cand)

        # A border shared by many candidates (the attention key projection
        # read by every decoder step) is stashed once but enables them
        # all, so its cost is amortized over its users — the paper's
        # "identical across all time steps, average storage only O(B x H)"
        # argument. Once some candidate promises it, it is free.
        border_users: dict[tuple[int, int], int] = {}
        for c in viable:
            for t in c.new_stashes:
                border_users[t.key] = border_users.get(t.key, 0) + 1

        def amortized_benefit(c: Candidate) -> float:
            cost = sum(
                t.nbytes / border_users[t.key]
                for t in c.new_stashes
                if t.key not in promised
            )
            return c.eliminated_bytes - cost

        extra_kernel = extra_api = 0.0
        for cand in viable:
            if cand.component_id in decided_components:
                continue
            variants = sorted(
                by_component[cand.component_id],
                key=amortized_benefit,
                reverse=True,
            )
            chosen = None
            for variant in variants:
                benefit = amortized_benefit(variant)
                if benefit < cfg.min_benefit_bytes:
                    continue
                marginal = iteration.marginal(
                    extra_kernel + variant.kernel_seconds,
                    extra_api + variant.api_seconds,
                )
                if marginal > budget:
                    continue
                chosen = variant
                break
            decided_components.add(cand.component_id)
            if chosen is None:
                # Count the rejection reason of the best variant.
                if amortized_benefit(variants[0]) < cfg.min_benefit_bytes:
                    report.rejected_low_benefit += 1
                else:
                    report.rejected_budget += 1
                continue
            applied.append(
                apply_candidate(
                    chosen, order, output_keys, cfg.workspace_sharing
                )
            )
            extra_kernel += chosen.kernel_seconds
            extra_api += chosen.api_seconds
            promised.update(t.key for t in chosen.new_stashes)
            report.accepted.append(chosen)
        spent = iteration.marginal(extra_kernel, extra_api)

        if not applied:
            report.optimized_plan = baseline_plan
            if memplan_mode() == "color":
                packed = packed_peak_bytes(baseline_plan)
                report.baseline_packed_bytes = packed
                report.optimized_packed_bytes = packed
            return report

        _new_order, new_plan = self._replan(outputs)

        if cfg.verify_with_replan:
            # Footprint safety: drop weakest candidates until the measured
            # footprint actually improves (or nothing is left). Under the
            # color memplan mode "measured" means the interval-packed arena
            # extent, the bytes the executor will really allocate.
            while (
                self._footprint(outputs, new_plan) >= baseline_foot
                and applied
            ):
                weakest = min(
                    range(len(applied)),
                    key=lambda i: applied[i].candidate.benefit_bytes,
                )
                victim = applied.pop(weakest)
                victim.rollback()
                report.accepted.remove(victim.candidate)
                report.rolled_back += 1
                extra_kernel -= victim.candidate.kernel_seconds
                extra_api -= victim.candidate.api_seconds
                spent = iteration.marginal(extra_kernel, extra_api)
                _new_order, new_plan = self._replan(outputs)
            if not applied:
                _new_order, new_plan = self._replan(outputs)

        check_barrier_legality(_new_order)
        self._verify_rewrite(_new_order, output_keys)
        report.mirror_witnesses = [
            w for a in applied for w in a.witnesses
        ]
        if source_fp:
            self._certify_fingerprint(outputs, source_fp)

        report.recompute_seconds = spent
        report.optimized_peak_bytes = new_plan.peak_bytes
        report.optimized_plan = new_plan
        if memplan_mode() == "color":
            report.baseline_packed_bytes = packed_peak_bytes(baseline_plan)
            report.optimized_packed_bytes = packed_peak_bytes(new_plan)
        return report


    @staticmethod
    def _certify_fingerprint(outputs, source_fp: str) -> None:
        """Re-fingerprint the rewritten graph against the source anchor.

        Runs only when the anchor was captured (REPRO_VERIFY armed).
        Mirror normalization makes the canonical fingerprint invariant
        under a faithful Echo rewrite, so any drift — plus any EQ-family
        error the canonicalizer itself found (unjustified recompute node,
        broken mirror, duplicated unstable RNG) — is a rewrite bug.
        """
        from repro.analysis.equiv import certify_outputs
        from repro.analysis.findings import Severity

        fp, findings = certify_outputs(outputs)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        if fp != source_fp or errors:
            detail = "\n".join(f.format() for f in errors[:8])
            drift = "" if fp == source_fp else (
                f"canonical output fingerprint drifted "
                f"({source_fp[:12]} -> {fp[:12]})\n"
            )
            raise RuntimeError(
                "Echo rewrite failed equivalence certification:\n"
                f"{drift}{detail}"
            )

    @staticmethod
    def _verify_rewrite(order: list[Node], output_keys: set) -> None:
        """Full recompute-safety analysis of the rewritten schedule.

        Gated on ``REPRO_VERIFY`` (the same switch as the plan-compile
        guard): :func:`check_barrier_legality` stays the always-on fast
        check, while this runs the complete EC3xx analyzer — mirror
        fidelity, RNG determinism, stash-border dominance — and raises on
        any error-severity finding.
        """
        from repro.analysis.verify import verification_enabled

        if not verification_enabled():
            return
        from repro.analysis.recompute import check_recompute_safety
        from repro.analysis.findings import Severity

        errors = [
            f
            for f in check_recompute_safety(order, output_keys)
            if f.severity is Severity.ERROR
        ]
        if errors:
            detail = "\n".join(f.format() for f in errors[:8])
            raise RuntimeError(
                f"Echo rewrite failed verification with {len(errors)} "
                f"error(s):\n{detail}"
            )


def check_barrier_legality(order: list[Node]) -> None:
    """Verify the rewritten schedule respects Echo's stage barriers.

    The wavefront executor treats stage transitions in the schedule as
    hard barriers (see :func:`repro.runtime.wavefront.analyze_wavefronts`)
    — that is only a *complete* fence around a recompute region if no
    FORWARD node ever consumes a RECOMPUTE value (the forward pass must be
    closed under the barrier, or a recompute region would need to replay
    before parts of the pass it was mirrored from) and every recompute
    region drains into the backward pass. Violations indicate a broken
    rewrite, not a planning choice, so this raises instead of degrading.
    """
    recompute_uids = {n.uid for n in order if n.stage is Stage.RECOMPUTE}
    if not recompute_uids:
        return
    for node in order:
        if node.stage is not Stage.FORWARD:
            continue
        for t in node.inputs:
            if t.node.uid in recompute_uids:
                raise RuntimeError(
                    f"Echo barrier violation: forward node {node!r} consumes "
                    f"recompute value {t.node!r}; stage runs are no longer "
                    "valid execution barriers"
                )


def optimize(
    graph: TrainingGraph,
    config: EchoConfig | None = None,
    device: DeviceModel | None = None,
    plan_cache: PlanCache | None = None,
) -> EchoReport:
    """One-call entry point: run the Echo pass on a training graph."""
    return EchoPass(config, device, plan_cache).run(graph)
