"""Graph rewrite applying recomputation: node mirroring and re-pointing.

For an accepted candidate region, every needed node is cloned into a
``Stage.RECOMPUTE`` mirror and all backward consumers of the region's
outputs are re-pointed at the mirrors. The original forward outputs then
die at their last *forward* use, so the planner's liveness shows the
reduced footprint; the mirrors' outputs live only from recomputation to
their backward consumer, and are accounted as workspace.

Scheduling: each mirror's priority is lowered to just below its first
backward consumer (lazy recomputation), which is what lets the recompute
regions of successive timesteps share one workspace interval. With
``workspace_sharing=False`` every mirror is instead hoisted to the start of
the backward pass — the ablation reproducing the O(B x T^2 x H) workspace
spike the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph import Node, Stage, Tensor
from repro.echo.analysis import Candidate, TensorKey
from repro.obs import trace as obs_trace


@dataclass
class AppliedCandidate:
    """Bookkeeping for one applied region, sufficient to roll it back."""

    candidate: Candidate
    mirrors: dict[int, Node]  # original uid -> mirror node
    #: (backward node, its inputs tuple before re-pointing)
    repointed: list[tuple[Node, tuple[Tensor, ...]]] = field(default_factory=list)
    #: per-mirror :class:`repro.analysis.witness.MirrorWitness` records,
    #: collected by the Echo pass for the equivalence certifier
    witnesses: list = field(default_factory=list)

    def rollback(self) -> None:
        """Restore every re-pointed consumer; mirrors become unreachable."""
        for node, original_inputs in self.repointed:
            node.inputs = original_inputs
        self.repointed.clear()


class RewriteError(RuntimeError):
    """Raised when a rewrite would produce an inconsistent graph."""


def _clone_as_mirror(node: Node, input_map: dict[TensorKey, Tensor]) -> Node:
    inputs = [input_map.get(t.key, t) for t in node.inputs]
    mirror = Node.__new__(Node)
    # Clone without re-running shape inference: specs are identical.
    from repro.graph.node import _NODE_COUNTER

    mirror.uid = next(_NODE_COUNTER)
    mirror.op = node.op
    mirror.inputs = tuple(inputs)
    mirror.attrs = dict(node.attrs)
    mirror.name = f"{node.name}__recompute"
    mirror.stage = Stage.RECOMPUTE
    mirror.scope = node.scope
    mirror.out_specs = node.out_specs
    mirror.mirror_of = node
    mirror.priority = float(mirror.uid)
    return mirror


def apply_candidate(
    candidate: Candidate,
    order: Sequence[Node],
    output_keys: set[TensorKey],
    workspace_sharing: bool = True,
) -> AppliedCandidate:
    """Mirror ``candidate.nodes`` and re-point their backward consumers."""
    with obs_trace.span(
        "echo.apply", "echo",
        {"nodes": len(candidate.nodes),
         "benefit_bytes": candidate.benefit_bytes},
    ):
        return _apply_candidate(
            candidate, order, output_keys, workspace_sharing
        )


def _apply_candidate(
    candidate: Candidate,
    order: Sequence[Node],
    output_keys: set[TensorKey],
    workspace_sharing: bool = True,
) -> AppliedCandidate:
    region_uids = {n.uid for n in candidate.nodes}

    # Map: original output key -> mirrored tensor.
    input_map: dict[TensorKey, Tensor] = {}
    mirrors: dict[int, Node] = {}
    for node in candidate.nodes:  # already topologically sorted
        mirror = _clone_as_mirror(node, input_map)
        mirrors[node.uid] = mirror
        for i in range(len(node.out_specs)):
            input_map[(node.uid, i)] = Tensor(mirror, i)

    # Re-point backward consumers of region outputs at the mirrors; leave
    # forward consumers, pinned graph outputs, and intentionally preserved
    # stashes on the originals.
    # Function-level import: the disabled Echo path never imports
    # repro.analysis, and the witness module is dependency-free.
    from repro.analysis.witness import MirrorWitness

    applied = AppliedCandidate(
        candidate=candidate,
        mirrors=mirrors,
        witnesses=[
            MirrorWitness(
                mirror_uid=mirror.uid, original_uid=uid, op=mirror.op.name
            )
            for uid, mirror in mirrors.items()
        ],
    )
    first_consumer_priority: dict[int, float] = {}
    for consumer in order:
        if consumer.stage is Stage.FORWARD:
            continue
        new_inputs: list[Tensor] | None = None
        for idx, t in enumerate(consumer.inputs):
            if (
                t.node.uid not in region_uids
                or t.key in output_keys
                or t.key in candidate.preserved
            ):
                continue
            if new_inputs is None:
                new_inputs = list(consumer.inputs)
            new_inputs[idx] = input_map[t.key]
            mirror_uid = input_map[t.key].node.uid
            prio = first_consumer_priority.get(mirror_uid, consumer.priority)
            first_consumer_priority[mirror_uid] = min(prio, consumer.priority)
        if new_inputs is not None:
            applied.repointed.append((consumer, consumer.inputs))
            consumer.inputs = tuple(new_inputs)

    _assign_priorities(
        candidate, mirrors, first_consumer_priority, order, workspace_sharing
    )
    return applied


def _assign_priorities(
    candidate: Candidate,
    mirrors: dict[int, Node],
    first_consumer_priority: dict[int, float],
    order: Sequence[Node],
    workspace_sharing: bool,
) -> None:
    if workspace_sharing:
        # Lazy: each mirror just before its FIRST consumer — which may be
        # a re-pointed backward node or another mirror (recurrent chains:
        # the c_{t} mirror is a dependency of the c_{t+1} mirror, whose
        # consumer can be much earlier than c_t's own backward consumer).
        # Taking the minimum over both, propagated in reverse topological
        # order, keeps chain mirrors at the front of the backward pass
        # instead of inverting the schedule.
        for node in reversed(candidate.nodes):
            mirror = mirrors[node.uid]
            direct = first_consumer_priority.get(mirror.uid, float("inf"))
            via_users = min(
                (
                    mirrors[user.uid].priority
                    for user in candidate.nodes
                    if any(t.node.uid == node.uid for t in user.inputs)
                ),
                default=float("inf"),
            )
            prio = min(direct, via_users)
            if prio == float("inf"):
                prio = float(mirror.uid)
            mirror.priority = prio - 0.5
    else:
        # Eager: hoist every mirror to the start of the backward pass.
        backward_priorities = [
            n.priority for n in order if n.stage is Stage.BACKWARD
        ]
        if not backward_priorities:
            raise RewriteError("graph has no backward nodes to hoist before")
        boundary = min(backward_priorities) - 0.5
        for i, node in enumerate(candidate.nodes):
            mirrors[node.uid].priority = boundary - 1e-6 * (
                len(candidate.nodes) - i
            )
