"""Configuration of the Echo recomputation pass."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EchoConfig:
    """Tunables of the selective-recomputation pass.

    The defaults encode the paper's operating point: recompute only
    GEMM-free subgraphs, cap total recompute time at a vanishing fraction
    of the iteration, and share one workspace arena across the recompute
    regions of successive timesteps.
    """

    #: Maximum *marginal* iteration-time increase as a fraction of the
    #: estimated iteration time (recompute kernels and launches overlap
    #: the iteration's non-binding stream, so the marginal cost is below
    #: the raw kernel sum). The paper measures ~0.7-1.5% on its testbed;
    #: our synthetic cost model prices the same regions higher (every
    #: recomputed tensor streams from DRAM, unfused), so the default
    #: budget is 12% — enough to admit the full attention recomputation at
    #: the paper's primary setting. End-to-end throughput still improves
    #: because the data layout optimization more than pays for it, which
    #: is the paper's own bottom line.
    overhead_budget_fraction: float = 0.12

    #: A recompute-cheap tensor feeding more than this many forward
    #: consumers becomes a checkpoint (stashed border) instead of being
    #: mirrored: it would otherwise glue the regions of every timestep
    #: into one all-or-nothing candidate, and mirroring it per consumer
    #: would multiply its recompute cost. The attention key projection
    #: (shared by all decoder steps) is the canonical case.
    checkpoint_fanout_limit: int = 4

    #: Permit mirroring GEMM-family nodes (matmul / fully_connected /
    #: batch_dot). Off by default — recomputing GEMMs is the Chen et al.
    #: trade Echo explicitly avoids. Ablation E-abl flips this.
    allow_gemm_recompute: bool = False

    #: Schedule mirrored nodes lazily, immediately before their first
    #: backward consumer, so regions of different timesteps share one
    #: workspace interval. When False (ablation), all mirrors run at the
    #: start of the backward pass, and their outputs coexist — the
    #: O(B x T^2 x H) workspace spike of Section 4.1.2.
    workspace_sharing: bool = True

    #: Ignore candidates saving less than this many bytes.
    min_benefit_bytes: int = 4096

    #: Verify with a full memory re-plan and roll back candidate batches
    #: that fail to reduce the measured peak (footprint-safety guarantee).
    verify_with_replan: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.overhead_budget_fraction <= 1.0:
            raise ValueError("overhead_budget_fraction must be in [0, 1]")
        if self.min_benefit_bytes < 0:
            raise ValueError("min_benefit_bytes must be non-negative")
