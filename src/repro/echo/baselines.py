"""Recomputation baselines Echo is compared against.

* :func:`sublinear_checkpoint` — Chen et al. (2016) "Training Deep Nets
  with Sublinear Memory Cost": cut the forward schedule into ~sqrt(N)
  segments, keep only the tensors crossing segment boundaries, and re-run
  a whole segment (GEMMs included) when its interior is needed by the
  backward pass. Saves more memory than Echo but pays roughly one extra
  forward pass (~30% slowdown) — the trade the paper's related-work
  section quantifies.
* :func:`recompute_all` — recompute every cheap region regardless of cost,
  the upper bound on what GEMM-free recomputation can save.

Both reuse Echo's mirroring machinery, so correctness (bitwise-identical
training) and the footprint accounting are shared.
"""

from __future__ import annotations

import math

from repro.autodiff.training import TrainingGraph
from repro.echo.analysis import Candidate, estimate_iteration_cost
from repro.echo.config import EchoConfig
from repro.echo.pass_ import EchoPass, EchoReport
from repro.echo.rewrite import apply_candidate
from repro.graph import Node, Stage
from repro.gpumodel import DeviceModel
from repro.runtime.memory import plan_memory
from repro.runtime.scheduler import schedule

_SOURCE_OPS = ("placeholder", "variable", "constant")


def sublinear_checkpoint(
    graph: TrainingGraph,
    num_segments: int | None = None,
    device: DeviceModel | None = None,
) -> EchoReport:
    """Apply Chen-style segment checkpointing to a training graph."""
    device = device or DeviceModel()
    outputs = graph.outputs
    output_keys = {t.key for t in outputs}

    order = schedule(outputs)
    baseline_plan = plan_memory(order, outputs)
    iteration = estimate_iteration_cost(order, device)

    forward = [
        n for n in order
        if n.stage is Stage.FORWARD and n.op.name not in _SOURCE_OPS
    ]
    if num_segments is None:
        num_segments = max(2, int(math.sqrt(len(forward))))
    seg_size = max(1, (len(forward) + num_segments - 1) // num_segments)
    segments = [
        forward[i:i + seg_size] for i in range(0, len(forward), seg_size)
    ]

    # Stashed tensors (feature maps) before any rewrite.
    stashed: set[tuple[int, int]] = set()
    for node in order:
        if node.stage is Stage.FORWARD:
            continue
        for t in node.inputs:
            if t.node.stage is Stage.FORWARD:
                stashed.add(t.key)

    report = EchoReport(
        baseline_peak_bytes=baseline_plan.peak_bytes,
        optimized_peak_bytes=baseline_plan.peak_bytes,
        candidates_found=len(segments),
        iteration_seconds=iteration.seconds,
        baseline_plan=baseline_plan,
    )

    extra_kernel = extra_api = 0.0
    # Skip the final segment: its interior is needed immediately when the
    # backward pass starts, so recomputing it saves nothing.
    for segment in segments[:-1]:
        candidate = _segment_candidate(
            segment, stashed, output_keys, device
        )
        if candidate is None:
            continue
        apply_candidate(candidate, order, output_keys, workspace_sharing=True)
        extra_kernel += candidate.kernel_seconds
        extra_api += candidate.api_seconds
        report.accepted.append(candidate)

    new_plan = plan_memory(schedule(outputs), outputs)
    report.recompute_seconds = iteration.marginal(extra_kernel, extra_api)
    report.optimized_peak_bytes = new_plan.peak_bytes
    report.optimized_plan = new_plan
    return report


def _segment_candidate(
    segment: list[Node],
    stashed: set[tuple[int, int]],
    output_keys: set[tuple[int, int]],
    device: DeviceModel,
) -> Candidate | None:
    """Build the recompute candidate for one forward segment."""
    segment_uids = {n.uid for n in segment}
    roots = []
    for node in segment:
        for i in range(len(node.out_specs)):
            if (node.uid, i) in stashed and (node.uid, i) not in output_keys:
                roots.append(node.out(i))
    if not roots:
        return None

    needed: set[int] = set()
    stack = [t.node for t in roots]
    while stack:
        node = stack.pop()
        if node.uid in needed or node.uid not in segment_uids:
            continue
        needed.add(node.uid)
        stack.extend(t.node for t in node.inputs)
    region = [n for n in segment if n.uid in needed]
    region_uids = {n.uid for n in region}

    border = {}
    for node in region:
        for t in node.inputs:
            if t.node.uid in region_uids:
                continue
            if t.node.op.name in _SOURCE_OPS or t.key in stashed:
                continue
            border[t.key] = t

    kernel = api = 0.0
    for node in region:
        cost = device.node_cost(node)
        kernel += cost.kernel_seconds
        api += cost.api_seconds
    return Candidate(
        nodes=region,
        eliminated=[t for t in roots if t.node.uid in region_uids],
        new_stashes=list(border.values()),
        kernel_seconds=kernel,
        api_seconds=api,
    )


def recompute_all(
    graph: TrainingGraph, device: DeviceModel | None = None
) -> EchoReport:
    """Recompute every GEMM-free region, ignoring the overhead budget."""
    config = EchoConfig(
        overhead_budget_fraction=1.0,
        min_benefit_bytes=1,
        verify_with_replan=False,
    )
    return EchoPass(config, device).run(graph)
