"""Runtime observability: structured tracing + unified metrics.

Two module-level switches, both zero-overhead when off:

* :mod:`repro.obs.trace` — nested spans at every pipeline boundary,
  exported as Chrome trace-event JSON (Perfetto-viewable). Enable with
  ``REPRO_TRACE=1`` (in-memory) or ``REPRO_TRACE=path.json`` (at-exit
  export), or programmatically via :func:`repro.obs.trace.enable`.
* :mod:`repro.obs.metrics` — counters/gauges/exact-bucket histograms
  behind one :class:`MetricsRegistry`. Enable with ``REPRO_METRICS=1``
  or pass an explicit registry through the ``metrics=`` hooks on
  ``InferenceServer`` / ``BucketedTrainer`` / ``DistributedTrainer``.

``python -m repro.obs.dump`` runs a small instrumented workload and
prints the merged registry snapshot (see :mod:`repro.obs.dump`).

Both switches are *inert by contract*: enabling them may never change a
computed value. The property test in ``tests/test_obs.py`` proves
traced and untraced runs bitwise-identical across the threads x echo x
memplan matrix plus a 2-rank distributed leg.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Tracer, merge_chrome_traces, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "merge_chrome_traces",
    "span",
]
