"""``python -m repro.obs.dump`` — one snapshot of every metrics surface.

Runs a small instrumented workload (a few word-LM training steps, echo
on, through the compiled executor) with tracing and metrics enabled,
absorbs the scattered stats surfaces — plan-cache counters, tuning-store
hits, the verify wall share — into one :class:`MetricsRegistry`, and
prints the merged snapshot as JSON (default) or a table.

Options::

    --steps N        training steps to run (default 3)
    --threads N      execution lanes (default: REPRO_THREADS)
    --table          human-readable table instead of JSON
    --trace PATH     also export the Chrome trace of the workload

The JSON output is the exact shape of ``MetricsRegistry.snapshot()``:
counters and gauges as scalars, histograms as
``{count, sum, min, max, p50, p95, p99}`` dicts.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def run_workload(steps: int = 3, threads: int | None = None) -> dict:
    """Train a tiny word LM with obs enabled; returns the snapshot."""
    import numpy as np  # noqa: F401 - ensures numpy present before models

    from repro.data import lm_batches, markov_corpus
    from repro.echo import EchoPass
    from repro.models import WordLmConfig, build_word_lm
    from repro.runtime import PlanCache
    from repro.train import SGD, Trainer

    reg = obs_metrics.enable(fresh=False)
    obs_trace.enable(fresh=False)

    cfg = WordLmConfig(
        vocab_size=60, embed_size=16, hidden_size=16, num_layers=1,
        seq_len=8, batch_size=4, dropout=0.0,
    )
    model = build_word_lm(cfg)
    plan_cache = PlanCache()
    EchoPass(plan_cache=plan_cache).run(model.graph)
    params = model.store.initialize(seed=0)
    trainer = Trainer(
        model.graph, params, SGD(0.1), plan_cache=plan_cache,
        threads=threads, metrics=reg,
    )
    corpus = markov_corpus(cfg.vocab_size, 600, seed=3)
    for feeds in itertools.islice(
        lm_batches(corpus, cfg.batch_size, cfg.seq_len), steps
    ):
        trainer.step(feeds)

    # Absorb the surfaces that don't stream into the registry live (the
    # plancache.hits/misses *counters* stream from memo() itself).
    hits, misses = plan_cache.counters()
    reg.gauge("plancache.hit_rate").set(
        hits / (hits + misses) if hits + misses else 1.0
    )
    store = plan_cache.store
    if store is not None:
        reg.absorb("tunestore", store.stats())
    compile_s = reg.histogram("plan.compile_s").sum
    verify_s = reg.histogram("plan.verify_s").sum
    reg.gauge("plan.verify_wall_share").set(
        verify_s / compile_s if compile_s > 0 else 0.0
    )
    return reg.snapshot()


def format_table(snapshot: dict) -> str:
    from repro.experiments.common import format_table as _table

    rows = []
    for name, value in snapshot.items():
        if isinstance(value, dict):
            value = ", ".join(
                f"{k}={v if v is not None else '-'}"
                for k, v in value.items()
            )
        elif isinstance(value, float):
            value = f"{value:.6g}"
        rows.append((name, str(value)))
    return _table(["metric", "value"], rows, "metrics snapshot")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dump",
        description="run a small instrumented workload and dump metrics",
    )
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--table", action="store_true")
    parser.add_argument("--trace", default=None, metavar="PATH")
    args = parser.parse_args(argv)

    snapshot = run_workload(steps=args.steps, threads=args.threads)
    if args.trace:
        t = obs_trace.tracer()
        if t is not None:
            t.export_chrome(args.trace)
            print(f"trace written to {args.trace}", file=sys.stderr)
    if args.table:
        print(format_table(snapshot))
    else:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
