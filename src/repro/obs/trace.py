"""Structured tracing: nested spans exported as Chrome trace-event JSON.

One process-global :class:`Tracer` records **spans** — named, nested
intervals on a monotonic clock, tagged with the recording thread and
(for distributed runs) the rank — at every pipeline boundary: plan
compile/lower/verify, plan-cache lookups, Echo accept/reject, memplan
packing, wavefront level execution per worker, GEMM-batch grouping,
ring-collective chunk send/recv, and the serving request lifecycle.
The export (:meth:`Tracer.export_chrome`) is the Chrome trace-event
format — strict ``B``/``E`` begin/end pairs per thread, microsecond
timestamps — loadable directly in Perfetto (ui.perfetto.dev) or
``chrome://tracing``.

**Zero overhead when disabled.** Tracing is off unless ``REPRO_TRACE``
is set (or :func:`enable` is called): the module-level :data:`TRACING`
flag is False, :func:`span` returns a shared no-op context manager, and
hot loops guard on the flag so the disabled path costs one global read.
Recording never touches computed arrays — span args hold scalars and
strings only — so traced runs are bitwise-identical to untraced runs
(property-tested in ``tests/test_obs.py``).

**Determinism note.** Spans per *thread* are strictly nested because
they are context-managed (LIFO per thread); the per-thread event list
is therefore emitted in recording order with non-decreasing timestamps,
which is exactly what the trace-event spec requires.

Env vars:

* ``REPRO_TRACE=1`` — enable in-memory tracing (export explicitly).
* ``REPRO_TRACE=/path/trace.json`` — enable and export there at exit
  (one file per process; the pid lands in the filename for rank > 0
  children so concurrent ranks never clobber each other).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from typing import Any, Mapping, Sequence

__all__ = [
    "TRACING",
    "Tracer",
    "span",
    "tracer",
    "enable",
    "disable",
    "set_process",
    "merge_chrome_traces",
]

#: per-thread event cap — bounds tracer memory when a whole test suite
#: runs with REPRO_TRACE=1; beyond it new spans are counted, not stored
DEFAULT_MAX_EVENTS_PER_THREAD = 200_000


def _now_us() -> int:
    """Monotonic microseconds (the trace-event ``ts`` unit)."""
    return time.perf_counter_ns() // 1000


class _ThreadLog:
    """One thread's event buffer: strict B/E nesting by construction."""

    __slots__ = ("tid", "name", "events", "dropped")

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        # ("B", name, cat, ts_us, args) / ("E", ts_us) in recording order
        self.events: list[tuple] = []
        self.dropped = 0


class _Span:
    """Context manager recording one B/E pair into a thread log.

    ``sp["key"] = value`` annotates the span after entry — the begin
    event holds a reference to the args dict, so late annotations (a
    cache lookup's hit/miss verdict, an Echo pass's accept count) land
    in the export without a second event.
    """

    __slots__ = ("_tracer", "_log", "name", "cat", "args", "_recorded")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: dict | None) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args if args is not None else {}
        self._log: _ThreadLog | None = None
        self._recorded = False

    def __enter__(self) -> "_Span":
        log = self._tracer._log_for_current_thread()
        self._log = log
        if len(log.events) < self._tracer.max_events_per_thread:
            log.events.append(("B", self.name, self.cat, _now_us(), self.args))
            self._recorded = True
        else:
            log.dropped += 1
        return self

    def __exit__(self, *exc: Any) -> None:
        # The E must land whenever the B did, or per-thread nesting
        # breaks — so the cap gates B events only.
        if self._recorded:
            self._log.events.append(("E", _now_us()))

    def __setitem__(self, key: str, value: Any) -> None:
        self.args[key] = value


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def __setitem__(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Thread-safe span recorder with Chrome trace-event export.

    Each thread records into its own buffer (no lock on the hot path
    beyond registering the buffer once per thread), tagged with the
    thread's identity; :meth:`export_chrome` merges the buffers. The
    ``pid`` field carries the distributed *rank* when
    :meth:`set_process` was called, so per-rank traces merge into one
    timeline (see :func:`merge_chrome_traces`).
    """

    def __init__(
        self,
        pid: int | None = None,
        process_name: str | None = None,
        max_events_per_thread: int = DEFAULT_MAX_EVENTS_PER_THREAD,
    ) -> None:
        self.pid = os.getpid() if pid is None else int(pid)
        self.process_name = process_name or "repro"
        self.max_events_per_thread = max_events_per_thread
        self._lock = threading.Lock()
        self._logs: dict[int, _ThreadLog] = {}
        self._local = threading.local()
        self._next_tid = 0

    # -- recording ----------------------------------------------------------

    def _log_for_current_thread(self) -> _ThreadLog:
        log = getattr(self._local, "log", None)
        if log is None:
            with self._lock:
                tid = self._next_tid
                self._next_tid += 1
                log = _ThreadLog(tid, threading.current_thread().name)
                self._logs[threading.get_ident()] = log
            self._local.log = log
        return log

    def span(self, name: str, cat: str = "",
             args: dict | None = None) -> _Span:
        """A context manager recording one nested span on this thread."""
        return _Span(self, name, cat, args)

    def set_process(self, pid: int, name: str | None = None) -> None:
        """Tag this tracer's events with ``pid`` (the distributed rank)."""
        self.pid = int(pid)
        if name is not None:
            self.process_name = name

    # -- introspection ------------------------------------------------------

    def span_count(self) -> int:
        """Recorded (not dropped) spans across all threads."""
        with self._lock:
            logs = list(self._logs.values())
        return sum(
            sum(1 for e in log.events if e[0] == "B") for log in logs
        )

    def span_names(self) -> set[str]:
        """Distinct span names recorded so far (test/assertion helper)."""
        with self._lock:
            logs = list(self._logs.values())
        return {
            e[1] for log in logs for e in log.events if e[0] == "B"
        }

    def dropped_count(self) -> int:
        with self._lock:
            return sum(log.dropped for log in self._logs.values())

    # -- export -------------------------------------------------------------

    def export_payload(self) -> dict:
        """The Chrome trace-event payload as a plain dict.

        Per thread: one ``M`` (metadata) event naming the thread, then
        the thread's ``B``/``E`` stream in recording order. Unclosed
        spans (export called mid-span) get a synthetic ``E`` at the
        export timestamp so the payload always validates.
        """
        with self._lock:
            logs = [
                ( # snapshot under the lock; recording threads append only
                    log.tid, log.name, list(log.events),
                )
                for log in self._logs.values()
            ]
        events: list[dict] = [
            {
                "name": "process_name", "ph": "M", "pid": self.pid,
                "tid": 0, "args": {"name": self.process_name},
            }
        ]
        now = _now_us()
        for tid, tname, stream in logs:
            events.append(
                {
                    "name": "thread_name", "ph": "M", "pid": self.pid,
                    "tid": tid, "args": {"name": tname},
                }
            )
            depth = 0
            for ev in stream:
                if ev[0] == "B":
                    _, name, cat, ts, args = ev
                    record = {
                        "name": name, "cat": cat or "repro", "ph": "B",
                        "ts": ts, "pid": self.pid, "tid": tid,
                    }
                    if args:
                        record["args"] = _jsonable(args)
                    events.append(record)
                    depth += 1
                else:
                    events.append(
                        {"ph": "E", "ts": ev[1], "pid": self.pid, "tid": tid}
                    )
                    depth -= 1
            for _ in range(depth):  # close spans still open at export
                events.append(
                    {"ph": "E", "ts": now, "pid": self.pid, "tid": tid}
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str | None = None) -> dict:
        """Export the trace; write JSON to ``path`` when given."""
        payload = self.export_payload()
        if path:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        return payload

    def clear(self) -> None:
        with self._lock:
            self._logs.clear()
            self._next_tid = 0
        self._local = threading.local()


def _jsonable(value: Any) -> Any:
    """Args must serialize; anything exotic degrades to ``repr``."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


# -- module-level switch (the zero-overhead disabled path) -------------------

#: True exactly when a tracer is installed; hot loops guard on this
TRACING: bool = False
_tracer: Tracer | None = None


def tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _tracer


def span(name: str, cat: str = "", args: dict | None = None):
    """A span on the installed tracer — or the shared no-op when off.

    The disabled path is one global read plus returning a singleton;
    instrumentation sites in genuinely hot loops should additionally
    guard on :data:`TRACING` to skip building ``args`` dicts.
    """
    t = _tracer
    if t is None:
        return _NOOP
    return t.span(name, cat, args)


def enable(path: str | None = None, pid: int | None = None,
           fresh: bool = True) -> Tracer:
    """Install a tracer (a fresh one unless ``fresh=False`` and one
    exists); ``path`` registers an at-exit Chrome export."""
    global _tracer, TRACING
    if _tracer is None or fresh:
        _tracer = Tracer(pid=pid)
    TRACING = True
    if path:
        _register_exit_export(_tracer, path)
    return _tracer


def disable() -> None:
    """Uninstall the tracer; :func:`span` returns the no-op again."""
    global _tracer, TRACING
    TRACING = False
    _tracer = None


def set_process(pid: int, name: str | None = None) -> None:
    """Rank-tag the installed tracer (no-op when tracing is off)."""
    if _tracer is not None:
        _tracer.set_process(pid, name)


_exit_registered: set[int] = set()


def _register_exit_export(t: Tracer, path: str) -> None:
    if id(t) in _exit_registered:
        return
    _exit_registered.add(id(t))

    def _dump() -> None:
        target = path
        # Child processes (dist process backend) fork after import; give
        # each its own file instead of clobbering the parent's.
        if os.getpid() != _MAIN_PID:
            root, ext = os.path.splitext(path)
            target = f"{root}.{os.getpid()}{ext or '.json'}"
        try:
            t.export_chrome(target)
        except OSError:
            pass

    atexit.register(_dump)
    _exit_exports.append(_dump)


_exit_exports: list = []


def flush_exit_exports() -> None:
    """Run registered at-exit exports immediately.

    Multiprocessing children leave via ``os._exit`` and never run
    ``atexit`` handlers — the distributed launcher calls this in the
    child right before it reports its result, so an env-armed run
    still gets one pid-suffixed trace per rank.
    """
    for dump in list(_exit_exports):
        dump()


_MAIN_PID = os.getpid()


# -- cross-rank merge --------------------------------------------------------

def merge_chrome_traces(
    payloads: Sequence[Mapping[str, Any]], align: bool = True
) -> dict:
    """Merge per-rank Chrome trace payloads into one timeline.

    Each rank exports with ``pid = rank`` (via :func:`set_process`) on
    its own monotonic clock, so raw timestamps are not comparable
    across payloads. Collective spans carry ``gen``/``seq`` args from
    :class:`repro.dist.group.ProcessGroup` — the same (generation, seq)
    identifies the same collective on every rank — so with ``align``
    each payload after the first is shifted by a constant offset that
    makes its earliest shared collective start at the reference rank's
    timestamp. Constant shifts preserve per-thread monotonicity and
    B/E nesting.
    """
    if not payloads:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def anchors(payload: Mapping[str, Any]) -> dict[tuple, int]:
        """(gen, seq) -> earliest B timestamp among collective spans."""
        out: dict[tuple, int] = {}
        for ev in payload.get("traceEvents", []):
            if ev.get("ph") != "B":
                continue
            args = ev.get("args") or {}
            if "seq" not in args or "gen" not in args:
                continue
            key = (args["gen"], args["seq"])
            ts = ev["ts"]
            if key not in out or ts < out[key]:
                out[key] = ts
        return out

    ref = anchors(payloads[0])
    merged: list[dict] = [dict(ev) for ev in payloads[0].get("traceEvents", [])]
    for payload in payloads[1:]:
        offset = 0
        if align and ref:
            mine = anchors(payload)
            common = sorted(set(ref) & set(mine))
            if common:
                key = common[0]
                offset = ref[key] - mine[key]
        for ev in payload.get("traceEvents", []):
            ev = dict(ev)
            if "ts" in ev:
                ev["ts"] = ev["ts"] + offset
            merged.append(ev)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


# -- env activation ----------------------------------------------------------

def _activate_from_env() -> None:
    raw = os.environ.get("REPRO_TRACE", "").strip()
    if not raw or raw.lower() in ("0", "false", "no", "off"):
        return
    if raw.lower() in ("1", "true", "yes", "on"):
        enable()
    else:
        enable(path=raw)


_activate_from_env()
