"""Unified metrics: counters, gauges, and exact-bucket histograms.

One :class:`MetricsRegistry` absorbs the stats surfaces that grew up
scattered across the repo — serving occupancy/latency percentiles
(:class:`repro.serve.stats.ServerStats`), tuning-store hit counters
(:meth:`repro.pgo.store.TuneStore.stats`), the distributed overlap
fraction (:class:`repro.dist.stats.DistStats`), plan-cache hit rates,
and the verify wall share — behind one :meth:`MetricsRegistry.snapshot`
and one CLI (``python -m repro.obs.dump``).

Histograms keep **exact buckets**: a dict of observed value → count.
Percentiles are therefore exact (nearest-rank over the cumulative
counts), not interpolated across bin edges; degenerate windows behave
like :func:`repro.serve.stats.percentile` — ``None`` on empty, the
exact value on a single sample.

Like tracing, the global registry is off unless ``REPRO_METRICS`` is
set (or :func:`enable` is called): :func:`registry` returns ``None``
and instrumentation sites skip all bookkeeping, so the disabled path is
one global read. Subsystems that take an explicit ``metrics=`` registry
(``InferenceServer``, ``BucketedTrainer``, ``DistributedTrainer``)
record into it regardless of the global switch.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "enable",
    "disable",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float | None:
        with self._lock:
            return self._value


class Histogram:
    """Exact-bucket histogram: observed value -> occurrence count.

    Exactness over compression: percentiles are computed over the true
    multiset of observations (nearest rank), so a histogram of batch
    occupancies {1: 3, 4: 97} reports p50 = 4 exactly. Workloads here
    observe bounded sample families (latencies of a test run, bucket
    occupancies), so the bucket dict stays small; long-running services
    wanting bounded memory would quantize keys before observing.
    """

    __slots__ = ("_lock", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[float, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self._buckets[v] = self._buckets.get(v, 0) + 1
            self._count += 1
            self._sum += v
            self._min = min(self._min, v)
            self._max = max(self._max, v)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> float | None:
        """Exact nearest-rank percentile; None on an empty window."""
        with self._lock:
            if self._count == 0:
                return None
            rank = max(1, math.ceil(p / 100.0 * self._count))
            seen = 0
            for value in sorted(self._buckets):
                seen += self._buckets[value]
                if seen >= rank:
                    return value
            return self._max  # p > 100 degenerates to the max

    def snapshot(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "p50": None, "p95": None, "p99": None}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self._min,
            "max": self._max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe name -> metric map with one merged snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Any] = {}

    def _get(self, name: str, factory: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, factory):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {factory.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def absorb(self, prefix: str, values: Mapping[str, Any]) -> None:
        """Flatten a scattered stats dict into gauges under ``prefix``.

        Nested dicts flatten with dotted keys; non-numeric leaves are
        skipped (they belong in traces or logs, not metrics).
        """
        for key, val in values.items():
            name = f"{prefix}.{key}"
            if isinstance(val, Mapping):
                self.absorb(name, val)
            elif isinstance(val, bool):
                self.gauge(name).set(float(val))
            elif isinstance(val, (int, float)):
                self.gauge(name).set(val)

    def snapshot(self) -> dict:
        """Every metric's current value, by name, JSON-ready."""
        with self._lock:
            items = sorted(self._metrics.items())
        out: dict[str, Any] = {}
        for name, metric in items:
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out


# -- module-level switch -----------------------------------------------------

_registry: MetricsRegistry | None = None


def registry() -> MetricsRegistry | None:
    """The global registry, or None when metrics are disabled."""
    return _registry


def enable(fresh: bool = True) -> MetricsRegistry:
    global _registry
    if _registry is None or fresh:
        _registry = MetricsRegistry()
    return _registry


def disable() -> None:
    global _registry
    _registry = None


def _activate_from_env() -> None:
    raw = os.environ.get("REPRO_METRICS", "").strip().lower()
    if raw in ("1", "true", "yes", "on"):
        enable()


_activate_from_env()
