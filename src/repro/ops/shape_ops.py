"""Layout and shape manipulation: reshape, transpose, slice, concat, split.

These are the "plumbing" operators the unfused Default LSTM backend is made
of — each costs a full read+write of the tensor plus a kernel launch, which
is exactly why the Default backend drowns in cudaLaunch overhead (paper
Figure 7a) and why fusing them away (CuDNN / Echo backends) wins.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register
from repro.graph.shapes import broadcast_shapes, normalize_axis, num_elements


class ReshapeOp(Op):
    name = "reshape"
    recompute_cheap = True
    #: returns a view of the input (free on contiguous data)
    may_alias = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        shape = tuple(node.attrs["shape"])
        if num_elements(shape) != num_elements(x.shape):
            raise ShapeError(f"cannot reshape {x.shape} to {shape}")
        return [TensorSpec(shape, x.dtype)]

    def compute(self, node, inputs):
        return [np.reshape(inputs[0], node.attrs["shape"])]

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [reshape(dy, node.inputs[0].shape)]

    def flops(self, node: Node) -> int:
        return 0

    def bytes_accessed(self, node: Node) -> int:
        # Reshape on contiguous data is free (a view); model it as such.
        return 0

    def launch_count(self, node: Node) -> int:
        return 0


class TransposeOp(Op):
    name = "transpose"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        perm = tuple(node.attrs["perm"])
        if sorted(perm) != list(range(len(x.shape))):
            raise ShapeError(f"bad permutation {perm} for rank {len(x.shape)}")
        return [TensorSpec(tuple(x.shape[p] for p in perm), x.dtype)]

    def compute(self, node, inputs):
        return [np.ascontiguousarray(np.transpose(inputs[0], node.attrs["perm"]))]

    def compute_into(self, node, inputs, outs):
        np.copyto(outs[0], np.transpose(inputs[0], node.attrs["perm"]))

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        perm = node.attrs["perm"]
        inverse = [0] * len(perm)
        for i, p in enumerate(perm):
            inverse[p] = i
        return [transpose(dy, inverse)]


class SliceAxisOp(Op):
    """x[..., begin:end, ...] along ``axis`` (MXNet slice_axis)."""

    name = "slice_axis"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        axis = normalize_axis(node.attrs["axis"], len(x.shape))
        begin, end = node.attrs["begin"], node.attrs["end"]
        if not 0 <= begin < end <= x.shape[axis]:
            raise ShapeError(
                f"slice [{begin}:{end}] out of range for axis {axis} of {x.shape}"
            )
        shape = tuple(
            end - begin if i == axis else d for i, d in enumerate(x.shape)
        )
        return [TensorSpec(shape, x.dtype)]

    def compute(self, node, inputs):
        axis = normalize_axis(node.attrs["axis"], inputs[0].ndim)
        index = [slice(None)] * inputs[0].ndim
        index[axis] = slice(node.attrs["begin"], node.attrs["end"])
        return [np.ascontiguousarray(inputs[0][tuple(index)])]

    def compute_into(self, node, inputs, outs):
        axis = normalize_axis(node.attrs["axis"], inputs[0].ndim)
        index = [slice(None)] * inputs[0].ndim
        index[axis] = slice(node.attrs["begin"], node.attrs["end"])
        np.copyto(outs[0], inputs[0][tuple(index)])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [
            Node(
                _SLICE_AXIS_GRAD,
                [dy],
                {
                    "axis": node.attrs["axis"],
                    "begin": node.attrs["begin"],
                    "end": node.attrs["end"],
                    "like_shape": node.inputs[0].shape,
                },
            ).out()
        ]


class SliceAxisGradOp(Op):
    """Scatter dy back into a zero tensor of the original shape."""

    name = "slice_axis_grad"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (dy,) = node.inputs
        return [TensorSpec(tuple(node.attrs["like_shape"]), dy.dtype)]

    def compute(self, node, inputs):
        (dy,) = inputs
        out = np.zeros(node.attrs["like_shape"], dtype=dy.dtype)
        axis = normalize_axis(node.attrs["axis"], out.ndim)
        index = [slice(None)] * out.ndim
        index[axis] = slice(node.attrs["begin"], node.attrs["end"])
        out[tuple(index)] = dy
        return [out]

    def compute_into(self, node, inputs, outs):
        (dy,) = inputs
        out = outs[0]
        out.fill(0)
        axis = normalize_axis(node.attrs["axis"], out.ndim)
        index = [slice(None)] * out.ndim
        index[axis] = slice(node.attrs["begin"], node.attrs["end"])
        out[tuple(index)] = dy


class ConcatOp(Op):
    name = "concat"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        axis = normalize_axis(node.attrs["axis"], len(node.inputs[0].shape))
        first = node.inputs[0]
        total = 0
        for t in node.inputs:
            if len(t.shape) != len(first.shape):
                raise ShapeError("concat rank mismatch")
            for i, (da, db) in enumerate(zip(t.shape, first.shape)):
                if i != axis and da != db:
                    raise ShapeError(
                        f"concat dim {i} mismatch: {t.shape} vs {first.shape}"
                    )
            total += t.shape[axis]
        shape = tuple(
            total if i == axis else d for i, d in enumerate(first.shape)
        )
        return [TensorSpec(shape, first.dtype)]

    def compute(self, node, inputs):
        axis = normalize_axis(node.attrs["axis"], inputs[0].ndim)
        return [np.concatenate(inputs, axis=axis)]

    def compute_into(self, node, inputs, outs):
        axis = normalize_axis(node.attrs["axis"], inputs[0].ndim)
        np.concatenate(inputs, axis=axis, out=outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None] * len(node.inputs)
        axis = normalize_axis(node.attrs["axis"], len(node.inputs[0].shape))
        grads = []
        offset = 0
        for t in node.inputs:
            size = t.shape[axis]
            grads.append(slice_axis(dy, axis, offset, offset + size))
            offset += size
        return grads


class SplitOp(Op):
    """Even split along an axis into ``sections`` outputs."""

    name = "split"
    recompute_cheap = True
    supports_out = True

    def num_outputs(self, node: Node) -> int:
        return node.attrs["sections"]

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        axis = normalize_axis(node.attrs["axis"], len(x.shape))
        sections = node.attrs["sections"]
        if x.shape[axis] % sections != 0:
            raise ShapeError(
                f"axis {axis} of {x.shape} not divisible into {sections}"
            )
        piece = tuple(
            d // sections if i == axis else d for i, d in enumerate(x.shape)
        )
        return [TensorSpec(piece, x.dtype)] * sections

    def compute(self, node, inputs):
        axis = normalize_axis(node.attrs["axis"], inputs[0].ndim)
        return [
            np.ascontiguousarray(part)
            for part in np.split(inputs[0], node.attrs["sections"], axis=axis)
        ]

    def compute_into(self, node, inputs, outs):
        axis = normalize_axis(node.attrs["axis"], inputs[0].ndim)
        parts = np.split(inputs[0], node.attrs["sections"], axis=axis)
        for out, part in zip(outs, parts):
            np.copyto(out, part)

    def gradient(self, node, out_grads):
        from repro.ops.source import zeros

        pieces = []
        for spec, g in zip(node.out_specs, out_grads):
            pieces.append(g if g is not None else zeros(spec.shape, spec.dtype))
        return [concat(pieces, axis=node.attrs["axis"])]

    def launch_count(self, node: Node) -> int:
        # Splitting the leading axis of a contiguous tensor is pointer
        # arithmetic (views); other axes need one copy kernel per section.
        if node.attrs["axis"] == 0:
            return 0
        return node.attrs["sections"]

    def bytes_accessed(self, node: Node) -> int:
        if node.attrs["axis"] == 0:
            return 0
        return 2 * node.inputs[0].nbytes


class BroadcastToOp(Op):
    name = "broadcast_to"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        target = tuple(node.attrs["shape"])
        if broadcast_shapes(x.shape, target) != target:
            raise ShapeError(f"cannot broadcast {x.shape} to {target}")
        return [TensorSpec(target, x.dtype)]

    def compute(self, node, inputs):
        return [
            np.ascontiguousarray(
                np.broadcast_to(inputs[0], node.attrs["shape"])
            )
        ]

    def compute_into(self, node, inputs, outs):
        np.copyto(outs[0], np.broadcast_to(inputs[0], node.attrs["shape"]))

    def gradient(self, node, out_grads):
        from repro.ops.elementwise import _unbroadcast

        (dy,) = out_grads
        if dy is None:
            return [None]
        return [_unbroadcast(dy, node.inputs[0].shape)]


class ExpandDimsOp(Op):
    name = "expand_dims"
    recompute_cheap = True
    #: returns a reshape view of the input
    may_alias = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        axis = node.attrs["axis"]
        rank = len(x.shape) + 1
        if not -rank <= axis < rank:
            raise ShapeError(f"expand_dims axis {axis} out of range")
        axis %= rank
        shape = x.shape[:axis] + (1,) + x.shape[axis:]
        return [TensorSpec(shape, x.dtype)]

    def compute(self, node, inputs):
        return [np.reshape(inputs[0], node.out_specs[0].shape)]

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [reshape(dy, node.inputs[0].shape)]

    def flops(self, node: Node) -> int:
        return 0

    def bytes_accessed(self, node: Node) -> int:
        return 0

    def launch_count(self, node: Node) -> int:
        return 0


_RESHAPE = register(ReshapeOp())
_TRANSPOSE = register(TransposeOp())
_SLICE_AXIS = register(SliceAxisOp())
_SLICE_AXIS_GRAD = register(SliceAxisGradOp())
_CONCAT = register(ConcatOp())
_SPLIT = register(SplitOp())
_BROADCAST_TO = register(BroadcastToOp())
_EXPAND_DIMS = register(ExpandDimsOp())


def reshape(x: Tensor, shape: Sequence[int]) -> Tensor:
    return Node(_RESHAPE, [x], {"shape": tuple(shape)}).out()


def transpose(x: Tensor, perm: Sequence[int]) -> Tensor:
    return Node(_TRANSPOSE, [x], {"perm": tuple(perm)}).out()


def slice_axis(x: Tensor, axis: int, begin: int, end: int) -> Tensor:
    return Node(_SLICE_AXIS, [x], {"axis": axis, "begin": begin, "end": end}).out()


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    return Node(_CONCAT, list(tensors), {"axis": axis}).out()


def split(x: Tensor, sections: int, axis: int = 0) -> tuple[Tensor, ...]:
    node = Node(_SPLIT, [x], {"sections": sections, "axis": axis})
    return node.outputs


def broadcast_to(x: Tensor, shape: Sequence[int]) -> Tensor:
    return Node(_BROADCAST_TO, [x], {"shape": tuple(shape)}).out()


def expand_dims(x: Tensor, axis: int) -> Tensor:
    return Node(_EXPAND_DIMS, [x], {"axis": axis}).out()
