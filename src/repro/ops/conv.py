"""2-D convolution via im2col (the DeepSpeech2 front-end needs it).

Echo's second evaluation workload is an LSTM-based speech model whose
front end is a small stack of 2-D convolutions over spectrograms. The
kernels here follow the classic im2col formulation: forward is one patch
unfold plus one GEMM, so the GPU cost model prices it as GEMM work (which
is how cuDNN implements these shapes too). Convolutions are *not*
recompute-cheap — like GEMMs, they are exactly what Echo refuses to
re-execute.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register


def _out_dim(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int
            ) -> np.ndarray:
    """[N,C,H,W] -> [N, out_h, out_w, C*kh*kw] patch matrix."""
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (
        x.strides[0], x.strides[1],
        x.strides[2] * stride, x.strides[3] * stride,
        x.strides[2], x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape, strides)
    # [N, out_h, out_w, C, kh, kw] -> flatten channel-kernel dims
    return np.ascontiguousarray(
        patches.transpose(0, 2, 3, 1, 4, 5)
    ).reshape(n, out_h, out_w, c * kh * kw)


def _col2im(cols: np.ndarray, x_shape, kh, kw, stride, pad) -> np.ndarray:
    """Adjoint of _im2col: scatter-add patch gradients back to the image."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * out_h:stride,
                   j:j + stride * out_w:stride] += cols6[:, :, :, :, i, j
                                                         ].transpose(0, 3, 1, 2)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2dOp(Op):
    """y[N, O, H', W'] = conv(x[N, C, H, W], w[O, C, kh, kw]) + b[O]."""

    name = "conv2d"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        x, w = node.inputs[0], node.inputs[1]
        if len(x.shape) != 4 or len(w.shape) != 4:
            raise ShapeError(
                f"conv2d needs NCHW input and OIHW weight, got {x.shape}, "
                f"{w.shape}"
            )
        if x.shape[1] != w.shape[1]:
            raise ShapeError(
                f"conv2d channel mismatch: {x.shape[1]} vs {w.shape[1]}"
            )
        stride, pad = node.attrs["stride"], node.attrs["pad"]
        out_h = _out_dim(x.shape[2], w.shape[2], stride, pad)
        out_w = _out_dim(x.shape[3], w.shape[3], stride, pad)
        if len(node.inputs) == 3 and node.inputs[2].shape != (w.shape[0],):
            raise ShapeError("conv2d bias must be [out_channels]")
        return [TensorSpec((x.shape[0], w.shape[0], out_h, out_w), x.dtype)]

    def compute(self, node, inputs):
        x, w = inputs[0], inputs[1]
        stride, pad = node.attrs["stride"], node.attrs["pad"]
        o, c, kh, kw = w.shape
        cols = _im2col(x, kh, kw, stride, pad)  # [N,H',W',C*kh*kw]
        out = cols @ w.reshape(o, -1).T  # [N,H',W',O]
        if len(inputs) == 3:
            out = out + inputs[2]
        return [np.ascontiguousarray(
            out.transpose(0, 3, 1, 2).astype(x.dtype)
        )]

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None] * len(node.inputs)
        x, w = node.inputs[0], node.inputs[1]
        attrs = {"stride": node.attrs["stride"], "pad": node.attrs["pad"]}
        dx = Node(_CONV2D_GRAD_X, [w, dy],
                  {**attrs, "x_shape": x.shape}).out()
        dw = Node(_CONV2D_GRAD_W, [x, dy],
                  {**attrs, "w_shape": w.shape}).out()
        grads = [dx, dw]
        if len(node.inputs) == 3:
            from repro.ops.reduce import reduce_sum
            from repro.ops.shape_ops import reshape, transpose

            o = w.shape[0]
            total = dy.spec.num_elements // o
            flat = reshape(transpose(dy, (1, 0, 2, 3)), (o, total))
            grads.append(reduce_sum(flat, axis=1))
        return grads

    def gemm_dims(self, node: Node) -> tuple[int, int, int]:
        x, w = node.inputs[0], node.inputs[1]
        out = node.out_specs[0]
        m = out.shape[0] * out.shape[2] * out.shape[3]  # N*H'*W'
        n = w.shape[0]
        k = w.shape[1] * w.shape[2] * w.shape[3]
        return m, n, k

    def flops(self, node: Node) -> int:
        m, n, k = self.gemm_dims(node)
        return 2 * m * n * k

    def workspace_bytes(self, node: Node) -> int:
        # The unfolded im2col patch matrix.
        m, _n, k = self.gemm_dims(node)
        return m * k * node.out_specs[0].dtype.itemsize


class Conv2dGradXOp(Op):
    """dx from (w, dy) — transposed convolution via col2im."""

    name = "conv2d_grad_x"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        return [TensorSpec(tuple(node.attrs["x_shape"]),
                           node.inputs[1].dtype)]

    def compute(self, node, inputs):
        w, dy = inputs
        o, c, kh, kw = w.shape
        stride, pad = node.attrs["stride"], node.attrs["pad"]
        dy_cols = dy.transpose(0, 2, 3, 1)  # [N,H',W',O]
        dcols = dy_cols @ w.reshape(o, -1)  # [N,H',W',C*kh*kw]
        dx = _col2im(dcols, node.attrs["x_shape"], kh, kw, stride, pad)
        return [dx.astype(dy.dtype)]

    def flops(self, node: Node) -> int:
        return 2 * node.inputs[1].spec.num_elements * (
            node.inputs[0].spec.num_elements // node.inputs[0].shape[0]
        )


class Conv2dGradWOp(Op):
    """dw from (x, dy)."""

    name = "conv2d_grad_w"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        return [TensorSpec(tuple(node.attrs["w_shape"]),
                           node.inputs[0].dtype)]

    def compute(self, node, inputs):
        x, dy = inputs
        o, c, kh, kw = node.attrs["w_shape"]
        stride, pad = node.attrs["stride"], node.attrs["pad"]
        cols = _im2col(x, kh, kw, stride, pad)  # [N,H',W',C*kh*kw]
        dy_flat = dy.transpose(0, 2, 3, 1).reshape(-1, o)  # [NHW',O]
        dw = dy_flat.T @ cols.reshape(-1, c * kh * kw)
        return [dw.reshape(o, c, kh, kw).astype(x.dtype)]

    def flops(self, node: Node) -> int:
        o = node.attrs["w_shape"][0]
        per = int(np.prod(node.attrs["w_shape"][1:]))
        return 2 * (node.inputs[1].spec.num_elements // o) * o * per


_CONV2D = register(Conv2dOp())
_CONV2D_GRAD_X = register(Conv2dGradXOp())
_CONV2D_GRAD_W = register(Conv2dGradWOp())


def conv2d(
    x: Tensor,
    w: Tensor,
    b: Tensor | None = None,
    stride: int = 1,
    pad: int = 0,
) -> Tensor:
    """2-D convolution; ``x`` is NCHW, ``w`` is OIHW."""
    inputs = [x, w] if b is None else [x, w, b]
    return Node(_CONV2D, inputs, {"stride": int(stride), "pad": int(pad)}).out()
