"""Dense linear algebra: GEMM, batched GEMM, and the FullyConnected layer op.

These are the only compute-bound operators in the library; everything else
is bandwidth-bound. The Echo pass therefore refuses to mirror them into the
backward pass by default (``recompute_cheap = False``) — recomputing a GEMM
is what makes naive checkpointing (Chen et al.) lose ~logN/30% performance,
and avoiding it is what lets Echo's recomputation cost stay under 1% of
iteration time.

Every GEMM node carries a ``layout`` attribute (see
:class:`repro.layout.Layout`) consumed by the GPU cost model; the numerics
are layout-independent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register
from repro.layout.layouts import Layout


def _gemm_operand_shape(shape: tuple[int, ...], transpose: bool
                        ) -> tuple[int, int]:
    if len(shape) != 2:
        raise ShapeError(f"matmul operand must be rank-2, got {shape}")
    return (shape[1], shape[0]) if transpose else shape


class MatMulOp(Op):
    """C = op(A) . op(B) with optional operand transposes."""

    name = "matmul"
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        a, b = node.inputs
        m, ka = _gemm_operand_shape(a.shape, node.attrs["ta"])
        kb, n = _gemm_operand_shape(b.shape, node.attrs["tb"])
        if ka != kb:
            raise ShapeError(
                f"matmul inner dims differ: {a.shape} (ta={node.attrs['ta']}) "
                f"vs {b.shape} (tb={node.attrs['tb']})"
            )
        return [TensorSpec((m, n), a.dtype)]

    def compute(self, node, inputs):
        a, b = inputs
        if node.attrs["ta"]:
            a = a.T
        if node.attrs["tb"]:
            b = b.T
        return [np.asarray(a @ b, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        a, b = inputs
        if node.attrs["ta"]:
            a = a.T
        if node.attrs["tb"]:
            b = b.T
        np.matmul(a, b, out=outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None, None]
        a, b = node.inputs
        ta, tb = node.attrs["ta"], node.attrs["tb"]
        # Standard GEMM gradient identities for each transpose combination.
        # Gradients are issued in the default row-major form; layout-aware
        # callers (FullyConnectedOp) construct their backward GEMMs with
        # explicit layouts instead.
        if not ta and not tb:
            da = matmul(dy, b, tb=True)
            db = matmul(a, dy, ta=True)
        elif not ta and tb:
            da = matmul(dy, b)
            db = matmul(dy, a, ta=True)
        elif ta and not tb:
            da = matmul(b, dy, tb=True)
            db = matmul(a, dy)
        else:
            da = matmul(b, dy, ta=True, tb=True)
            db = matmul(dy, a, ta=True, tb=True)
        return [da, db]

    def gemm_dims(self, node: Node) -> tuple[int, int, int]:
        """(M, N, K) presented to the device, after layout selection."""
        a, b = node.inputs
        m, k = _gemm_operand_shape(a.shape, node.attrs["ta"])
        _, n = _gemm_operand_shape(b.shape, node.attrs["tb"])
        if node.attrs["layout"] is Layout.COL_MAJOR:
            m, n = n, m
        return m, n, k

    def flops(self, node: Node) -> int:
        m, n, k = self.gemm_dims(node)
        return 2 * m * n * k

    def bytes_accessed(self, node: Node) -> int:
        m, n, k = self.gemm_dims(node)
        itemsize = node.out_specs[0].dtype.itemsize
        return (m * k + k * n + m * n) * itemsize


class BatchDotOp(Op):
    """Batched GEMM: C[i] = op(A[i]) . op(B[i]) over the leading axis.

    Used by the attention layers (scores x encoder states -> context).
    """

    name = "batch_dot"
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        a, b = node.inputs
        if len(a.shape) != 3 or len(b.shape) != 3:
            raise ShapeError(
                f"batch_dot operands must be rank-3, got {a.shape}, {b.shape}"
            )
        if a.shape[0] != b.shape[0]:
            raise ShapeError(
                f"batch_dot batch dims differ: {a.shape[0]} vs {b.shape[0]}"
            )
        m, ka = _gemm_operand_shape(a.shape[1:], node.attrs["ta"])
        kb, n = _gemm_operand_shape(b.shape[1:], node.attrs["tb"])
        if ka != kb:
            raise ShapeError(
                f"batch_dot inner dims differ: {a.shape} vs {b.shape}"
            )
        return [TensorSpec((a.shape[0], m, n), a.dtype)]

    def compute(self, node, inputs):
        a, b = inputs
        if node.attrs["ta"]:
            a = np.swapaxes(a, 1, 2)
        if node.attrs["tb"]:
            b = np.swapaxes(b, 1, 2)
        return [np.asarray(a @ b, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        a, b = inputs
        if node.attrs["ta"]:
            a = np.swapaxes(a, 1, 2)
        if node.attrs["tb"]:
            b = np.swapaxes(b, 1, 2)
        np.matmul(a, b, out=outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None, None]
        a, b = node.inputs
        ta, tb = node.attrs["ta"], node.attrs["tb"]
        if not ta and not tb:
            da = batch_dot(dy, b, tb=True)
            db = batch_dot(a, dy, ta=True)
        elif not ta and tb:
            da = batch_dot(dy, b)
            db = batch_dot(dy, a, ta=True)
        elif ta and not tb:
            da = batch_dot(b, dy, tb=True)
            db = batch_dot(a, dy)
        else:
            da = batch_dot(b, dy, ta=True, tb=True)
            db = batch_dot(dy, a, ta=True, tb=True)
        return [da, db]

    def gemm_dims(self, node: Node) -> tuple[int, int, int]:
        a, b = node.inputs
        m, k = _gemm_operand_shape(a.shape[1:], node.attrs["ta"])
        _, n = _gemm_operand_shape(b.shape[1:], node.attrs["tb"])
        return m, n, k

    def flops(self, node: Node) -> int:
        m, n, k = self.gemm_dims(node)
        return 2 * node.inputs[0].shape[0] * m * n * k


class FullyConnectedOp(Op):
    """Y = X . W^T + b with a layout attribute (the paper's Equation 1).

    ``X`` is [M x K], ``W`` is [N x K] (MXNet's FullyConnected convention,
    matching the LSTM gate weight [4H x H]), optional bias [N].
    """

    name = "fully_connected"
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        x, w = node.inputs[0], node.inputs[1]
        if len(x.shape) != 2 or len(w.shape) != 2:
            raise ShapeError(
                f"fully_connected needs rank-2 x and w, got {x.shape}, {w.shape}"
            )
        if x.shape[1] != w.shape[1]:
            raise ShapeError(
                f"fully_connected K mismatch: x {x.shape} vs w {w.shape}"
            )
        if len(node.inputs) == 3:
            b = node.inputs[2]
            if b.shape != (w.shape[0],):
                raise ShapeError(
                    f"fully_connected bias shape {b.shape} != ({w.shape[0]},)"
                )
        return [TensorSpec((x.shape[0], w.shape[0]), x.dtype)]

    def compute(self, node, inputs):
        x, w = inputs[0], inputs[1]
        if node.attrs["layout"] is Layout.COL_MAJOR:
            y = (w @ x.T).T
        else:
            y = x @ w.T
        if len(inputs) == 3:
            y = y + inputs[2]
        return [np.asarray(y, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        x, w = inputs[0], inputs[1]
        out = outs[0]
        if node.attrs["layout"] is Layout.COL_MAJOR:
            y = (w @ x.T).T
            if len(inputs) == 3:
                np.add(y, inputs[2], out=out)
            else:
                np.copyto(out, y)
        else:
            np.matmul(x, w.T, out=out)
            if len(inputs) == 3:
                np.add(out, inputs[2], out=out)

    def gradient(self, node, out_grads):
        from repro.ops.reduce import reduce_sum

        (dy,) = out_grads
        if dy is None:
            return [None] * len(node.inputs)
        x, w = node.inputs[0], node.inputs[1]
        layout = node.attrs["layout"]
        # dX inherits the layer's layout: in the transposed form it is
        # issued as dX^T = W^T . dY^T, whose tall-M shape is what speeds up
        # the backward pass too. dW is the same [N x K] = [N x M].[M x K]
        # GEMM in either layout, so it keeps the row-major form.
        dx = matmul(dy, w, layout=layout)            # [M,N].[N,K] -> [M,K]
        dw = matmul(dy, x, ta=True)                  # [N,M].[M,K] -> [N,K]
        grads = [dx, dw]
        if len(node.inputs) == 3:
            grads.append(reduce_sum(dy, axis=0))
        return grads

    def gemm_dims(self, node: Node) -> tuple[int, int, int]:
        x, w = node.inputs[0], node.inputs[1]
        layout: Layout = node.attrs["layout"]
        return layout.gemm_dims(x.shape[0], w.shape[0], x.shape[1])

    def flops(self, node: Node) -> int:
        m, n, k = self.gemm_dims(node)
        fl = 2 * m * n * k
        if len(node.inputs) == 3:
            fl += m * n
        return fl


_MATMUL = register(MatMulOp())
_BATCH_DOT = register(BatchDotOp())
_FULLY_CONNECTED = register(FullyConnectedOp())


def gemm_batch_key(node: Node):
    """Isomorphism key for the compiled executor's batched-GEMM pre-pass.

    Two ``matmul`` nodes with equal keys compute the same-shape GEMM with
    the same transpose flags and dtype, so a group of them can execute as
    one stacked ``np.matmul`` over a leading group axis — numerically the
    same per-slice BLAS call, issued once. Returns ``None`` for nodes the
    pre-pass must not touch: non-GEMMs, mixed-dtype GEMMs (whose
    ``compute_into`` cast path the stacked kernel would not reproduce),
    and empty outputs. The ``layout`` attr is deliberately excluded — it
    steers the *cost model*, not the numerics, and the simulated cost
    stays node-based regardless of batching.
    """
    if node.op.name != "matmul":
        return None
    a, b = node.inputs
    out = node.out_specs[0]
    if a.dtype != out.dtype or b.dtype != out.dtype or out.nbytes == 0:
        return None
    return (a.shape, b.shape, node.attrs["ta"], node.attrs["tb"], out.dtype.str)


def stacked_operand(stack: np.ndarray, transpose: bool) -> np.ndarray:
    """Per-slice transpose view of a [G x M x K] operand stack.

    ``np.matmul`` on the swapped view issues the same per-slice BLAS call
    (same dims, leading strides, transpose flags) as the 2-D
    ``op(A[i]) @ op(B[i])`` it replaces, so batching is bitwise-exact.
    """
    return np.swapaxes(stack, 1, 2) if transpose else stack


def matmul(
    a: Tensor,
    b: Tensor,
    ta: bool = False,
    tb: bool = False,
    layout: Layout = Layout.ROW_MAJOR,
) -> Tensor:
    return Node(_MATMUL, [a, b], {"ta": ta, "tb": tb, "layout": layout}).out()


def batch_dot(a: Tensor, b: Tensor, ta: bool = False, tb: bool = False) -> Tensor:
    return Node(_BATCH_DOT, [a, b], {"ta": ta, "tb": tb}).out()


def fully_connected(
    x: Tensor,
    w: Tensor,
    b: Tensor | None = None,
    layout: Layout = Layout.ROW_MAJOR,
) -> Tensor:
    inputs = [x, w] if b is None else [x, w, b]
    return Node(_FULLY_CONNECTED, inputs, {"layout": layout}).out()
