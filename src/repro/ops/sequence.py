"""Sequence operators, including the paper's SequenceReverse case study.

MXNet's SequenceReverse walked the batch dimension *sequentially* on the
GPU, achieving ~1 GB/s of the device's ~550 GB/s (paper Section 5.1); the
paper's fix parallelizes across batch samples. We model both variants with
a ``parallel`` attribute: numerics are identical, but the GPU cost model
reads :meth:`memory_efficiency` to reproduce the Figure 6 pathology and the
``par_rev`` baselines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register

#: Fraction of peak DRAM bandwidth the sequential implementation achieves.
#: The paper measures 1 GB/s reads and 0.1 GB/s writes on a 550 GB/s Titan
#: Xp; the blended effective rate over the kernel's read+write traffic is
#: a few tenths of a GB/s.
_SEQUENTIAL_EFFICIENCY = 0.0005


class SequenceReverseOp(Op):
    """Reverse a [T x B x ...] tensor along the time (first) axis."""

    name = "sequence_reverse"
    recompute_cheap = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        if len(x.shape) < 2:
            raise ShapeError(
                f"sequence_reverse expects at least [T x B], got {x.shape}"
            )
        return [TensorSpec(x.shape, x.dtype)]

    def compute(self, node, inputs):
        return [np.ascontiguousarray(inputs[0][::-1])]

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [sequence_reverse(dy, parallel=node.attrs["parallel"])]

    def memory_efficiency(self, node: Node) -> float:
        return 1.0 if node.attrs["parallel"] else _SEQUENTIAL_EFFICIENCY

    def launch_count(self, node: Node) -> int:
        if node.attrs["parallel"]:
            return 1
        # One kernel per batch lane in the sequential implementation.
        return node.inputs[0].shape[1]


_SEQUENCE_REVERSE = register(SequenceReverseOp())


def sequence_reverse(x: Tensor, parallel: bool = True) -> Tensor:
    """Reverse along time; ``parallel=False`` models the MXNet pathology."""
    return Node(_SEQUENCE_REVERSE, [x], {"parallel": parallel}).out()
