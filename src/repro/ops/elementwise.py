"""Elementwise binary/unary arithmetic with numpy broadcasting semantics.

All elementwise ops are marked ``recompute_cheap``: they are exactly the
bandwidth-bound, GEMM-free kernels the paper's partial-forward-propagation /
Echo recomputation targets (broadcast arithmetic, scaling, masking).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.graph import Node, Op, Tensor, TensorSpec, broadcast_shapes, register


def _unbroadcast(grad: Tensor, target_shape: tuple[int, ...]) -> Tensor:
    """Reduce ``grad`` back to ``target_shape`` (reverse of broadcasting)."""
    from repro.ops.reduce import reduce_sum
    from repro.ops.shape_ops import reshape

    g = grad
    # Sum out prepended axes.
    while len(g.shape) > len(target_shape):
        g = reduce_sum(g, axis=0, keepdims=False)
    # Sum over axes that were broadcast from 1.
    for ax, (gd, td) in enumerate(zip(g.shape, target_shape)):
        if td == 1 and gd != 1:
            g = reduce_sum(g, axis=ax, keepdims=True)
    if g.shape != tuple(target_shape):
        g = reshape(g, target_shape)
    return g


class BinaryOp(Op):
    """Broadcasting binary elementwise operator."""

    recompute_cheap = True
    supports_out = True
    fusion_eligible = True
    inplace_operands = (0, 1)

    def __init__(self, name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]):
        self.name = name
        self._fn = fn

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        a, b = node.inputs
        if a.dtype != b.dtype:
            raise TypeError(
                f"{self.name}: dtype mismatch {a.dtype} vs {b.dtype} "
                f"({a.short_name}, {b.short_name})"
            )
        return [TensorSpec(broadcast_shapes(a.shape, b.shape), a.dtype)]

    def compute(self, node: Node, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        out = self._fn(inputs[0], inputs[1])
        return [np.asarray(out, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        try:
            self._fn(inputs[0], inputs[1], out=outs[0])
        except TypeError:
            # Result dtype not castable same-kind into the out buffer
            # (e.g. integer division); fall back to compute-and-copy,
            # which applies the same unsafe cast ``compute`` does.
            super().compute_into(node, inputs, outs)


class _AddOp(BinaryOp):
    def __init__(self) -> None:
        super().__init__("add", np.add)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None, None]
        a, b = node.inputs
        return [_unbroadcast(dy, a.shape), _unbroadcast(dy, b.shape)]


class _SubOp(BinaryOp):
    def __init__(self) -> None:
        super().__init__("sub", np.subtract)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None, None]
        a, b = node.inputs
        return [_unbroadcast(dy, a.shape), _unbroadcast(neg(dy), b.shape)]


class _MulOp(BinaryOp):
    def __init__(self) -> None:
        super().__init__("mul", np.multiply)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None, None]
        a, b = node.inputs
        return [
            _unbroadcast(mul(dy, b), a.shape),
            _unbroadcast(mul(dy, a), b.shape),
        ]


class _DivOp(BinaryOp):
    def __init__(self) -> None:
        super().__init__("div", np.divide)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None, None]
        a, b = node.inputs
        da = div(dy, b)
        db = neg(div(mul(dy, node.out(0)), b))  # -dy * (a/b) / b
        return [_unbroadcast(da, a.shape), _unbroadcast(db, b.shape)]


class ScalarOp(Op):
    """Elementwise op combining a tensor with a python scalar attribute."""

    recompute_cheap = True
    supports_out = True
    fusion_eligible = True
    inplace_operands = (0,)

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray, float], np.ndarray],
        into_fn: Callable[[np.ndarray, float, np.ndarray], None] | None = None,
    ) -> None:
        self.name = name
        self._fn = fn
        self._into_fn = into_fn

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (a,) = node.inputs
        return [TensorSpec(a.shape, a.dtype)]

    def compute(self, node: Node, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        out = self._fn(inputs[0], node.attrs["scalar"])
        return [np.asarray(out, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        if self._into_fn is None:
            super().compute_into(node, inputs, outs)
            return
        try:
            self._into_fn(inputs[0], node.attrs["scalar"], outs[0])
        except TypeError:
            super().compute_into(node, inputs, outs)


class _AddScalarOp(ScalarOp):
    def __init__(self) -> None:
        super().__init__(
            "add_scalar",
            lambda x, c: x + c,
            lambda x, c, out: np.add(x, c, out=out),
        )

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        return [dy]


class _MulScalarOp(ScalarOp):
    def __init__(self) -> None:
        super().__init__(
            "mul_scalar",
            lambda x, c: x * c,
            lambda x, c, out: np.multiply(x, c, out=out),
        )

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [mul_scalar(dy, node.attrs["scalar"])]


class _RSubScalarOp(ScalarOp):
    """c - x."""

    def __init__(self) -> None:
        super().__init__(
            "rsub_scalar",
            lambda x, c: c - x,
            lambda x, c, out: np.subtract(c, x, out=out),
        )

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [neg(dy)]


class _PowScalarOp(ScalarOp):
    def __init__(self) -> None:
        super().__init__(
            "pow_scalar",
            lambda x, c: np.power(x, c),
            lambda x, c, out: np.power(x, c, out=out),
        )

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        c = node.attrs["scalar"]
        (x,) = node.inputs
        return [mul_scalar(mul(dy, pow_scalar(x, c - 1.0)), c)]


class UnaryOp(Op):
    """Elementwise unary operator."""

    recompute_cheap = True
    supports_out = True
    fusion_eligible = True
    inplace_operands = (0,)

    def __init__(self, name: str, fn: Callable[[np.ndarray], np.ndarray]):
        self.name = name
        self._fn = fn

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (a,) = node.inputs
        return [TensorSpec(a.shape, a.dtype)]

    def compute(self, node: Node, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        out = self._fn(inputs[0])
        return [np.asarray(out, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        try:
            self._fn(inputs[0], out=outs[0])
        except TypeError:
            super().compute_into(node, inputs, outs)


class _NegOp(UnaryOp):
    def __init__(self) -> None:
        super().__init__("neg", np.negative)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        return [None if dy is None else neg(dy)]


class _ExpOp(UnaryOp):
    def __init__(self) -> None:
        super().__init__("exp", np.exp)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [mul(dy, node.out(0))]


class _LogOp(UnaryOp):
    def __init__(self) -> None:
        super().__init__("log", np.log)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [div(dy, node.inputs[0])]


class _SqrtOp(UnaryOp):
    def __init__(self) -> None:
        super().__init__("sqrt", np.sqrt)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [div(dy, mul_scalar(node.out(0), 2.0))]


_ADD = register(_AddOp())
_SUB = register(_SubOp())
_MUL = register(_MulOp())
_DIV = register(_DivOp())
_ADD_SCALAR = register(_AddScalarOp())
_MUL_SCALAR = register(_MulScalarOp())
_RSUB_SCALAR = register(_RSubScalarOp())
_POW_SCALAR = register(_PowScalarOp())
_NEG = register(_NegOp())
_EXP = register(_ExpOp())
_LOG = register(_LogOp())
_SQRT = register(_SqrtOp())


def add(a: Tensor, b: Tensor) -> Tensor:
    return Node(_ADD, [a, b]).out()


def sub(a: Tensor, b: Tensor) -> Tensor:
    return Node(_SUB, [a, b]).out()


def mul(a: Tensor, b: Tensor) -> Tensor:
    return Node(_MUL, [a, b]).out()


def div(a: Tensor, b: Tensor) -> Tensor:
    return Node(_DIV, [a, b]).out()


def add_scalar(x: Tensor, c: float) -> Tensor:
    return Node(_ADD_SCALAR, [x], {"scalar": float(c)}).out()


def mul_scalar(x: Tensor, c: float) -> Tensor:
    return Node(_MUL_SCALAR, [x], {"scalar": float(c)}).out()


def rsub_scalar(x: Tensor, c: float) -> Tensor:
    """Return ``c - x``."""
    return Node(_RSUB_SCALAR, [x], {"scalar": float(c)}).out()


def pow_scalar(x: Tensor, c: float) -> Tensor:
    return Node(_POW_SCALAR, [x], {"scalar": float(c)}).out()


def neg(x: Tensor) -> Tensor:
    return Node(_NEG, [x]).out()


def exp(x: Tensor) -> Tensor:
    return Node(_EXP, [x]).out()


def log(x: Tensor) -> Tensor:
    return Node(_LOG, [x]).out()


def sqrt(x: Tensor) -> Tensor:
    return Node(_SQRT, [x]).out()
