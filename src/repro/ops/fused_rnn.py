"""Fused LSTM pointwise kernels (the paper's "f" block, Figure 1).

The unfused Default backend expresses the LSTM cell nonlinearity as ~10
separate slice/sigmoid/tanh/mul/add kernels, so GPU time is dominated by
cudaLaunch overhead (paper Figure 7a). cuDNN — and the optimized backends
here — fuse the whole block into one kernel per direction (Appleyard et
al.). Both forward and backward fused kernels are elementwise and therefore
``recompute_cheap``.

Convention: ``gates`` is the pre-activation [B x 4H] laid out as
[input | forget | cell(g~) | output] along the hidden axis.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register
from repro.ops.activation import _sigmoid


def _split_gates(gates: np.ndarray) -> tuple[np.ndarray, ...]:
    h = gates.shape[-1] // 4
    # input|forget are adjacent columns: one sigmoid call covers both
    # (elementwise, so bit-identical to two per-gate calls).
    in_forget = _sigmoid(gates[:, 0 * h:2 * h])
    return (
        in_forget[:, :h],
        in_forget[:, h:],
        np.tanh(gates[:, 2 * h:3 * h]),
        _sigmoid(gates[:, 3 * h:4 * h]),
    )


class LstmGatesOp(Op):
    """(h, c) = LSTMPointwise(gates [B x 4H], c_prev [B x H])."""

    name = "lstm_gates"
    recompute_cheap = True
    supports_out = True

    def num_outputs(self, node: Node) -> int:
        return 2

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        gates, c_prev = node.inputs
        if len(gates.shape) != 2 or gates.shape[1] % 4 != 0:
            raise ShapeError(f"gates must be [B x 4H], got {gates.shape}")
        hidden = gates.shape[1] // 4
        if c_prev.shape != (gates.shape[0], hidden):
            raise ShapeError(
                f"c_prev shape {c_prev.shape} != ({gates.shape[0]}, {hidden})"
            )
        spec = TensorSpec((gates.shape[0], hidden), gates.dtype)
        return [spec, spec]

    def compute(self, node, inputs):
        gates, c_prev = inputs
        i, f, g, o = _split_gates(gates)
        c = f * c_prev + i * g
        h = o * np.tanh(c)
        dtype = gates.dtype
        return [np.asarray(h, dtype=dtype), np.asarray(c, dtype=dtype)]

    def compute_into(self, node, inputs, outs):
        gates, c_prev = inputs
        h_out, c_out = outs
        i, f, g, o = _split_gates(gates)
        # Same expression tree as ``compute``: c = (f*c_prev) + (i*g),
        # h = o * tanh(c); the gate temporaries i/g are dead afterwards
        # and double as scratch.
        np.multiply(f, c_prev, out=c_out)
        np.multiply(i, g, out=i)
        np.add(c_out, i, out=c_out)
        np.tanh(c_out, out=g)
        np.multiply(o, g, out=h_out)

    def gradient(self, node, out_grads):
        from repro.ops.source import zeros

        dh, dc = out_grads
        if dh is None and dc is None:
            return [None, None]
        spec = node.out_specs[0]
        if dh is None:
            dh = zeros(spec.shape, spec.dtype)
        if dc is None:
            dc = zeros(spec.shape, spec.dtype)
        gates, c_prev = node.inputs
        grad_node = Node(
            _LSTM_GATES_GRAD, [gates, c_prev, node.out(1), dh, dc]
        )
        return [grad_node.out(0), grad_node.out(1)]

    def flops(self, node: Node) -> int:
        # ~12 elementwise flops per gate element (sigmoid/tanh dominated).
        return 12 * node.inputs[0].spec.num_elements

    def launch_count(self, node: Node) -> int:
        return 1


class LstmGatesGradOp(Op):
    """(dgates, dc_prev) from (gates, c_prev, c, dh, dc).

    Recomputes the gate activations from the stashed pre-activations, as
    cuDNN's fused backward does — so only ``gates`` and ``c`` are feature
    maps, not the four separate activation tensors.
    """

    name = "lstm_gates_grad"
    recompute_cheap = True
    supports_out = True

    def num_outputs(self, node: Node) -> int:
        return 2

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        gates, c_prev = node.inputs[0], node.inputs[1]
        return [
            TensorSpec(gates.shape, gates.dtype),
            TensorSpec(c_prev.shape, c_prev.dtype),
        ]

    def compute(self, node, inputs):
        gates, c_prev, c, dh, dc = inputs
        i, f, g, o = _split_gates(gates)
        tanh_c = np.tanh(c)
        dc_total = dc + dh * o * (1.0 - tanh_c * tanh_c)
        do = dh * tanh_c
        di = dc_total * g
        df = dc_total * c_prev
        dg = dc_total * i
        dc_prev = dc_total * f
        dgates = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g * g),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        dtype = gates.dtype
        return [
            np.asarray(dgates, dtype=dtype),
            np.asarray(dc_prev, dtype=dtype),
        ]

    def compute_into(self, node, inputs, outs):
        gates, c_prev, c, dh, dc = inputs
        dgates_out, dc_prev_out = outs
        i, f, g, o = _split_gates(gates)
        tanh_c = np.tanh(c)
        dc_total = dc + dh * o * (1.0 - tanh_c * tanh_c)
        do = dh * tanh_c
        di = dc_total * g
        df = dc_total * c_prev
        dg = dc_total * i
        np.multiply(dc_total, f, out=dc_prev_out)
        h = gates.shape[-1] // 4
        dgates_out[:, 0 * h:1 * h] = di * i * (1.0 - i)
        dgates_out[:, 1 * h:2 * h] = df * f * (1.0 - f)
        dgates_out[:, 2 * h:3 * h] = dg * (1.0 - g * g)
        dgates_out[:, 3 * h:4 * h] = do * o * (1.0 - o)

    def flops(self, node: Node) -> int:
        return 20 * node.inputs[0].spec.num_elements

    def launch_count(self, node: Node) -> int:
        return 1


_LSTM_GATES = register(LstmGatesOp())
_LSTM_GATES_GRAD = register(LstmGatesGradOp())


def lstm_gates(gates: Tensor, c_prev: Tensor) -> tuple[Tensor, Tensor]:
    """Fused LSTM nonlinearity; returns (h, c)."""
    node = Node(_LSTM_GATES, [gates, c_prev])
    return node.out(0), node.out(1)
