"""Reduction operators (sum / mean / max) over one axis or all axes."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, Tensor, TensorSpec, register
from repro.graph.shapes import normalize_axis, num_elements, reduced_shape


class _ReduceBase(Op):
    recompute_cheap = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        shape = reduced_shape(x.shape, node.attrs["axis"], node.attrs["keepdims"])
        return [TensorSpec(shape, x.dtype)]

    def _np_axis(self, node: Node) -> int | None:
        return node.attrs["axis"]


class ReduceSumOp(_ReduceBase):
    name = "reduce_sum"
    supports_out = True

    def compute(self, node, inputs):
        out = np.sum(inputs[0], axis=self._np_axis(node),
                     keepdims=node.attrs["keepdims"])
        return [np.asarray(out, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        # ``out=`` forces accumulation in the out dtype; for floats that
        # matches the default, for ints numpy widens to int64 first, so
        # only the float path keeps bitwise parity with ``compute``.
        if not np.issubdtype(outs[0].dtype, np.floating):
            super().compute_into(node, inputs, outs)
            return
        np.sum(inputs[0], axis=self._np_axis(node),
               keepdims=node.attrs["keepdims"], out=outs[0])

    def gradient(self, node, out_grads):
        from repro.ops.shape_ops import broadcast_to, reshape

        (dy,) = out_grads
        if dy is None:
            return [None]
        (x,) = node.inputs
        g = reshape(dy, _keepdims_shape(x.shape, node.attrs["axis"]))
        return [broadcast_to(g, x.shape)]


class ReduceMeanOp(_ReduceBase):
    name = "reduce_mean"
    supports_out = True

    def compute(self, node, inputs):
        out = np.mean(inputs[0], axis=self._np_axis(node),
                      keepdims=node.attrs["keepdims"])
        return [np.asarray(out, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        if not np.issubdtype(outs[0].dtype, np.floating) or not np.issubdtype(
            inputs[0].dtype, np.floating
        ):
            super().compute_into(node, inputs, outs)
            return
        np.mean(inputs[0], axis=self._np_axis(node),
                keepdims=node.attrs["keepdims"], out=outs[0])

    def gradient(self, node, out_grads):
        from repro.ops.elementwise import mul_scalar
        from repro.ops.shape_ops import broadcast_to, reshape

        (dy,) = out_grads
        if dy is None:
            return [None]
        (x,) = node.inputs
        axis = node.attrs["axis"]
        count = (num_elements(x.shape) if axis is None
                 else x.shape[normalize_axis(axis, len(x.shape))])
        g = reshape(dy, _keepdims_shape(x.shape, axis))
        return [mul_scalar(broadcast_to(g, x.shape), 1.0 / count)]


class ReduceMaxOp(_ReduceBase):
    name = "reduce_max"
    supports_out = True

    def compute(self, node, inputs):
        out = np.max(inputs[0], axis=self._np_axis(node),
                     keepdims=node.attrs["keepdims"])
        return [np.asarray(out, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        np.max(inputs[0], axis=self._np_axis(node),
               keepdims=node.attrs["keepdims"], out=outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [
            Node(
                _REDUCE_MAX_GRAD,
                [node.inputs[0], node.out(0), dy],
                {"axis": node.attrs["axis"], "keepdims": node.attrs["keepdims"]},
            ).out()
        ]


class ReduceMaxGradOp(Op):
    """Routes dy to the (first) argmax positions; ties split evenly."""

    name = "reduce_max_grad"
    recompute_cheap = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        x = node.inputs[0]
        return [TensorSpec(x.shape, x.dtype)]

    def compute(self, node, inputs):
        x, y, dy = inputs
        axis = node.attrs["axis"]
        if not node.attrs["keepdims"]:
            if axis is None:
                y = np.reshape(y, (1,) * x.ndim)
                dy = np.reshape(dy, (1,) * x.ndim)
            else:
                y = np.expand_dims(y, axis)
                dy = np.expand_dims(dy, axis)
        mask = (x == y).astype(x.dtype)
        denom = np.sum(mask, axis=axis, keepdims=True)
        return [np.asarray(dy * mask / denom, dtype=x.dtype)]


def _keepdims_shape(in_shape: tuple[int, ...], axis: int | None
                    ) -> tuple[int, ...]:
    """Shape of a keepdims reduction output for broadcasting gradients."""
    if axis is None:
        return tuple(1 for _ in in_shape)
    ax = normalize_axis(axis, len(in_shape))
    return tuple(1 if i == ax else d for i, d in enumerate(in_shape))


_REDUCE_SUM = register(ReduceSumOp())
_REDUCE_MEAN = register(ReduceMeanOp())
_REDUCE_MAX = register(ReduceMaxOp())
_REDUCE_MAX_GRAD = register(ReduceMaxGradOp())


def reduce_sum(x: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    return Node(_REDUCE_SUM, [x], {"axis": axis, "keepdims": keepdims}).out()


def reduce_mean(x: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    return Node(_REDUCE_MEAN, [x], {"axis": axis, "keepdims": keepdims}).out()


def reduce_max(x: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    return Node(_REDUCE_MAX, [x], {"axis": axis, "keepdims": keepdims}).out()
