"""Activation functions and their fused backward kernels.

LSTM RNNs are dominated by ``tanh``/``sigmoid`` (the four gate
nonlinearities), in contrast to the ``relu``-heavy CNNs that prior footprint
work (Gist) targets — the paper leans on this distinction, so all three are
implemented. Each activation's backward is a dedicated fused op, mirroring
framework ``_backward_*`` kernels; ``tanh``/``sigmoid`` backward reads the
forward *output*, which is exactly what turns those outputs into stashed
feature maps (the paper's Section 3.2 example).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, Tensor, TensorSpec, register


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise form.
    out = np.empty_like(x)
    _sigmoid_into(x, out)
    return out


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> None:
    # Numerically stable without masked gathers: t = exp(-|x|) never
    # overflows, and per element the arithmetic is exactly the classic
    # piecewise form — 1/(1+exp(-x)) for x >= 0, exp(x)/(1+exp(x))
    # otherwise — so results are bit-identical to it. Alias-safe when
    # ``out is x``: x is only read before the first write to out.
    pos = x >= 0
    t = np.abs(x)
    np.negative(t, out=t)
    np.exp(t, out=t)
    denom = t + 1.0
    np.divide(t, denom, out=t)  # negative branch: exp(x) / (1 + exp(x))
    np.divide(1.0, denom, out=denom)  # positive branch: 1 / (1 + exp(-x))
    out[...] = np.where(pos, denom, t)


class _ElementwiseSameShape(Op):
    recompute_cheap = True
    supports_out = True
    fusion_eligible = True
    inplace_operands = (0,)

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (a,) = node.inputs
        return [TensorSpec(a.shape, a.dtype)]


class TanhOp(_ElementwiseSameShape):
    name = "tanh"

    def compute(self, node, inputs):
        return [np.tanh(inputs[0])]

    def compute_into(self, node, inputs, outs):
        np.tanh(inputs[0], out=outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [tanh_grad(node.out(0), dy)]


class TanhGradOp(Op):
    """dx = dy * (1 - y^2); reads the forward output y."""

    name = "tanh_grad"
    recompute_cheap = True
    supports_out = True
    fusion_eligible = True
    inplace_operands = (0, 1)

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        y, _dy = node.inputs
        return [TensorSpec(y.shape, y.dtype)]

    def compute(self, node, inputs):
        y, dy = inputs
        return [np.asarray(dy * (1.0 - y * y), dtype=y.dtype)]

    def compute_into(self, node, inputs, outs):
        y, dy = inputs
        t = np.multiply(y, y)
        np.subtract(1.0, t, out=t)
        np.multiply(dy, t, out=outs[0])


class SigmoidOp(_ElementwiseSameShape):
    name = "sigmoid"

    def compute(self, node, inputs):
        return [np.asarray(_sigmoid(inputs[0]), dtype=inputs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        _sigmoid_into(inputs[0], outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [sigmoid_grad(node.out(0), dy)]


class SigmoidGradOp(Op):
    """dx = dy * y * (1 - y); reads the forward output y."""

    name = "sigmoid_grad"
    recompute_cheap = True
    supports_out = True
    fusion_eligible = True
    inplace_operands = (0, 1)

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        y, _dy = node.inputs
        return [TensorSpec(y.shape, y.dtype)]

    def compute(self, node, inputs):
        y, dy = inputs
        return [np.asarray(dy * y * (1.0 - y), dtype=y.dtype)]

    def compute_into(self, node, inputs, outs):
        y, dy = inputs
        t = np.subtract(1.0, y)
        np.multiply(dy, y, out=outs[0])
        np.multiply(outs[0], t, out=outs[0])


class ReluOp(_ElementwiseSameShape):
    name = "relu"

    def compute(self, node, inputs):
        return [np.maximum(inputs[0], 0.0)]

    def compute_into(self, node, inputs, outs):
        np.maximum(inputs[0], 0.0, out=outs[0])

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [relu_grad(node.inputs[0], dy)]


class ReluGradOp(Op):
    """dx = dy * (x > 0); reads the forward *input* x."""

    name = "relu_grad"
    recompute_cheap = True
    supports_out = True
    fusion_eligible = True
    inplace_operands = (0, 1)

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        x, _dy = node.inputs
        return [TensorSpec(x.shape, x.dtype)]

    def compute(self, node, inputs):
        x, dy = inputs
        return [np.asarray(dy * (x > 0.0), dtype=x.dtype)]

    def compute_into(self, node, inputs, outs):
        x, dy = inputs
        m = np.greater(x, 0.0)
        np.multiply(dy, m, out=outs[0])


_TANH = register(TanhOp())
_TANH_GRAD = register(TanhGradOp())
_SIGMOID = register(SigmoidOp())
_SIGMOID_GRAD = register(SigmoidGradOp())
_RELU = register(ReluOp())
_RELU_GRAD = register(ReluGradOp())


def tanh(x: Tensor) -> Tensor:
    return Node(_TANH, [x]).out()


def tanh_grad(y: Tensor, dy: Tensor) -> Tensor:
    return Node(_TANH_GRAD, [y, dy]).out()


def sigmoid(x: Tensor) -> Tensor:
    return Node(_SIGMOID, [x]).out()


def sigmoid_grad(y: Tensor, dy: Tensor) -> Tensor:
    return Node(_SIGMOID_GRAD, [y, dy]).out()


def relu(x: Tensor) -> Tensor:
    return Node(_RELU, [x]).out()


def relu_grad(x: Tensor, dy: Tensor) -> Tensor:
    return Node(_RELU_GRAD, [x, dy]).out()
