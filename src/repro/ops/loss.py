"""Loss operators: fused softmax cross-entropy over a vocabulary.

The Output layer of both workloads (word-level LM and NMT) is a large
FullyConnected projection to the vocabulary followed by softmax
cross-entropy; perplexity = exp(mean loss). The fused op stashes only the
logits (which the projection already produced), matching how frameworks
implement ``SoftmaxOutput``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register
from repro.ops.softmax import softmax_array


class SoftmaxCrossEntropyOp(Op):
    """Mean token-level cross-entropy of logits [N x V] vs labels [N].

    Label value ``ignore_label`` (default -1) masks padding tokens out of
    both the loss and the gradient, as sequence toolkits do.
    """

    name = "softmax_cross_entropy"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        logits, labels = node.inputs
        if len(logits.shape) != 2:
            raise ShapeError(f"logits must be [N x V], got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ShapeError(
                f"labels shape {labels.shape} != ({logits.shape[0]},)"
            )
        if not np.issubdtype(labels.dtype, np.integer):
            raise TypeError("labels must be integers")
        return [TensorSpec((), logits.dtype)]

    def compute(self, node, inputs):
        logits, labels = inputs
        probs = softmax_array(logits.astype(np.float64), axis=-1)
        valid = labels != node.attrs["ignore_label"]
        count = max(int(valid.sum()), 1)
        rows = np.arange(logits.shape[0])[valid]
        picked = probs[rows, labels[valid]]
        loss = -np.sum(np.log(np.maximum(picked, 1e-30))) / count
        return [np.asarray(loss, dtype=node.out_specs[0].dtype)]

    def gradient(self, node, out_grads):
        (dloss,) = out_grads
        if dloss is None:
            return [None, None]
        logits, labels = node.inputs
        dx = Node(
            _SOFTMAX_CROSS_ENTROPY_GRAD,
            [logits, labels, dloss],
            {"ignore_label": node.attrs["ignore_label"]},
        ).out()
        return [dx, None]

    def launch_count(self, node: Node) -> int:
        return 3  # softmax passes + gather/reduce


class SoftmaxCrossEntropyGradOp(Op):
    """dlogits = dloss * (softmax(logits) - onehot(labels)) / num_valid."""

    name = "softmax_cross_entropy_grad"
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        logits = node.inputs[0]
        return [TensorSpec(logits.shape, logits.dtype)]

    def compute(self, node, inputs):
        logits, labels, dloss = inputs
        probs = softmax_array(logits, axis=-1)
        valid = labels != node.attrs["ignore_label"]
        count = max(int(valid.sum()), 1)
        grad = probs
        rows = np.arange(logits.shape[0])[valid]
        grad[rows, labels[valid]] -= 1.0
        grad[~valid] = 0.0
        grad *= np.float32(dloss) / count
        return [np.asarray(grad, dtype=logits.dtype)]

    def compute_into(self, node, inputs, outs):
        logits, labels, dloss = inputs
        grad = outs[0]
        # softmax_array written into the out buffer, then the same
        # in-place adjustments ``compute`` applies to its fresh probs.
        np.subtract(logits, np.max(logits, axis=-1, keepdims=True), out=grad)
        np.exp(grad, out=grad)
        np.divide(grad, np.sum(grad, axis=-1, keepdims=True), out=grad)
        valid = labels != node.attrs["ignore_label"]
        count = max(int(valid.sum()), 1)
        rows = np.arange(logits.shape[0])[valid]
        grad[rows, labels[valid]] -= 1.0
        grad[~valid] = 0.0
        grad *= np.float32(dloss) / count


_SOFTMAX_CROSS_ENTROPY = register(SoftmaxCrossEntropyOp())
_SOFTMAX_CROSS_ENTROPY_GRAD = register(SoftmaxCrossEntropyGradOp())


def softmax_cross_entropy(
    logits: Tensor, labels: Tensor, ignore_label: int = -1
) -> Tensor:
    """Mean cross-entropy loss; see :class:`SoftmaxCrossEntropyOp`."""
    return Node(
        _SOFTMAX_CROSS_ENTROPY, [logits, labels], {"ignore_label": ignore_label}
    ).out()
