"""Softmax and its fused backward (used by attention weights and output)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, Tensor, TensorSpec, register
from repro.graph.shapes import normalize_axis


def softmax_array(x: np.ndarray, axis: int) -> np.ndarray:
    """Numerically stable softmax (shared with the loss kernels)."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax_array(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax (shared by beam search, sequence
    scoring, and the serving layer — one implementation, one place)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


class SoftmaxOp(Op):
    name = "softmax"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        (x,) = node.inputs
        normalize_axis(node.attrs["axis"], len(x.shape))
        return [TensorSpec(x.shape, x.dtype)]

    def compute(self, node, inputs):
        out = softmax_array(inputs[0], node.attrs["axis"])
        return [np.asarray(out, dtype=node.out_specs[0].dtype)]

    def compute_into(self, node, inputs, outs):
        x, out = inputs[0], outs[0]
        axis = node.attrs["axis"]
        np.subtract(x, np.max(x, axis=axis, keepdims=True), out=out)
        np.exp(out, out=out)
        np.divide(out, np.sum(out, axis=axis, keepdims=True), out=out)

    def gradient(self, node, out_grads):
        (dy,) = out_grads
        if dy is None:
            return [None]
        return [
            Node(
                _SOFTMAX_GRAD, [node.out(0), dy], {"axis": node.attrs["axis"]}
            ).out()
        ]

    def launch_count(self, node: Node) -> int:
        # max-reduce, exp-subtract, sum-reduce, divide
        return 4

    def bytes_accessed(self, node: Node) -> int:
        # Each of the 4 passes streams the tensor.
        return 4 * 2 * node.inputs[0].nbytes


class SoftmaxGradOp(Op):
    """dx = y * (dy - sum(dy * y, axis, keepdims)); reads forward output."""

    name = "softmax_grad"
    recompute_cheap = True
    supports_out = True

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        y, _dy = node.inputs
        return [TensorSpec(y.shape, y.dtype)]

    def compute(self, node, inputs):
        y, dy = inputs
        axis = node.attrs["axis"]
        inner = np.sum(dy * y, axis=axis, keepdims=True)
        return [np.asarray(y * (dy - inner), dtype=y.dtype)]

    def compute_into(self, node, inputs, outs):
        y, dy = inputs
        out = outs[0]
        axis = node.attrs["axis"]
        inner = np.sum(dy * y, axis=axis, keepdims=True)
        np.subtract(dy, inner, out=out)
        np.multiply(y, out, out=out)


_SOFTMAX = register(SoftmaxOp())
_SOFTMAX_GRAD = register(SoftmaxGradOp())


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return Node(_SOFTMAX, [x], {"axis": axis}).out()
