"""Install arithmetic operator overloads on :class:`repro.graph.Tensor`.

Kept separate from the IR to avoid an import cycle: the IR must not depend
on the operator library. Importing :mod:`repro.ops` wires these up.
"""

from __future__ import annotations

import numbers

from repro.graph import Tensor
from repro.ops import elementwise as ew
from repro.ops.matmul import matmul as _matmul


def _binary(tensor_fn, scalar_fn):
    def method(self: Tensor, other):
        if tensor_fn is not None and isinstance(other, Tensor):
            return tensor_fn(self, other)
        if scalar_fn is not None and isinstance(other, numbers.Number):
            return scalar_fn(self, float(other))
        return NotImplemented

    return method


def install() -> None:
    Tensor.__add__ = _binary(ew.add, ew.add_scalar)
    Tensor.__radd__ = Tensor.__add__
    Tensor.__sub__ = _binary(ew.sub, lambda x, c: ew.add_scalar(x, -c))
    Tensor.__rsub__ = _binary(lambda a, b: ew.sub(b, a), ew.rsub_scalar)
    Tensor.__mul__ = _binary(ew.mul, ew.mul_scalar)
    Tensor.__rmul__ = Tensor.__mul__
    Tensor.__truediv__ = _binary(
        ew.div, lambda x, c: ew.mul_scalar(x, 1.0 / c)
    )
    Tensor.__rtruediv__ = _binary(
        lambda a, b: ew.div(b, a),
        lambda x, c: ew.mul_scalar(ew.pow_scalar(x, -1.0), c),
    )
    Tensor.__neg__ = ew.neg
    Tensor.__matmul__ = _binary(_matmul, None)
    Tensor.__pow__ = _binary(None, ew.pow_scalar)
