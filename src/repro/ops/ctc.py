"""Connectionist Temporal Classification loss (speech recognition head).

The DeepSpeech2-style workload trains with CTC: the model emits a label
distribution (including a *blank*) per frame, and the loss marginalizes
over all alignments of the (shorter) transcript to the frames via the
forward-backward recursion. Both the forward (log-alpha) and the exact
gradient (via log-beta and posterior collection) run in log space for
stability; the gradient is checked numerically in the test suite.

Conventions: blank id = 0; logits are [T x B x V]; labels are [B x L]
padded with -1; per-sample sequence lengths may be shorter than T/L.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph import Node, Op, ShapeError, Tensor, TensorSpec, register
from repro.ops.softmax import log_softmax_array

BLANK = 0
_NEG_INF = -1e30


def _expand_labels(labels: np.ndarray) -> np.ndarray:
    """l1 l2 ... -> blank l1 blank l2 ... blank (length 2L+1)."""
    length = len(labels)
    expanded = np.full(2 * length + 1, BLANK, np.int64)
    expanded[1::2] = labels
    return expanded


def _ctc_alpha_beta(log_probs: np.ndarray, labels: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, float]:
    """Forward/backward lattices for one sample.

    ``log_probs`` is [T x V] (log-softmaxed); ``labels`` the un-expanded
    transcript. Returns (log_alpha, log_beta, log_likelihood), lattices
    shaped [T x 2L+1].
    """
    seq = _expand_labels(labels)
    t_len, _ = log_probs.shape
    s_len = len(seq)
    if s_len > 2 * t_len + 1:
        raise ValueError(
            f"transcript of length {len(labels)} cannot align to "
            f"{t_len} frames"
        )

    def can_skip(s: int) -> bool:
        """Transition s-2 -> s allowed when seq[s] is a label differing
        from the previous label (standard CTC topology)."""
        return (
            s >= 2 and seq[s] != BLANK and seq[s] != seq[s - 2]
        )

    alpha = np.full((t_len, s_len), _NEG_INF)
    alpha[0, 0] = log_probs[0, seq[0]]
    if s_len > 1:
        alpha[0, 1] = log_probs[0, seq[1]]
    for t in range(1, t_len):
        for s in range(s_len):
            best = alpha[t - 1, s]
            if s >= 1:
                best = np.logaddexp(best, alpha[t - 1, s - 1])
            if can_skip(s):
                best = np.logaddexp(best, alpha[t - 1, s - 2])
            alpha[t, s] = best + log_probs[t, seq[s]]

    beta = np.full((t_len, s_len), _NEG_INF)
    beta[-1, -1] = 0.0
    if s_len > 1:
        beta[-1, -2] = 0.0
    for t in range(t_len - 2, -1, -1):
        for s in range(s_len):
            best = beta[t + 1, s] + log_probs[t + 1, seq[s]]
            if s + 1 < s_len:
                best = np.logaddexp(
                    best, beta[t + 1, s + 1] + log_probs[t + 1, seq[s + 1]]
                )
            if s + 2 < s_len and can_skip(s + 2):
                best = np.logaddexp(
                    best, beta[t + 1, s + 2] + log_probs[t + 1, seq[s + 2]]
                )
            beta[t, s] = best

    log_likelihood = alpha[-1, -1]
    if s_len > 1:
        log_likelihood = np.logaddexp(log_likelihood, alpha[-1, -2])
    return alpha, beta, float(log_likelihood)


def _ctc_sample_grad(log_probs: np.ndarray, labels: np.ndarray
                     ) -> tuple[float, np.ndarray]:
    """(negative log-likelihood, d nll / d logits) for one sample."""
    alpha, beta, log_like = _ctc_alpha_beta(log_probs, labels)
    seq = _expand_labels(labels)
    t_len, vocab = log_probs.shape
    # Posterior over lattice states, folded per vocabulary symbol.
    gamma = alpha + beta  # [T x S], log p(path through (t,s), transcript)
    grad = np.exp(log_probs)  # softmax(logits): d nll/d logits baseline
    occupancy = np.zeros((t_len, vocab))
    log_occ = np.full((t_len, vocab), _NEG_INF)
    for s, symbol in enumerate(seq):
        log_occ[:, symbol] = np.logaddexp(log_occ[:, symbol], gamma[:, s])
    occupancy = np.exp(log_occ - log_like)
    grad -= occupancy
    return -log_like, grad


class CtcLossOp(Op):
    """Mean CTC negative log-likelihood over the batch.

    Inputs: logits [T x B x V], labels [B x L] (-1 padded). The per-frame
    log-softmax happens inside the kernel, as framework CTC ops do.
    """

    name = "ctc_loss"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        logits, labels = node.inputs
        if len(logits.shape) != 3:
            raise ShapeError("CTC logits must be [T x B x V], got "
                             f"{logits.shape}")
        if len(labels.shape) != 2 or labels.shape[0] != logits.shape[1]:
            raise ShapeError(
                f"CTC labels must be [B x L] with B={logits.shape[1]}, "
                f"got {labels.shape}"
            )
        if not np.issubdtype(labels.dtype, np.integer):
            raise TypeError("CTC labels must be integers")
        return [TensorSpec((), logits.dtype)]

    def compute(self, node, inputs):
        logits, labels = inputs
        loss, _ = _ctc_batch(logits, labels)
        return [np.asarray(loss, dtype=node.out_specs[0].dtype)]

    def gradient(self, node, out_grads):
        (dloss,) = out_grads
        if dloss is None:
            return [None, None]
        logits, labels = node.inputs
        dx = Node(_CTC_LOSS_GRAD, [logits, labels, dloss]).out()
        return [dx, None]

    def launch_count(self, node: Node) -> int:
        return 4  # softmax + alpha + beta + collect

    def flops(self, node: Node) -> int:
        t, b, _v = node.inputs[0].shape
        s = 2 * node.inputs[1].shape[1] + 1
        return 10 * t * b * s


class CtcLossGradOp(Op):
    """dlogits via the forward-backward posterior."""

    name = "ctc_loss_grad"

    def infer_specs(self, node: Node) -> Sequence[TensorSpec]:
        logits = node.inputs[0]
        return [TensorSpec(logits.shape, logits.dtype)]

    def compute(self, node, inputs):
        logits, labels, dloss = inputs
        _, grad = _ctc_batch(logits, labels)
        return [np.asarray(grad * np.float64(dloss),
                           dtype=logits.dtype)]

    def flops(self, node: Node) -> int:
        t, b, _v = node.inputs[0].shape
        s = 2 * node.inputs[1].shape[1] + 1
        return 10 * t * b * s


def _ctc_batch(logits: np.ndarray, labels: np.ndarray
               ) -> tuple[float, np.ndarray]:
    t_len, batch, _vocab = logits.shape
    log_probs = log_softmax_array(logits.astype(np.float64))
    total = 0.0
    grad = np.zeros_like(log_probs)
    for b in range(batch):
        transcript = labels[b]
        transcript = transcript[transcript >= 0]
        if len(transcript) == 0:
            # Empty transcript: the only path is all-blank.
            nll = -log_probs[:, b, BLANK].sum()
            g = np.exp(log_probs[:, b])
            g[:, BLANK] -= 1.0
        else:
            nll, g = _ctc_sample_grad(log_probs[:, b], transcript)
        total += nll
        grad[:, b] = g
    return total / batch, grad / batch


_CTC_LOSS = register(CtcLossOp())
_CTC_LOSS_GRAD = register(CtcLossGradOp())


def ctc_loss(logits: Tensor, labels: Tensor) -> Tensor:
    """Mean CTC loss; see :class:`CtcLossOp` for conventions."""
    return Node(_CTC_LOSS, [logits, labels]).out()
